#!/usr/bin/env python
"""Docstring-coverage gate for ``src/repro/``.

Counts public definitions (modules, classes, functions and methods whose
names do not start with ``_``) and how many of them carry a docstring,
then fails if the overall ratio drops below the threshold (default 80%).
CI runs this so documentation debt cannot accumulate silently: new code
either ships with docstrings or moves the needle visibly.

Deliberate exclusions, so the number measures *intent to document*:

* private names (leading ``_``) — internal helpers document themselves
  where it matters and are free not to;
* ``__init__``/dunder methods — their contract is the class docstring's;
* trivial overrides whose body is a bare ``...``/``pass`` *and* that
  override a documented parent would still count; we keep the rule
  simple and count them, which only makes the gate stricter.

Usage::

    python tools/docstring_coverage.py                 # gate at 80%
    python tools/docstring_coverage.py --threshold 85
    python tools/docstring_coverage.py --list-missing  # name every gap
    python tools/docstring_coverage.py --by-module     # worst modules first
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

DEFAULT_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"
DEFAULT_THRESHOLD = 80.0


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _definitions(tree: ast.Module) -> list[tuple[str, ast.AST]]:
    """Yield ``(qualified_name, node)`` for every public def in a module."""
    found: list[tuple[str, ast.AST]] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                if not _is_public(child.name):
                    continue
                qualified = f"{prefix}{child.name}"
                found.append((qualified, child))
                if isinstance(child, ast.ClassDef):
                    walk(child, f"{qualified}.")

    walk(tree, "")
    return found


def scan_file(path: Path) -> tuple[int, int, list[str]]:
    """Return ``(documented, total, missing_names)`` for one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    documented = 0
    total = 1  # the module itself
    missing: list[str] = []
    if ast.get_docstring(tree):
        documented += 1
    else:
        missing.append("<module>")
    for name, node in _definitions(tree):
        total += 1
        if ast.get_docstring(node):
            documented += 1
        else:
            missing.append(name)
    return documented, total, missing


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=DEFAULT_ROOT,
                        help=f"package root to scan (default: {DEFAULT_ROOT})")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="minimum overall coverage percentage "
                             f"(default: {DEFAULT_THRESHOLD})")
    parser.add_argument("--list-missing", action="store_true",
                        help="print every undocumented public definition")
    parser.add_argument("--by-module", action="store_true",
                        help="print per-module coverage, worst first")
    args = parser.parse_args(argv)

    if not args.root.is_dir():
        print(f"error: {args.root} is not a directory", file=sys.stderr)
        return 2

    per_module: list[tuple[float, Path, int, int, list[str]]] = []
    total_documented = total_defs = 0
    for path in sorted(args.root.rglob("*.py")):
        documented, total, missing = scan_file(path)
        total_documented += documented
        total_defs += total
        pct = 100.0 * documented / total if total else 100.0
        per_module.append((pct, path, documented, total, missing))

    if not total_defs:
        print(f"error: no Python files under {args.root}", file=sys.stderr)
        return 2

    coverage = 100.0 * total_documented / total_defs
    if args.by_module:
        for pct, path, documented, total, _ in sorted(per_module):
            rel = path.relative_to(args.root.parent)
            print(f"  {pct:6.1f}%  {documented:3d}/{total:<3d}  {rel}")
    if args.list_missing:
        for _, path, _, _, missing in sorted(per_module):
            if not missing:
                continue
            rel = path.relative_to(args.root.parent)
            for name in missing:
                print(f"  {rel}: {name}")
    print(f"docstring coverage: {total_documented}/{total_defs} "
          f"public definitions ({coverage:.1f}%), threshold "
          f"{args.threshold:.0f}%")
    if coverage < args.threshold:
        print("docstring coverage gate FAILED", file=sys.stderr)
        return 1
    print("docstring coverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
