#!/usr/bin/env python
"""Markdown link checker for the repository's documentation.

Validates every ``[text](target)`` link in the given Markdown files:

* **relative file links** (``DESIGN.md``, ``docs/ARCHITECTURE.md#sat``)
  must point at an existing file, resolved against the linking file's
  directory, and any ``#fragment`` must match a heading anchor in the
  target (GitHub anchor rules: lowercase, punctuation stripped, spaces
  to dashes);
* **intra-file anchors** (``#quickstart``) must match a heading in the
  same file;
* **external links** (``http://``/``https://``/``mailto:``) are *not*
  fetched — CI must not fail on someone else's outage — but their URL
  syntax is sanity-checked.

Exit status 1 lists every broken link with file and line number.

Usage::

    python tools/check_markdown_links.py README.md DESIGN.md docs/*.md
    python tools/check_markdown_links.py          # the default doc set
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files checked when no arguments are given.
DEFAULT_DOCS = ("README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md")

#: ``[text](target)`` — target may carry an optional ``#fragment``; image
#: links (``![alt](src)``) are matched too (same resolution rules).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
_CODE_FENCE = re.compile(r"^\s*(```|~~~)")
_EXTERNAL = re.compile(r"^[a-z][a-z0-9+.-]*:", re.IGNORECASE)


def github_anchor(heading: str) -> str:
    """Reduce a heading to its GitHub-style anchor id."""
    # Inline code/emphasis markers vanish; punctuation is stripped;
    # spaces become dashes.  This matches GitHub's slugger for the ASCII
    # headings this repository uses.
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _lines_outside_fences(text: str) -> list[tuple[int, str]]:
    """``(line_number, line)`` pairs, skipping fenced code blocks."""
    kept: list[tuple[int, str]] = []
    in_fence = False
    for number, line in enumerate(text.splitlines(), start=1):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            kept.append((number, line))
    return kept


def anchors_of(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    """All heading anchors of a Markdown file (memoised)."""
    if path not in cache:
        found: set[str] = set()
        counts: dict[str, int] = {}
        for _, line in _lines_outside_fences(path.read_text(encoding="utf-8")):
            match = _HEADING.match(line)
            if not match:
                continue
            anchor = github_anchor(match.group(1))
            # GitHub deduplicates repeated headings with -1, -2, ... suffixes.
            seen = counts.get(anchor, 0)
            counts[anchor] = seen + 1
            found.add(anchor if seen == 0 else f"{anchor}-{seen}")
        cache[path] = found
    return cache[path]


def check_file(path: Path, cache: dict[Path, set[str]]) -> list[str]:
    """Return a list of broken-link descriptions for one Markdown file."""
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    for number, line in _lines_outside_fences(text):
        # Inline code spans may hold example links that are not promises.
        stripped = re.sub(r"`[^`]*`", "", line)
        for match in _LINK.finditer(stripped):
            target = match.group(1)
            where = f"{path.relative_to(REPO_ROOT)}:{number}"
            if _EXTERNAL.match(target):
                if not re.match(r"^(https?://\S+|mailto:\S+@\S+)$", target):
                    problems.append(f"{where}: malformed external URL {target!r}")
                continue
            base, _, fragment = target.partition("#")
            if base:
                resolved = (path.parent / base).resolve()
                if not resolved.exists():
                    problems.append(f"{where}: missing file {base!r}")
                    continue
            else:
                resolved = path
            if fragment:
                if resolved.suffix.lower() not in (".md", ".markdown"):
                    continue  # anchors into non-Markdown files: not checkable
                if fragment not in anchors_of(resolved, cache):
                    problems.append(
                        f"{where}: no heading for anchor "
                        f"#{fragment} in {resolved.name}"
                    )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="Markdown files to check (default: README.md, "
                             "DESIGN.md, ROADMAP.md, CHANGES.md and docs/*.md)")
    args = parser.parse_args(argv)

    if args.files:
        paths = [Path(f).resolve() for f in args.files]
    else:
        paths = [REPO_ROOT / name for name in DEFAULT_DOCS]
        paths += sorted((REPO_ROOT / "docs").glob("*.md"))
    paths = [p for p in paths if p.exists()]
    if not paths:
        print("error: no Markdown files to check", file=sys.stderr)
        return 2

    cache: dict[Path, set[str]] = {}
    problems: list[str] = []
    checked_links = 0
    for path in paths:
        text = path.read_text(encoding="utf-8")
        checked_links += sum(
            len(_LINK.findall(re.sub(r"`[^`]*`", "", line)))
            for _, line in _lines_outside_fences(text)
        )
        problems.extend(check_file(path, cache))

    print(f"checked {checked_links} link(s) across {len(paths)} file(s)")
    if problems:
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print("all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
