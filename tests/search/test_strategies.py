"""Search strategies: registry, ladder/bisect/portfolio equivalence.

The ladder is the semantic reference (it is behaviour-identical to the
pre-refactor inline loop, which the rest of the test-suite pins down);
bisection and the portfolio must return the same II on every kernel here,
with simulator-clean mappings.
"""

from __future__ import annotations

import pytest

from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.kernels import get_kernel
from repro.search import available_strategies, create_strategy
from repro.search.portfolio import PORTFOLIO_VARIANTS, variant_overrides
from repro.simulator import CGRASimulator

KERNELS = ("srand", "stringsearch", "nw", "basicmath")


def _map(kernel: str, size: int = 3, **overrides):
    fields = dict(timeout=120, random_seed=0)
    fields.update(overrides)
    return SatMapItMapper(MapperConfig(**fields)).map(
        get_kernel(kernel), CGRA.square(size)
    )


class TestRegistry:
    def test_built_in_strategies_registered(self):
        names = available_strategies()
        assert {"ladder", "bisect", "portfolio"} <= set(names)

    def test_create_by_name(self):
        assert create_strategy("ladder").name == "ladder"
        assert create_strategy("bisect").name == "bisect"
        assert create_strategy("portfolio").name == "portfolio"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            create_strategy("simulated-annealing")

    def test_unknown_strategy_rejected_by_mapper(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            _map("srand", search="simulated-annealing")

    def test_unknown_portfolio_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown portfolio variant"):
            variant_overrides(("default", "quantum"))

    def test_variant_table_is_config_compatible(self):
        for name, overrides in PORTFOLIO_VARIANTS.items():
            config = MapperConfig(**overrides)  # must construct cleanly
            assert config is not None, name


@pytest.mark.parametrize("kernel", KERNELS)
def test_bisect_matches_ladder(kernel):
    ladder = _map(kernel, search="ladder")
    bisect = _map(kernel, search="bisect")
    assert ladder.success and bisect.success
    assert bisect.ii == ladder.ii, f"{kernel}: bisect diverged"
    assert bisect.search_strategy == "bisect"
    assert bisect.mapping.violations() == []
    simulation = CGRASimulator(
        bisect.mapping, bisect.register_allocation
    ).run(4)
    assert simulation.success, simulation.errors


@pytest.mark.parametrize("kernel", KERNELS)
def test_portfolio_matches_ladder(kernel):
    """Satellite requirement: portfolio-vs-ladder II equivalence,
    simulator-validated, on >= 4 kernels."""
    ladder = _map(kernel, search="ladder")
    portfolio = _map(kernel, search="portfolio", search_jobs=2)
    assert ladder.success and portfolio.success
    assert portfolio.ii == ladder.ii, f"{kernel}: portfolio diverged"
    assert portfolio.search_strategy == "portfolio"
    assert portfolio.portfolio_launched >= 1
    assert portfolio.mapping.violations() == []
    simulation = CGRASimulator(
        portfolio.mapping, portfolio.register_allocation
    ).run(4)
    assert simulation.success, simulation.errors


class TestBisection:
    def test_wide_gap_skips_candidates(self):
        """gsm on a 2x2 sits at II=7 with MII=7 — force a wide search range
        by starting below, and check bisection probes fewer IIs."""
        ladder = _map("gsm", size=2, search="ladder")
        bisect = _map("gsm", size=2, search="bisect")
        assert bisect.ii == ladder.ii == 7
        # Attempted IIs form a subset of the ladder's contiguous climb.
        assert {a.ii for a in bisect.attempts} <= {
            ii for ii in range(bisect.minimum_ii, 8)
        }

    def test_all_infeasible_range_fails(self):
        outcome = _map("gsm", size=2, search="bisect", max_ii=4)
        assert not outcome.success
        assert outcome.final_status == "failed"

    def test_gallop_then_binary_search_from_forced_low_start(self):
        """Starting below the MII forces both phases: the gallop overshoots
        the optimum and the binary search walks back down to it.  Decisive
        attempts (no regalloc post-pass, unbounded slack proofs) keep the
        monotone skipping engaged — UNSAT answers are real lower bounds."""
        decisive = dict(
            slack_conflict_limit=None, run_register_allocation=False
        )
        ladder = _map("nw", size=2, **decisive)
        config = MapperConfig(
            timeout=120, random_seed=0, search="bisect", **decisive
        )
        outcome = SatMapItMapper(config).map(
            get_kernel("nw"), CGRA.square(2), start_ii=1
        )
        assert outcome.success
        assert outcome.ii == ladder.ii == 5
        attempted = {a.ii for a in outcome.attempts}
        # Gallop probes 1, 2, 4, 8 (+1, +2, +4 gaps), the binary search
        # walks [5, 7]: IIs 3 and 7 are never solved, the overshoot at 8 is.
        assert 3 not in attempted and 7 not in attempted
        assert max(attempted) > outcome.ii
        assert outcome.mapping.violations() == []

    def test_inconclusive_failure_falls_back_to_sequential(self):
        """With register allocation gating acceptance, a failed attempt is
        not an UNSAT proof — bisection must stop skipping and sweep the
        unruled range ladder-style (soundness over speed)."""
        ladder = _map("srand", size=2)  # regalloc on (default)
        config = MapperConfig(timeout=120, random_seed=0, search="bisect")
        outcome = SatMapItMapper(config).map(
            get_kernel("srand"), CGRA.square(2), start_ii=1
        )
        assert outcome.success
        assert outcome.ii == ladder.ii
        # The non-decisive II=1 verdict forces the sequential sweep: every
        # II up to the answer is visited, none skipped.
        attempted = {a.ii for a in outcome.attempts}
        assert attempted == set(range(1, outcome.ii + 1))


class TestPortfolio:
    def test_capped_range_fails_like_ladder(self):
        ladder = _map("gsm", size=2, search="ladder", max_ii=4)
        portfolio = _map("gsm", size=2, search="portfolio", max_ii=4,
                         search_jobs=2)
        assert not ladder.success and not portfolio.success
        assert portfolio.final_status == ladder.final_status == "failed"

    def test_merged_attempts_are_ii_sorted(self):
        outcome = _map("nw", size=2, search="portfolio", search_jobs=2)
        assert outcome.success
        iis = [a.ii for a in outcome.attempts]
        assert iis == sorted(iis)

    def test_explicit_variant_lineup(self):
        outcome = _map(
            "srand", search="portfolio", search_jobs=2,
            portfolio_variants=("sequential",),
        )
        assert outcome.success
        assert outcome.portfolio_winner == "sequential"

    def test_regalloc_blocked_ii_escalates_to_default_variant(self):
        """gsm@2x2: the no-probe variant's II=7 models keep failing register
        allocation, while the default trajectory colours II=7 fine.  A
        regalloc failure must escalate the II to a default-variant lane
        instead of letting the frontier pass it — otherwise the portfolio
        would report II=8 where the ladder reports 7."""
        ladder = _map("gsm", size=2, search="ladder")
        portfolio = _map(
            "gsm", size=2, search="portfolio", search_jobs=2,
            portfolio_variants=("no-probe",),
        )
        assert ladder.ii == 7
        assert portfolio.ii == ladder.ii
        assert portfolio.portfolio_winner == "default"
        assert any(
            a.status == "REGALLOC_FAIL" for a in portfolio.attempts
        )

    def test_timeout_is_reported(self):
        # A timeout that cannot fit even one attempt must come back as a
        # timed-out failure, with every worker reaped.
        outcome = _map("gsm", size=2, search="portfolio", timeout=0.0)
        assert not outcome.success
        assert outcome.timed_out
        assert outcome.final_status == "timeout"


def test_strategy_recorded_in_outcome():
    for name in ("ladder", "bisect", "portfolio"):
        outcome = _map("srand", search=name)
        assert outcome.search_strategy == name
