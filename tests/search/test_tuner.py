"""Lane tuner: keying, round trips, exploration, recovery, integration."""

from __future__ import annotations

import json

from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.kernels import get_kernel
from repro.search.tuner import (
    LaneTuner,
    aggregate_lane_stats,
    kernel_features,
    tuner_key,
)

KEY = "0" * 64


def _race(winner: str, losers: tuple[str, ...], conflicts: int = 100):
    results = [
        {"lane": winner, "won": True, "wall_s": 0.5, "conflicts": conflicts}
    ]
    results += [
        {"lane": loser, "won": False, "wall_s": 1.5, "conflicts": 0}
        for loser in losers
    ]
    return results


class TestTunerKey:
    def test_key_is_deterministic_and_shape_sensitive(self):
        gsm, cgra = get_kernel("gsm"), CGRA.square(2)
        assert tuner_key(gsm, cgra) == tuner_key(gsm, cgra)
        assert tuner_key(gsm, cgra) != tuner_key(get_kernel("nw"), cgra)
        assert tuner_key(gsm, cgra) != tuner_key(gsm, CGRA.square(3))

    def test_features_are_structural(self):
        features = kernel_features(get_kernel("gsm"))
        assert features["num_nodes"] == get_kernel("gsm").num_nodes
        assert isinstance(features["opcodes"], dict)
        json.dumps(features)  # must be plain data


class TestChooseAndRecord:
    def test_cold_key_keeps_base_lineup(self, tmp_path):
        tuner = LaneTuner(tmp_path)
        choice = tuner.choose(KEY, ("a", "b"), ("a", "b"))
        assert choice.lineup == ("a", "b")
        assert not choice.consulted
        assert choice.probe_conflicts is None
        assert tuner.stats.consults == 1 and tuner.stats.cold == 1

    def test_winning_lane_is_promoted(self, tmp_path):
        tuner = LaneTuner(tmp_path)
        for _ in range(3):
            tuner.record(KEY, _race("b", ("a",)))
        choice = tuner.choose(KEY, ("a", "b"), ("a", "b"))
        assert choice.consulted
        assert choice.lineup[0] == "b"
        assert tuner.stats.records == 3

    def test_unknown_stored_lanes_are_ignored(self, tmp_path):
        tuner = LaneTuner(tmp_path)
        tuner.record(KEY, _race("removed-variant", ()))
        choice = tuner.choose(KEY, ("a", "b"), ("a", "b"))
        assert not choice.consulted  # nothing usable for the available lanes
        assert choice.lineup == ("a", "b")

    def test_probe_suggestion_tracks_winning_conflicts(self, tmp_path):
        tuner = LaneTuner(tmp_path)
        tuner.record(KEY, _race("a", ("b",), conflicts=700))
        choice = tuner.choose(KEY, ("a", "b"), ("a", "b"))
        assert choice.probe_conflicts == 1400  # 2 x median

    def test_probe_suggestion_is_clamped(self, tmp_path):
        low = LaneTuner(tmp_path / "low")
        low.record(KEY, _race("a", (), conflicts=3))
        assert low.choose(KEY, ("a",), ("a",)).probe_conflicts == 200
        high = LaneTuner(tmp_path / "high")
        high.record(KEY, _race("a", (), conflicts=100_000))
        assert high.choose(KEY, ("a",), ("a",)).probe_conflicts == 5000

    def test_exploration_promotes_least_sampled_lane(self, tmp_path):
        tuner = LaneTuner(tmp_path, epsilon=1.0)  # explore on every request
        tuner.record(KEY, _race("a", ("b",)))
        choice = tuner.choose(KEY, ("a", "b", "c"), ("a", "b", "c"))
        assert choice.consulted
        assert choice.lineup[1] == "c"  # never-sampled lane gets slot 2
        assert tuner.stats.explored == 1

    def test_requests_counter_persists(self, tmp_path):
        tuner = LaneTuner(tmp_path)
        tuner.record(KEY, _race("a", ("b",)))
        tuner.record(KEY, _race("a", ("b",)))
        entry = LaneTuner(tmp_path).load(KEY)
        assert entry["requests"] == 2
        assert entry["lanes"]["a"]["wins"] == 2
        assert entry["lanes"]["b"]["losses"] == 2


class TestRecovery:
    def test_corrupted_entry_is_deleted_and_counted(self, tmp_path):
        tuner = LaneTuner(tmp_path)
        tuner.path_for(KEY).write_text("{not json")
        choice = tuner.choose(KEY, ("a",), ("a",))
        assert not choice.consulted
        assert tuner.stats.corrupted == 1
        assert not tuner.path_for(KEY).exists()
        # ... and the key is usable again afterwards.
        tuner.record(KEY, _race("a", ()))
        assert tuner.choose(KEY, ("a",), ("a",)).consulted

    def test_schema_mismatch_is_discarded(self, tmp_path):
        tuner = LaneTuner(tmp_path)
        tuner.record(KEY, _race("a", ()))
        entry = json.loads(tuner.path_for(KEY).read_text())
        entry["schema"] = "something-else"
        tuner.path_for(KEY).write_text(json.dumps(entry))
        assert not tuner.choose(KEY, ("a",), ("a",)).consulted
        assert tuner.stats.corrupted == 1

    def test_aggregate_skips_dirty_entries(self, tmp_path):
        tuner = LaneTuner(tmp_path)
        tuner.record(KEY, _race("a", ("b",)))
        (tmp_path / ("1" * 64 + ".json")).write_text("junk")
        totals = aggregate_lane_stats(tmp_path)
        assert totals["a"]["wins"] == 1
        assert totals["b"]["losses"] == 1

    def test_aggregate_on_missing_store(self, tmp_path):
        assert aggregate_lane_stats(tmp_path / "nope") == {}


class TestTunerIntegration:
    def test_second_portfolio_run_consults_persisted_stats(self, tmp_path):
        def run():
            return SatMapItMapper(
                MapperConfig(
                    timeout=120,
                    random_seed=0,
                    search="portfolio",
                    search_jobs=2,
                    tuner_dir=str(tmp_path),
                )
            ).map(get_kernel("gsm"), CGRA.square(2))

        first = run()
        assert first.success
        assert not first.tuner_consulted  # cold start
        assert first.tuner_stats.records == 1
        second = run()
        assert second.success and second.ii == first.ii
        assert second.tuner_consulted
        assert second.tuner_lineup  # the consulted line-up is reported
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        entry = json.loads(entries[0].read_text())
        assert entry["requests"] == 2

    def test_workers_do_not_recurse_into_seeding_or_tuning(self, tmp_path):
        from repro.search.portfolio import PortfolioStrategy

        config = MapperConfig(
            seed_heuristic=True, tuner_dir=str(tmp_path), search="portfolio"
        )
        worker = PortfolioStrategy._worker_config(config, {}, ii=4,
                                                  remaining=10.0)
        assert worker.seed_heuristic is False
        assert worker.tuner_dir is None
