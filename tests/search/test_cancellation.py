"""Worker-process cancellation: SIGTERM escalation and no-leak guarantees.

The portfolio's old cancellation path was terminate-and-hope: a worker
that ignored SIGTERM (stuck in native solver code, or with a handler
installed) silently outlived the strategy.  These tests pin down the
kill-escalation discipline (:func:`repro.search.portfolio.reap_process`)
and the strategy-exit invariant that no spawned worker survives — the
properties a long-lived service process depends on.
"""

from __future__ import annotations

import multiprocessing
import signal
import time

import repro.search.portfolio as portfolio_module
from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.kernels import get_kernel
from repro.search.portfolio import _portfolio_worker, reap_process


def _sleep_forever() -> None:
    time.sleep(600)


def _ignore_sigterm_and_sleep() -> None:
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(600)


class TestReapProcess:
    def test_cooperative_worker_dies_on_sigterm(self):
        process = multiprocessing.Process(target=_sleep_forever, daemon=True)
        process.start()
        reap_process(process)
        assert not process.is_alive()

    def test_sigterm_ignorer_is_kill_escalated(self, monkeypatch):
        monkeypatch.setattr(portfolio_module, "_TERM_GRACE", 0.3)
        process = multiprocessing.Process(
            target=_ignore_sigterm_and_sleep, daemon=True
        )
        process.start()
        time.sleep(0.3)  # let the child install SIG_IGN
        start = time.monotonic()
        reap_process(process)
        elapsed = time.monotonic() - start
        assert not process.is_alive()
        # Escalated after the (shrunk) grace, not the full sleep.
        assert elapsed < 5.0

    def test_already_dead_process_is_a_noop(self):
        process = multiprocessing.Process(target=_noop, daemon=True)
        process.start()
        process.join()
        reap_process(process)  # must not raise or hang
        assert not process.is_alive()

    def test_explicit_grace_overrides_module_default(self, monkeypatch):
        monkeypatch.setattr(portfolio_module, "_TERM_GRACE", 600.0)
        process = multiprocessing.Process(
            target=_ignore_sigterm_and_sleep, daemon=True
        )
        process.start()
        time.sleep(0.3)
        start = time.monotonic()
        reap_process(process, grace=0.2)
        assert not process.is_alive()
        assert time.monotonic() - start < 5.0


def _noop() -> None:
    pass


def _stubborn_portfolio_worker(result_queue, token, dfg, cgra, config, ii):
    """Portfolio lane stand-in: the frontier II solves for real, every
    higher II ignores SIGTERM and naps — the worst-case worker the
    cancellation path must still reap."""
    if ii <= 3:  # srand on 3x3 is feasible at its minimum II of 3
        time.sleep(0.5)  # let the stubborn siblings install SIG_IGN first
        _portfolio_worker(result_queue, token, dfg, cgra, config, ii)
        return
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(600)


class TestPortfolioCancellation:
    def test_frontier_win_reaps_sigterm_ignoring_workers(self, monkeypatch):
        """A win must cancel the moot lanes even when they shrug off
        SIGTERM; the strategy asserts no worker outlives it."""
        monkeypatch.setattr(portfolio_module, "_TERM_GRACE", 0.5)
        monkeypatch.setattr(
            portfolio_module, "_portfolio_worker", _stubborn_portfolio_worker
        )
        before = {p.pid for p in multiprocessing.active_children()}
        outcome = SatMapItMapper(
            MapperConfig(
                timeout=120,
                random_seed=0,
                search="portfolio",
                search_jobs=4,
                portfolio_variants=("default",),
                seed_heuristic=False,
            )
        ).map(get_kernel("srand"), CGRA.square(3))
        assert outcome.success
        assert outcome.ii == 3
        # Lanes for II >= 4 were launched (search_jobs=4, one variant per
        # II) and must have been cancelled, not leaked.
        assert outcome.portfolio_cancelled >= 1
        leaked = [
            p for p in multiprocessing.active_children() if p.pid not in before
        ]
        assert leaked == [], f"portfolio leaked workers: {leaked}"
