"""Heuristic II-seeding: pre-pass behaviour and seeded-search semantics."""

from __future__ import annotations

import pytest

from repro.cgra.architecture import CGRA
from repro.cgra.capabilities import effective_minimum_ii
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.kernels import get_kernel
from repro.search.seed import SeedResult, run_seed

#: The bench-suite configuration: decisive attempts and no regalloc
#: post-pass make the achieved II a formula property, so seeded and
#: unseeded runs are exactly comparable.
BENCH = dict(
    timeout=120,
    slack_conflict_limit=None,
    run_register_allocation=False,
    random_seed=0,
)


def _map(kernel: str, size: int, **overrides):
    fields = dict(BENCH)
    fields.update(overrides)
    return SatMapItMapper(MapperConfig(**fields)).map(
        get_kernel(kernel), CGRA.square(size)
    )


class TestRunSeed:
    def test_finds_validated_seed(self):
        dfg, cgra = get_kernel("gsm"), CGRA.square(2)
        config = MapperConfig(**BENCH, seed_heuristic=True)
        mii = effective_minimum_ii(dfg, cgra)
        seed = run_seed(dfg, cgra, config, mii)
        assert seed is not None
        assert seed.ii >= mii
        assert seed.mapping.violations() == []
        assert seed.mapper_name in config.seed_mappers
        assert seed.wall_time > 0
        result = seed.as_search_result()
        assert result.ii == seed.ii and result.mapping is seed.mapping

    def test_zero_budget_yields_no_seed(self):
        dfg, cgra = get_kernel("gsm"), CGRA.square(2)
        config = MapperConfig(**BENCH, seed_heuristic=True)
        assert run_seed(dfg, cgra, config, 7, budget=0.0) is None

    def test_respects_mapper_selection(self):
        dfg, cgra = get_kernel("gsm"), CGRA.square(2)
        config = MapperConfig(
            **BENCH, seed_heuristic=True, seed_mappers=("pathseeker",)
        )
        seed = run_seed(dfg, cgra, config, 7)
        assert seed is None or seed.mapper_name == "pathseeker"


class TestSeededSearch:
    def test_seed_at_mii_skips_sat_entirely(self):
        """gsm@2x2: the heuristic reaches the MII, so zero SAT attempts run."""
        outcome = _map("gsm", 2, seed_heuristic=True)
        assert outcome.success
        assert outcome.seed_ii == outcome.minimum_ii
        assert outcome.ii == outcome.minimum_ii
        assert outcome.attempts == []
        assert outcome.seed_used
        assert outcome.seed_mapper in ("ramp", "pathseeker")

    def test_zero_budget_matches_unseeded_run_exactly(self):
        """A failed pre-pass must leave pre-seed behaviour untouched."""
        unseeded = _map("gsm", 2)
        seeded = _map("gsm", 2, seed_heuristic=True, seed_time_budget=0.0)
        assert seeded.seed_ii is None and not seeded.seed_used
        assert seeded.ii == unseeded.ii
        assert len(seeded.attempts) == len(unseeded.attempts)
        assert [a.ii for a in seeded.attempts] == [
            a.ii for a in unseeded.attempts
        ]
        assert all(a.seed_ceiling is None for a in seeded.attempts)

    def test_weak_seed_never_inflates_the_returned_ii(self, monkeypatch):
        """A seed above the optimum only bounds the search from above."""
        reference = _map("gsm", 2)
        assert reference.success
        dfg, cgra = get_kernel("gsm"), CGRA.square(2)
        config = MapperConfig(**BENCH, seed_heuristic=True)
        weak = run_seed(dfg, cgra, config, reference.ii + 2)
        assert weak is not None and weak.ii > reference.ii
        monkeypatch.setattr(
            "repro.search.seed.run_seed", lambda *a, **k: weak
        )
        outcome = _map("gsm", 2, seed_heuristic=True)
        assert outcome.success
        assert outcome.ii == reference.ii
        assert outcome.seed_ii == weak.ii
        assert not outcome.seed_used
        # Every SAT attempt recorded the ceiling it ran under and stayed
        # strictly below it.
        assert outcome.attempts
        for attempt in outcome.attempts:
            assert attempt.seed_ceiling == weak.ii
            assert attempt.ii < weak.ii

    def test_seed_is_the_anytime_answer_on_timeout(self, monkeypatch):
        dfg, cgra = get_kernel("gsm"), CGRA.square(2)
        config = MapperConfig(**BENCH, seed_heuristic=True)
        seed = run_seed(dfg, cgra, config, 9)
        assert seed is not None
        monkeypatch.setattr(
            "repro.search.seed.run_seed", lambda *a, **k: seed
        )
        outcome = _map("gsm", 2, seed_heuristic=True, timeout=1e-6)
        assert outcome.success
        assert outcome.ii == seed.ii
        assert outcome.seed_used
        assert outcome.mapping is seed.mapping

    @pytest.mark.parametrize("strategy", ["ladder", "bisect", "portfolio"])
    def test_seeded_strategies_agree_with_unseeded_ladder(self, strategy):
        reference = _map("gsm", 2)
        jobs = 2 if strategy == "portfolio" else 1
        seeded = _map(
            "gsm", 2, seed_heuristic=True, search=strategy, search_jobs=jobs
        )
        assert seeded.success
        assert seeded.ii == reference.ii


class TestSeedResultPlumbing:
    def test_summary_mentions_seed_on_cli_outcome(self):
        outcome = _map("gsm", 2, seed_heuristic=True)
        assert outcome.seed_time > 0
        assert isinstance(outcome.seed_ii, int)

    def test_seed_result_dataclass_roundtrip(self):
        seed = SeedResult(
            ii=5, mapping=object(), allocation=None,
            mapper_name="ramp", wall_time=0.1,
        )
        result = seed.as_search_result()
        assert result.ii == 5 and result.allocation is None
