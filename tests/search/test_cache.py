"""Persistent mapping cache: keying, round trips, invalidation, recovery."""

from __future__ import annotations

import json

import pytest

from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.kernels import get_kernel
from repro.search.cache import (
    SCHEMA,
    CacheStats,
    MappingCache,
    cache_key,
    config_fingerprint,
)
from repro.simulator import CGRASimulator


def _map(kernel: str, cache_dir, size: int = 3, **overrides):
    fields = dict(timeout=60, random_seed=0, cache_dir=str(cache_dir))
    fields.update(overrides)
    return SatMapItMapper(MapperConfig(**fields)).map(
        get_kernel(kernel), CGRA.square(size)
    )


class TestCacheKey:
    def test_key_is_deterministic(self):
        dfg, cgra = get_kernel("srand"), CGRA.square(3)
        config = MapperConfig()
        assert cache_key(dfg, cgra, config) == cache_key(dfg, cgra, config)

    def test_key_changes_with_problem_and_version(self):
        dfg, cgra = get_kernel("srand"), CGRA.square(3)
        config = MapperConfig()
        base = cache_key(dfg, cgra, config)
        assert cache_key(get_kernel("nw"), cgra, config) != base
        assert cache_key(dfg, CGRA.square(4), config) != base
        assert cache_key(dfg, cgra, MapperConfig(random_seed=1)) != base
        assert cache_key(dfg, cgra, config, solver_version="other") != base
        assert cache_key(dfg, cgra, config, start_ii=5) != base

    def test_execution_details_do_not_change_the_key(self):
        """Timeout / strategy / jobs / verbosity are not semantic."""
        dfg, cgra = get_kernel("srand"), CGRA.square(3)
        base = cache_key(dfg, cgra, MapperConfig())
        for overrides in (
            dict(timeout=5.0),
            dict(verbose=True),
            dict(search="portfolio", search_jobs=8),
            dict(cache_dir="/elsewhere"),
            dict(attempt_time_limit=1.0),
        ):
            assert cache_key(dfg, cgra, MapperConfig(**overrides)) == base

    def test_fingerprint_serialises_enums(self):
        fingerprint = config_fingerprint(MapperConfig())
        json.dumps(fingerprint)  # must be plain data
        assert fingerprint["amo_encoding"] == MapperConfig().amo_encoding.value


class TestCacheRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        first = _map("srand", tmp_path)
        assert first.success and not first.cache_hit
        assert first.cache_stats.misses == 1
        assert first.cache_stats.writes == 1

        second = _map("srand", tmp_path)
        assert second.success and second.cache_hit
        assert second.ii == first.ii
        assert second.cache_stats.hits == 1
        assert second.attempts == []  # no SAT work on a hit
        assert second.mapping.violations() == []
        # A hit reports register allocation like a fresh run would (the
        # post-pass is recomputed from the archived mapping).
        assert second.register_allocation is not None
        assert second.register_allocation.success
        # The recovered mapping replays through the simulator (register
        # assignment included in the archived entry).
        simulation = CGRASimulator(second.mapping, None).run(4)
        assert simulation.success, simulation.errors

    def test_hit_across_strategies(self, tmp_path):
        """Strategy and jobs are execution details: portfolio primes ladder."""
        first = _map("srand", tmp_path, search="portfolio", search_jobs=2)
        assert first.success and not first.cache_hit
        second = _map("srand", tmp_path, search="ladder")
        assert second.cache_hit and second.ii == first.ii

    def test_semantic_config_change_misses(self, tmp_path):
        _map("srand", tmp_path)
        other = _map("srand", tmp_path, random_seed=1)
        assert not other.cache_hit

    def test_failed_runs_are_not_cached(self, tmp_path):
        # gsm needs II=7 on a 2x2; an II cap below that fails the run.
        failed = _map("gsm", tmp_path, size=2, max_ii=3)
        assert not failed.success
        assert failed.cache_stats.writes == 0
        assert list(tmp_path.glob("*.json")) == []


class TestInvalidationAndRecovery:
    def test_solver_version_bump_invalidates(self, tmp_path):
        dfg, cgra = get_kernel("srand"), CGRA.square(3)
        config = MapperConfig(timeout=60, random_seed=0)
        old = MappingCache(tmp_path, solver_version="engine-old")
        outcome = SatMapItMapper(
            MapperConfig(timeout=60, random_seed=0)
        ).map(dfg, cgra)
        key = old.key(dfg, cgra, config)
        assert old.store(key, outcome) is not None

        # A new engine version derives a different key: plain miss.
        new = MappingCache(tmp_path, solver_version="engine-new")
        assert new.lookup(dfg, cgra, config) is None
        assert new.stats.misses == 1

    def test_tampered_version_field_is_discarded(self, tmp_path):
        first = _map("srand", tmp_path)
        [entry_path] = tmp_path.glob("*.json")
        entry = json.loads(entry_path.read_text())
        assert entry["schema"] == SCHEMA
        entry["solver_version"] = "something-else"
        entry_path.write_text(json.dumps(entry))

        again = _map("srand", tmp_path)
        assert not again.cache_hit
        assert again.cache_stats.invalidated == 1
        # The bad entry was deleted and replaced by a fresh write.
        assert again.cache_stats.writes == 1

    def test_corrupted_entry_recovers(self, tmp_path):
        _map("srand", tmp_path)
        [entry_path] = tmp_path.glob("*.json")
        entry_path.write_text("{not json at all")

        again = _map("srand", tmp_path)
        assert again.success and not again.cache_hit
        assert again.cache_stats.corrupted == 1
        assert again.cache_stats.writes == 1
        # ... and the rewritten entry serves the next run.
        final = _map("srand", tmp_path)
        assert final.cache_hit

    def test_tampered_mapping_is_rejected(self, tmp_path):
        first = _map("srand", tmp_path)
        [entry_path] = tmp_path.glob("*.json")
        entry = json.loads(entry_path.read_text())
        # Break legality: move every placement onto PE 0 / cycle 0.
        for placement in entry["mapping"]["placements"]:
            placement["pe"] = 0
            placement["cycle"] = 0
        entry_path.write_text(json.dumps(entry))

        again = _map("srand", tmp_path)
        assert again.success and not again.cache_hit
        assert again.cache_stats.corrupted == 1
        assert again.ii == first.ii

    def test_stats_summary_mentions_all_counters(self):
        text = CacheStats(hits=1, misses=2, writes=3, evicted=4).summary()
        assert "1 hit(s)" in text and "2 miss(es)" in text
        assert "4 evicted" in text


class TestSizeBudget:
    """--cache-max-mb: oldest-entry-first pruning."""

    @pytest.fixture()
    def outcome(self):
        return SatMapItMapper(MapperConfig(timeout=60, random_seed=0)).map(
            get_kernel("srand"), CGRA.square(3)
        )

    def _entry_size(self, tmp_path, outcome) -> int:
        probe = MappingCache(tmp_path / "probe")
        return probe.store("f" * 64, outcome).stat().st_size

    def test_oldest_entries_evicted_first(self, tmp_path, outcome):
        import os

        size = self._entry_size(tmp_path, outcome)
        cache = MappingCache(
            tmp_path / "real", max_mb=2.5 * size / (1024 * 1024)
        )
        keys = [f"{i:064x}" for i in range(3)]
        for age, key in enumerate(keys):
            path = cache.store(key, outcome)
            assert path is not None
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        # Three entries against a 2.5-entry budget: the oldest one went.
        assert cache.stats.evicted == 1
        assert not cache.path_for(keys[0]).exists()
        assert cache.path_for(keys[1]).exists()
        assert cache.path_for(keys[2]).exists()

    def test_just_written_entry_is_exempt(self, tmp_path, outcome):
        size = self._entry_size(tmp_path, outcome)
        # Budget below a single entry: the fresh write must survive anyway.
        cache = MappingCache(
            tmp_path / "real", max_mb=0.5 * size / (1024 * 1024)
        )
        first = cache.store("0" * 64, outcome)
        assert first is not None and first.exists()
        assert cache.stats.evicted == 0
        # The next write evicts the previous entry, never itself.
        second = cache.store("1" * 64, outcome)
        assert second.exists()
        assert not first.exists()
        assert cache.stats.evicted == 1

    def test_no_budget_never_evicts(self, tmp_path, outcome):
        cache = MappingCache(tmp_path)
        for i in range(3):
            cache.store(f"{i:064x}", outcome)
        assert cache.stats.evicted == 0
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_budget_flows_through_mapper_config(self, tmp_path):
        outcome = _map("srand", tmp_path, cache_max_mb=0.000001)
        assert outcome.success
        # The sole (oversized) entry is kept — the keep exemption — and the
        # next identical run still hits it.
        assert len(list(tmp_path.glob("*.json"))) == 1
        again = _map("srand", tmp_path, cache_max_mb=0.000001)
        assert again.cache_hit


@pytest.mark.parametrize("kernel", ["srand", "stringsearch", "nw", "basicmath"])
def test_cached_mapping_matches_fresh_run(kernel, tmp_path):
    """The cache returns the same II the solver would recompute."""
    fresh = _map(kernel, tmp_path)
    cached = _map(kernel, tmp_path)
    assert cached.cache_hit
    assert cached.ii == fresh.ii
    assert cached.mapping.violations() == []


class TestStaleTempSweep:
    """Crash-orphaned atomic-write temps must not accumulate forever."""

    @pytest.fixture()
    def outcome(self):
        return SatMapItMapper(MapperConfig(timeout=60, random_seed=0)).map(
            get_kernel("srand"), CGRA.square(3)
        )

    @staticmethod
    def _orphan(tmp_path, name="orphan.tmp", age=3600.0):
        import os
        import time

        path = tmp_path / name
        path.write_text("{partial")
        old = time.time() - age
        os.utime(path, (old, old))
        return path

    def test_stale_temp_swept_on_store(self, tmp_path, outcome):
        stale = self._orphan(tmp_path)
        cache = MappingCache(tmp_path)
        cache.store("a" * 64, outcome)
        assert not stale.exists()
        assert cache.stats.temp_files_swept == 1

    def test_fresh_temp_is_never_raced(self, tmp_path, outcome):
        # A young temp may belong to a live writer in another process.
        fresh = self._orphan(tmp_path, age=1.0)
        cache = MappingCache(tmp_path)
        cache.store("a" * 64, outcome)
        assert fresh.exists()
        assert cache.stats.temp_files_swept == 0

    def test_direct_sweep_returns_count(self, tmp_path):
        self._orphan(tmp_path, "one.tmp")
        self._orphan(tmp_path, "two.tmp")
        cache = MappingCache(tmp_path)
        assert cache.sweep_stale_temps() == 2
        assert cache.sweep_stale_temps() == 0

    def test_sweep_counter_in_summary(self, tmp_path):
        self._orphan(tmp_path)
        cache = MappingCache(tmp_path)
        cache.sweep_stale_temps()
        assert "1 stale temp(s) swept" in cache.stats.summary()

    def test_temp_bytes_count_toward_budget(self, tmp_path, outcome):
        # A fresh (unsweepable) temp occupies budget, so entries are
        # evicted sooner rather than letting temps hide disk usage.
        probe = MappingCache(tmp_path / "probe")
        entry_size = probe.store("f" * 64, outcome).stat().st_size
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        big = cache_dir / "live.tmp"
        big.write_bytes(b"x" * (2 * entry_size))
        cache = MappingCache(cache_dir, max_mb=3 * entry_size / 1e6)
        import time

        cache.store("0" * 64, outcome)
        time.sleep(0.02)
        cache.store("1" * 64, outcome)
        # entry + entry + 2*entry temp > 3*entry budget: oldest evicted.
        assert cache.stats.evicted >= 1
        assert big.exists()  # budget never deletes fresh temps

    def test_directory_stats_shape(self, tmp_path, outcome):
        cache = MappingCache(tmp_path)
        cache.store("a" * 64, outcome)
        self._orphan(tmp_path, age=1.0)
        stats = cache.directory_stats()
        assert stats["entries"] == 1
        assert stats["entry_bytes"] > 0
        assert stats["oldest_entry_age_s"] >= 0
        assert stats["temp_files"] == 1
        assert stats["temp_bytes"] > 0
        assert stats["max_bytes"] is None


class TestNamespaces:
    """Tenant namespaces select subdirectories and never escape the root."""

    def test_no_namespace_is_the_root(self, tmp_path):
        from repro.search.cache import resolve_cache_dir

        assert resolve_cache_dir(tmp_path) == tmp_path

    def test_namespace_selects_subdirectory(self, tmp_path):
        from repro.search.cache import resolve_cache_dir

        assert resolve_cache_dir(tmp_path, "team-a") == tmp_path / "team-a"

    def test_illegal_namespaces_rejected(self, tmp_path):
        from repro.search.cache import resolve_cache_dir

        for namespace in ("../up", "a/b", ".hidden", "", "x" * 80, "a b"):
            with pytest.raises(ValueError, match="illegal cache namespace"):
                resolve_cache_dir(tmp_path, namespace)

    def test_namespaced_runs_are_isolated(self, tmp_path):
        a = _map("srand", tmp_path, cache_namespace="team-a")
        b = _map("srand", tmp_path, cache_namespace="team-b")
        assert a.success and b.success
        assert not b.cache_hit  # team-b cannot see team-a's entry
        assert list((tmp_path / "team-a").glob("*.json"))
        assert list((tmp_path / "team-b").glob("*.json"))
        again = _map("srand", tmp_path, cache_namespace="team-a")
        assert again.cache_hit


class TestDurability:
    """The farm's resume path treats served cache entries as settled work,
    so a store must survive power loss: fsync the temp file before the
    rename, then fsync the directory that the rename mutated."""

    def test_store_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        import os
        import stat as stat_module

        synced_modes = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced_modes.append(stat_module.S_IFMT(os.fstat(fd).st_mode))
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        result = _map("srand", tmp_path)
        assert result.success and result.cache_stats.writes == 1
        assert stat_module.S_IFREG in synced_modes  # the temp entry file
        assert stat_module.S_IFDIR in synced_modes  # the cache directory

    def test_concurrent_readers_of_a_corrupted_entry(self, tmp_path):
        import threading

        _map("srand", tmp_path)
        [entry_path] = tmp_path.glob("*.json")
        key = entry_path.stem
        entry_path.write_text('{"schema": "satmapit-mapcache/1", "trunc')

        # Each reader holds its own handle, like farm workers do.  All of
        # them must shrug the bad entry off as a miss — no exception, no
        # served garbage — and at least one must count the corruption.
        caches = [MappingCache(tmp_path) for _ in range(8)]
        results: list = []
        errors: list = []
        barrier = threading.Barrier(len(caches))

        def read(cache):
            barrier.wait()
            try:
                results.append(cache.lookup_key(key))
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [
            threading.Thread(target=read, args=(cache,)) for cache in caches
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert results == [None] * len(caches)
        assert not entry_path.exists()  # the bad entry was reaped
        assert sum(cache.stats.corrupted for cache in caches) >= 1
        assert sum(cache.stats.misses for cache in caches) == len(caches)
