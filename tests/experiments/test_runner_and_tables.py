"""Tests for the experiment harness (runner, tables, report)."""

import pytest

from repro.experiments.report import (
    render_markdown_report,
    solver_reuse_totals,
    write_markdown_report,
)
from repro.experiments.runner import (
    HOMOGENEOUS,
    MEM_EDGE,
    MUL_SPARSE,
    PATHSEEKER,
    RAMP,
    SAT_MAPIT,
    ExperimentConfig,
    RunRecord,
    SweepResult,
    build_fabric,
    build_mapper,
    run_single,
    run_sweep,
)
from repro.experiments.tables import (
    figure6_rows,
    headline_winrate,
    mapping_time_rows,
    never_worse,
    render_figure6,
    render_headline,
    render_mapping_time_table,
    render_scenario_comparison,
    scenario_rows,
)

FAST_CONFIG = ExperimentConfig(
    kernels=("srand", "basicmath"),
    sizes=(2, 3),
    timeout=30.0,
    pathseeker_repeats=1,
)


def synthetic_sweep() -> SweepResult:
    """Hand-built sweep covering wins, ties and heuristic failures."""
    config = ExperimentConfig(kernels=("a", "b", "c"), sizes=(2,), timeout=1.0)
    sweep = SweepResult(config=config)
    rows = [
        # kernel a: tie
        RunRecord("a", 2, SAT_MAPIT, "mapped", 3, 1.0, 3, 1, 10),
        RunRecord("a", 2, RAMP, "mapped", 3, 0.5, 3, 1, 10),
        RunRecord("a", 2, PATHSEEKER, "mapped", 4, 0.4, 3, 1, 10),
        # kernel b: SAT-MapIt strictly better
        RunRecord("b", 2, SAT_MAPIT, "mapped", 4, 2.0, 4, 2, 20),
        RunRecord("b", 2, RAMP, "mapped", 6, 1.0, 4, 3, 20),
        RunRecord("b", 2, PATHSEEKER, "mapped", 5, 1.5, 4, 3, 20),
        # kernel c: heuristics fail, SAT-MapIt maps (with solver reuse)
        RunRecord("c", 2, SAT_MAPIT, "mapped", 10, 5.0, 10, 3, 40,
                  incremental_resolves=2, learned_carried=150),
        RunRecord("c", 2, RAMP, "failed", None, 3.0, 10, 8, 40),
        RunRecord("c", 2, PATHSEEKER, "timeout", None, 6.0, 10, 9, 40),
    ]
    sweep.records.extend(rows)
    return sweep


class TestSearchAndCachePlumbing:
    def test_run_single_with_cache_and_search(self, tmp_path):
        config = ExperimentConfig(
            kernels=("srand",), sizes=(2,), timeout=30.0,
            pathseeker_repeats=1, search="bisect",
            cache_dir=str(tmp_path / "cache"),
        )
        first = run_single("srand", 2, SAT_MAPIT, config)
        assert first.search_strategy == "bisect"
        assert not first.cache_hit
        second = run_single("srand", 2, SAT_MAPIT, config)
        assert second.cache_hit
        assert second.ii == first.ii

    def test_baseline_records_have_default_search_fields(self):
        config = ExperimentConfig(
            kernels=("srand",), sizes=(2,), timeout=30.0, pathseeker_repeats=1
        )
        record = run_single("srand", 2, RAMP, config)
        assert record.search_strategy == "ladder"
        assert not record.cache_hit
        assert record.portfolio_launched == 0

    def test_report_renders_search_cache_section(self, tmp_path):
        config = ExperimentConfig(
            kernels=("srand",), sizes=(2,), timeout=30.0,
            pathseeker_repeats=1, cache_dir=str(tmp_path / "cache"),
        )
        sweep = run_sweep(config)
        sweep.records.extend(run_sweep(config).records)
        text = render_markdown_report(sweep)
        assert "## II search & mapping cache" in text
        assert "**1** hit(s)" in text
        assert "* II search strategy: ladder" in text

    def test_run_single_records_seed_metrics(self):
        config = ExperimentConfig(
            kernels=("gsm",), sizes=(2,), timeout=60.0,
            pathseeker_repeats=1, seed_heuristic=True,
        )
        record = run_single("gsm", 2, SAT_MAPIT, config)
        assert record.succeeded
        assert record.seed_ii is not None
        assert record.seed_time > 0

    def test_report_renders_seeding_section(self):
        config = ExperimentConfig(
            kernels=("gsm",), sizes=(2,), timeout=60.0,
            pathseeker_repeats=1, seed_heuristic=True,
        )
        sweep = run_sweep(config)
        text = render_markdown_report(sweep)
        assert "## Heuristic seeding & lane tuner" in text
        assert "pre-passes yielding a validated seed mapping" in text
        assert "* heuristic II seeding: on" in text

    def test_render_lane_winrates_table(self, tmp_path):
        from repro.experiments.tables import render_lane_winrates
        from repro.search.tuner import LaneTuner

        empty = render_lane_winrates(str(tmp_path))
        assert "no recorded races yet" in empty
        tuner = LaneTuner(tmp_path)
        tuner.record("0" * 64, [
            {"lane": "default", "won": True, "wall_s": 0.4, "conflicts": 50},
            {"lane": "no-probe", "won": False, "wall_s": 1.0, "conflicts": 0},
        ])
        text = render_lane_winrates(str(tmp_path))
        assert "default" in text and "no-probe" in text
        assert "100.0%" in text  # default's win rate leads the table


class TestRunnerHelpers:
    def test_build_mapper_names(self):
        config = ExperimentConfig(timeout=5.0)
        assert build_mapper(SAT_MAPIT, config).name == "SAT-MapIt"
        assert build_mapper(RAMP, config).name == "RAMP"
        assert build_mapper(PATHSEEKER, config).name == "PathSeeker"

    def test_build_mapper_unknown(self):
        with pytest.raises(ValueError):
            build_mapper("nope", ExperimentConfig())

    def test_run_single_satmapit(self):
        record = run_single("srand", 2, SAT_MAPIT, FAST_CONFIG)
        assert record.succeeded
        assert record.ii is not None
        assert record.ii >= record.minimum_ii
        assert record.kernel == "srand"
        assert record.num_nodes > 0
        # Solver-reuse metrics are recorded (zero when the run needed no
        # retries and carried no learned clauses, but never negative).
        assert record.incremental_resolves >= 0
        assert record.learned_carried >= 0

    def test_run_single_baseline_has_no_reuse_metrics(self):
        record = run_single("srand", 2, RAMP, FAST_CONFIG)
        assert record.incremental_resolves == 0
        assert record.learned_carried == 0

    def test_run_single_pathseeker_repeats(self):
        config = ExperimentConfig(
            kernels=("srand",), sizes=(2,), timeout=20.0, pathseeker_repeats=2
        )
        record = run_single("srand", 2, PATHSEEKER, config)
        assert record.succeeded


class TestSweep:
    def test_small_sweep_produces_all_records(self):
        sweep = run_sweep(FAST_CONFIG)
        assert len(sweep.records) == 2 * 2 * 3
        for record in sweep.records:
            assert record.status in ("mapped", "timeout", "failed")

    def test_best_soa_and_lookup(self):
        sweep = synthetic_sweep()
        assert sweep.record("a", 2, SAT_MAPIT).ii == 3
        assert sweep.best_soa("a", 2).ii == 3
        assert sweep.best_soa("c", 2).ii is None
        assert sweep.pairs() == [("a", 2), ("b", 2), ("c", 2)]


class TestTables:
    def test_figure6_rows(self):
        rows = figure6_rows(synthetic_sweep(), 2)
        assert len(rows) == 3
        by_kernel = {row.kernel: row for row in rows}
        assert by_kernel["a"].tie
        assert not by_kernel["a"].satmapit_wins
        assert by_kernel["b"].satmapit_wins
        assert by_kernel["c"].satmapit_wins  # mapped where heuristics failed

    def test_headline_winrate(self):
        wins, total, fraction = headline_winrate(synthetic_sweep())
        assert (wins, total) == (2, 3)
        assert fraction == pytest.approx(2 / 3)

    def test_never_worse(self):
        assert never_worse(synthetic_sweep())

    def test_mapping_time_rows(self):
        rows = mapping_time_rows(synthetic_sweep(), 2)
        assert len(rows) == 3
        assert rows[0].delta == pytest.approx(rows[0].satmapit_time - rows[0].soa_time)

    def test_render_figure6_marks_failures(self):
        text = render_figure6(synthetic_sweep(), 2)
        assert "x(" in text
        assert "SAT-MapIt" in text

    def test_render_time_table(self):
        text = render_mapping_time_table(synthetic_sweep(), 2, number="I")
        assert "Table I" in text
        assert "benchmark" in text

    def test_render_headline(self):
        text = render_headline(synthetic_sweep())
        assert "47.72%" in text


class TestReport:
    def test_markdown_report_contains_sections(self):
        text = render_markdown_report(synthetic_sweep())
        assert "# EXPERIMENTS" in text
        assert "Figure 6" in text
        assert "Headline" in text
        assert "| benchmark |" in text

    def test_solver_reuse_totals_and_section(self):
        sweep = synthetic_sweep()
        resolves, carried = solver_reuse_totals(sweep)
        assert (resolves, carried) == (2, 150)
        text = render_markdown_report(sweep)
        assert "## Solver reuse (incremental backend)" in text
        assert "retries served without re-encoding: **2**" in text
        assert "learned clauses carried across (II, slack) attempts: **150**" in text

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        write_markdown_report(synthetic_sweep(), str(path))
        assert path.read_text().startswith("# EXPERIMENTS")


class TestScenarios:
    def scenario_sweep(self) -> SweepResult:
        config = ExperimentConfig(
            kernels=("a",), sizes=(2,), timeout=1.0,
            scenarios=(HOMOGENEOUS, MEM_EDGE),
        )
        sweep = SweepResult(config=config)
        sweep.records.extend([
            RunRecord("a", 2, SAT_MAPIT, "mapped", 3, 1.0, 3, 1, 10),
            RunRecord("a", 2, SAT_MAPIT, "mapped", 4, 1.5, 3, 2, 10,
                      scenario=MEM_EDGE),
        ])
        return sweep

    def test_build_fabric(self):
        assert build_fabric(HOMOGENEOUS, 3).is_homogeneous
        het = build_fabric(MEM_EDGE, 3)
        assert not het.is_homogeneous
        assert het.name == "mem_edge_3x3"
        assert not build_fabric(MUL_SPARSE, 4).is_homogeneous
        with pytest.raises(ValueError, match="unknown architecture scenario"):
            build_fabric("exotic", 4)

    def test_record_lookup_is_scenario_aware(self):
        sweep = self.scenario_sweep()
        homogeneous = sweep.record("a", 2, SAT_MAPIT)
        heterogeneous = sweep.record("a", 2, SAT_MAPIT, MEM_EDGE)
        assert homogeneous.ii == 3
        assert heterogeneous.ii == 4

    def test_scenario_rows_and_penalty(self):
        rows = scenario_rows(self.scenario_sweep(), 2)
        assert len(rows) == 1
        assert rows[0].ii_for(HOMOGENEOUS) == 3
        assert rows[0].ii_for(MEM_EDGE) == 4
        assert rows[0].ii_penalty == 1

    def test_render_scenario_comparison(self):
        text = render_scenario_comparison(self.scenario_sweep(), 2)
        assert "mem_edge" in text
        assert "+1" in text

    def test_markdown_report_gets_scenario_section(self):
        text = render_markdown_report(self.scenario_sweep())
        assert "Heterogeneous fabrics" in text
        assert "| a | 3 | 4 | +1 |" in text

    def test_run_single_with_mem_edge_scenario(self):
        record = run_single("srand", 2, SAT_MAPIT, FAST_CONFIG, scenario=MEM_EDGE)
        # A 2x2 mem_edge fabric is all boundary, so behaviour matches the
        # homogeneous run while still exercising the scenario plumbing.
        assert record.scenario == MEM_EDGE
        assert record.status == "mapped"

    def test_sweep_iterates_scenarios(self):
        config = ExperimentConfig(
            kernels=("srand",), sizes=(2,), timeout=20.0,
            mappers=(SAT_MAPIT,), pathseeker_repeats=1,
            scenarios=(HOMOGENEOUS, MEM_EDGE),
        )
        sweep = run_sweep(config)
        assert len(sweep.records) == 2
        assert {entry.scenario for entry in sweep.records} == {HOMOGENEOUS, MEM_EDGE}

    def test_heterogeneous_only_sweep_still_renders_tables(self):
        """A sweep run purely on a heterogeneous scenario gets Figure 6 too."""
        config = ExperimentConfig(kernels=("a",), sizes=(2,), timeout=1.0,
                                  scenarios=(MEM_EDGE,))
        sweep = SweepResult(config=config)
        sweep.records.extend([
            RunRecord("a", 2, SAT_MAPIT, "mapped", 4, 1.5, 3, 2, 10,
                      scenario=MEM_EDGE),
            RunRecord("a", 2, RAMP, "mapped", 5, 0.5, 3, 2, 10,
                      scenario=MEM_EDGE),
        ])
        rows = figure6_rows(sweep, 2)
        assert len(rows) == 1
        assert rows[0].satmapit_ii == 4 and rows[0].soa_ii == 5
        wins, total, _ = headline_winrate(sweep)
        assert (wins, total) == (1, 1)

    def test_missing_scenario_record_renders_dash(self):
        config = ExperimentConfig(kernels=("a",), sizes=(2,), timeout=1.0,
                                  scenarios=(HOMOGENEOUS, MEM_EDGE))
        sweep = SweepResult(config=config)
        sweep.records.append(
            RunRecord("a", 2, SAT_MAPIT, "mapped", 3, 1.0, 3, 1, 10))
        text = render_scenario_comparison(sweep, 2)
        assert "x(II cap)" not in text
