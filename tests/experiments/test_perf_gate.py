"""Perf-harness gate semantics: the suite cannot silently shrink."""

from __future__ import annotations

import pytest

from repro.experiments.perf import PINNED_SUITE, QUICK_SUITE, SCHEMA, compare


def _doc(cases: list[dict]) -> dict:
    return {"schema": SCHEMA, "suite": "default", "cases": cases}


def _case(name: str, wall: float, ii: int | None = 3, bounded: bool = False) -> dict:
    return {"name": name, "wall_s": wall, "ii": ii, "bounded": bounded}


class TestCompareGate:
    def test_identical_runs_pass(self):
        doc = _doc([_case("a@3x3", 1.0)])
        ok, lines = compare(doc, doc)
        assert ok
        assert any("a@3x3" in line for line in lines)

    def test_gross_slowdown_fails(self):
        ok, lines = compare(
            _doc([_case("a@3x3", 1.0)]), _doc([_case("a@3x3", 3.5)])
        )
        assert not ok
        assert any("FAIL" in line for line in lines)

    def test_ii_change_fails(self):
        ok, lines = compare(
            _doc([_case("a@3x3", 1.0, ii=3)]),
            _doc([_case("a@3x3", 1.0, ii=4)]),
        )
        assert not ok
        assert any("II changed" in line for line in lines)

    def test_bounded_cases_exempt_from_ii_gate(self):
        ok, _ = compare(
            _doc([_case("a@3x3#c1500", 1.0, ii=None, bounded=True)]),
            _doc([_case("a@3x3#c1500", 1.0, ii=3, bounded=True)]),
        )
        assert ok

    def test_new_case_is_informational(self):
        ok, lines = compare(
            _doc([_case("a@3x3", 1.0)]),
            _doc([_case("a@3x3", 1.0), _case("b@3x3", 1.0)]),
        )
        assert ok
        assert any("new case" in line for line in lines)

    def test_missing_case_is_a_hard_failure(self):
        """A baseline case absent from the current run must fail the gate —
        deleting cases would otherwise silently shrink perf coverage."""
        ok, lines = compare(
            _doc([_case("a@3x3", 1.0), _case("b@3x3", 1.0)]),
            _doc([_case("a@3x3", 1.0)]),
        )
        assert not ok
        assert any("missing from current run (FAIL)" in line for line in lines)

    def test_sub_floor_cases_never_fail_on_time(self):
        ok, lines = compare(
            _doc([_case("tiny@2x2", 0.004)]), _doc([_case("tiny@2x2", 0.4)])
        )
        assert ok
        assert any("below gate floor" in line for line in lines)


class TestSuiteShape:
    def test_quick_suite_is_subset(self):
        names = {case.name for case in PINNED_SUITE}
        assert {case.name for case in QUICK_SUITE} <= names

    def test_portfolio_cases_have_ladder_twins(self):
        """Every portfolio case needs its same-(kernel, size) ladder twin so
        run_suite can annotate speedup_vs_ladder."""
        ladder_pairs = {
            (case.kernel, case.size)
            for case in PINNED_SUITE
            if case.search == "ladder" and not case.bounded and not case.seeded
        }
        portfolio_cases = [
            case for case in PINNED_SUITE if case.search == "portfolio"
        ]
        assert portfolio_cases, "the pinned suite must race a portfolio case"
        for case in portfolio_cases:
            assert (case.kernel, case.size) in ladder_pairs, case.name

    def test_seeded_cases_have_unseeded_twins(self):
        """Every seeded case needs its same-(kernel, size, search) unseeded
        twin so run_suite can annotate speedup_vs_unseeded."""
        unseeded = {
            (case.kernel, case.size, case.search)
            for case in PINNED_SUITE
            if not case.bounded and not case.seeded
        }
        seeded_cases = [case for case in PINNED_SUITE if case.seeded]
        assert len(seeded_cases) >= 2, (
            "the pinned suite must measure at least two seeded twins"
        )
        for case in seeded_cases:
            assert (case.kernel, case.size, case.search) in unseeded, case.name


class TestSuiteAnnotations:
    """run_suite derives twin speedups and throughput from the records."""

    def _suite_doc(self, monkeypatch, results: dict[str, dict]):
        from repro.experiments import perf

        def fake_run_case(case, repeats=3):
            record = {
                "name": case.name,
                "kernel": case.kernel,
                "size": case.size,
                "bounded": case.bounded,
                "search": case.search,
                "seeded": case.seeded,
                "status": "mapped",
                "ii": 3,
                "wall_s": 1.0,
                "solve_s": 0.5,
                "encode_s": 0.1,
                "conflicts": 10,
                "propagations": 100,
            }
            record.update(results.get(case.name, {}))
            return record

        monkeypatch.setattr(perf, "run_case", fake_run_case)
        return perf

    def test_speedup_vs_unseeded_annotation(self, monkeypatch):
        perf = self._suite_doc(
            monkeypatch,
            {"gsm@2x2": {"wall_s": 2.0}, "gsm@2x2!seeded": {"wall_s": 0.5}},
        )
        doc = perf.run_suite("quick", repeats=1)
        by_name = {record["name"]: record for record in doc["cases"]}
        assert by_name["gsm@2x2!seeded"]["speedup_vs_unseeded"] == 4.0
        assert "speedup_vs_unseeded" not in by_name["gsm@2x2"]

    def test_kernels_mapped_per_minute_total(self, monkeypatch):
        perf = self._suite_doc(monkeypatch, {})
        doc = perf.run_suite("quick", repeats=1)
        completing = [
            record
            for record in doc["cases"]
            if not record["bounded"] and record["status"] == "mapped"
        ]
        wall = sum(record["wall_s"] for record in completing)
        expected = round(60.0 * len(completing) / wall, 2)
        assert doc["totals"]["kernels_mapped_per_minute"] == expected
        assert expected > 0

    def test_bounded_probes_excluded_from_throughput(self, monkeypatch):
        perf = self._suite_doc(
            monkeypatch,
            {
                "sha@2x2#c1500": {"wall_s": 1000.0, "status": "timeout"},
                "sha2@2x2#c1500": {"wall_s": 1000.0, "status": "timeout"},
            },
        )
        doc = perf.run_suite("quick", repeats=1)
        # Three completing 1s cases — 3 kernels per 3 s of mapper wall, i.e.
        # 60/minute — regardless of the huge bounded-probe walls.
        assert doc["totals"]["kernels_mapped_per_minute"] == 60.0


@pytest.mark.slow
def test_check_strategy_equivalence_quick_suite():
    from repro.experiments.perf import check_strategy_equivalence

    ok, lines = check_strategy_equivalence("quick")
    assert ok, lines
    assert lines
