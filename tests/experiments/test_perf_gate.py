"""Perf-harness gate semantics: the suite cannot silently shrink."""

from __future__ import annotations

import pytest

from repro.experiments.perf import PINNED_SUITE, QUICK_SUITE, SCHEMA, compare


def _doc(cases: list[dict]) -> dict:
    return {"schema": SCHEMA, "suite": "default", "cases": cases}


def _case(name: str, wall: float, ii: int | None = 3, bounded: bool = False) -> dict:
    return {"name": name, "wall_s": wall, "ii": ii, "bounded": bounded}


class TestCompareGate:
    def test_identical_runs_pass(self):
        doc = _doc([_case("a@3x3", 1.0)])
        ok, lines = compare(doc, doc)
        assert ok
        assert any("a@3x3" in line for line in lines)

    def test_gross_slowdown_fails(self):
        ok, lines = compare(
            _doc([_case("a@3x3", 1.0)]), _doc([_case("a@3x3", 3.5)])
        )
        assert not ok
        assert any("FAIL" in line for line in lines)

    def test_ii_change_fails(self):
        ok, lines = compare(
            _doc([_case("a@3x3", 1.0, ii=3)]),
            _doc([_case("a@3x3", 1.0, ii=4)]),
        )
        assert not ok
        assert any("II changed" in line for line in lines)

    def test_bounded_cases_exempt_from_ii_gate(self):
        ok, _ = compare(
            _doc([_case("a@3x3#c1500", 1.0, ii=None, bounded=True)]),
            _doc([_case("a@3x3#c1500", 1.0, ii=3, bounded=True)]),
        )
        assert ok

    def test_new_case_is_informational(self):
        ok, lines = compare(
            _doc([_case("a@3x3", 1.0)]),
            _doc([_case("a@3x3", 1.0), _case("b@3x3", 1.0)]),
        )
        assert ok
        assert any("new case" in line for line in lines)

    def test_missing_case_is_a_hard_failure(self):
        """A baseline case absent from the current run must fail the gate —
        deleting cases would otherwise silently shrink perf coverage."""
        ok, lines = compare(
            _doc([_case("a@3x3", 1.0), _case("b@3x3", 1.0)]),
            _doc([_case("a@3x3", 1.0)]),
        )
        assert not ok
        assert any("missing from current run (FAIL)" in line for line in lines)

    def test_sub_floor_cases_never_fail_on_time(self):
        ok, lines = compare(
            _doc([_case("tiny@2x2", 0.004)]), _doc([_case("tiny@2x2", 0.4)])
        )
        assert ok
        assert any("below gate floor" in line for line in lines)


class TestSuiteShape:
    def test_quick_suite_is_subset(self):
        names = {case.name for case in PINNED_SUITE}
        assert {case.name for case in QUICK_SUITE} <= names

    def test_portfolio_cases_have_ladder_twins(self):
        """Every portfolio case needs its same-(kernel, size) ladder twin so
        run_suite can annotate speedup_vs_ladder."""
        ladder_pairs = {
            (case.kernel, case.size)
            for case in PINNED_SUITE
            if case.search == "ladder" and not case.bounded
        }
        portfolio_cases = [
            case for case in PINNED_SUITE if case.search == "portfolio"
        ]
        assert portfolio_cases, "the pinned suite must race a portfolio case"
        for case in portfolio_cases:
            assert (case.kernel, case.size) in ladder_pairs, case.name


@pytest.mark.slow
def test_check_strategy_equivalence_quick_suite():
    from repro.experiments.perf import check_strategy_equivalence

    ok, lines = check_strategy_equivalence("quick")
    assert ok, lines
    assert lines
