"""End-to-end HTTP tests: routing, II parity with the direct mapper,
and the concurrent-duplicate-POST dedup guarantee.

The server runs in-process (``asyncio.start_server`` on port 0); clients
are plain ``urllib`` calls pushed onto worker threads so they exercise
the real socket path.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import time
import urllib.error
import urllib.request

import pytest

import repro.service.jobs as jobs_module
from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.kernels import get_kernel
from repro.service import JobManager, start_service


def run(coro):
    return asyncio.run(coro)


async def serve(manager):
    server = await start_service(manager, port=0)
    port = server.sockets[0].getsockname()[1]
    return server, f"http://127.0.0.1:{port}"


def _request(url, data=None, method=None, headers=None):
    req = urllib.request.Request(
        url, data=data, method=method, headers=headers or {}
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post_map(base, body, headers=None):
    return _request(
        base + "/map", data=json.dumps(body).encode(), headers=headers
    )


async def aget(base, path):
    return await asyncio.to_thread(_request, base + path)


SRAND_BODY = {
    "kernel": "srand",
    "arch": {"rows": 3, "cols": 3},
    "config": {"timeout": 60, "random_seed": 0},
    "wait": 60,
}


class TestRoutes:
    def test_routing_and_errors(self):
        async def scenario():
            manager = JobManager(pool_size=1)
            server, base = await serve(manager)
            try:
                results = {}
                results["health"] = await aget(base, "/healthz")
                results["stats"] = await aget(base, "/stats")
                results["missing"] = await aget(base, "/teapot")
                results["bad_method"] = await asyncio.to_thread(
                    _request, base + "/map"
                )  # GET /map
                results["unknown_job"] = await aget(base, "/jobs/deadbeef")
                results["bad_json"] = await asyncio.to_thread(
                    _request, base + "/map", b"{nope"
                )
                results["bad_kernel"] = await asyncio.to_thread(
                    post_map, base, {"kernel": "quantum"}
                )
                results["bad_config"] = await asyncio.to_thread(
                    post_map,
                    base,
                    {"kernel": "srand", "config": {"cache_dir": "/etc"}},
                )
            finally:
                server.close()
                await server.wait_closed()
                await manager.shutdown()
            return results

        results = run(scenario())
        assert results["health"] == (200, {"status": "ok"})
        assert results["stats"][0] == 200
        assert results["missing"][0] == 404
        assert results["bad_method"][0] == 405
        assert results["unknown_job"][0] == 404
        assert results["bad_json"][0] == 400
        assert results["bad_kernel"][0] == 400
        assert "unknown kernel" in results["bad_kernel"][1]["error"]
        # Same one-line contract as the CLI error path.
        assert results["bad_config"][0] == 400
        assert "unknown config field" in results["bad_config"][1]["error"]

    def test_oversized_body_rejected(self):
        async def scenario():
            manager = JobManager(pool_size=1)
            server, base = await serve(manager)
            try:
                blob = b"x" * (manager.limits.max_body_bytes + 1)
                return await asyncio.to_thread(_request, base + "/map", blob)
            finally:
                server.close()
                await server.wait_closed()
                await manager.shutdown()

        status, payload = run(scenario())
        assert status == 413


class TestMapEndpoint:
    def test_serve_ii_matches_direct_mapper(self, tmp_path):
        """Acceptance: the service returns the same II as ``repro map``."""
        direct = SatMapItMapper(
            MapperConfig(timeout=60, random_seed=0, verbose=False)
        ).map(get_kernel("srand"), CGRA.square(3))

        async def scenario():
            manager = JobManager(pool_size=1, cache_dir=str(tmp_path))
            server, base = await serve(manager)
            try:
                return await asyncio.to_thread(post_map, base, SRAND_BODY)
            finally:
                server.close()
                await server.wait_closed()
                await manager.shutdown()

        status, payload = run(scenario())
        assert status == 200
        assert payload["status"] == "done"
        assert payload["result"]["ii"] == direct.ii == 3
        assert payload["result"]["mapping"] is not None
        assert payload["deduplicated"] is False

    def test_async_submit_then_poll(self):
        async def scenario():
            manager = JobManager(pool_size=1)
            server, base = await serve(manager)
            try:
                body = dict(SRAND_BODY, wait=0)
                status, payload = await asyncio.to_thread(
                    post_map, base, body
                )
                assert status == 202, payload
                job_id = payload["job"]
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    status, payload = await aget(base, f"/jobs/{job_id}")
                    if payload["status"] in ("done", "failed", "cancelled"):
                        break
                    await asyncio.sleep(0.2)
                return status, payload
            finally:
                server.close()
                await server.wait_closed()
                await manager.shutdown()

        status, payload = run(scenario())
        assert status == 200
        assert payload["status"] == "done"
        assert payload["result"]["ii"] == 3

    def test_tenant_header_routes_cache_namespace(self, tmp_path):
        async def scenario():
            manager = JobManager(pool_size=1, cache_dir=str(tmp_path))
            server, base = await serve(manager)
            try:
                return await asyncio.to_thread(
                    post_map, base, SRAND_BODY, {"X-Tenant": "team-a"}
                )
            finally:
                server.close()
                await server.wait_closed()
                await manager.shutdown()

        status, payload = run(scenario())
        assert status == 200 and payload["tenant"] == "team-a"
        assert list((tmp_path / "team-a").glob("*.json"))


def _slow_ok_worker(conn, dfg, cgra, config):
    time.sleep(1.5)
    conn.send(("ok", {"success": True, "ii": 99, "cache": None}))
    conn.close()


class TestConcurrentDedup:
    def test_concurrent_duplicate_posts_share_one_solve(self, monkeypatch):
        """Acceptance: two identical POST /map requests in flight at the
        same time produce one solve; the stats prove it."""
        monkeypatch.setattr(jobs_module, "_job_worker", _slow_ok_worker)

        async def scenario():
            manager = JobManager(
                pool_size=2,
                mp_context=multiprocessing.get_context("fork"),
            )
            server, base = await serve(manager)
            try:
                first, second = await asyncio.gather(
                    asyncio.to_thread(post_map, base, SRAND_BODY),
                    asyncio.to_thread(post_map, base, SRAND_BODY),
                )
                stats = await aget(base, "/stats")
            finally:
                server.close()
                await server.wait_closed()
                await manager.shutdown()
            return first, second, stats[1]

        (s1, p1), (s2, p2), stats = run(scenario())
        assert s1 == 200 and s2 == 200
        assert p1["job"] == p2["job"]
        assert {p1["deduplicated"], p2["deduplicated"]} == {True, False}
        assert p1["requests"] == 2
        assert stats["requests"]["received"] == 2
        assert stats["requests"]["dedup_joined"] == 1
        assert stats["requests"]["solves_started"] == 1


def _sleepy_worker(conn, dfg, cgra, config):
    time.sleep(600)


class TestCancelEndpoint:
    def test_cancel_route_reaps_worker(self, monkeypatch):
        monkeypatch.setattr(jobs_module, "_job_worker", _sleepy_worker)

        async def scenario():
            manager = JobManager(
                pool_size=1,
                mp_context=multiprocessing.get_context("fork"),
            )
            server, base = await serve(manager)
            try:
                status, payload = await asyncio.to_thread(
                    post_map, base, dict(SRAND_BODY, wait=0)
                )
                assert status == 202
                job_id = payload["job"]
                job = manager.get(job_id)
                while job.pid is None:
                    await asyncio.sleep(0.05)
                status, payload = await asyncio.to_thread(
                    _request, base + f"/jobs/{job_id}/cancel", b"", "POST"
                )
                assert status == 200 and payload["cancel_requested"]
                await job.done_event.wait()
                status, payload = await aget(base, f"/jobs/{job_id}")
            finally:
                server.close()
                await server.wait_closed()
                await manager.shutdown()
            return status, payload

        status, payload = run(scenario())
        assert status == 200
        assert payload["status"] == "cancelled"
        assert multiprocessing.active_children() == []
