"""Wire-format validation: strict request parsing, clamped budgets,
tenant hygiene, and outcome rendering."""

from __future__ import annotations

import json

import pytest

from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.kernels import get_kernel
from repro.sat.encodings import AMOEncoding
from repro.service.protocol import (
    DEFAULT_TENANT,
    ProtocolError,
    ServiceLimits,
    outcome_payload,
    parse_map_request,
)

LIMITS = ServiceLimits(default_timeout=60.0, max_timeout=600.0, max_wait=30.0)


def parse(payload, **kwargs):
    return parse_map_request(payload, LIMITS, **kwargs)


class TestParsing:
    def test_kernel_request_round_trips(self):
        request = parse({"kernel": "srand", "arch": {"rows": 2, "cols": 2}})
        assert request.dfg.name == "srand"
        assert request.cgra.rows == 2 and request.cgra.cols == 2
        assert request.tenant == DEFAULT_TENANT
        assert request.wait == 0.0

    def test_kernel_dfg_is_a_private_copy(self):
        # The kernel registry caches DFG objects; a re-entrant service must
        # never hand two requests the same mutable graph.
        first = parse({"kernel": "srand"})
        second = parse({"kernel": "srand"})
        assert first.dfg is not second.dfg
        assert first.dfg is not get_kernel("srand")

    def test_dfg_dict_accepted(self):
        spec = get_kernel("srand").to_dict()
        request = parse({"dfg": spec})
        assert request.dfg.name == get_kernel("srand").name

    def test_exactly_one_problem_source_required(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            parse({"arch": {}})
        with pytest.raises(ProtocolError, match="exactly one"):
            parse({"kernel": "srand", "dfg": {"nodes": []}})

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ProtocolError, match="unknown kernel"):
            parse({"kernel": "quantum_supremacy"})

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse(["kernel", "srand"])

    def test_arch_preset_resolves(self):
        from repro.cgra.presets import arch_preset_names

        preset = arch_preset_names()[0]
        request = parse({"kernel": "srand", "arch": {"preset": preset}})
        assert request.cgra is not None

    def test_unknown_arch_preset_rejected(self):
        with pytest.raises(ProtocolError, match="unknown arch preset"):
            parse({"kernel": "srand", "arch": {"preset": "tpu-v9"}})


class TestConfigValidation:
    def test_unknown_config_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown config field"):
            parse({"kernel": "srand", "config": {"warp_speed": 9}})

    def test_filesystem_fields_are_not_requestable(self):
        # Cache/tuner placement is service-owned: a request choosing where
        # the server writes would be a path-traversal primitive.
        for field in ("cache_dir", "cache_namespace", "tuner_dir",
                      "dimacs_dir", "verbose"):
            with pytest.raises(ProtocolError, match="unknown config field"):
                parse({"kernel": "srand", "config": {field: "x"}})

    def test_wrong_type_rejected(self):
        with pytest.raises(ProtocolError, match="wrong type"):
            parse({"kernel": "srand", "config": {"max_ii": "many"}})
        with pytest.raises(ProtocolError, match="wrong type"):
            parse({"kernel": "srand", "config": {"preprocess": 1}})

    def test_amo_encoding_parsed_and_validated(self):
        request = parse(
            {"kernel": "srand", "config": {"amo_encoding": "pairwise"}}
        )
        assert request.config.amo_encoding is AMOEncoding.PAIRWISE
        with pytest.raises(ProtocolError, match="amo_encoding"):
            parse({"kernel": "srand", "config": {"amo_encoding": "hologram"}})

    def test_default_timeout_applied(self):
        request = parse({"kernel": "srand"})
        assert request.config.timeout == LIMITS.default_timeout

    def test_timeout_clamped_to_ceiling(self):
        request = parse({"kernel": "srand", "config": {"timeout": 10_000}})
        assert request.config.timeout == LIMITS.max_timeout

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ProtocolError, match="positive"):
            parse({"kernel": "srand", "config": {"timeout": 0}})

    def test_search_jobs_clamped(self):
        request = parse({"kernel": "srand", "config": {"search_jobs": 10_000}})
        assert request.config.search_jobs == LIMITS.max_search_jobs
        request = parse({"kernel": "srand", "config": {"search_jobs": -3}})
        assert request.config.search_jobs == 1

    def test_verbose_is_forced_off(self):
        assert parse({"kernel": "srand"}).config.verbose is False


class TestTenantAndWait:
    def test_tenant_from_body_and_header(self):
        assert parse({"kernel": "srand", "tenant": "team-a"}).tenant == "team-a"
        assert (
            parse({"kernel": "srand"}, header_tenant="team-b").tenant
            == "team-b"
        )
        # Body wins over header.
        assert (
            parse({"kernel": "srand", "tenant": "a"}, header_tenant="b").tenant
            == "a"
        )

    def test_path_traversal_tenants_rejected(self):
        for tenant in ("../evil", "a/b", ".hidden", "x" * 80):
            with pytest.raises(ProtocolError):
                parse({"kernel": "srand", "tenant": tenant})

    def test_empty_tenant_falls_back_to_default(self):
        assert parse({"kernel": "srand", "tenant": ""}).tenant == DEFAULT_TENANT

    def test_wait_validated_and_clamped(self):
        assert parse({"kernel": "srand", "wait": 5}).wait == 5.0
        assert parse({"kernel": "srand", "wait": 10_000}).wait == LIMITS.max_wait
        with pytest.raises(ProtocolError, match="wait"):
            parse({"kernel": "srand", "wait": -1})
        with pytest.raises(ProtocolError, match="wait"):
            parse({"kernel": "srand", "wait": "soon"})


class TestOutcomePayload:
    @pytest.fixture(scope="class")
    def outcome(self):
        return SatMapItMapper(MapperConfig(timeout=60, random_seed=0)).map(
            get_kernel("srand"), CGRA.square(3)
        )

    def test_payload_is_json_serialisable(self, outcome):
        payload = outcome_payload(outcome)
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["success"] is True
        assert round_tripped["ii"] == outcome.ii

    def test_payload_carries_mapping_and_telemetry(self, outcome):
        payload = outcome_payload(outcome)
        assert payload["dfg"] == "srand"
        assert payload["mapping"] is not None
        assert payload["attempts"] == len(outcome.attempts)
        assert payload["backend"] == outcome.backend_name
        assert payload["search_strategy"] == outcome.search_strategy
