"""Job lifecycle: dedup of identical in-flight requests, cancellation
that reaps worker processes, budget watchdog, tenant isolation.

Tests that monkeypatch the worker function inject the ``fork``
multiprocessing context (patched module state survives a fork, not a
spawn); everything else exercises the manager's default spawn path.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import signal
import time

import pytest

import repro.service.jobs as jobs_module
from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig
from repro.kernels import get_kernel
from repro.service.jobs import CANCELLED, DONE, FAILED, JobManager
from repro.service.protocol import MapRequest, ServiceLimits


def run(coro):
    return asyncio.run(coro)


def request(tenant: str = "default", timeout: float = 60.0, **config):
    # A fresh DFG per request, like the protocol layer guarantees.
    from repro.dfg.graph import DFG

    dfg = DFG.from_dict(get_kernel("srand").to_dict())
    fields = dict(timeout=timeout, random_seed=0, verbose=False)
    fields.update(config)
    return MapRequest(
        dfg=dfg,
        cgra=CGRA.square(3),
        config=MapperConfig(**fields),
        tenant=tenant,
    )


def _sleepy_worker(conn, dfg, cgra, config):
    time.sleep(600)


def _stubborn_worker(conn, dfg, cgra, config):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(600)


def _fork_manager(**kwargs):
    kwargs.setdefault("mp_context", multiprocessing.get_context("fork"))
    return JobManager(**kwargs)


class TestDedup:
    def test_identical_concurrent_requests_share_one_solve(self, tmp_path):
        """The acceptance property: two identical concurrent submissions
        run exactly one solve."""

        async def scenario():
            manager = JobManager(pool_size=2, cache_dir=str(tmp_path))
            first, created_first = manager.submit(request())
            second, created_second = manager.submit(request())
            assert created_first and not created_second
            assert second is first
            assert first.requests == 2
            await first.done_event.wait()
            return manager, first

        manager, job = run(scenario())
        assert job.status == DONE
        assert job.result["ii"] == 3
        assert manager.stats.solves_started == 1
        assert manager.stats.dedup_joined == 1
        assert manager.stats.requests == 2

    def test_finished_job_is_not_joined(self, tmp_path):
        """Dedup covers *in-flight* work only; a repeat after completion
        is a new job served by the persistent cache."""

        async def scenario():
            manager = JobManager(pool_size=1, cache_dir=str(tmp_path))
            first, _ = manager.submit(request())
            await first.done_event.wait()
            second, created = manager.submit(request())
            await second.done_event.wait()
            return manager, first, second

        manager, first, second = run(scenario())
        assert second is not first
        assert second.status == DONE
        assert second.result["cache_hit"] is True
        assert manager.stats.dedup_joined == 0
        assert manager.stats.solves_started == 2

    def test_different_tenants_never_dedup(self, tmp_path):
        async def scenario():
            manager = JobManager(pool_size=2, cache_dir=str(tmp_path))
            a, _ = manager.submit(request(tenant="team-a"))
            b, created_b = manager.submit(request(tenant="team-b"))
            assert a is not b and created_b
            await a.done_event.wait()
            await b.done_event.wait()
            return manager

        manager = run(scenario())
        assert manager.stats.solves_started == 2
        assert manager.stats.dedup_joined == 0
        # Tenants share nothing on disk: one namespace directory each.
        assert (tmp_path / "team-a").is_dir()
        assert (tmp_path / "team-b").is_dir()
        assert list((tmp_path / "team-a").glob("*.json"))
        assert list((tmp_path / "team-b").glob("*.json"))

    def test_semantic_config_change_is_a_different_job(self):
        async def scenario():
            manager = JobManager(pool_size=2)
            a, _ = manager.submit(request())
            b, created = manager.submit(request(schedule_slack=2))
            assert a is not b and created
            await a.done_event.wait()
            await b.done_event.wait()
            return manager

        manager = run(scenario())
        assert manager.stats.solves_started == 2


class TestRejection:
    def test_unmappable_request_rejected_before_any_work(self, monkeypatch):
        from repro.exceptions import MappingError

        def refute(dfg, cgra):
            raise MappingError("kernel cannot fit fabric at any II")

        monkeypatch.setattr(jobs_module, "check_kernel_fits", refute)

        async def scenario():
            manager = JobManager(pool_size=1)
            with pytest.raises(MappingError):
                manager.submit(request())
            return manager

        manager = run(scenario())
        assert manager.stats.rejected == 1
        assert manager.stats.solves_started == 0

    def test_unknown_backend_rejected(self):
        async def scenario():
            manager = JobManager(pool_size=1)
            with pytest.raises(Exception):
                manager.submit(request(backend="z3"))
            return manager

        manager = run(scenario())
        assert manager.stats.rejected == 1


class TestCancellation:
    def test_cancel_reaps_the_worker_process(self, monkeypatch):
        monkeypatch.setattr(jobs_module, "_job_worker", _sleepy_worker)

        async def scenario():
            manager = _fork_manager(pool_size=1)
            job, _ = manager.submit(request())
            while job.pid is None:
                await asyncio.sleep(0.05)
            manager.cancel(job.id)
            await job.done_event.wait()
            return manager, job

        manager, job = run(scenario())
        assert job.status == CANCELLED
        assert manager.stats.cancelled == 1
        assert multiprocessing.active_children() == []

    def test_cancel_escalates_on_sigterm_ignoring_worker(self, monkeypatch):
        """A worker that shrugs off SIGTERM is SIGKILLed after the grace,
        leaving no orphan — the service-side half of the reap discipline."""
        monkeypatch.setattr(jobs_module, "_job_worker", _stubborn_worker)
        monkeypatch.setattr(jobs_module, "_JOB_TERM_GRACE", 0.3)

        async def scenario():
            manager = _fork_manager(pool_size=1)
            job, _ = manager.submit(request())
            while job.pid is None:
                await asyncio.sleep(0.05)
            await asyncio.sleep(0.3)  # let the worker install SIG_IGN
            manager.cancel(job.id)
            await job.done_event.wait()
            return manager, job

        manager, job = run(scenario())
        assert job.status == CANCELLED
        assert multiprocessing.active_children() == []

    def test_cancel_of_queued_job_never_starts_a_solve(self, monkeypatch):
        monkeypatch.setattr(jobs_module, "_job_worker", _sleepy_worker)

        async def scenario():
            manager = _fork_manager(pool_size=1)
            running, _ = manager.submit(request())
            queued, _ = manager.submit(request(schedule_slack=2))
            while running.pid is None:
                await asyncio.sleep(0.05)
            manager.cancel(queued.id)
            await queued.done_event.wait()
            manager.cancel(running.id)
            await running.done_event.wait()
            return manager, queued

        manager, queued = run(scenario())
        assert queued.status == CANCELLED
        assert queued.pid is None
        assert manager.stats.solves_started == 1

    def test_shutdown_cancels_everything(self, monkeypatch):
        monkeypatch.setattr(jobs_module, "_job_worker", _sleepy_worker)

        async def scenario():
            manager = _fork_manager(pool_size=2)
            first, _ = manager.submit(request())
            second, _ = manager.submit(request(schedule_slack=2))
            while first.pid is None or second.pid is None:
                await asyncio.sleep(0.05)
            await manager.shutdown()
            return first, second

        first, second = run(scenario())
        assert first.status == CANCELLED
        assert second.status == CANCELLED
        assert multiprocessing.active_children() == []


class TestBudget:
    def test_wedged_worker_is_reaped_at_the_hard_ceiling(self, monkeypatch):
        monkeypatch.setattr(jobs_module, "_job_worker", _sleepy_worker)
        monkeypatch.setattr(jobs_module, "_BUDGET_GRACE", 0.3)

        async def scenario():
            manager = _fork_manager(pool_size=1)
            job, _ = manager.submit(request(timeout=0.2))
            await job.done_event.wait()
            return job

        job = run(scenario())
        assert job.status == FAILED
        assert "budget" in job.error
        assert multiprocessing.active_children() == []


class TestStats:
    def test_stats_payload_shape(self, tmp_path):
        async def scenario():
            manager = JobManager(pool_size=2, cache_dir=str(tmp_path))
            job, _ = manager.submit(request(tenant="team-a"))
            await job.done_event.wait()
            return manager

        manager = run(scenario())
        payload = manager.stats_payload()
        assert payload["service"]["pool_size"] == 2
        assert payload["requests"]["completed"] == 1
        assert payload["cache"]["directory"]["tenants"]["team-a"]["entries"] == 1
        # A fresh miss-then-write run: no hits yet.
        assert payload["cache"]["misses"] >= 1
        assert payload["cache"]["writes"] >= 1

    def test_stats_sweeps_stale_temps(self, tmp_path):
        manager = JobManager(pool_size=1, cache_dir=str(tmp_path))
        namespace = tmp_path / "default"
        namespace.mkdir()
        stale = namespace / "orphan.tmp"
        stale.write_text("{")
        old = time.time() - 3600
        import os

        os.utime(stale, (old, old))
        manager._tenants.add("default")
        payload = manager.stats_payload()
        assert not stale.exists()
        assert payload["cache"]["temp_files_swept"] == 1


def _exiting_worker(conn, dfg, cgra, config):
    import os
    os._exit(3)  # dies without ever writing a verdict to the pipe


def _self_killing_worker(conn, dfg, cgra, config):
    import os
    os.kill(os.getpid(), signal.SIGKILL)


class TestWorkerCrash:
    """A worker that dies without a verdict is not a mapping failure — it
    is machine trouble, and the job must say so in a structured way."""

    def _crash(self, monkeypatch, worker):
        monkeypatch.setattr(jobs_module, "_job_worker", worker)

        async def scenario():
            manager = _fork_manager(pool_size=1)
            job, _ = manager.submit(request())
            await job.done_event.wait()
            return manager, job

        return run(scenario())

    def test_exit_code_death_is_structured(self, monkeypatch):
        manager, job = self._crash(monkeypatch, _exiting_worker)
        assert job.status == FAILED
        assert job.failure == {
            "kind": "worker_crashed",
            "exit_code": 3,
            "signal": None,
            "signal_name": None,
        }
        assert job.error == "mapping worker died unexpectedly (exit code 3)"
        assert manager.stats.worker_crashes == 1
        assert manager.stats.failed == 1

    def test_signal_death_is_structured(self, monkeypatch):
        manager, job = self._crash(monkeypatch, _self_killing_worker)
        assert job.status == FAILED
        assert job.failure == {
            "kind": "worker_crashed",
            "exit_code": None,
            "signal": int(signal.SIGKILL),
            "signal_name": "SIGKILL",
        }
        assert job.error == (
            "mapping worker died unexpectedly (killed by SIGKILL)"
        )
        assert manager.stats.worker_crashes == 1

    def test_crash_detail_reaches_payload_and_stats(self, monkeypatch):
        manager, job = self._crash(monkeypatch, _self_killing_worker)
        payload = job.to_payload()
        assert payload["failure"]["kind"] == "worker_crashed"
        assert payload["failure"]["signal_name"] == "SIGKILL"
        stats = manager.stats_payload()
        assert stats["requests"]["worker_crashes"] == 1
