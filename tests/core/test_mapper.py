"""Tests for the iterative SAT-MapIt mapping driver."""

import pytest

from repro.baselines.exhaustive import ExhaustiveMapper
from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.dfg.graph import DFG, paper_running_example
from repro.frontend import compile_loop
from repro.kernels import get_kernel


def chain(n):
    return DFG.from_edge_list("chain", n, [(i, i + 1) for i in range(n - 1)])


class TestRunningExample:
    def test_maps_on_2x2_with_paper_ii(self):
        """The paper's running example maps on a 2x2 CGRA with II = 3."""
        outcome = SatMapItMapper().map(paper_running_example(), CGRA.square(2))
        assert outcome.success
        assert outcome.ii == 3
        assert outcome.minimum_ii == 3
        assert outcome.mapping is not None
        assert outcome.mapping.violations() == []

    def test_register_allocation_succeeds(self):
        outcome = SatMapItMapper().map(paper_running_example(), CGRA.square(2))
        assert outcome.register_allocation is not None
        assert outcome.register_allocation.success
        assert outcome.mapping.registers  # register assignment recorded

    def test_larger_fabric_reaches_lower_ii(self):
        small = SatMapItMapper().map(paper_running_example(), CGRA.square(2))
        large = SatMapItMapper().map(paper_running_example(), CGRA.square(4))
        assert large.success
        assert large.ii <= small.ii


class TestBasicBehaviour:
    def test_single_node(self):
        dfg = DFG.from_edge_list("one", 1, [])
        outcome = SatMapItMapper().map(dfg, CGRA.square(2))
        assert outcome.success
        assert outcome.ii == 1

    def test_chain_on_single_pe(self):
        outcome = SatMapItMapper().map(chain(3), CGRA(rows=1, cols=1))
        assert outcome.success
        assert outcome.ii == 3

    def test_independent_nodes_fill_kernel(self):
        dfg = DFG.from_edge_list("independent", 8, [])
        outcome = SatMapItMapper().map(dfg, CGRA.square(2))
        assert outcome.success
        assert outcome.ii == 2  # 8 nodes / 4 PEs

    def test_recurrence_bounds_ii(self):
        dfg = DFG.from_edge_list("rec", 4, [(0, 1), (1, 2), (2, 3), (3, 0, 1)])
        outcome = SatMapItMapper().map(dfg, CGRA.square(4))
        assert outcome.success
        assert outcome.ii >= 4  # RecMII = 4

    def test_start_ii_override(self):
        outcome = SatMapItMapper().map(paper_running_example(), CGRA.square(2), start_ii=5)
        assert outcome.success
        assert outcome.ii == 5

    def test_outcome_summary_strings(self):
        outcome = SatMapItMapper().map(chain(2), CGRA.square(2))
        assert "II=" in outcome.summary()
        assert outcome.final_status == "mapped"

    def test_attempt_records(self):
        outcome = SatMapItMapper().map(paper_running_example(), CGRA.square(2))
        assert outcome.attempts
        final = outcome.attempts[-1]
        assert final.status == "SAT"
        assert final.num_variables > 0
        assert final.num_clauses > 0


class TestMappingsAreLegal:
    @pytest.mark.parametrize("kernel,size", [
        ("srand", 2), ("basicmath", 3), ("stringsearch", 2), ("nw", 3),
    ])
    def test_benchmark_kernels_map_legally(self, kernel, size):
        outcome = SatMapItMapper(MapperConfig(timeout=60)).map(
            get_kernel(kernel), CGRA.square(size)
        )
        assert outcome.success
        assert outcome.mapping.violations() == []
        assert outcome.ii >= outcome.minimum_ii

    def test_compiled_loop_end_to_end(self):
        dfg = compile_loop("acc = acc + a[i] * b[i]", name="dot")
        outcome = SatMapItMapper(MapperConfig(timeout=60)).map(dfg, CGRA.square(3))
        assert outcome.success
        assert outcome.mapping.violations() == []


class TestFailureModes:
    def test_max_ii_reached_reports_failure(self):
        # Five independent nodes cannot fit a single-PE CGRA with max_ii 3.
        dfg = DFG.from_edge_list("five", 5, [])
        config = MapperConfig(max_ii=3, max_extra_slack=0)
        outcome = SatMapItMapper(config).map(dfg, CGRA(rows=1, cols=1))
        assert not outcome.success
        assert outcome.final_status == "failed"
        assert all(a.status in ("UNSAT", "UNKNOWN") for a in outcome.attempts)

    def test_timeout_reported(self):
        config = MapperConfig(timeout=0.0)
        outcome = SatMapItMapper(config).map(get_kernel("gsm"), CGRA.square(3))
        assert not outcome.success
        assert outcome.final_status == "timeout"

    def test_invalid_dfg_rejected(self):
        dfg = DFG()
        dfg.add_node(0)
        dfg.add_node(1)
        dfg.add_edge(0, 1)
        dfg.add_edge(1, 0)  # forward cycle
        from repro.exceptions import DFGError

        with pytest.raises(DFGError):
            SatMapItMapper().map(dfg, CGRA.square(2))

    def test_register_pressure_increases_ii(self):
        # One register per PE forces serialisation of long-lived values.
        dfg = compile_loop("acc = acc + a[i] * b[i] + c[i]", name="pressure")
        rich = SatMapItMapper().map(dfg, CGRA.square(3, registers_per_pe=8))
        poor = SatMapItMapper().map(dfg, CGRA.square(3, registers_per_pe=1))
        assert rich.success
        if poor.success:
            assert poor.ii >= rich.ii


class TestOptimality:
    """The SAT mapper finds the same optimal II as exhaustive enumeration."""

    @pytest.mark.parametrize("edges,num_nodes", [
        ([(0, 1), (1, 2)], 3),
        ([(0, 1), (0, 2), (1, 3), (2, 3)], 4),
        ([(0, 1), (1, 2), (2, 0, 1)], 3),
        ([], 5),
    ])
    def test_matches_exhaustive_oracle_on_2x2(self, edges, num_nodes):
        dfg = DFG.from_edge_list("tiny", num_nodes, edges)
        cgra = CGRA.square(2)
        sat = SatMapItMapper().map(dfg, cgra)
        oracle = ExhaustiveMapper(max_ii=6, timeout=30).map(dfg, cgra)
        assert sat.success and oracle.success
        assert sat.ii == oracle.ii


class TestConfigurationVariants:
    def test_strict_output_register_model_never_beats_relaxed(self):
        dfg = paper_running_example()
        cgra = CGRA.square(2)
        relaxed = SatMapItMapper(MapperConfig(enforce_output_register=False)).map(dfg, cgra)
        strict = SatMapItMapper(
            MapperConfig(enforce_output_register=True, neighbour_register_file_access=False)
        ).map(dfg, cgra)
        assert relaxed.success
        if strict.success:
            assert strict.ii >= relaxed.ii
            assert strict.mapping.violations(check_overwrite=True) == []

    def test_disable_register_allocation(self):
        outcome = SatMapItMapper(MapperConfig(run_register_allocation=False)).map(
            paper_running_example(), CGRA.square(2)
        )
        assert outcome.success
        assert outcome.register_allocation is None

    def test_pairwise_amo_gives_same_ii(self):
        from repro.sat.encodings import AMOEncoding

        dfg = paper_running_example()
        cgra = CGRA.square(2)
        sequential = SatMapItMapper().map(dfg, cgra)
        pairwise = SatMapItMapper(MapperConfig(amo_encoding=AMOEncoding.PAIRWISE)).map(dfg, cgra)
        assert sequential.ii == pairwise.ii

    def test_symmetry_breaking_does_not_change_ii(self):
        dfg = paper_running_example()
        cgra = CGRA.square(2)
        with_sym = SatMapItMapper(MapperConfig(symmetry_breaking=True)).map(dfg, cgra)
        without = SatMapItMapper(MapperConfig(symmetry_breaking=False)).map(dfg, cgra)
        assert with_sym.ii == without.ii

    def test_paper_iteration_span_restriction_never_lowers_ii(self):
        dfg = paper_running_example()
        cgra = CGRA.square(2)
        unrestricted = SatMapItMapper().map(dfg, cgra)
        restricted = SatMapItMapper(MapperConfig(max_iteration_span=1)).map(dfg, cgra)
        assert unrestricted.success
        if restricted.success:
            assert restricted.ii >= unrestricted.ii
