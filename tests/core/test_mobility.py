"""Tests for the Mobility Schedule and Kernel Mobility Schedule.

The running-example checks reproduce the paper's Figures 4 and 5.
"""

import pytest

from repro.core.mobility import KernelMobilitySchedule, KMSSlot, MobilitySchedule
from repro.dfg.graph import DFG, paper_running_example
from repro.exceptions import MappingError


class TestMobilitySchedule:
    def setup_method(self):
        self.dfg = paper_running_example()
        self.ms = MobilitySchedule.build(self.dfg)

    def test_length_is_critical_path(self):
        assert self.ms.length == 5

    def test_rows_match_paper_figure4(self):
        rows = [set(row) for row in self.ms.rows()]
        assert rows[0] == {1, 2, 3, 4}
        assert rows[1] == {1, 2, 4, 5, 7, 10}
        assert rows[2] == {1, 2, 6, 7, 10, 11}
        assert rows[3] == {2, 8, 10, 11}
        assert rows[4] == {9, 11}

    def test_window_and_mobility(self):
        assert list(self.ms.window(3)) == [0]
        assert self.ms.mobility(3) == 1
        assert list(self.ms.window(2)) == [0, 1, 2, 3]
        assert self.ms.mobility(2) == 4

    def test_slack_extends_windows(self):
        slacked = MobilitySchedule.build(self.dfg, slack=2)
        assert slacked.length == 7
        assert slacked.mobility(9) == 3  # sink node gains the extra slots

    def test_negative_slack_rejected(self):
        with pytest.raises(MappingError):
            MobilitySchedule.build(self.dfg, slack=-1)

    def test_empty_dfg_has_single_slot(self):
        ms = MobilitySchedule.build(DFG())
        assert ms.length == 1

    def test_str_rendering(self):
        text = str(self.ms)
        assert "time | nodes" in text
        assert len(text.splitlines()) == 6


class TestKernelMobilitySchedule:
    def setup_method(self):
        self.dfg = paper_running_example()
        self.ms = MobilitySchedule.build(self.dfg)
        self.kms = KernelMobilitySchedule.build(self.ms, ii=3)

    def test_number_of_iterations(self):
        # ceil(5 / 3) = 2, matching the paper's Figure 5.
        assert self.kms.num_iterations == 2

    def test_rows_match_paper_figure5(self):
        rows = self.kms.rows()
        # Row 0 folds MS times 0 and 3.
        assert set(rows[0]) == {
            (1, 0), (2, 0), (3, 0), (4, 0),
            (2, 1), (8, 1), (10, 1), (11, 1),
        }
        # Row 1 folds MS times 1 and 4.
        assert set(rows[1]) == {
            (1, 0), (2, 0), (4, 0), (5, 0), (7, 0), (10, 0),
            (9, 1), (11, 1),
        }
        # Row 2 folds MS time 2 only.
        assert set(rows[2]) == {(1, 0), (2, 0), (6, 0), (7, 0), (10, 0), (11, 0)}

    def test_node_slots_preserve_flat_time(self):
        for node_id, slots in self.kms.slots.items():
            window = list(self.ms.window(node_id))
            assert sorted(slot.flat_time(self.kms.ii) for slot in slots) == window

    def test_total_slot_count_equals_mobility_sum(self):
        expected = sum(self.ms.mobility(node) for node in self.dfg.node_ids)
        assert self.kms.num_slots == expected

    def test_cycle_slots(self):
        slots = self.kms.cycle_slots(2)
        assert all(slot.cycle == 2 for slot in slots)
        assert {slot.node_id for slot in slots} == {1, 2, 6, 7, 10, 11}

    def test_cycle_out_of_range_rejected(self):
        with pytest.raises(MappingError):
            self.kms.cycle_slots(3)

    def test_unknown_node_rejected(self):
        with pytest.raises(MappingError):
            self.kms.node_slots(99)

    def test_invalid_ii_rejected(self):
        with pytest.raises(MappingError):
            KernelMobilitySchedule.build(self.ms, ii=0)

    def test_ii_larger_than_length_single_iteration(self):
        kms = KernelMobilitySchedule.build(self.ms, ii=10)
        assert kms.num_iterations == 1
        assert all(slot.iteration == 0 for slots in kms.slots.values() for slot in slots)

    def test_str_rendering(self):
        text = str(self.kms)
        assert "KMS (II=3" in text
        assert "cycle" in text

    def test_kms_slot_flat_time(self):
        slot = KMSSlot(node_id=1, cycle=2, iteration=1)
        assert slot.flat_time(3) == 5
