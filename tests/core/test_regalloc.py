"""Tests for modulo register allocation."""

import pytest

from repro.cgra.architecture import CGRA
from repro.core.mapping import Mapping
from repro.core.regalloc import (
    LiveRange,
    allocate_registers,
    compute_live_ranges,
    estimate_spill_cycles,
)
from repro.dfg.graph import DFG
from repro.exceptions import RegisterAllocationError


def chain(n):
    return DFG.from_edge_list("chain", n, [(i, i + 1) for i in range(n - 1)])


class TestLiveRange:
    def test_length_and_copies(self):
        live = LiveRange(node_id=0, pe=0, start=2, end=7, ii=2)
        assert live.length == 5
        assert live.copies == 3

    def test_single_cycle_value(self):
        live = LiveRange(node_id=0, pe=0, start=3, end=4, ii=4)
        assert live.copies == 1
        assert live.occupied_cycles() == {3: 1}

    def test_occupied_cycles_wraps_modulo_ii(self):
        live = LiveRange(node_id=0, pe=0, start=1, end=5, ii=2)
        assert live.occupied_cycles() == {0: 2, 1: 2}

    def test_cycles_for_copy(self):
        live = LiveRange(node_id=0, pe=0, start=0, end=4, ii=2)
        assert live.cycles_for_copy(0) == {0, 1}
        assert live.cycles_for_copy(1) == {0, 1}

    def test_empty_range(self):
        live = LiveRange(node_id=0, pe=0, start=3, end=3, ii=2)
        assert live.copies == 0
        assert live.occupied_cycles() == {}


class TestComputeLiveRanges:
    def test_same_pe_consumer_extends_range(self):
        dfg = chain(2)
        mapping = Mapping(dfg, CGRA.square(2), ii=2)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=0, cycle=1)
        ranges = compute_live_ranges(dfg, mapping)
        assert ranges[0].start == 1
        assert ranges[0].end == 2

    def test_neighbour_consumer_ignored_without_register_file_access(self):
        dfg = chain(2)
        mapping = Mapping(dfg, CGRA.square(2), ii=2)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=1, cycle=1)
        assert compute_live_ranges(dfg, mapping, False) == {}
        assert 0 in compute_live_ranges(dfg, mapping, True)

    def test_back_edge_consumption_time(self):
        dfg = DFG.from_edge_list("loop", 2, [(0, 1), (1, 0, 1)])
        mapping = Mapping(dfg, CGRA.square(2), ii=2)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=0, cycle=1)
        ranges = compute_live_ranges(dfg, mapping)
        # Value of node 1 is consumed by node 0 one iteration later: t=0+2=2.
        assert ranges[1].end == 3

    def test_value_without_consumers_needs_no_register(self):
        dfg = DFG.from_edge_list("single", 1, [])
        mapping = Mapping(dfg, CGRA.square(2), ii=1)
        mapping.place(0, pe=0, cycle=0)
        assert compute_live_ranges(dfg, mapping) == {}


class TestAllocation:
    def test_simple_chain_allocates(self):
        dfg = chain(3)
        cgra = CGRA.square(2)
        mapping = Mapping(dfg, cgra, ii=3)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=0, cycle=1)
        mapping.place(2, pe=0, cycle=2)
        allocation = allocate_registers(dfg, cgra, mapping)
        assert allocation.success
        assert allocation.max_pressure <= cgra.registers_per_pe
        assert set(allocation.assignment) == {0, 1}

    def test_invalid_ii_rejected(self):
        dfg = chain(2)
        mapping = Mapping(dfg, CGRA.square(2), ii=0)
        with pytest.raises(RegisterAllocationError):
            allocate_registers(dfg, CGRA.square(2), mapping)

    def test_pressure_failure_reported(self):
        # One producer with many long-lived consumers on a 1-register PE.
        dfg = DFG(name="fanout")
        dfg.add_node(0)
        for i in range(1, 5):
            dfg.add_node(i)
            dfg.add_edge(0, i)
        cgra = CGRA(rows=1, cols=2, registers_per_pe=1)
        mapping = Mapping(dfg, cgra, ii=5)
        mapping.place(0, pe=0, cycle=0)
        for i in range(1, 5):
            mapping.place(i, pe=0, cycle=i)
        # Nodes 1..4 all produce values nobody consumes, so only node 0 needs
        # a register; make the test meaningful by chaining consumers instead.
        dfg.add_node(5)
        dfg.add_edge(4, 5)
        dfg.add_edge(1, 5)
        mapping.place(5, pe=1, cycle=0, iteration=1)
        allocation = allocate_registers(dfg, cgra, mapping, True)
        # values of node 1 and node 4 are both alive on PE0 -> pressure 2 > 1.
        assert not allocation.success
        assert "pressure" in allocation.failure_reason or "colour" in allocation.failure_reason

    def test_long_lived_value_uses_multiple_registers(self):
        dfg = DFG.from_edge_list("long", 2, [(0, 1)])
        cgra = CGRA.square(2, registers_per_pe=4)
        mapping = Mapping(dfg, cgra, ii=1)
        mapping.place(0, pe=0, cycle=0, iteration=0)
        mapping.place(1, pe=0, cycle=0, iteration=3)
        allocation = allocate_registers(dfg, cgra, mapping)
        assert allocation.success
        assert len(allocation.all_copies[0]) == 3
        assert len(set(allocation.all_copies[0])) == 3

    def test_registers_used_counts_distinct(self):
        dfg = chain(3)
        cgra = CGRA.square(2)
        mapping = Mapping(dfg, cgra, ii=3)
        for i in range(3):
            mapping.place(i, pe=0, cycle=i)
        allocation = allocate_registers(dfg, cgra, mapping)
        assert allocation.registers_used(0) >= 1
        assert allocation.registers_used(1) == 0

    def test_failure_when_not_enough_registers(self):
        cgra = CGRA.square(2, registers_per_pe=1)
        dfg = DFG(name="pressure")
        for i in range(4):
            dfg.add_node(i)
        dfg.add_edge(0, 3)
        dfg.add_edge(1, 3)
        mapping = Mapping(dfg, cgra, ii=4)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=0, cycle=1)
        mapping.place(2, pe=1, cycle=0)
        mapping.place(3, pe=0, cycle=3)
        allocation = allocate_registers(dfg, cgra, mapping)
        assert not allocation.success
        assert allocation.max_pressure > 1

    def test_estimate_spill_cycles(self):
        dfg = chain(2)
        cgra = CGRA.square(2, registers_per_pe=1)
        mapping = Mapping(dfg, cgra, ii=1)
        mapping.place(0, pe=0, cycle=0, iteration=0)
        mapping.place(1, pe=0, cycle=0, iteration=3)
        allocation = allocate_registers(dfg, cgra, mapping)
        assert not allocation.success
        assert estimate_spill_cycles(allocation, cgra.registers_per_pe) >= 2

    def test_spill_estimate_zero_when_successful(self):
        dfg = chain(2)
        cgra = CGRA.square(2)
        mapping = Mapping(dfg, cgra, ii=2)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=0, cycle=1)
        allocation = allocate_registers(dfg, cgra, mapping)
        assert allocation.success
        assert estimate_spill_cycles(allocation, cgra.registers_per_pe) == 0
