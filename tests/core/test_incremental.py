"""Tests for the incremental mapping loop (persistent backend, selectors).

Covers the acceptance criteria of the incremental rework: the persistent
backend finds the same final II as per-attempt fresh solving, register
allocation retries are pure incremental re-solves (exactly one blocking
clause, zero re-encoded base clauses), and the parallel sweep produces the
same results as the serial one.
"""

import pytest

import repro.core.mapper as mapper_module
from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.core.regalloc import RegisterAllocation
from repro.dfg.graph import DFG, paper_running_example
from repro.experiments.runner import SAT_MAPIT, ExperimentConfig, run_sweep
from repro.kernels import get_kernel


class TestSemanticEquivalence:
    """Persistent-backend runs match per-attempt fresh solving."""

    @pytest.mark.parametrize("kernel,size", [
        ("srand", 2), ("basicmath", 2), ("stringsearch", 3), ("nw", 3),
        ("gsm", 2),
    ])
    def test_same_final_ii_as_fresh_solving(self, kernel, size):
        dfg = get_kernel(kernel)
        cgra = CGRA.square(size)
        incremental = SatMapItMapper(MapperConfig(timeout=60)).map(dfg, cgra)
        fresh = SatMapItMapper(
            MapperConfig(timeout=60, incremental=False)
        ).map(dfg, cgra)
        assert incremental.success and fresh.success
        assert incremental.ii == fresh.ii
        assert incremental.mapping.violations() == []

    def test_same_attempt_statuses_on_running_example(self):
        dfg = paper_running_example()
        cgra = CGRA.square(2)
        incremental = SatMapItMapper(MapperConfig(timeout=60)).map(dfg, cgra)
        fresh = SatMapItMapper(
            MapperConfig(timeout=60, incremental=False)
        ).map(dfg, cgra)
        assert [(a.ii, a.schedule_slack, a.status) for a in incremental.attempts] == [
            (a.ii, a.schedule_slack, a.status) for a in fresh.attempts
        ]

    def test_dpll_backend_reaches_same_ii_on_tiny_instance(self):
        dfg = DFG.from_edge_list("tiny", 3, [(0, 1), (1, 2)])
        cgra = CGRA.square(2)
        cdcl = SatMapItMapper(MapperConfig(timeout=60)).map(dfg, cgra)
        dpll = SatMapItMapper(
            MapperConfig(timeout=60, backend="dpll")
        ).map(dfg, cgra)
        assert cdcl.success and dpll.success
        assert cdcl.ii == dpll.ii
        assert dpll.backend_name == "dpll"


class TestIncrementalBookkeeping:
    def test_attempts_carry_selectors_and_no_reencodes(self):
        outcome = SatMapItMapper(MapperConfig(timeout=60)).map(
            get_kernel("gsm"), CGRA.square(2)
        )
        assert outcome.success
        selectors = [a.selector for a in outcome.attempts]
        assert all(s is not None for s in selectors)
        assert len(set(selectors)) == len(selectors)  # one fresh guard each
        # From each attempt's first solve onwards, only blocking clauses may
        # reach the solver — the base encoding is never re-emitted.
        assert all(
            a.retry_clauses_added == a.blocking_clauses for a in outcome.attempts
        )
        assert all(a.solve_calls >= 1 for a in outcome.attempts)

    def test_learned_clauses_carried_across_attempts(self):
        """A run whose first attempts are refuted carries inference forward."""
        outcome = SatMapItMapper(MapperConfig(timeout=60)).map(
            get_kernel("gsm"), CGRA.square(2)
        )
        assert outcome.success
        assert len(outcome.attempts) >= 2
        assert outcome.learned_carried > 0

    def test_fresh_mode_records_no_selectors(self):
        outcome = SatMapItMapper(
            MapperConfig(timeout=60, incremental=False)
        ).map(paper_running_example(), CGRA.square(2))
        assert outcome.success
        assert all(a.selector is None for a in outcome.attempts)
        assert outcome.learned_carried == 0


class TestRegallocRetriesArePureIncremental:
    """The satellite fix: retry rounds add one blocking clause, re-encode nothing."""

    @pytest.mark.parametrize("incremental", [True, False])
    def test_forced_retries_add_one_blocking_clause_each(
        self, monkeypatch, incremental
    ):
        real_allocate = mapper_module.allocate_registers
        rejections = 2
        calls = {"n": 0}

        def flaky_allocate(dfg, cgra, mapping, neighbour_access):
            calls["n"] += 1
            if calls["n"] <= rejections:
                failed_pe = next(iter(mapping.placements.values())).pe
                return RegisterAllocation(
                    success=False,
                    failure_reason="forced rejection (test)",
                    failed_pe=failed_pe,
                )
            return real_allocate(dfg, cgra, mapping, neighbour_access)

        monkeypatch.setattr(mapper_module, "allocate_registers", flaky_allocate)
        outcome = SatMapItMapper(
            MapperConfig(timeout=60, incremental=incremental, regalloc_retries=3)
        ).map(paper_running_example(), CGRA.square(2))
        assert outcome.success
        assert calls["n"] == rejections + 1

        sat_attempt = outcome.attempts[-1]
        assert sat_attempt.status == "SAT"
        # Every retry round was served by exactly one blocking clause and a
        # re-solve: measured at the solver sink, the retry phase pushed
        # exactly `rejections` clauses — zero re-encoded base clauses.
        assert sat_attempt.solve_calls == rejections + 1
        assert sat_attempt.blocking_clauses == rejections
        assert sat_attempt.retry_clauses_added == rejections
        assert outcome.incremental_resolves == rejections

    def test_retry_models_differ_on_blocked_pe(self, monkeypatch):
        real_allocate = mapper_module.allocate_registers
        seen_placements = []

        def recording_allocate(dfg, cgra, mapping, neighbour_access):
            placements = frozenset(
                (node, p.pe, p.cycle, p.iteration)
                for node, p in mapping.placements.items()
            )
            seen_placements.append(placements)
            if len(seen_placements) == 1:
                failed_pe = next(iter(mapping.placements.values())).pe
                return RegisterAllocation(
                    success=False,
                    failure_reason="forced rejection (test)",
                    failed_pe=failed_pe,
                )
            return real_allocate(dfg, cgra, mapping, neighbour_access)

        monkeypatch.setattr(mapper_module, "allocate_registers", recording_allocate)
        outcome = SatMapItMapper(MapperConfig(timeout=60)).map(
            paper_running_example(), CGRA.square(2)
        )
        assert outcome.success
        assert len(seen_placements) == 2
        assert seen_placements[0] != seen_placements[1]


class TestParallelSweep:
    def test_parallel_sweep_matches_serial(self):
        config = ExperimentConfig(
            kernels=("srand", "basicmath"),
            sizes=(2,),
            mappers=(SAT_MAPIT,),
            timeout=30.0,
        )
        serial = run_sweep(config)
        parallel = run_sweep(config, jobs=2)
        assert len(parallel.records) == len(serial.records)
        for serial_record, parallel_record in zip(serial.records, parallel.records):
            assert parallel_record.kernel == serial_record.kernel
            assert parallel_record.size == serial_record.size
            assert parallel_record.mapper == serial_record.mapper
            assert parallel_record.status == serial_record.status
            assert parallel_record.ii == serial_record.ii
