"""End-to-end metamorphic test: preprocessing must be invisible.

For small paper kernels the full iterative mapper is run with the CNF
preprocessor on and off; the achieved II must be identical (the simplifier
may only make solving cheaper, never change what is feasible), and both
mappings must pass the cycle-accurate simulator — the legality oracle from
the heterogeneous-fabric work — so a preprocessing bug cannot hide behind a
structurally different but still "successful" mapping.
"""

from __future__ import annotations

import pytest

from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.kernels import get_kernel
from repro.simulator import CGRASimulator

_KERNELS = ("srand", "stringsearch", "basicmath")


@pytest.mark.parametrize("kernel", _KERNELS)
def test_mapping_identical_with_and_without_preprocessing(kernel):
    dfg = get_kernel(kernel)
    cgra = CGRA.square(3)
    outcomes = {}
    for preprocess in (False, True):
        config = MapperConfig(timeout=120, preprocess=preprocess)
        outcomes[preprocess] = SatMapItMapper(config).map(dfg, cgra)

    plain, preprocessed = outcomes[False], outcomes[True]
    assert plain.success and preprocessed.success
    assert plain.ii == preprocessed.ii, (
        f"{kernel}: II {plain.ii} without preprocessing vs "
        f"{preprocessed.ii} with"
    )
    # The preprocessor actually did work on the successful run.
    assert preprocessed.pre_clauses_removed > 0
    assert preprocessed.backend_name.endswith("+preprocess")
    for outcome in outcomes.values():
        assert outcome.mapping.violations() == []
        simulation = CGRASimulator(
            outcome.mapping, outcome.register_allocation
        ).run(4)
        assert simulation.success, simulation.errors


def test_preprocessing_in_non_incremental_mode():
    """The one-shot (fresh-solver) path reconstructs and decodes too."""
    dfg = get_kernel("srand")
    cgra = CGRA.square(2)
    results = {}
    for preprocess in (False, True):
        config = MapperConfig(
            timeout=120, incremental=False, preprocess=preprocess
        )
        outcome = SatMapItMapper(config).map(dfg, cgra)
        assert outcome.success
        results[preprocess] = outcome.ii
        simulation = CGRASimulator(
            outcome.mapping, outcome.register_allocation
        ).run(4)
        assert simulation.success, simulation.errors
    assert results[False] == results[True]
