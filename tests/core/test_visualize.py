"""Tests for the ASCII visualisation helpers."""

import pytest

from repro.cgra.architecture import CGRA
from repro.core.mapper import SatMapItMapper
from repro.core.mapping import Mapping
from repro.core.visualize import render_grid, render_kernel, render_mapping_report
from repro.dfg.graph import DFG, paper_running_example


def small_mapping() -> Mapping:
    dfg = DFG.from_edge_list("t", 3, [(0, 1), (1, 2)])
    mapping = Mapping(dfg, CGRA.square(2), ii=3)
    mapping.place(0, pe=0, cycle=0)
    mapping.place(1, pe=1, cycle=1)
    mapping.place(2, pe=1, cycle=2)
    return mapping


class TestRenderKernel:
    def test_contains_all_nodes(self):
        text = render_kernel(small_mapping())
        assert "n0" in text and "n1" in text and "n2" in text

    def test_has_one_row_per_cycle(self):
        text = render_kernel(small_mapping())
        # header + separator + 3 cycles
        assert len(text.splitlines()) == 5

    def test_empty_slots_rendered_as_dots(self):
        assert "." in render_kernel(small_mapping())


class TestRenderGrid:
    def test_grid_shape(self):
        text = render_grid(small_mapping(), cycle=0)
        # 2 rows -> 2 content lines + 3 separators
        assert len(text.splitlines()) == 5
        assert "n0" in text

    def test_invalid_cycle_rejected(self):
        with pytest.raises(ValueError):
            render_grid(small_mapping(), cycle=9)


class TestRenderReport:
    def test_report_without_allocation(self):
        text = render_mapping_report(small_mapping())
        assert "II = 3" in text
        assert "utilisation" in text

    def test_report_with_allocation_from_real_mapping(self):
        outcome = SatMapItMapper().map(paper_running_example(), CGRA.square(2))
        text = render_mapping_report(outcome.mapping, outcome.register_allocation)
        assert "register allocation: ok" in text
        assert "II = 3" in text
