"""Tests for the CNF encoding of the mapping problem (C1, C2, C3)."""

import pytest

from repro.cgra.architecture import CGRA
from repro.core.encoder import EncoderConfig, MappingEncoder
from repro.core.mapping import Mapping
from repro.core.mobility import KernelMobilitySchedule, MobilitySchedule
from repro.dfg.graph import DFG, paper_running_example
from repro.exceptions import EncodingError
from repro.sat.encodings import AMOEncoding
from repro.sat.solver import CDCLSolver


def encode(dfg, cgra, ii, slack=0, **kwargs):
    ms = MobilitySchedule.build(dfg, slack=slack)
    kms = KernelMobilitySchedule.build(ms, ii)
    return MappingEncoder(dfg, cgra, kms, EncoderConfig(**kwargs)).encode()


def decode_to_mapping(dfg, cgra, ii, encoding, model) -> Mapping:
    mapping = Mapping(dfg=dfg, cgra=cgra, ii=ii)
    for node, (pe, cycle, iteration) in encoding.decode(model).items():
        mapping.place(node, pe, cycle, iteration)
    return mapping


def chain(n):
    return DFG.from_edge_list("chain", n, [(i, i + 1) for i in range(n - 1)])


class TestEncodingShape:
    def test_variable_count(self):
        dfg = chain(3)
        cgra = CGRA.square(2)
        encoding = encode(dfg, cgra, ii=3)
        # Every node has exactly one KMS slot (no mobility in a chain of
        # length = critical path), so 3 nodes x 4 PEs primary variables.
        primary = [v for key, v in encoding.variables.items()]
        assert len(primary) == 12
        assert encoding.stats.num_variables >= 12

    def test_stats_are_populated(self):
        dfg = paper_running_example()
        encoding = encode(dfg, CGRA.square(2), ii=3)
        stats = encoding.stats
        assert stats.num_c1_clauses > 0
        assert stats.num_c2_clauses > 0
        assert stats.num_c3_clauses > 0
        assert stats.num_clauses == len(encoding.cnf.clauses)

    def test_emitter_deduplicates_constraint_clauses(self):
        """The sink never receives the same clause twice (any config)."""
        from repro.kernels import get_kernel

        for config in (EncoderConfig(), EncoderConfig(enforce_output_register=True)):
            dfg = get_kernel("gsm")
            cgra = CGRA.square(3)
            kms = KernelMobilitySchedule.build(MobilitySchedule.build(dfg), 4)
            encoding = MappingEncoder(dfg, cgra, kms, config).encode()
            keys = [tuple(sorted(clause)) for clause in encoding.cnf.clauses]
            assert len(keys) == len(set(keys))
        # The generators do produce duplicates on this kernel; the emitter
        # must have counted (and dropped) them.
        assert encoding.stats.num_duplicate_clauses > 0

    def test_literals_by_node_cover_all_nodes(self):
        dfg = paper_running_example()
        encoding = encode(dfg, CGRA.square(2), ii=3)
        assert set(encoding.literals_by_node) == set(dfg.node_ids)

    def test_amo_choice_affects_clause_count(self):
        dfg = paper_running_example()
        cgra = CGRA.square(3)
        pairwise = encode(dfg, cgra, ii=3, amo_encoding=AMOEncoding.PAIRWISE)
        sequential = encode(dfg, cgra, ii=3, amo_encoding=AMOEncoding.SEQUENTIAL)
        assert pairwise.stats.num_clauses > sequential.stats.num_clauses

    def test_symmetry_breaking_adds_unit_clauses(self):
        dfg = paper_running_example()
        with_sym = encode(dfg, CGRA.square(3), ii=3, symmetry_breaking=True)
        without = encode(dfg, CGRA.square(3), ii=3, symmetry_breaking=False)
        assert with_sym.stats.num_symmetry_clauses > 0
        assert without.stats.num_symmetry_clauses == 0


class TestDecoding:
    def test_decode_reads_only_true_primary_variables(self):
        dfg = chain(2)
        cgra = CGRA.square(2)
        encoding = encode(dfg, cgra, ii=2)
        result = CDCLSolver().solve(encoding.cnf)
        assert result.is_sat
        placements = encoding.decode(result.model)
        assert set(placements) == {0, 1}

    def test_decode_rejects_double_placement(self):
        dfg = chain(2)
        encoding = encode(dfg, CGRA.square(2), ii=2)
        # Force a bogus model where one node is placed twice.
        keys = [key for key in encoding.variables if key[0] == 0][:2]
        model = {var: False for var in range(1, encoding.cnf.num_vars + 1)}
        for key in keys:
            model[encoding.variables[key]] = True
        with pytest.raises(EncodingError):
            encoding.decode(model)


class TestModelsAreLegalMappings:
    @pytest.mark.parametrize("size,ii", [(2, 3), (3, 2), (2, 4)])
    def test_running_example_models_decode_to_legal_mappings(self, size, ii):
        dfg = paper_running_example()
        cgra = CGRA.square(size)
        encoding = encode(dfg, cgra, ii=ii)
        result = CDCLSolver().solve(encoding.cnf)
        if not result.is_sat:
            pytest.skip(f"II={ii} infeasible on {size}x{size} under this encoding")
        mapping = decode_to_mapping(dfg, cgra, ii, encoding, result.model)
        assert mapping.violations() == []

    def test_strict_output_register_models_respect_overwrite_rule(self):
        dfg = paper_running_example()
        cgra = CGRA.square(2)
        encoding = encode(dfg, cgra, ii=3, enforce_output_register=True)
        result = CDCLSolver().solve(encoding.cnf)
        if not result.is_sat:
            pytest.skip("strict model infeasible at II=3")
        mapping = decode_to_mapping(dfg, cgra, 3, encoding, result.model)
        assert mapping.violations(check_overwrite=True) == []


class TestInfeasibleInstances:
    def test_too_many_nodes_for_kernel_is_unsat(self):
        # Five independent nodes, one PE, II=2: only 2 slots available.
        dfg = DFG.from_edge_list("five", 5, [])
        cgra = CGRA(rows=1, cols=1)
        encoding = encode(dfg, cgra, ii=2)
        assert CDCLSolver().solve(encoding.cnf).is_unsat

    def test_non_neighbouring_dependency_unsat_on_disconnected_case(self):
        # A chain that must spread over 3 cycles but II=1 on a single PE:
        # node at each cycle collides modulo 1.
        dfg = chain(3)
        cgra = CGRA(rows=1, cols=1)
        encoding = encode(dfg, cgra, ii=1)
        assert CDCLSolver().solve(encoding.cnf).is_unsat

    def test_chain_on_single_pe_feasible_when_ii_large_enough(self):
        dfg = chain(3)
        cgra = CGRA(rows=1, cols=1)
        encoding = encode(dfg, cgra, ii=3)
        assert CDCLSolver().solve(encoding.cnf).is_sat


class TestSymmetryBreakingSoundness:
    @pytest.mark.parametrize("ii", [2, 3])
    def test_same_satisfiability_with_and_without(self, ii):
        dfg = paper_running_example()
        cgra = CGRA.square(2)
        with_sym = CDCLSolver().solve(encode(dfg, cgra, ii, symmetry_breaking=True).cnf)
        without = CDCLSolver().solve(encode(dfg, cgra, ii, symmetry_breaking=False).cnf)
        assert with_sym.status == without.status


class TestIterationSpanRestriction:
    def test_restriction_never_helps_satisfiability(self):
        dfg = paper_running_example()
        cgra = CGRA.square(2)
        unrestricted = CDCLSolver().solve(
            encode(dfg, cgra, ii=3, max_iteration_span=None).cnf
        )
        restricted = CDCLSolver().solve(
            encode(dfg, cgra, ii=3, max_iteration_span=1).cnf
        )
        if restricted.is_sat:
            assert unrestricted.is_sat
