"""Tests for Mapping.to_json / from_json round-tripping and replay."""

import json

from repro.cgra.architecture import CGRA
from repro.cgra.presets import mem_edge_4x4
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.core.mapping import Mapping
from repro.dfg.graph import DFG, Opcode
from repro.kernels import get_kernel
from repro.simulator import CGRASimulator


def solved_mapping(kernel="srand", cgra=None):
    cgra = cgra or CGRA.square(2)
    outcome = SatMapItMapper(MapperConfig(timeout=60.0)).map(get_kernel(kernel), cgra)
    assert outcome.success
    return outcome.mapping


class TestRoundTrip:
    def test_round_trip_preserves_everything(self):
        mapping = solved_mapping()
        rebuilt = Mapping.from_json(mapping.to_json())
        assert rebuilt.ii == mapping.ii
        assert rebuilt.cgra == mapping.cgra
        assert rebuilt.registers == mapping.registers
        assert set(rebuilt.placements) == set(mapping.placements)
        for node_id, placement in mapping.placements.items():
            other = rebuilt.placements[node_id]
            assert (other.pe, other.cycle, other.iteration) == (
                placement.pe, placement.cycle, placement.iteration
            )
        assert rebuilt.is_valid()

    def test_round_trip_preserves_dfg(self):
        mapping = solved_mapping()
        rebuilt = Mapping.from_json(mapping.to_json())
        assert rebuilt.dfg.name == mapping.dfg.name
        assert rebuilt.dfg.num_nodes == mapping.dfg.num_nodes
        assert rebuilt.dfg.num_edges == mapping.dfg.num_edges
        for node in mapping.dfg.nodes:
            other = rebuilt.dfg.node(node.node_id)
            assert other.opcode is node.opcode
            assert other.constant == node.constant

    def test_round_trip_on_heterogeneous_fabric(self):
        mapping = solved_mapping(cgra=mem_edge_4x4())
        rebuilt = Mapping.from_json(mapping.to_json())
        assert not rebuilt.cgra.is_homogeneous
        assert rebuilt.cgra == mapping.cgra
        assert rebuilt.is_valid()

    def test_replay_through_simulator_without_resolving(self):
        """An archived mapping simulates correctly after deserialization."""
        mapping = solved_mapping()
        rebuilt = Mapping.from_json(mapping.to_json())
        result = CGRASimulator(rebuilt).run(num_iterations=3)
        assert result.success, result.errors

    def test_json_is_plain_data(self):
        payload = json.loads(solved_mapping().to_json())
        assert payload["format"] == "satmapit-mapping/1"
        assert {"ii", "dfg", "cgra", "placements", "registers"} <= set(payload)

    def test_dfg_dict_round_trip(self):
        dfg = DFG(name="tiny")
        dfg.add_node(0, Opcode.CONST, constant=7)
        dfg.add_node(1, Opcode.ADD, name="acc")
        dfg.add_edge(0, 1, operand_index=1)
        dfg.add_edge(1, 1, distance=1)
        rebuilt = DFG.from_dict(dfg.to_dict())
        assert rebuilt.node(0).constant == 7
        assert rebuilt.node(1).name == "acc"
        assert len(rebuilt.back_edges()) == 1
        assert rebuilt.edges[0].operand_index == 1


class TestRegisterCopies:
    def test_register_copies_round_trip(self):
        mapping = solved_mapping()
        rebuilt = Mapping.from_json(mapping.to_json())
        assert rebuilt.register_copies == mapping.register_copies

    def test_multi_copy_values_replay_exactly(self):
        """Values live longer than the II need their rotating register copies
        after deserialization — the virtual-register fallback would read
        stale data."""
        from repro.cgra.presets import hycube_like

        mapping = solved_mapping(kernel="nw", cgra=hycube_like())
        assert any(len(regs) > 1 for regs in mapping.register_copies.values())
        rebuilt = Mapping.from_json(mapping.to_json())
        result = CGRASimulator(rebuilt).run(num_iterations=4)
        assert result.success, result.errors
