"""End-to-end equivalence of the flat-arena core across mapper paths.

The arena rewrite changed the solver's entire data layout plus the default
at-most-one encoding; none of that may change *what* is feasible.  For a
set of paper kernels the full mapper is run through the configurations the
refactor touches — incremental vs one-shot solving, AUTO vs sequential vs
pairwise AMO encodings — and every path must deliver the same II with a
simulator-clean mapping.
"""

from __future__ import annotations

import pytest

from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.kernels import get_kernel
from repro.sat.encodings import AMOEncoding
from repro.simulator import CGRASimulator

_KERNELS = ("srand", "stringsearch", "nw", "basicmath")


def _map(kernel: str, size: int = 3, **overrides) -> "object":
    config = MapperConfig(timeout=120, random_seed=0, **overrides)
    return SatMapItMapper(config).map(get_kernel(kernel), CGRA.square(size))


@pytest.mark.parametrize("kernel", _KERNELS)
def test_identical_ii_across_amo_encodings(kernel):
    """AUTO / sequential / pairwise encode the same feasibility."""
    outcomes = {
        amo: _map(kernel, amo_encoding=amo)
        for amo in (AMOEncoding.AUTO, AMOEncoding.SEQUENTIAL,
                    AMOEncoding.PAIRWISE)
    }
    iis = {amo: outcome.ii for amo, outcome in outcomes.items()}
    assert len(set(iis.values())) == 1, f"{kernel}: II diverged {iis}"
    for outcome in outcomes.values():
        assert outcome.success
        assert outcome.mapping.violations() == []
        simulation = CGRASimulator(
            outcome.mapping, outcome.register_allocation
        ).run(4)
        assert simulation.success, simulation.errors


@pytest.mark.parametrize("kernel", _KERNELS)
def test_identical_ii_incremental_vs_one_shot(kernel):
    """Guarded-group solving equals per-attempt fresh solving."""
    incremental = _map(kernel, incremental=True)
    one_shot = _map(kernel, incremental=False)
    assert incremental.success and one_shot.success
    assert incremental.ii == one_shot.ii
    for outcome in (incremental, one_shot):
        assert outcome.mapping.violations() == []


def test_flat_core_counters_surface_in_outcome():
    """The new SolverStats counters flow through to the mapping outcome."""
    outcome = _map("gsm", size=2)
    assert outcome.success
    # gsm on the 2x2 needs real search, so the implication lists and the
    # batching emitter must both have seen traffic.
    assert outcome.binary_propagations > 0
    assert outcome.emission_batches > 0
    assert outcome.arena_bytes > 0
    att = outcome.attempts[-1]
    assert att.propagations >= att.binary_propagations
