"""Tests for the Mapping data structure and its legality checker."""

import pytest

from repro.cgra.architecture import CGRA
from repro.core.mapping import Mapping, Placement
from repro.dfg.graph import DFG
from repro.exceptions import MappingError


def chain_dfg(n: int = 3) -> DFG:
    return DFG.from_edge_list("chain", n, [(i, i + 1) for i in range(n - 1)])


class TestConstruction:
    def test_place_and_lookup(self):
        mapping = Mapping(chain_dfg(), CGRA.square(2), ii=2)
        mapping.place(0, pe=1, cycle=0)
        placement = mapping.placement(0)
        assert placement == Placement(0, 1, 0, 0)
        assert placement.flat_time(2) == 0

    def test_place_unknown_node_rejected(self):
        mapping = Mapping(chain_dfg(), CGRA.square(2), ii=2)
        with pytest.raises(MappingError):
            mapping.place(9, pe=0, cycle=0)

    def test_missing_placement_lookup_rejected(self):
        mapping = Mapping(chain_dfg(), CGRA.square(2), ii=2)
        with pytest.raises(MappingError):
            mapping.placement(0)

    def test_flat_time_uses_iteration(self):
        placement = Placement(0, 0, cycle=1, iteration=2)
        assert placement.flat_time(3) == 7


class TestDerivedViews:
    def _mapped_chain(self):
        mapping = Mapping(chain_dfg(3), CGRA.square(2), ii=2)
        mapping.place(0, pe=0, cycle=0, iteration=0)
        mapping.place(1, pe=1, cycle=1, iteration=0)
        mapping.place(2, pe=3, cycle=0, iteration=1)
        return mapping

    def test_schedule_length(self):
        assert self._mapped_chain().schedule_length == 3

    def test_num_kernel_iterations(self):
        assert self._mapped_chain().num_kernel_iterations == 2

    def test_kernel_table(self):
        table = self._mapped_chain().kernel_table()
        assert table[0][0] == 0
        assert table[1][1] == 1
        assert table[0][3] == 2
        assert table[0][1] is None

    def test_pe_utilisation(self):
        assert self._mapped_chain().pe_utilisation() == pytest.approx(3 / 8)

    def test_nodes_on_pe(self):
        mapping = self._mapped_chain()
        assert [p.node_id for p in mapping.nodes_on_pe(0)] == [0]
        assert mapping.nodes_on_pe(2) == []

    def test_repr(self):
        assert "placed=3/3" in repr(self._mapped_chain())

    def test_empty_mapping_views(self):
        mapping = Mapping(chain_dfg(), CGRA.square(2), ii=2)
        assert mapping.schedule_length == 0
        assert mapping.num_kernel_iterations == 0
        assert mapping.pe_utilisation() == 0.0


class TestLegality:
    def test_valid_chain_mapping(self):
        mapping = Mapping(chain_dfg(3), CGRA.square(2), ii=3)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=1, cycle=1)
        mapping.place(2, pe=3, cycle=2)
        assert mapping.is_valid()
        assert mapping.violations() == []

    def test_missing_node_detected(self):
        mapping = Mapping(chain_dfg(3), CGRA.square(2), ii=3)
        mapping.place(0, pe=0, cycle=0)
        problems = mapping.violations()
        assert any("not placed" in p for p in problems)

    def test_pe_out_of_range_detected(self):
        mapping = Mapping(chain_dfg(1), CGRA.square(2), ii=1)
        mapping.place(0, pe=7, cycle=0)
        assert any("PEs" in p for p in mapping.violations())

    def test_cycle_out_of_range_detected(self):
        mapping = Mapping(chain_dfg(1), CGRA.square(2), ii=2)
        mapping.place(0, pe=0, cycle=5)
        assert any("outside the kernel" in p for p in mapping.violations())

    def test_slot_conflict_detected(self):
        dfg = DFG.from_edge_list("two", 2, [])
        mapping = Mapping(dfg, CGRA.square(2), ii=1)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=0, cycle=0)
        assert any("hosts both" in p for p in mapping.violations())

    def test_non_neighbour_dependency_detected(self):
        mapping = Mapping(chain_dfg(2), CGRA.square(3), ii=3)
        mapping.place(0, pe=0, cycle=0)  # corner (0,0)
        mapping.place(1, pe=8, cycle=1)  # opposite corner (2,2)
        assert any("not neighbours" in p for p in mapping.violations())

    def test_timing_violation_detected(self):
        mapping = Mapping(chain_dfg(2), CGRA.square(2), ii=4)
        mapping.place(0, pe=0, cycle=2)
        mapping.place(1, pe=1, cycle=1)  # consumes before production
        assert any("before being produced" in p for p in mapping.violations())

    def test_back_edge_timing_uses_distance(self):
        dfg = DFG.from_edge_list("loop", 2, [(0, 1), (1, 0, 1)])
        mapping = Mapping(dfg, CGRA.square(2), ii=2)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=1, cycle=1)
        # 1 -> 0 with distance 1: consumed at 0 + 2 = 2 >= produced at 2.  OK.
        assert mapping.is_valid()

    def test_same_pe_dependency_is_legal(self):
        mapping = Mapping(chain_dfg(2), CGRA.square(2), ii=2)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=0, cycle=1)
        assert mapping.is_valid()


class TestOutputRegisterCheck:
    def test_clobbered_output_register_detected(self):
        dfg = DFG.from_edge_list("t", 3, [(0, 2)])
        mapping = Mapping(dfg, CGRA.square(2), ii=3)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=0, cycle=1)  # unrelated node clobbers PE0's output
        mapping.place(2, pe=1, cycle=2)  # neighbour consumer two cycles later
        assert mapping.is_valid(check_overwrite=False)
        assert not mapping.is_valid(check_overwrite=True)
        assert any("overwritten" in p for p in mapping.violations(check_overwrite=True))

    def test_producer_reexecution_detected(self):
        dfg = DFG.from_edge_list("t", 2, [(0, 1)])
        mapping = Mapping(dfg, CGRA.square(2), ii=2)
        mapping.place(0, pe=0, cycle=0, iteration=0)
        mapping.place(1, pe=1, cycle=1, iteration=1)  # span 3 > II
        assert any("re-executes" in p for p in mapping.violations(check_overwrite=True))

    def test_same_pe_transfer_not_subject_to_overwrite(self):
        dfg = DFG.from_edge_list("t", 3, [(0, 2)])
        mapping = Mapping(dfg, CGRA.square(2), ii=3)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=0, cycle=1)
        mapping.place(2, pe=0, cycle=2)  # same-PE consumer: register file path
        assert mapping.is_valid(check_overwrite=True)
