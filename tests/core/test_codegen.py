"""Tests for prologue / kernel / epilogue code generation."""

import pytest

from repro.cgra.architecture import CGRA
from repro.core.codegen import generate_program
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.core.mapping import Mapping
from repro.dfg.graph import DFG, paper_running_example
from repro.exceptions import MappingError
from repro.kernels import get_kernel


def running_example_program():
    outcome = SatMapItMapper().map(paper_running_example(), CGRA.square(2))
    return outcome, generate_program(outcome.mapping, outcome.register_allocation)


class TestStageStructure:
    def test_kernel_is_ii_cycles_and_contains_every_node_once(self):
        outcome, program = running_example_program()
        assert program.kernel.num_cycles == outcome.ii
        assert program.kernel.num_instructions == outcome.mapping.dfg.num_nodes

    def test_kernel_matches_mapping_placements(self):
        outcome, program = running_example_program()
        for placement in outcome.mapping.placements.values():
            slot = program.kernel.rows[placement.cycle][placement.pe]
            assert slot is not None
            assert slot.node_id == placement.node_id

    def test_prologue_and_epilogue_lengths(self):
        outcome, program = running_example_program()
        mapping = outcome.mapping
        assert program.prologue.num_cycles == (mapping.num_kernel_iterations - 1) * outcome.ii
        assert program.epilogue.num_cycles == mapping.schedule_length - outcome.ii

    def test_prologue_plus_epilogue_cover_all_ramp_instructions(self):
        """Every instruction of the flat schedule outside one kernel instance
        appears exactly once in the prologue and once in the epilogue window
        that drains it."""
        outcome, program = running_example_program()
        mapping = outcome.mapping
        flat_before_steady = sum(
            1
            for placement in mapping.placements.values()
            for started in range(mapping.num_kernel_iterations - 1)
            if placement.flat_time(outcome.ii) + started * outcome.ii
            < program.prologue.num_cycles
        )
        assert program.prologue.num_instructions == flat_before_steady

    def test_registers_attached_when_allocation_given(self):
        outcome, program = running_example_program()
        allocated_nodes = set(outcome.register_allocation.assignment)
        recorded = {
            slot.node_id
            for row in program.kernel.rows
            for slot in row
            if slot is not None and slot.register is not None
        }
        assert recorded == allocated_nodes

    def test_total_cycles_formula(self):
        outcome, program = running_example_program()
        mapping = outcome.mapping
        in_flight = mapping.num_kernel_iterations
        for iterations in (in_flight, in_flight + 1, in_flight + 10):
            expected = mapping.schedule_length + (iterations - 1) * outcome.ii
            assert program.total_cycles(iterations) == expected

    def test_total_cycles_rejects_non_positive(self):
        _, program = running_example_program()
        with pytest.raises(MappingError):
            program.total_cycles(0)

    def test_render_contains_all_stages(self):
        _, program = running_example_program()
        text = program.render()
        assert "prologue" in text
        assert "kernel" in text
        assert "epilogue" in text


class TestCodegenOnKernels:
    @pytest.mark.parametrize("kernel", ["srand", "stringsearch"])
    def test_benchmark_kernel_codegen(self, kernel):
        outcome = SatMapItMapper(MapperConfig(timeout=60)).map(
            get_kernel(kernel), CGRA.square(3)
        )
        program = generate_program(outcome.mapping, outcome.register_allocation)
        assert program.kernel.num_instructions == outcome.mapping.dfg.num_nodes
        assert program.ii == outcome.ii

    def test_single_iteration_in_flight_has_empty_prologue(self):
        dfg = DFG.from_edge_list("flat", 4, [])
        outcome = SatMapItMapper().map(dfg, CGRA.square(2))
        program = generate_program(outcome.mapping)
        assert outcome.mapping.num_kernel_iterations == 1
        assert program.prologue.num_cycles == 0
        assert program.prologue.render().endswith("(empty)")


class TestErrors:
    def test_empty_mapping_rejected(self):
        mapping = Mapping(DFG.from_edge_list("one", 1, []), CGRA.square(2), ii=1)
        with pytest.raises(MappingError):
            generate_program(mapping)

    def test_illegal_mapping_rejected(self):
        dfg = DFG.from_edge_list("pair", 2, [(0, 1)])
        mapping = Mapping(dfg, CGRA.square(3), ii=2)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=8, cycle=1)  # not neighbours
        with pytest.raises(MappingError):
            generate_program(mapping)
