"""End-to-end tests for mapping on heterogeneous (capability-constrained) fabrics.

Covers the acceptance criteria of the capability refactor: kernels with
memory ops land their LOAD/STORE nodes on memory-capable PEs (validated by
the cycle-accurate simulator acting as a legality oracle), homogeneous
fabrics see a literal-identical encoding (same variable count, same II), and
infeasible opcode histograms fail fast with a clear error.
"""

import pytest

from repro.baselines import ExhaustiveMapper, PathSeekerMapper, RampMapper
from repro.baselines.base import BaselineConfig
from repro.cgra.architecture import CGRA
from repro.cgra.capabilities import ALL_OP_CLASSES, PEClass
from repro.cgra.presets import mem_edge_4x4, mul_sparse
from repro.core.encoder import EncoderConfig, MappingEncoder
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.core.mobility import KernelMobilitySchedule, MobilitySchedule
from repro.core.regalloc import allocate_registers
from repro.dfg.graph import DFG, OpClass, Opcode
from repro.exceptions import MappingError, SimulationError
from repro.kernels import get_kernel
from repro.simulator import CGRASimulator


def memory_chain():
    """load -> add -> store, plus a loop-carried accumulator."""
    dfg = DFG(name="memory_chain")
    dfg.add_node(0, Opcode.LOAD, name="ld")
    dfg.add_node(1, Opcode.ADD, name="acc")
    dfg.add_node(2, Opcode.STORE, name="st")
    dfg.add_edge(0, 1)
    dfg.add_edge(1, 2)
    dfg.add_edge(1, 1, distance=1)
    dfg.validate()
    return dfg


def encode(dfg, cgra, ii, slack=0, **kwargs):
    ms = MobilitySchedule.build(dfg, slack=slack)
    kms = KernelMobilitySchedule.build(ms, ii)
    return MappingEncoder(dfg, cgra, kms, EncoderConfig(**kwargs)).encode()


class TestEncoderPruning:
    def test_pruned_variables_counted(self):
        cgra = mem_edge_4x4()
        dfg = memory_chain()
        encoding = encode(dfg, cgra, ii=2, slack=1)
        # LOAD and STORE each lose the 4 interior PEs per KMS slot.
        assert encoding.stats.num_pruned_placements > 0
        for (node, pe, _cycle, _it) in encoding.variables:
            if dfg.node(node).opcode.is_memory:
                assert pe in cgra.pes_supporting(Opcode.LOAD)

    def test_homogeneous_encoding_is_literal_identical(self):
        """Explicit all-capable classes produce the exact classic encoding."""
        dfg = get_kernel("srand")
        plain = CGRA.square(3)
        classed = CGRA(
            rows=3, cols=3,
            pe_classes=(PEClass(name="full", capabilities=ALL_OP_CLASSES),),
            class_map=("full",) * 9,
        )
        a = encode(dfg, plain, ii=3)
        b = encode(dfg, classed, ii=3)
        assert a.stats.num_pruned_placements == 0
        assert b.stats.num_pruned_placements == 0
        assert a.stats.num_variables == b.stats.num_variables
        assert a.stats.num_clauses == b.stats.num_clauses
        assert set(a.variables) == set(b.variables)

    def test_homogeneous_final_ii_unchanged(self):
        dfg = get_kernel("srand")
        plain = SatMapItMapper(MapperConfig(timeout=60.0)).map(dfg, CGRA.square(2))
        classed_fabric = CGRA(
            rows=2, cols=2,
            pe_classes=(PEClass(name="full", capabilities=ALL_OP_CLASSES),),
            class_map=("full",) * 4,
        )
        classed = SatMapItMapper(MapperConfig(timeout=60.0)).map(dfg, classed_fabric)
        assert plain.success and classed.success
        assert plain.ii == classed.ii
        assert (
            plain.attempts[0].num_variables == classed.attempts[0].num_variables
        )


class TestHeterogeneousMapping:
    def test_memory_kernel_on_mem_edge_4x4(self):
        """The issue's acceptance scenario, validated by the simulator."""
        cgra = mem_edge_4x4()
        dfg = get_kernel("nw")  # 4 loads + 1 store
        outcome = SatMapItMapper(MapperConfig(timeout=120.0)).map(dfg, cgra)
        assert outcome.success
        mem_capable = set(cgra.pes_supporting(Opcode.LOAD))
        for node in dfg.nodes:
            if node.opcode.is_memory:
                assert outcome.mapping.placements[node.node_id].pe in mem_capable
        result = CGRASimulator(
            outcome.mapping, outcome.register_allocation
        ).run(num_iterations=3)
        assert result.success, result.errors

    def test_mul_sparse_constrains_multiplies(self):
        cgra = mul_sparse(4)
        dfg = get_kernel("srand")  # one MUL node
        outcome = SatMapItMapper(MapperConfig(timeout=120.0)).map(dfg, cgra)
        assert outcome.success
        dsp = set(cgra.pes_supporting(Opcode.MUL))
        for node in dfg.nodes:
            if node.opcode in (Opcode.MUL, Opcode.DIV):
                assert outcome.mapping.placements[node.node_id].pe in dsp

    def test_capability_mii_floor_enforced(self):
        # 3 memory nodes, one memory PE: II can never go below 3.
        dfg = DFG(name="three_loads")
        for node_id in range(3):
            dfg.add_node(node_id, Opcode.LOAD)
        dfg.add_node(3, Opcode.ADD)
        for node_id in range(3):
            dfg.add_edge(node_id, 3)
        classes = (
            PEClass(name="mem"),
            PEClass(name="alu", capabilities=frozenset({OpClass.ALU})),
        )
        cgra = CGRA(rows=2, cols=2, pe_classes=classes,
                    class_map=("mem", "alu", "alu", "alu"))
        outcome = SatMapItMapper(MapperConfig(timeout=60.0)).map(dfg, cgra)
        assert outcome.minimum_ii >= 3
        assert outcome.success
        assert outcome.ii >= 3

    def test_unmappable_kernel_raises_clear_error(self):
        classes = (PEClass(name="alu", capabilities=frozenset({OpClass.ALU})),)
        cgra = CGRA(rows=2, cols=2, pe_classes=classes, class_map=("alu",) * 4)
        with pytest.raises(MappingError, match="cannot fit"):
            SatMapItMapper(MapperConfig(timeout=10.0)).map(memory_chain(), cgra)

    def test_incremental_and_fresh_agree_on_heterogeneous_ii(self):
        cgra = mem_edge_4x4()
        dfg = memory_chain()
        incremental = SatMapItMapper(
            MapperConfig(timeout=60.0, incremental=True)
        ).map(dfg, cgra)
        fresh = SatMapItMapper(
            MapperConfig(timeout=60.0, incremental=False)
        ).map(dfg, cgra)
        assert incremental.success and fresh.success
        assert incremental.ii == fresh.ii


class TestBaselinesRespectCapabilities:
    @pytest.mark.parametrize("mapper_factory", [
        lambda: RampMapper(BaselineConfig(timeout=30.0)),
        lambda: PathSeekerMapper(BaselineConfig(timeout=30.0)),
    ])
    def test_heuristics_only_use_capable_pes(self, mapper_factory):
        cgra = mem_edge_4x4()
        dfg = get_kernel("nw")
        outcome = mapper_factory().map(dfg, cgra)
        if not outcome.success:
            pytest.skip("heuristic found no mapping inside the budget")
        mem_capable = set(cgra.pes_supporting(Opcode.LOAD))
        for node in dfg.nodes:
            if node.opcode.is_memory:
                assert outcome.mapping.placements[node.node_id].pe in mem_capable
        assert outcome.mapping.is_valid()

    def test_heuristics_raise_on_unmappable_histogram(self):
        classes = (PEClass(name="alu", capabilities=frozenset({OpClass.ALU})),)
        cgra = CGRA(rows=2, cols=2, pe_classes=classes, class_map=("alu",) * 4)
        with pytest.raises(MappingError, match="cannot fit"):
            RampMapper(BaselineConfig(timeout=5.0)).map(memory_chain(), cgra)

    def test_exhaustive_respects_capabilities(self):
        classes = (
            PEClass(name="mem"),
            PEClass(name="alu", capabilities=frozenset({OpClass.ALU})),
        )
        cgra = CGRA(rows=2, cols=2, pe_classes=classes,
                    class_map=("mem", "alu", "alu", "mem"))
        outcome = ExhaustiveMapper(timeout=30.0).map(memory_chain(), cgra)
        assert outcome.success
        for node in memory_chain().nodes:
            if node.opcode.is_memory:
                assert outcome.mapping.placements[node.node_id].pe in (0, 3)

    def test_exhaustive_and_sat_agree_on_optimal_heterogeneous_ii(self):
        classes = (
            PEClass(name="mem"),
            PEClass(name="alu", capabilities=frozenset({OpClass.ALU})),
        )
        cgra = CGRA(rows=2, cols=2, pe_classes=classes,
                    class_map=("mem", "alu", "alu", "mem"))
        dfg = memory_chain()
        oracle = ExhaustiveMapper(timeout=60.0, enforce_output_register=False).map(
            dfg, cgra
        )
        sat = SatMapItMapper(MapperConfig(timeout=60.0)).map(dfg, cgra)
        assert oracle.success and sat.success
        assert sat.ii == oracle.ii


class TestPerPERegisterFiles:
    def test_allocation_respects_small_register_file(self):
        # The accumulator chain keeps values live on whichever PE hosts them;
        # a 1-register class must be reported as the failing PE when
        # overloaded.
        dfg = DFG(name="fanout")
        dfg.add_node(0, Opcode.ADD)
        for node_id in (1, 2, 3):
            dfg.add_node(node_id, Opcode.ADD)
            dfg.add_edge(0, node_id)
        classes = (PEClass(name="tiny", registers=1),)
        cgra = CGRA(rows=1, cols=2, registers_per_pe=4,
                    pe_classes=classes, class_map=("tiny", "tiny"))
        from repro.core.mapping import Mapping

        mapping = Mapping(dfg=dfg, cgra=cgra, ii=2)
        mapping.place(0, 0, 0, 0)
        mapping.place(1, 1, 0, 0)  # consumed late -> long live range
        mapping.place(2, 0, 1, 1)
        mapping.place(3, 1, 1, 1)
        allocation = allocate_registers(dfg, cgra, mapping, True)
        assert not allocation.success
        assert allocation.failed_pe == 0

    def test_heterogeneous_register_files_in_allocation(self):
        # Same mapping, but the producer sits on an 8-register PE: fits.
        dfg = DFG(name="fanout")
        dfg.add_node(0, Opcode.ADD)
        for node_id in (1, 2, 3):
            dfg.add_node(node_id, Opcode.ADD)
            dfg.add_edge(0, node_id)
        classes = (PEClass(name="fat", registers=8),
                   PEClass(name="tiny", registers=1))
        cgra = CGRA(rows=1, cols=2, pe_classes=classes,
                    class_map=("fat", "tiny"))
        from repro.core.mapping import Mapping

        mapping = Mapping(dfg=dfg, cgra=cgra, ii=2)
        mapping.place(0, 0, 0, 0)
        mapping.place(1, 1, 0, 0)
        mapping.place(2, 0, 1, 1)
        mapping.place(3, 1, 1, 1)
        allocation = allocate_registers(dfg, cgra, mapping, True)
        assert allocation.success


class TestSimulatorLegalityOracle:
    def test_simulator_raises_on_incapable_pe(self):
        classes = (
            PEClass(name="mem"),
            PEClass(name="alu", capabilities=frozenset({OpClass.ALU})),
        )
        cgra = CGRA(rows=1, cols=3, pe_classes=classes,
                    class_map=("mem", "alu", "alu"))
        dfg = memory_chain()
        from repro.core.mapping import Mapping

        mapping = Mapping(dfg=dfg, cgra=cgra, ii=3)
        mapping.place(0, 1, 0, 0)  # LOAD on an ALU-only PE
        mapping.place(1, 1, 1, 0)
        mapping.place(2, 0, 2, 0)
        with pytest.raises(SimulationError, match="only implements"):
            CGRASimulator(mapping).run(num_iterations=2)

    def test_violations_flag_capability_breaches(self):
        classes = (PEClass(name="alu", capabilities=frozenset({OpClass.ALU})),)
        cgra = CGRA(rows=1, cols=2, pe_classes=classes, class_map=("alu", "alu"))
        dfg = DFG(name="one_load")
        dfg.add_node(0, Opcode.LOAD)
        from repro.core.mapping import Mapping

        mapping = Mapping(dfg=dfg, cgra=cgra, ii=1)
        mapping.place(0, 0, 0, 0)
        problems = mapping.violations()
        assert any("only implements" in problem for problem in problems)
