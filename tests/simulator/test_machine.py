"""Tests for the cycle-accurate mapping simulator."""

import pytest

from repro.baselines import PathSeekerMapper, RampMapper
from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.core.mapping import Mapping
from repro.dfg.graph import DFG, paper_running_example
from repro.exceptions import SimulationError
from repro.frontend import compile_loop
from repro.kernels import get_kernel
from repro.simulator.machine import CGRASimulator


def simulate_outcome(outcome, iterations=4):
    simulator = CGRASimulator(outcome.mapping, outcome.register_allocation)
    return simulator.run(iterations)


class TestLegalMappingsSimulateCleanly:
    def test_running_example_sat_mapping(self):
        outcome = SatMapItMapper().map(paper_running_example(), CGRA.square(2))
        result = simulate_outcome(outcome)
        assert result.success, result.errors
        assert result.checked_transfers > 0
        assert result.iterations == 4

    @pytest.mark.parametrize("kernel", ["srand", "stringsearch", "basicmath"])
    def test_benchmark_kernels_on_3x3(self, kernel):
        outcome = SatMapItMapper(MapperConfig(timeout=60)).map(
            get_kernel(kernel), CGRA.square(3)
        )
        assert outcome.success
        result = simulate_outcome(outcome)
        assert result.success, result.errors

    def test_compiled_loop_simulation_matches_reference_values(self):
        dfg = compile_loop("acc = acc + a[i]", name="sum")
        outcome = SatMapItMapper().map(dfg, CGRA.square(2))
        result = simulate_outcome(outcome, iterations=5)
        assert result.success, result.errors
        # Spot-check: the recorded values are the golden model's values.
        from repro.simulator.reference import interpret_dfg

        history = interpret_dfg(dfg, 5)
        for (node, iteration), value in result.values.items():
            assert history[iteration][node] == value

    @pytest.mark.parametrize("mapper_cls", [RampMapper, PathSeekerMapper])
    def test_heuristic_mappings_also_simulate(self, mapper_cls):
        outcome = mapper_cls().map(paper_running_example(), CGRA.square(2))
        assert outcome.success
        result = simulate_outcome(outcome)
        assert result.success, result.errors


class TestIllegalMappingsAreCaught:
    def _legal_outcome(self):
        return SatMapItMapper().map(paper_running_example(), CGRA.square(2))

    def test_non_neighbour_transfer_detected(self):
        dfg = DFG.from_edge_list("pair", 2, [(0, 1)])
        mapping = Mapping(dfg, CGRA.square(3), ii=2)
        mapping.place(0, pe=0, cycle=0)          # corner
        mapping.place(1, pe=8, cycle=1)          # opposite corner
        result = CGRASimulator(mapping).run(2)
        assert not result.success
        assert any("cannot reach" in error for error in result.errors)

    def test_stale_output_register_detected_in_strict_model(self):
        # Producer's output register is clobbered before the neighbour reads.
        # Only the strict transfer model (no neighbour register-file access)
        # is sensitive to this.
        dfg = DFG.from_edge_list("triple", 3, [(0, 2)])
        mapping = Mapping(dfg, CGRA.square(2), ii=3)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=0, cycle=1)   # clobbers PE0 output register
        mapping.place(2, pe=1, cycle=2)   # neighbour reads too late
        relaxed = CGRASimulator(mapping).run(3)
        assert relaxed.success
        strict = CGRASimulator(mapping, neighbour_register_file_access=False).run(3)
        assert not strict.success
        assert any("finds value of node" in error for error in strict.errors)

    def test_value_not_yet_produced_detected(self):
        dfg = DFG.from_edge_list("pair", 2, [(0, 1)])
        mapping = Mapping(dfg, CGRA.square(2), ii=2)
        # Consumer scheduled before producer in flat time: mapping.violations
        # would flag it; the simulator reports the missing value as well.
        mapping.place(0, pe=0, cycle=1)
        mapping.place(1, pe=1, cycle=0)
        result = CGRASimulator(mapping).run(2)
        assert not result.success

    def test_double_booked_pe_detected(self):
        dfg = DFG.from_edge_list("two", 2, [])
        mapping = Mapping(dfg, CGRA.square(2), ii=1)
        mapping.place(0, pe=0, cycle=0)
        mapping.place(1, pe=0, cycle=0)
        result = CGRASimulator(mapping).run(1)
        assert not result.success
        assert any("simultaneously" in error for error in result.errors)


class TestSimulatorInterface:
    def test_empty_mapping_rejected(self):
        mapping = Mapping(DFG.from_edge_list("one", 1, []), CGRA.square(2), ii=1)
        with pytest.raises(SimulationError):
            CGRASimulator(mapping)

    def test_zero_iterations_rejected(self):
        outcome = SatMapItMapper().map(paper_running_example(), CGRA.square(2))
        simulator = CGRASimulator(outcome.mapping)
        with pytest.raises(SimulationError):
            simulator.run(0)

    def test_result_repr(self):
        outcome = SatMapItMapper().map(paper_running_example(), CGRA.square(2))
        result = CGRASimulator(outcome.mapping, outcome.register_allocation).run(2)
        assert "SimulationResult" in repr(result)

    def test_simulation_without_register_allocation(self):
        outcome = SatMapItMapper(MapperConfig(run_register_allocation=False)).map(
            paper_running_example(), CGRA.square(2)
        )
        result = CGRASimulator(outcome.mapping).run(3)
        assert result.success, result.errors
