"""Tests for the golden-model DFG interpreter."""

import pytest

from repro.dfg.graph import DFG, Opcode
from repro.exceptions import SimulationError
from repro.frontend import compile_loop
from repro.simulator.reference import ReferenceInterpreter, default_memory, interpret_dfg

MASK32 = 0xFFFFFFFF


def binary_dfg(opcode: Opcode, a: int, b: int) -> DFG:
    dfg = DFG(name=f"test_{opcode.value}")
    dfg.add_node(0, Opcode.CONST, constant=a)
    dfg.add_node(1, Opcode.CONST, constant=b)
    dfg.add_node(2, opcode)
    dfg.add_edge(0, 2, operand_index=0)
    dfg.add_edge(1, 2, operand_index=1)
    return dfg


class TestOpcodeSemantics:
    @pytest.mark.parametrize("opcode,a,b,expected", [
        (Opcode.ADD, 3, 4, 7),
        (Opcode.SUB, 3, 4, (3 - 4) & MASK32),
        (Opcode.MUL, 6, 7, 42),
        (Opcode.DIV, 42, 5, 8),
        (Opcode.DIV, 42, 0, 0),
        (Opcode.AND, 0b1100, 0b1010, 0b1000),
        (Opcode.OR, 0b1100, 0b1010, 0b1110),
        (Opcode.XOR, 0b1100, 0b1010, 0b0110),
        (Opcode.SHL, 1, 4, 16),
        (Opcode.SHR, 256, 4, 16),
        (Opcode.SHL, 1, 33, 2),  # shift amounts masked to 5 bits
        (Opcode.LT, 3, 4, 1),
        (Opcode.LT, 4, 3, 0),
        (Opcode.GT, 4, 3, 1),
        (Opcode.EQ, 5, 5, 1),
        (Opcode.EQ, 5, 6, 0),
    ])
    def test_binary_operations(self, opcode, a, b, expected):
        history = interpret_dfg(binary_dfg(opcode, a, b), 1)
        assert history[0][2] == expected

    def test_arithmetic_wraps_to_32_bits(self):
        history = interpret_dfg(binary_dfg(Opcode.MUL, MASK32, 2), 1)
        assert history[0][2] == (MASK32 * 2) & MASK32

    def test_signed_comparison(self):
        # -1 (0xffffffff) < 1 in signed arithmetic.
        history = interpret_dfg(binary_dfg(Opcode.LT, MASK32, 1), 1)
        assert history[0][2] == 1

    def test_select(self):
        dfg = DFG(name="select")
        dfg.add_node(0, Opcode.CONST, constant=1)
        dfg.add_node(1, Opcode.CONST, constant=10)
        dfg.add_node(2, Opcode.CONST, constant=20)
        dfg.add_node(3, Opcode.SELECT)
        dfg.add_edge(0, 3, operand_index=0)
        dfg.add_edge(1, 3, operand_index=1)
        dfg.add_edge(2, 3, operand_index=2)
        assert interpret_dfg(dfg, 1)[0][3] == 10

    def test_named_constant_is_stable(self):
        dfg = DFG(name="inv")
        dfg.add_node(0, Opcode.CONST, name="gain")
        first = interpret_dfg(dfg, 2)
        assert first[0][0] == first[1][0]


class TestMemory:
    def test_load_uses_default_memory(self):
        dfg = DFG(name="load")
        dfg.add_node(0, Opcode.CONST, constant=100)
        dfg.add_node(1, Opcode.LOAD)
        dfg.add_edge(0, 1)
        assert interpret_dfg(dfg, 1)[0][1] == default_memory(100)

    def test_load_uses_provided_memory(self):
        dfg = DFG(name="load")
        dfg.add_node(0, Opcode.CONST, constant=5)
        dfg.add_node(1, Opcode.LOAD)
        dfg.add_edge(0, 1)
        assert interpret_dfg(dfg, 1, memory={5: 99})[0][1] == 99

    def test_store_then_load(self):
        dfg = DFG(name="store_load")
        dfg.add_node(0, Opcode.CONST, constant=8)   # address
        dfg.add_node(1, Opcode.CONST, constant=42)  # value
        dfg.add_node(2, Opcode.STORE)
        dfg.add_node(3, Opcode.LOAD)
        dfg.add_edge(0, 2, operand_index=0)
        dfg.add_edge(1, 2, operand_index=1)
        dfg.add_edge(0, 3, operand_index=0)
        dfg.add_edge(2, 3, operand_index=1)  # memory ordering edge
        history = interpret_dfg(dfg, 1)
        assert history[0][3] == 42


class TestLoopCarried:
    def test_accumulator_sums_across_iterations(self):
        dfg = compile_loop("acc = acc + 2", include_induction_variable=False)
        interpreter = ReferenceInterpreter(dfg)
        history = interpreter.run(4)
        adds = [n for n in dfg.nodes if n.opcode == Opcode.ADD]
        accumulator = adds[0].node_id
        values = [history[k][accumulator] for k in range(4)]
        assert values == [2, 4, 6, 8]

    def test_induction_variable_counts_iterations(self):
        dfg = compile_loop("out[i] = i")
        interpreter = ReferenceInterpreter(dfg)
        history = interpreter.run(3)
        phi = next(n for n in dfg.nodes if n.opcode == Opcode.PHI and n.name == "i")
        assert [history[k][phi.node_id] for k in range(3)] == [0, 1, 2]

    def test_initial_values_respected(self):
        dfg = compile_loop("acc = acc + 1", include_induction_variable=False)
        phi = next(n for n in dfg.nodes if n.opcode == Opcode.PHI)
        interpreter = ReferenceInterpreter(dfg, initial_values={phi.node_id: 100})
        history = interpreter.run(2)
        adds = [n for n in dfg.nodes if n.opcode == Opcode.ADD]
        assert history[0][adds[0].node_id] == 101

    def test_value_helper_for_negative_iteration(self):
        dfg = compile_loop("acc = acc + 1", include_induction_variable=False)
        phi = next(n for n in dfg.nodes if n.opcode == Opcode.PHI)
        interpreter = ReferenceInterpreter(dfg, initial_values={phi.node_id: 7})
        history = interpreter.run(1)
        assert interpreter.value(history, phi.node_id, -1) == 7
        assert interpreter.value(history, phi.node_id, 0) == history[0][phi.node_id]


class TestErrors:
    def test_negative_iterations_rejected(self):
        with pytest.raises(SimulationError):
            interpret_dfg(DFG(), -1)

    def test_zero_iterations(self):
        assert interpret_dfg(compile_loop("x = 1 + 2"), 0) == []

    def test_all_benchmark_kernels_interpretable(self):
        from repro.kernels import all_kernels

        for name, dfg in all_kernels().items():
            history = interpret_dfg(dfg, 3)
            assert len(history) == 3
            assert all(len(values) == dfg.num_nodes for values in history)
