"""Tests for the loop-kernel parser."""

import pytest

from repro.exceptions import FrontendError
from repro.frontend.ast_nodes import (
    ArrayAssign,
    ArrayRef,
    BinaryOp,
    Number,
    ScalarAssign,
    Select,
    Variable,
)
from repro.frontend.parser import parse_program


class TestStatements:
    def test_scalar_assignment(self):
        program = parse_program("x = 1")
        assert program.statements == (ScalarAssign("x", Number(1)),)

    def test_array_assignment(self):
        program = parse_program("out[i] = 3")
        statement = program.statements[0]
        assert isinstance(statement, ArrayAssign)
        assert statement.array == "out"
        assert statement.index == Variable("i")
        assert statement.value == Number(3)

    def test_multiple_statements(self):
        program = parse_program("a = 1\nb = a + 2; c = b")
        assert len(program.statements) == 3
        assert program.assigned_scalars == {"a", "b", "c"}

    def test_empty_program_rejected(self):
        with pytest.raises(FrontendError):
            parse_program("\n\n# only comments\n")

    def test_missing_assignment_rejected(self):
        with pytest.raises(FrontendError):
            parse_program("a + 1")

    def test_unclosed_bracket_rejected(self):
        with pytest.raises(FrontendError):
            parse_program("out[i = 3")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        statement = parse_program("x = a + b * c").statements[0]
        assert statement.value == BinaryOp(
            "+", Variable("a"), BinaryOp("*", Variable("b"), Variable("c"))
        )

    def test_precedence_shift_below_add(self):
        statement = parse_program("x = a << b + c").statements[0]
        assert statement.value == BinaryOp(
            "<<", Variable("a"), BinaryOp("+", Variable("b"), Variable("c"))
        )

    def test_left_associativity(self):
        statement = parse_program("x = a - b - c").statements[0]
        assert statement.value == BinaryOp(
            "-", BinaryOp("-", Variable("a"), Variable("b")), Variable("c")
        )

    def test_parentheses_override_precedence(self):
        statement = parse_program("x = (a + b) * c").statements[0]
        assert statement.value == BinaryOp(
            "*", BinaryOp("+", Variable("a"), Variable("b")), Variable("c")
        )

    def test_unary_minus_becomes_zero_minus(self):
        statement = parse_program("x = -a").statements[0]
        assert statement.value == BinaryOp("-", Number(0), Variable("a"))

    def test_array_reference_with_expression_index(self):
        statement = parse_program("x = a[i + 1]").statements[0]
        assert statement.value == ArrayRef(
            "a", BinaryOp("+", Variable("i"), Number(1))
        )

    def test_ternary(self):
        statement = parse_program("x = a > b ? a : b").statements[0]
        value = statement.value
        assert isinstance(value, Select)
        assert value.condition == BinaryOp(">", Variable("a"), Variable("b"))
        assert value.if_true == Variable("a")
        assert value.if_false == Variable("b")

    def test_nested_ternary(self):
        statement = parse_program("x = a ? b : c ? d : e").statements[0]
        value = statement.value
        assert isinstance(value, Select)
        assert isinstance(value.if_false, Select)

    def test_comparison_chain(self):
        statement = parse_program("x = a < b == c").statements[0]
        assert isinstance(statement.value, BinaryOp)

    def test_bitwise_operators(self):
        statement = parse_program("x = a & b | c ^ d").statements[0]
        assert statement.value.operator == "|"

    def test_unexpected_token_rejected(self):
        with pytest.raises(FrontendError):
            parse_program("x = ?")

    def test_missing_colon_in_ternary_rejected(self):
        with pytest.raises(FrontendError):
            parse_program("x = a ? b  c")
