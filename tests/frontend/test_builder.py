"""Tests for the AST -> DFG lowering."""

import pytest

from repro.dfg.graph import Opcode
from repro.exceptions import FrontendError
from repro.frontend import compile_loop


def opcodes(dfg) -> list[Opcode]:
    return [node.opcode for node in dfg.nodes]


class TestBasicLowering:
    def test_single_statement(self):
        dfg = compile_loop("x = a + b", include_induction_variable=False)
        assert opcodes(dfg).count(Opcode.ADD) == 1
        assert opcodes(dfg).count(Opcode.CONST) == 2  # invariants a and b
        dfg.validate()

    def test_dfg_is_named(self):
        dfg = compile_loop("x = 1 + 2", name="my_kernel")
        assert dfg.name == "my_kernel"

    def test_constants_are_shared(self):
        dfg = compile_loop("x = a + 5\ny = b + 5", include_induction_variable=False)
        constant_nodes = [n for n in dfg.nodes if n.constant == 5]
        assert len(constant_nodes) == 1

    def test_scalar_reuse_connects_to_same_node(self):
        dfg = compile_loop("t = a + b\nu = t + t", include_induction_variable=False)
        add_nodes = [n for n in dfg.nodes if n.opcode is Opcode.ADD]
        assert len(add_nodes) == 2
        second = add_nodes[1]
        predecessors = dfg.predecessors(second.node_id)
        assert len(predecessors) == 2
        assert {e.src for e in predecessors} == {add_nodes[0].node_id}

    def test_binary_operator_mapping(self):
        dfg = compile_loop("x = (a * b) >> (c ^ d)", include_induction_variable=False)
        kinds = opcodes(dfg)
        assert Opcode.MUL in kinds
        assert Opcode.SHR in kinds
        assert Opcode.XOR in kinds

    def test_select_lowering(self):
        dfg = compile_loop("x = a > b ? a : b", include_induction_variable=False)
        select_nodes = [n for n in dfg.nodes if n.opcode is Opcode.SELECT]
        assert len(select_nodes) == 1
        assert len(dfg.predecessors(select_nodes[0].node_id)) == 3


class TestMemory:
    def test_array_read_becomes_load(self):
        dfg = compile_loop("x = a[i]")
        assert Opcode.LOAD in opcodes(dfg)

    def test_array_write_becomes_store(self):
        dfg = compile_loop("out[i] = 3")
        stores = [n for n in dfg.nodes if n.opcode is Opcode.STORE]
        assert len(stores) == 1
        assert len(dfg.predecessors(stores[0].node_id)) == 2  # index + value

    def test_load_after_store_same_array_ordered(self):
        dfg = compile_loop("out[i] = a\nx = out[i]", include_induction_variable=False)
        store = next(n for n in dfg.nodes if n.opcode is Opcode.STORE)
        load = next(n for n in dfg.nodes if n.opcode is Opcode.LOAD and "out" in n.name)
        assert any(e.src == store.node_id and e.distance == 0
                   for e in dfg.predecessors(load.node_id))

    def test_store_to_next_iteration_load_dependency(self):
        dfg = compile_loop("x = buf[i]\nbuf[i] = x + 1", include_induction_variable=False)
        store = next(n for n in dfg.nodes if n.opcode is Opcode.STORE)
        load = next(n for n in dfg.nodes if n.opcode is Opcode.LOAD)
        assert any(e.dst == load.node_id and e.distance == 1
                   for e in dfg.successors(store.node_id))


class TestLoopCarried:
    def test_accumulator_creates_phi_with_back_edge(self):
        dfg = compile_loop("acc = acc + a[i]")
        phis = [n for n in dfg.nodes if n.opcode is Opcode.PHI and n.name == "acc"]
        assert len(phis) == 1
        back = [e for e in dfg.back_edges() if e.dst == phis[0].node_id]
        assert len(back) == 1

    def test_accumulator_recurrence_is_cycle(self):
        from repro.dfg.analysis import recurrence_mii

        dfg = compile_loop("acc = acc + 1", include_induction_variable=False)
        assert recurrence_mii(dfg) >= 2

    def test_induction_variable_included_by_default(self):
        dfg = compile_loop("out[i] = a[i]")
        phis = [n for n in dfg.nodes if n.opcode is Opcode.PHI and n.name == "i"]
        assert len(phis) == 1
        # i_next = i + 1 with a distance-1 back edge to the phi.
        assert any(e.dst == phis[0].node_id for e in dfg.back_edges())

    def test_variable_written_before_read_is_not_loop_carried(self):
        dfg = compile_loop("t = a[i]\nu = t + 1")
        named_phis = [n for n in dfg.nodes if n.opcode is Opcode.PHI and n.name == "t"]
        assert not named_phis

    def test_scalar_never_written_is_invariant(self):
        dfg = compile_loop("x = gain * 3", include_induction_variable=False)
        invariants = [n for n in dfg.nodes if n.opcode is Opcode.CONST and n.name == "gain"]
        assert len(invariants) == 1


class TestValidity:
    def test_all_kernels_valid(self):
        source = """
        t = a[i] + b[i]
        acc = acc + t * 3
        c[i] = t >> 2
        """
        dfg = compile_loop(source)
        dfg.validate()
        assert dfg.num_nodes > 5

    def test_every_non_source_node_has_operands(self):
        dfg = compile_loop("x = a[i] * b[i] + c[i]")
        for node in dfg.nodes:
            if node.opcode in (Opcode.ADD, Opcode.MUL):
                assert len(dfg.predecessors(node.node_id)) == 2

    def test_unsupported_operator_rejected(self):
        # '%' maps to DIV; build something genuinely unsupported via a hack.
        with pytest.raises(FrontendError):
            compile_loop("x = ")
