"""Tests for the loop-kernel lexer."""

import pytest

from repro.exceptions import FrontendError
from repro.frontend.lexer import Token, TokenKind, tokenize


def kinds(source: str) -> list[TokenKind]:
    return [token.kind for token in tokenize(source)]


def texts(source: str) -> list[str]:
    return [token.text for token in tokenize(source) if token.kind is not TokenKind.END]


class TestBasicTokens:
    def test_empty_source_yields_end(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.END

    def test_identifier_and_number(self):
        assert texts("acc 42") == ["acc", "42"]
        assert kinds("acc 42")[:2] == [TokenKind.IDENT, TokenKind.NUMBER]

    def test_identifier_with_underscores_and_digits(self):
        assert texts("foo_bar2") == ["foo_bar2"]

    def test_assignment_vs_equality(self):
        tokens = tokenize("a = b == c")
        assert [t.kind for t in tokens[:5]] == [
            TokenKind.IDENT, TokenKind.ASSIGN, TokenKind.IDENT,
            TokenKind.OPERATOR, TokenKind.IDENT,
        ]
        assert tokens[3].text == "=="

    def test_multi_character_operators(self):
        assert texts("a << 2 >> 3 <= 4 >= 5 != 6") == [
            "a", "<<", "2", ">>", "3", "<=", "4", ">=", "5", "!=", "6"
        ]

    def test_brackets_and_parens(self):
        assert kinds("a[i] (b)")[:7] == [
            TokenKind.IDENT, TokenKind.LBRACKET, TokenKind.IDENT,
            TokenKind.RBRACKET, TokenKind.LPAREN, TokenKind.IDENT,
            TokenKind.RPAREN,
        ]

    def test_ternary_tokens(self):
        assert kinds("a ? b : c")[:5] == [
            TokenKind.IDENT, TokenKind.QUESTION, TokenKind.IDENT,
            TokenKind.COLON, TokenKind.IDENT,
        ]


class TestSeparatorsAndComments:
    def test_newlines_and_semicolons_are_separators(self):
        assert kinds("a = 1\nb = 2; c = 3").count(TokenKind.NEWLINE) == 2

    def test_comments_ignored(self):
        assert texts("a = 1 # set a\n# full line comment\nb = 2") == [
            "a", "=", "1", "\n", "\n", "b", "=", "2"
        ]

    def test_whitespace_ignored(self):
        assert texts("  a\t=  1 ") == ["a", "=", "1"]


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("a = 1\nb = 2")
        b_token = next(t for t in tokens if t.text == "b")
        assert b_token.line == 2

    def test_token_repr(self):
        token = Token(TokenKind.IDENT, "x", 1, 1)
        assert "ident" in repr(token)


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(FrontendError):
            tokenize("a = @")

    def test_stray_exclamation(self):
        with pytest.raises(FrontendError):
            tokenize("a = !b")
