"""Tests for the heterogeneous capability model (PE classes, specs, presets)."""

import pytest

from repro.cgra.architecture import CGRA
from repro.cgra.capabilities import (
    ALL_OP_CLASSES,
    PEClass,
    capability_resource_mii,
    check_kernel_fits,
    effective_minimum_ii,
    opcode_class_histogram,
)
from repro.cgra.presets import (
    arch_preset_names,
    get_arch_preset,
    hycube_like,
    mem_edge,
    mem_edge_4x4,
    mul_sparse,
)
from repro.cgra.topology import Topology
from repro.dfg.graph import DFG, OpClass, Opcode
from repro.exceptions import ArchitectureError, MappingError


def two_class_fabric(rows=2, cols=2, mem_pes=(0,), registers=4, mem_registers=None):
    """Tiny fabric where only ``mem_pes`` can touch memory."""
    classes = (
        PEClass(name="mem", capabilities=ALL_OP_CLASSES, registers=mem_registers),
        PEClass(name="alu", capabilities=frozenset({OpClass.ALU})),
    )
    class_map = tuple(
        "mem" if index in mem_pes else "alu" for index in range(rows * cols)
    )
    return CGRA(rows=rows, cols=cols, registers_per_pe=registers,
                pe_classes=classes, class_map=class_map)


class TestOpClass:
    def test_memory_opcodes(self):
        assert Opcode.LOAD.op_class is OpClass.MEM
        assert Opcode.STORE.op_class is OpClass.MEM

    def test_expensive_units(self):
        assert Opcode.MUL.op_class is OpClass.MUL
        assert Opcode.DIV.op_class is OpClass.DIV

    def test_everything_else_is_alu(self):
        for opcode in Opcode:
            if opcode in (Opcode.LOAD, Opcode.STORE, Opcode.MUL, Opcode.DIV):
                continue
            assert opcode.op_class is OpClass.ALU


class TestPEClass:
    def test_rejects_empty_capabilities(self):
        with pytest.raises(ArchitectureError):
            PEClass(name="x", capabilities=frozenset())

    def test_rejects_bad_register_count(self):
        with pytest.raises(ArchitectureError):
            PEClass(name="x", registers=0)

    def test_from_spec_rejects_unknown_capability(self):
        with pytest.raises(ArchitectureError, match="unknown capability"):
            PEClass.from_spec("x", {"capabilities": ["alu", "tensor"]})

    def test_spec_round_trip(self):
        original = PEClass(name="mem", capabilities=frozenset({OpClass.ALU, OpClass.MEM}),
                           registers=8)
        rebuilt = PEClass.from_spec("mem", original.to_spec())
        assert rebuilt == original


class TestHeterogeneousCGRA:
    def test_homogeneous_by_default(self):
        cgra = CGRA.square(3)
        assert cgra.is_homogeneous
        for pe in cgra.pes:
            assert pe.capabilities == ALL_OP_CLASSES
            assert pe.supports(Opcode.LOAD)

    def test_capabilities_assigned_per_pe(self):
        cgra = two_class_fabric(mem_pes=(0, 3))
        assert not cgra.is_homogeneous
        assert cgra.pe(0).supports(Opcode.STORE)
        assert not cgra.pe(1).supports(Opcode.STORE)
        assert cgra.pe(1).supports(Opcode.ADD)
        assert cgra.capable_pes(OpClass.MEM) == (0, 3)
        assert cgra.capable_pes(OpClass.ALU) == (0, 1, 2, 3)
        assert cgra.pes_supporting(Opcode.LOAD) == (0, 3)

    def test_per_class_register_override(self):
        cgra = two_class_fabric(mem_registers=8)
        assert cgra.pe(0).num_registers == 8
        assert cgra.pe(1).num_registers == 4

    def test_class_map_length_checked(self):
        with pytest.raises(ArchitectureError, match="class_map"):
            CGRA(rows=2, cols=2, pe_classes=(PEClass(name="a"),),
                 class_map=("a", "a", "a"))

    def test_unknown_class_name_rejected(self):
        with pytest.raises(ArchitectureError, match="undeclared"):
            CGRA(rows=1, cols=2, pe_classes=(PEClass(name="a"),),
                 class_map=("a", "b"))

    def test_describe_mentions_heterogeneity(self):
        description = two_class_fabric().describe()
        assert "heterogeneous" in description
        assert "mem:1" in description


class TestSymmetriesWithCapabilities:
    def test_homogeneous_symmetries_unchanged(self):
        assert len(CGRA.square(3).symmetries) == 8

    def test_capability_breaking_layout_filters_symmetries(self):
        # Memory only on corner PE 0 of a 2x2: only the automorphisms fixing
        # that corner survive — the identity and the main-diagonal transpose.
        cgra = two_class_fabric(mem_pes=(0,))
        assert set(cgra.symmetries) == {(0, 1, 2, 3), (0, 2, 1, 3)}

    def test_symmetric_layout_keeps_matching_automorphisms(self):
        # Memory on the full left column of a 2x2: the vertical flip
        # preserves the layout, the horizontal one does not.
        cgra = two_class_fabric(mem_pes=(0, 2))
        for permutation in cgra.symmetries:
            for pe in range(cgra.num_pes):
                assert (
                    cgra.pe(permutation[pe]).capabilities == cgra.pe(pe).capabilities
                )
        assert len(cgra.symmetries) >= 2

    def test_fundamental_domain_respects_capabilities(self):
        cgra = mem_edge_4x4()
        domain = set(cgra.symmetry_fundamental_domain())
        for pe in range(cgra.num_pes):
            orbit = {permutation[pe] for permutation in cgra.symmetries}
            assert orbit & domain

    def test_full_topology_heterogeneous_domain(self):
        classes = (PEClass(name="mem"), PEClass(name="alu",
                                                capabilities=frozenset({OpClass.ALU})))
        cgra = CGRA(rows=2, cols=2, topology=Topology.FULL, pe_classes=classes,
                    class_map=("mem", "alu", "alu", "alu"))
        # One representative per capability signature.
        assert cgra.symmetry_fundamental_domain() == (0, 1)

    def test_torus_translations_are_symmetries(self):
        cgra = CGRA.square(3, topology="torus")
        assert len(cgra.symmetries) > 8
        for permutation in cgra.symmetries:
            assert sorted(permutation) == list(range(9))


class TestSpecs:
    SPEC = {
        "name": "edge_demo",
        "rows": 3,
        "cols": 3,
        "registers_per_pe": 4,
        "topology": "mesh",
        "pe_classes": {
            "edge": {"capabilities": ["alu", "mul", "div", "mem"]},
            "core": {"capabilities": ["alu", "mul"], "registers": 2},
        },
        "assignment": [
            ["edge", "edge", "edge"],
            ["edge", "core", "edge"],
            ["edge", "edge", "edge"],
        ],
    }

    def test_from_spec(self):
        cgra = CGRA.from_spec(self.SPEC)
        assert cgra.name == "edge_demo"
        assert not cgra.is_homogeneous
        centre = cgra.pe_index((1, 1))
        assert not cgra.pe(centre).supports(Opcode.LOAD)
        assert cgra.pe(centre).num_registers == 2

    def test_spec_round_trip(self):
        cgra = CGRA.from_spec(self.SPEC)
        assert CGRA.from_spec(cgra.to_spec()) == cgra

    def test_homogeneous_round_trip(self):
        cgra = CGRA.square(4, topology="torus")
        assert CGRA.from_spec(cgra.to_spec()) == cgra

    def test_flat_assignment_accepted(self):
        spec = dict(self.SPEC)
        spec["assignment"] = [name for row in self.SPEC["assignment"] for name in row]
        assert CGRA.from_spec(spec) == CGRA.from_spec(self.SPEC)

    def test_default_class_fills_assignment(self):
        spec = {
            "rows": 2, "cols": 2,
            "pe_classes": {"everything": {"capabilities": ["alu", "mem", "mul", "div"]}},
            "default_class": "everything",
        }
        cgra = CGRA.from_spec(spec)
        assert cgra.class_map == ("everything",) * 4

    def test_classes_without_assignment_rejected(self):
        spec = {"rows": 2, "cols": 2, "pe_classes": {"a": {"capabilities": ["alu"]}}}
        with pytest.raises(ArchitectureError, match="assignment"):
            CGRA.from_spec(spec)

    def test_wrong_grid_shape_rejected(self):
        spec = dict(self.SPEC)
        spec["assignment"] = [["edge", "edge"], ["edge", "core"]]
        with pytest.raises(ArchitectureError, match="assignment grid"):
            CGRA.from_spec(spec)

    def test_from_spec_file(self, tmp_path):
        import json

        path = tmp_path / "arch.json"
        path.write_text(json.dumps(self.SPEC))
        assert CGRA.from_spec_file(str(path)) == CGRA.from_spec(self.SPEC)

    def test_bad_json_reported(self, tmp_path):
        path = tmp_path / "arch.json"
        path.write_text("{not json")
        with pytest.raises(ArchitectureError, match="not valid JSON"):
            CGRA.from_spec_file(str(path))


class TestPresets:
    def test_registry_names(self):
        assert set(arch_preset_names()) == {"hycube_like", "mem_edge_4x4", "mul_sparse"}

    def test_unknown_preset(self):
        with pytest.raises(ArchitectureError, match="unknown architecture preset"):
            get_arch_preset("nope")

    def test_hycube_like_memory_on_left_column(self):
        cgra = hycube_like()
        for pe in cgra.pes:
            assert pe.supports(Opcode.LOAD) == (pe.col == 0)
            assert pe.supports(Opcode.MUL)

    def test_mem_edge_interior_has_no_memory(self):
        cgra = mem_edge(4)
        for pe in cgra.pes:
            on_edge = pe.row in (0, 3) or pe.col in (0, 3)
            assert pe.supports(Opcode.STORE) == on_edge

    def test_mem_edge_rejects_degenerate_size(self):
        with pytest.raises(ArchitectureError):
            mem_edge(1)

    def test_mul_sparse_checkerboard(self):
        cgra = mul_sparse(4)
        for pe in cgra.pes:
            assert pe.supports(Opcode.MUL) == ((pe.row + pe.col) % 2 == 0)
            assert pe.supports(Opcode.LOAD)

    def test_presets_round_trip_through_specs(self):
        for name in arch_preset_names():
            cgra = get_arch_preset(name)
            assert CGRA.from_spec(cgra.to_spec()) == cgra


class TestKernelFit:
    def memory_kernel(self):
        dfg = DFG(name="memkernel")
        dfg.add_node(0, Opcode.LOAD)
        dfg.add_node(1, Opcode.ADD)
        dfg.add_node(2, Opcode.STORE)
        dfg.add_edge(0, 1)
        dfg.add_edge(1, 2)
        return dfg

    def test_histogram(self):
        histogram = opcode_class_histogram(self.memory_kernel())
        assert histogram[OpClass.MEM] == 2
        assert histogram[OpClass.ALU] == 1

    def test_fit_ok_on_capable_fabric(self):
        check_kernel_fits(self.memory_kernel(), two_class_fabric(mem_pes=(0,)))

    def test_unmappable_histogram_raises_early(self):
        classes = (PEClass(name="alu", capabilities=frozenset({OpClass.ALU})),)
        fabric = CGRA(rows=2, cols=2, pe_classes=classes, class_map=("alu",) * 4)
        with pytest.raises(MappingError, match="cannot fit"):
            check_kernel_fits(self.memory_kernel(), fabric)

    def test_capability_resource_mii(self):
        # Two memory nodes but a single memory-capable PE: II >= 2.
        dfg = self.memory_kernel()
        fabric = two_class_fabric(mem_pes=(0,))
        assert capability_resource_mii(dfg, fabric) == 2
        assert effective_minimum_ii(dfg, fabric) >= 2

    def test_capability_mii_is_one_when_homogeneous(self):
        assert capability_resource_mii(self.memory_kernel(), CGRA.square(4)) == 1


class TestSpecEdgeCases:
    def test_empty_assignment_does_not_bypass_class_table(self):
        spec = {"rows": 2, "cols": 2,
                "pe_classes": {"alu": {"capabilities": ["alu"]}},
                "assignment": []}
        with pytest.raises(ArchitectureError, match="assignment"):
            CGRA.from_spec(spec)

    def test_missing_spec_file_is_a_clean_error(self):
        with pytest.raises(ArchitectureError, match="cannot read"):
            CGRA.from_spec_file("/nonexistent/arch.json")

    def test_presets_honour_register_override(self):
        cgra = get_arch_preset("mem_edge_4x4", registers_per_pe=8)
        assert all(pe.num_registers == 8 for pe in cgra.pes)
