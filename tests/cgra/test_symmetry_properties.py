"""Property tests for symmetry soundness off the homogeneous mesh.

The symmetry-breaking constraint in the encoder is only sound if every
permutation in ``CGRA.symmetries`` is a true automorphism of the fabric:
it must map one-hop neighbours to one-hop neighbours (on every topology,
including the wrap-around torus and the 8-neighbour diagonal grid) *and*
map every PE onto a PE of identical capability signature on heterogeneous
fabrics.  ``symmetry_fundamental_domain`` must additionally stay an orbit
transversal: exactly one representative per symmetry orbit, so pinning the
anchor node to the domain never cuts off all the legal mappings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgra.architecture import CGRA
from repro.cgra.capabilities import PEClass
from repro.cgra.topology import Topology
from repro.dfg.graph import OpClass

_CLASSES = (
    PEClass(name="full"),
    PEClass(name="alu", capabilities=frozenset({OpClass.ALU})),
    PEClass(name="dsp", capabilities=frozenset({OpClass.ALU, OpClass.MUL}),
            registers=2),
)

_CLASS_NAMES = tuple(pe_class.name for pe_class in _CLASSES)


@st.composite
def fabrics(draw):
    """Random (possibly heterogeneous) fabrics over every topology."""
    rows = draw(st.integers(1, 4))
    cols = draw(st.integers(1, 4))
    topology = draw(st.sampled_from(list(Topology)))
    heterogeneous = draw(st.booleans())
    if heterogeneous:
        class_map = tuple(
            draw(st.sampled_from(_CLASS_NAMES)) for _ in range(rows * cols)
        )
        return CGRA(rows=rows, cols=cols, topology=topology,
                    pe_classes=_CLASSES, class_map=class_map)
    return CGRA(rows=rows, cols=cols, topology=topology)


@settings(max_examples=60, deadline=None)
@given(cgra=fabrics())
def test_symmetries_are_neighbour_preserving_permutations(cgra):
    for permutation in cgra.symmetries:
        assert sorted(permutation) == list(range(cgra.num_pes))
        for a in range(cgra.num_pes):
            for b in range(cgra.num_pes):
                assert cgra.are_neighbours(a, b) == cgra.are_neighbours(
                    permutation[a], permutation[b]
                )


@settings(max_examples=60, deadline=None)
@given(cgra=fabrics())
def test_symmetries_preserve_capability_signatures(cgra):
    for permutation in cgra.symmetries:
        for pe in range(cgra.num_pes):
            image = cgra.pe(permutation[pe])
            original = cgra.pe(pe)
            assert image.capabilities == original.capabilities
            assert image.num_registers == original.num_registers


@settings(max_examples=60, deadline=None)
@given(cgra=fabrics())
def test_symmetries_form_a_group(cgra):
    """Closure + identity: orbits then partition the PEs."""
    permutations = set(cgra.symmetries)
    identity = tuple(range(cgra.num_pes))
    assert identity in permutations
    for p in cgra.symmetries:
        for q in cgra.symmetries:
            composed = tuple(p[q[pe]] for pe in range(cgra.num_pes))
            assert composed in permutations


@settings(max_examples=60, deadline=None)
@given(cgra=fabrics())
def test_fundamental_domain_is_an_orbit_transversal(cgra):
    domain = set(cgra.symmetry_fundamental_domain())
    if cgra.topology is Topology.FULL:
        # On the crossbar any signature-preserving permutation is an
        # automorphism; the domain holds one representative per signature.
        signatures = {cgra._signature(pe) for pe in range(cgra.num_pes)}
        assert len(domain) == len(signatures)
        assert {cgra._signature(pe) for pe in domain} == signatures
        return
    for pe in range(cgra.num_pes):
        orbit = {permutation[pe] for permutation in cgra.symmetries}
        assert len(orbit & domain) == 1, (
            f"PE {pe} orbit {sorted(orbit)} must meet the domain "
            f"{sorted(domain)} exactly once"
        )
