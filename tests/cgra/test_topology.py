"""Tests for interconnect topologies."""

import pytest

from repro.cgra.topology import (
    Topology,
    hop_distance,
    manhattan_distance,
    neighbourhood,
)
from repro.exceptions import ArchitectureError


class TestMesh:
    def test_corner_neighbourhood(self):
        assert neighbourhood((0, 0), 3, 3) == [(0, 0), (0, 1), (1, 0)]

    def test_centre_neighbourhood(self):
        neighbours = neighbourhood((1, 1), 3, 3)
        assert set(neighbours) == {(1, 1), (0, 1), (2, 1), (1, 0), (1, 2)}

    def test_exclude_self(self):
        neighbours = neighbourhood((1, 1), 3, 3, include_self=False)
        assert (1, 1) not in neighbours
        assert len(neighbours) == 4

    def test_out_of_grid_rejected(self):
        with pytest.raises(ArchitectureError):
            neighbourhood((3, 0), 3, 3)

    def test_single_pe_grid(self):
        assert neighbourhood((0, 0), 1, 1) == [(0, 0)]


class TestTorus:
    def test_wraparound(self):
        neighbours = neighbourhood((0, 0), 3, 3, Topology.TORUS)
        assert (2, 0) in neighbours
        assert (0, 2) in neighbours
        assert len(neighbours) == 5

    def test_2x2_torus_fully_connected(self):
        neighbours = neighbourhood((0, 0), 2, 2, Topology.TORUS)
        assert set(neighbours) == {(0, 0), (0, 1), (1, 0)}


class TestDiagonal:
    def test_centre_has_eight_neighbours(self):
        neighbours = neighbourhood((1, 1), 3, 3, Topology.DIAGONAL)
        assert len(neighbours) == 9  # 8 neighbours + self

    def test_corner_has_three_neighbours(self):
        neighbours = neighbourhood((0, 0), 3, 3, Topology.DIAGONAL, include_self=False)
        assert set(neighbours) == {(0, 1), (1, 0), (1, 1)}


class TestFull:
    def test_all_positions_reachable(self):
        neighbours = neighbourhood((0, 0), 2, 3, Topology.FULL)
        assert len(neighbours) == 6

    def test_exclude_self(self):
        neighbours = neighbourhood((0, 0), 2, 2, Topology.FULL, include_self=False)
        assert (0, 0) not in neighbours
        assert len(neighbours) == 3


class TestHelpers:
    def test_topology_from_string(self):
        assert neighbourhood((0, 0), 2, 2, "mesh") == neighbourhood((0, 0), 2, 2)

    def test_manhattan_distance(self):
        assert manhattan_distance((0, 0), (2, 3)) == 5
        assert manhattan_distance((1, 1), (1, 1)) == 0


class TestHopDistance:
    def test_mesh_is_manhattan(self):
        assert hop_distance((0, 0), (3, 3), 4, 4, Topology.MESH) == 6

    def test_torus_wraps_around(self):
        # Opposite corners of a 4x4 torus are two wrap hops apart, not six.
        assert hop_distance((0, 0), (3, 3), 4, 4, Topology.TORUS) == 2
        assert hop_distance((0, 0), (0, 3), 4, 4, Topology.TORUS) == 1
        assert hop_distance((0, 0), (2, 2), 4, 4, Topology.TORUS) == 4

    def test_diagonal_is_chebyshev(self):
        assert hop_distance((0, 0), (3, 3), 4, 4, Topology.DIAGONAL) == 3
        assert hop_distance((0, 0), (1, 3), 4, 4, Topology.DIAGONAL) == 3

    def test_full_is_at_most_one_hop(self):
        assert hop_distance((0, 0), (3, 3), 4, 4, Topology.FULL) == 1
        assert hop_distance((2, 1), (2, 1), 4, 4, Topology.FULL) == 0

    def test_single_hop_matches_neighbourhood(self):
        """distance == 1 exactly for the (non-self) one-hop neighbours."""
        for topology in Topology:
            for rows, cols in ((3, 3), (2, 4)):
                for row in range(rows):
                    for col in range(cols):
                        neighbours = set(
                            neighbourhood((row, col), rows, cols, topology,
                                          include_self=False)
                        )
                        for other_row in range(rows):
                            for other_col in range(cols):
                                other = (other_row, other_col)
                                if other == (row, col):
                                    continue
                                is_one = hop_distance(
                                    (row, col), other, rows, cols, topology
                                ) == 1
                                assert is_one == (other in neighbours)
