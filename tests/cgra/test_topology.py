"""Tests for interconnect topologies."""

import pytest

from repro.cgra.topology import Topology, manhattan_distance, neighbourhood
from repro.exceptions import ArchitectureError


class TestMesh:
    def test_corner_neighbourhood(self):
        assert neighbourhood((0, 0), 3, 3) == [(0, 0), (0, 1), (1, 0)]

    def test_centre_neighbourhood(self):
        neighbours = neighbourhood((1, 1), 3, 3)
        assert set(neighbours) == {(1, 1), (0, 1), (2, 1), (1, 0), (1, 2)}

    def test_exclude_self(self):
        neighbours = neighbourhood((1, 1), 3, 3, include_self=False)
        assert (1, 1) not in neighbours
        assert len(neighbours) == 4

    def test_out_of_grid_rejected(self):
        with pytest.raises(ArchitectureError):
            neighbourhood((3, 0), 3, 3)

    def test_single_pe_grid(self):
        assert neighbourhood((0, 0), 1, 1) == [(0, 0)]


class TestTorus:
    def test_wraparound(self):
        neighbours = neighbourhood((0, 0), 3, 3, Topology.TORUS)
        assert (2, 0) in neighbours
        assert (0, 2) in neighbours
        assert len(neighbours) == 5

    def test_2x2_torus_fully_connected(self):
        neighbours = neighbourhood((0, 0), 2, 2, Topology.TORUS)
        assert set(neighbours) == {(0, 0), (0, 1), (1, 0)}


class TestDiagonal:
    def test_centre_has_eight_neighbours(self):
        neighbours = neighbourhood((1, 1), 3, 3, Topology.DIAGONAL)
        assert len(neighbours) == 9  # 8 neighbours + self

    def test_corner_has_three_neighbours(self):
        neighbours = neighbourhood((0, 0), 3, 3, Topology.DIAGONAL, include_self=False)
        assert set(neighbours) == {(0, 1), (1, 0), (1, 1)}


class TestFull:
    def test_all_positions_reachable(self):
        neighbours = neighbourhood((0, 0), 2, 3, Topology.FULL)
        assert len(neighbours) == 6

    def test_exclude_self(self):
        neighbours = neighbourhood((0, 0), 2, 2, Topology.FULL, include_self=False)
        assert (0, 0) not in neighbours
        assert len(neighbours) == 3


class TestHelpers:
    def test_topology_from_string(self):
        assert neighbourhood((0, 0), 2, 2, "mesh") == neighbourhood((0, 0), 2, 2)

    def test_manhattan_distance(self):
        assert manhattan_distance((0, 0), (2, 3)) == 5
        assert manhattan_distance((1, 1), (1, 1)) == 0
