"""Tests for the CGRA architecture model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgra.architecture import CGRA
from repro.cgra.topology import Topology
from repro.exceptions import ArchitectureError


class TestConstruction:
    def test_defaults_match_paper_setup(self):
        cgra = CGRA()
        assert cgra.rows == 4 and cgra.cols == 4
        assert cgra.registers_per_pe == 4
        assert cgra.topology is Topology.MESH

    def test_square_factory(self):
        for size in (2, 3, 4, 5):
            cgra = CGRA.square(size)
            assert cgra.num_pes == size * size

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ArchitectureError):
            CGRA(rows=0, cols=3)

    def test_invalid_registers_rejected(self):
        with pytest.raises(ArchitectureError):
            CGRA(registers_per_pe=0)

    def test_name_and_describe(self):
        cgra = CGRA.square(3)
        assert cgra.name == "cgra_3x3"
        assert "9 PEs" in cgra.describe()
        assert str(cgra) == cgra.describe()

    def test_topology_accepts_string(self):
        cgra = CGRA(rows=2, cols=2, topology="torus")
        assert cgra.topology is Topology.TORUS


class TestGeometry:
    def test_pe_index_round_trip(self):
        cgra = CGRA(rows=3, cols=5)
        for pe in range(cgra.num_pes):
            assert cgra.pe_index(cgra.pe_position(pe)) == pe

    def test_row_major_order(self):
        cgra = CGRA(rows=2, cols=3)
        assert cgra.pe_index((0, 0)) == 0
        assert cgra.pe_index((0, 2)) == 2
        assert cgra.pe_index((1, 0)) == 3

    def test_pe_lookup_out_of_range(self):
        cgra = CGRA.square(2)
        with pytest.raises(ArchitectureError):
            cgra.pe(4)
        with pytest.raises(ArchitectureError):
            cgra.pe_index((2, 0))

    def test_pe_objects(self):
        cgra = CGRA.square(2)
        pe = cgra.pe(3)
        assert pe.position == (1, 1)
        assert pe.num_registers == 4
        assert pe.name == "PE[1,1]"


class TestConnectivity:
    def test_neighbours_include_self_by_default(self):
        cgra = CGRA.square(3)
        assert 4 in cgra.neighbours(4)
        assert 4 not in cgra.neighbours(4, include_self=False)

    def test_mesh_neighbours_of_centre(self):
        cgra = CGRA.square(3)
        assert set(cgra.neighbours(4, include_self=False)) == {1, 3, 5, 7}

    def test_are_neighbours_symmetric(self):
        cgra = CGRA.square(4)
        for a in range(cgra.num_pes):
            for b in range(cgra.num_pes):
                assert cgra.are_neighbours(a, b) == cgra.are_neighbours(b, a)

    def test_same_pe_controlled_by_flag(self):
        cgra = CGRA.square(2)
        assert cgra.are_neighbours(0, 0)
        assert not cgra.are_neighbours(0, 0, include_self=False)

    def test_distance(self):
        cgra = CGRA.square(4)
        assert cgra.distance(0, 15) == 6
        assert cgra.distance(5, 5) == 0

    def test_full_topology_all_neighbours(self):
        cgra = CGRA(rows=2, cols=2, topology=Topology.FULL)
        assert set(cgra.neighbours(0)) == {0, 1, 2, 3}


class TestSymmetries:
    def test_square_grid_has_eight_symmetries(self):
        assert len(CGRA.square(3).symmetries) == 8

    def test_rectangular_grid_has_four_symmetries(self):
        assert len(CGRA(rows=2, cols=3).symmetries) == 4

    def test_symmetries_are_permutations(self):
        cgra = CGRA.square(3)
        for permutation in cgra.symmetries:
            assert sorted(permutation) == list(range(cgra.num_pes))

    def test_symmetries_preserve_neighbourhood(self):
        """Every symmetry is a graph automorphism of the interconnect."""
        for cgra in (CGRA.square(3), CGRA(rows=2, cols=4), CGRA.square(4, topology="torus")):
            for permutation in cgra.symmetries:
                for a in range(cgra.num_pes):
                    for b in range(cgra.num_pes):
                        assert cgra.are_neighbours(a, b) == cgra.are_neighbours(
                            permutation[a], permutation[b]
                        )

    def test_fundamental_domain_covers_all_orbits(self):
        for size in (2, 3, 4, 5):
            cgra = CGRA.square(size)
            domain = set(cgra.symmetry_fundamental_domain())
            for pe in range(cgra.num_pes):
                orbit = {permutation[pe] for permutation in cgra.symmetries}
                assert orbit & domain, f"PE {pe} orbit misses the domain"

    def test_fundamental_domain_is_smaller_than_grid(self):
        cgra = CGRA.square(4)
        assert len(cgra.symmetry_fundamental_domain()) < cgra.num_pes

    def test_full_topology_domain_is_single_pe(self):
        cgra = CGRA(rows=2, cols=2, topology=Topology.FULL)
        assert cgra.symmetry_fundamental_domain() == (0,)


@settings(max_examples=20, deadline=None)
@given(rows=st.integers(1, 5), cols=st.integers(1, 5))
def test_neighbour_table_consistent_with_topology(rows, cols):
    cgra = CGRA(rows=rows, cols=cols)
    for pe in range(cgra.num_pes):
        for other in cgra.neighbours(pe, include_self=False):
            assert cgra.distance(pe, other) == 1


class TestTopologyAwareDistance:
    def test_mesh_distance_is_manhattan(self):
        cgra = CGRA.square(4)
        assert cgra.distance(0, 15) == 6

    def test_torus_distance_accounts_for_wrap_around(self):
        cgra = CGRA.square(4, topology="torus")
        assert cgra.distance(0, 15) == 2  # both axes go the short way around
        assert cgra.distance(0, 3) == 1   # wrap link in one hop

    def test_diagonal_distance_is_chebyshev(self):
        cgra = CGRA.square(4, topology="diagonal")
        assert cgra.distance(0, 15) == 3

    def test_full_distance_is_one_hop(self):
        cgra = CGRA.square(4, topology=Topology.FULL)
        assert cgra.distance(0, 15) == 1
        assert cgra.distance(7, 7) == 0

    def test_distance_lower_bounds_hops_on_every_topology(self):
        """distance is 1 exactly on the one-hop neighbourhood."""
        for topology in Topology:
            cgra = CGRA(rows=3, cols=4, topology=topology)
            for a in range(cgra.num_pes):
                for b in range(cgra.num_pes):
                    if a == b:
                        assert cgra.distance(a, b) == 0
                    elif cgra.are_neighbours(a, b, include_self=False):
                        assert cgra.distance(a, b) == 1
                    else:
                        assert cgra.distance(a, b) >= 2
