"""Tests for the RAMP-like and PathSeeker-like baseline mappers."""

import pytest

from repro.baselines import BaselineConfig, PathSeekerMapper, RampMapper
from repro.cgra.architecture import CGRA
from repro.core.mapper import SatMapItMapper
from repro.dfg.graph import paper_running_example
from repro.kernels import get_kernel

SMALL_KERNELS = ["srand", "basicmath", "stringsearch"]


@pytest.mark.parametrize("mapper_cls", [RampMapper, PathSeekerMapper])
class TestCommonBehaviour:
    def test_maps_running_example(self, mapper_cls):
        outcome = mapper_cls().map(paper_running_example(), CGRA.square(2))
        assert outcome.success
        assert outcome.mapping.violations() == []
        assert outcome.ii >= outcome.minimum_ii

    @pytest.mark.parametrize("kernel", SMALL_KERNELS)
    def test_maps_small_benchmark_kernels(self, mapper_cls, kernel):
        outcome = mapper_cls(BaselineConfig(timeout=30)).map(
            get_kernel(kernel), CGRA.square(3)
        )
        assert outcome.success
        assert outcome.mapping.violations() == []

    def test_register_allocation_attached(self, mapper_cls):
        outcome = mapper_cls().map(paper_running_example(), CGRA.square(2))
        assert outcome.register_allocation is not None
        assert outcome.register_allocation.success

    def test_never_better_than_sat_mapper(self, mapper_cls):
        """On the running example the exact mapper is at least as good."""
        dfg = paper_running_example()
        cgra = CGRA.square(2)
        sat = SatMapItMapper().map(dfg, cgra)
        heuristic = mapper_cls().map(dfg, cgra)
        assert sat.success
        if heuristic.success:
            assert sat.ii <= heuristic.ii


class TestResultValidation:
    """Heuristic results pass the same legality oracle as the SAT path."""

    class _BrokenScheduler(RampMapper):
        """A mapper whose scheduler 'succeeds' with an illegal schedule."""

        def _try_ii(self, dfg, cgra, ii, rng, start):
            from repro.core.mapping import Mapping

            mapping = Mapping(dfg=dfg, cgra=cgra, ii=ii)
            # Pile every node onto PE 0 / cycle 0: a blatant resource
            # conflict violations() must reject.
            for node_id in dfg.node_ids:
                mapping.place(node_id, 0, 0, 0)
            return mapping

    def test_illegal_schedule_is_never_reported_as_success(self):
        outcome = self._BrokenScheduler(BaselineConfig(max_ii=4)).map(
            paper_running_example(), CGRA.square(2)
        )
        assert not outcome.success
        assert outcome.mapping is None
        # Every II the broken scheduler "solved" is recorded as INVALID,
        # not silently retried or reported as SAT.
        assert outcome.attempts
        assert all(a.status == "INVALID" for a in outcome.attempts)

    @pytest.mark.parametrize("mapper_cls", [RampMapper, PathSeekerMapper])
    def test_reported_mappings_pass_the_oracle(self, mapper_cls):
        from repro.simulator import CGRASimulator

        outcome = mapper_cls().map(paper_running_example(), CGRA.square(2))
        assert outcome.success
        assert outcome.mapping.violations() == []
        simulation = CGRASimulator(
            outcome.mapping, outcome.register_allocation
        ).run(2)
        assert simulation.success, simulation.errors


class TestRampSpecifics:
    def test_deterministic_across_runs(self):
        dfg = get_kernel("srand")
        cgra = CGRA.square(2)
        first = RampMapper().map(dfg, cgra)
        second = RampMapper().map(dfg, cgra)
        assert first.ii == second.ii

    def test_priority_portfolio_varies_by_attempt(self):
        import random

        mapper = RampMapper()
        dfg = paper_running_example()
        rng = random.Random(0)
        priorities = [mapper._priorities(dfg, 3, attempt, rng) for attempt in range(5)]
        assert priorities[0] != priorities[1]
        assert priorities[0] != priorities[2]


class TestPathSeekerSpecifics:
    def test_seed_controls_randomisation(self):
        dfg = get_kernel("basicmath")
        cgra = CGRA.square(2)
        a = PathSeekerMapper(BaselineConfig(random_seed=1)).map(dfg, cgra)
        b = PathSeekerMapper(BaselineConfig(random_seed=1)).map(dfg, cgra)
        assert a.ii == b.ii

    def test_priorities_randomised_after_first_attempt(self):
        import random

        mapper = PathSeekerMapper()
        dfg = paper_running_example()
        rng = random.Random(0)
        first = mapper._priorities(dfg, 3, 0, rng)
        later = mapper._priorities(dfg, 3, 2, rng)
        assert first != later
