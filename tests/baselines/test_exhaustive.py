"""Tests for the exhaustive oracle mapper."""

import pytest

from repro.baselines.exhaustive import ExhaustiveMapper
from repro.cgra.architecture import CGRA
from repro.dfg.graph import DFG
from repro.exceptions import MappingError


def chain(n):
    return DFG.from_edge_list("chain", n, [(i, i + 1) for i in range(n - 1)])


class TestExhaustiveMapper:
    def test_single_node(self):
        outcome = ExhaustiveMapper().map(DFG.from_edge_list("one", 1, []), CGRA.square(2))
        assert outcome.success
        assert outcome.ii == 1

    def test_chain_optimal_ii(self):
        outcome = ExhaustiveMapper().map(chain(3), CGRA.square(2))
        assert outcome.success
        assert outcome.ii == 1
        assert outcome.mapping.violations() == []

    def test_independent_nodes_need_ii_two(self):
        dfg = DFG.from_edge_list("independent", 5, [])
        outcome = ExhaustiveMapper().map(dfg, CGRA.square(2))
        assert outcome.success
        assert outcome.ii == 2

    def test_recurrence_respected(self):
        dfg = DFG.from_edge_list("rec", 3, [(0, 1), (1, 2), (2, 0, 1)])
        outcome = ExhaustiveMapper().map(dfg, CGRA.square(2))
        assert outcome.success
        assert outcome.ii == 3

    def test_too_many_nodes_rejected(self):
        with pytest.raises(MappingError):
            ExhaustiveMapper(max_nodes=3).map(chain(4), CGRA.square(2))

    def test_failure_when_ii_cap_too_small(self):
        dfg = DFG.from_edge_list("independent", 5, [])
        outcome = ExhaustiveMapper(max_ii=1).map(dfg, CGRA(rows=1, cols=1))
        assert not outcome.success

    def test_respects_output_register_model(self):
        dfg = DFG.from_edge_list("fan", 3, [(0, 1), (0, 2)])
        strict = ExhaustiveMapper(enforce_output_register=True).map(dfg, CGRA.square(2))
        assert strict.success
        assert strict.mapping.violations(check_overwrite=True) == []
