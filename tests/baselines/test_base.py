"""Tests for the shared IMS-with-ejection scheduling engine."""

import random

import pytest

from repro.baselines.base import (
    BaselineConfig,
    HeuristicMapper,
    height_priorities,
    height_priority_order,
    modulo_schedule_with_diagnostics,
    modulo_schedule_with_ejection,
    node_heights,
)
from repro.cgra.architecture import CGRA
from repro.dfg.graph import DFG, paper_running_example
from repro.kernels import get_kernel


def chain(n):
    return DFG.from_edge_list("chain", n, [(i, i + 1) for i in range(n - 1)])


class TestPriorities:
    def test_node_heights_chain(self):
        assert node_heights(chain(4)) == {0: 3, 1: 2, 2: 1, 3: 0}

    def test_height_order_puts_sources_first(self):
        order = height_priority_order(chain(4))
        assert order == [0, 1, 2, 3]

    def test_height_priorities_match_heights(self):
        dfg = paper_running_example()
        heights = node_heights(dfg)
        priorities = height_priorities(dfg)
        assert all(priorities[n] == float(heights[n]) for n in dfg.node_ids)

    def test_heights_ignore_back_edges(self):
        dfg = DFG.from_edge_list("rec", 3, [(0, 1), (1, 2), (2, 0, 1)])
        assert node_heights(dfg)[0] == 2


class TestSchedulingEngine:
    def test_schedules_chain(self):
        dfg = chain(4)
        mapping = modulo_schedule_with_ejection(
            dfg, CGRA.square(2), 4, height_priorities(dfg), random.Random(0)
        )
        assert mapping is not None
        assert mapping.violations() == []

    def test_respects_recurrence(self):
        dfg = DFG.from_edge_list("rec", 3, [(0, 1), (1, 2), (2, 0, 1)])
        mapping = modulo_schedule_with_ejection(
            dfg, CGRA.square(2), 3, height_priorities(dfg), random.Random(0)
        )
        assert mapping is not None
        assert mapping.violations() == []

    def test_fails_when_ii_too_small(self):
        dfg = DFG.from_edge_list("independent", 6, [])
        mapping = modulo_schedule_with_ejection(
            dfg, CGRA(rows=1, cols=1), 2, height_priorities(dfg), random.Random(0)
        )
        assert mapping is None

    def test_diagnostics_report_leftover_nodes(self):
        dfg = DFG.from_edge_list("independent", 6, [])
        mapping, leftover = modulo_schedule_with_diagnostics(
            dfg, CGRA(rows=1, cols=1), 2, height_priorities(dfg), random.Random(0)
        )
        assert mapping is None
        assert leftover

    def test_diagnostics_empty_on_success(self):
        dfg = chain(3)
        mapping, leftover = modulo_schedule_with_diagnostics(
            dfg, CGRA.square(2), 3, height_priorities(dfg), random.Random(0)
        )
        assert mapping is not None
        assert leftover == set()

    def test_running_example_schedulable_at_reasonable_ii(self):
        dfg = paper_running_example()
        mapping = modulo_schedule_with_ejection(
            dfg, CGRA.square(2), 5, height_priorities(dfg), random.Random(0)
        )
        assert mapping is not None
        assert mapping.violations() == []

    def test_strict_output_register_mode_produces_stricter_mappings(self):
        dfg = chain(4)
        mapping = modulo_schedule_with_ejection(
            dfg, CGRA.square(2), 4, height_priorities(dfg), random.Random(0),
            enforce_output_register=True,
        )
        if mapping is not None:
            assert mapping.violations(check_overwrite=True) == []


class TestHeuristicMapperDriver:
    class _FixedPriorityMapper(HeuristicMapper):
        name = "fixed"

        def _priorities(self, dfg, ii, attempt, rng):
            return height_priorities(dfg)

    def test_driver_finds_mapping(self):
        mapper = self._FixedPriorityMapper(BaselineConfig(attempts_per_ii=2))
        outcome = mapper.map(paper_running_example(), CGRA.square(2))
        assert outcome.success
        assert outcome.mapping.violations() == []
        assert outcome.ii >= outcome.minimum_ii

    def test_driver_respects_timeout(self):
        mapper = self._FixedPriorityMapper(BaselineConfig(timeout=0.0))
        outcome = mapper.map(get_kernel("gsm"), CGRA.square(3))
        assert not outcome.success
        assert outcome.final_status == "timeout"

    def test_driver_reports_failure_at_max_ii(self):
        dfg = DFG.from_edge_list("independent", 6, [])
        mapper = self._FixedPriorityMapper(BaselineConfig(max_ii=3))
        outcome = mapper.map(dfg, CGRA(rows=1, cols=1))
        assert not outcome.success
        assert outcome.final_status == "failed"

    def test_base_class_requires_priorities_override(self):
        mapper = HeuristicMapper()
        with pytest.raises(NotImplementedError):
            mapper.map(chain(2), CGRA.square(2))
