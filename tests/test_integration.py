"""End-to-end integration tests.

These exercise the full pipeline the paper describes (Figure 3): loop source
-> DFG -> KMS -> CNF -> SAT solving -> register allocation -> mapping, then
validate the result both statically (legality rules) and dynamically (the
cycle-accurate simulator against the golden-model interpreter), and compare
the exact mapper with the heuristic baselines.
"""

import pytest

from repro import CGRA, MapperConfig, SatMapItMapper, compile_loop
from repro.baselines import ExhaustiveMapper, PathSeekerMapper, RampMapper
from repro.dfg.graph import paper_running_example
from repro.kernels import get_kernel, random_layered_dfg
from repro.simulator import CGRASimulator, interpret_dfg


class TestPaperPipeline:
    def test_running_example_full_pipeline(self):
        """Source-to-simulation on the paper's own running example shape."""
        dfg = paper_running_example()
        cgra = CGRA.square(2)
        outcome = SatMapItMapper().map(dfg, cgra)
        assert outcome.success and outcome.ii == 3
        simulation = CGRASimulator(outcome.mapping, outcome.register_allocation).run(5)
        assert simulation.success, simulation.errors

    def test_custom_loop_source_to_simulation(self):
        source = """
        t = a[i] + b[i]
        acc = acc + t * gain
        out[i] = acc >> 2
        """
        dfg = compile_loop(source, name="weighted_sum")
        cgra = CGRA.square(3)
        outcome = SatMapItMapper(MapperConfig(timeout=60)).map(dfg, cgra)
        assert outcome.success
        assert outcome.mapping.violations() == []
        simulation = CGRASimulator(outcome.mapping, outcome.register_allocation).run(4)
        assert simulation.success, simulation.errors
        # The simulator's recorded values are exactly the golden model's.
        history = interpret_dfg(dfg, 4)
        for (node, iteration), value in simulation.values.items():
            assert history[iteration][node] == value

    def test_sat_vs_heuristics_on_benchmark_kernel(self):
        """Paper headline shape: SAT-MapIt's II is never worse."""
        dfg = get_kernel("stringsearch")
        cgra = CGRA.square(2)
        sat = SatMapItMapper(MapperConfig(timeout=60)).map(dfg, cgra)
        ramp = RampMapper().map(dfg, cgra)
        pathseeker = PathSeekerMapper().map(dfg, cgra)
        assert sat.success
        for heuristic in (ramp, pathseeker):
            if heuristic.success:
                assert sat.ii <= heuristic.ii

    def test_sat_matches_exhaustive_on_small_synthetic_loop(self):
        dfg = random_layered_dfg(num_layers=3, width=2, seed=5)
        cgra = CGRA.square(2)
        sat = SatMapItMapper().map(dfg, cgra)
        oracle = ExhaustiveMapper(max_ii=6, timeout=60).map(dfg, cgra)
        assert sat.success and oracle.success
        assert sat.ii == oracle.ii

    def test_mesh_size_sweep_is_monotone(self):
        """Bigger fabrics never need a larger II (paper Figure 6 trend)."""
        dfg = get_kernel("basicmath")
        previous = None
        for size in (2, 3, 4):
            outcome = SatMapItMapper(MapperConfig(timeout=60)).map(dfg, CGRA.square(size))
            assert outcome.success
            if previous is not None:
                assert outcome.ii <= previous
            previous = outcome.ii

    @pytest.mark.parametrize("registers", [2, 8])
    def test_register_file_size_affects_feasible_ii(self, registers):
        dfg = get_kernel("srand")
        cgra = CGRA.square(2, registers_per_pe=registers)
        outcome = SatMapItMapper(MapperConfig(timeout=60)).map(dfg, cgra)
        assert outcome.success
        allocation = outcome.register_allocation
        assert allocation is not None and allocation.success
        assert allocation.max_pressure <= registers
