"""Tests for fabric slicing and border-pinning placement domains."""

import pytest

from repro.cgra.architecture import CGRA
from repro.cgra.topology import Topology
from repro.exceptions import ArchitectureError
from repro.kernels import get_kernel
from repro.partition import boundary_domains, partition_dfg, slice_fabric


class TestSliceFabric:
    def test_strips_tile_the_fabric(self):
        cgra = CGRA.square(8)
        regions = slice_fabric(cgra, [10, 10])
        assert [r.num_rows for r in regions] == [4, 4]
        assert regions[0].row_start == 0
        assert regions[1].row_start == regions[0].row_end
        covered = [pe for r in regions for pe in r.to_global]
        assert sorted(covered) == list(range(cgra.num_pes))

    def test_rows_proportional_to_weights(self):
        regions = slice_fabric(CGRA.square(8), [30, 10])
        assert regions[0].num_rows == 6
        assert regions[1].num_rows == 2

    def test_every_region_gets_at_least_one_row(self):
        regions = slice_fabric(CGRA.square(4), [100, 1, 1])
        assert all(r.num_rows >= 1 for r in regions)
        assert sum(r.num_rows for r in regions) == 4

    def test_sub_cgra_preserves_shape_and_registers(self):
        cgra = CGRA(rows=6, cols=5, registers_per_pe=7)
        regions = slice_fabric(cgra, [1, 1])
        for region in regions:
            sub = region.sub_cgra
            assert sub.cols == 5
            assert sub.rows == region.num_rows
            assert sub.registers_per_pe == 7
            assert sub.num_pes == region.num_pes

    def test_sub_cgra_preserves_capability_classes(self):
        from repro.cgra.presets import get_arch_preset

        cgra = get_arch_preset("mem_edge_4x4")
        regions = slice_fabric(cgra, [1, 1])
        for region in regions:
            for local, global_pe in enumerate(region.to_global):
                assert (
                    region.sub_cgra.pe(local).capabilities
                    == cgra.pe(global_pe).capabilities
                )

    def test_local_global_maps_are_inverse(self):
        regions = slice_fabric(CGRA.square(6), [1, 2, 3])
        for region in regions:
            for local, global_pe in enumerate(region.to_global):
                assert region.to_local(global_pe) == local

    def test_borders_are_first_and_last_rows(self):
        cgra = CGRA.square(4)
        region = slice_fabric(cgra, [1, 1])[1]  # rows 2-3
        assert region.north_border() == (8, 9, 10, 11)
        assert region.south_border() == (12, 13, 14, 15)

    def test_torus_is_rejected(self):
        cgra = CGRA(rows=4, cols=4, topology=Topology.TORUS)
        with pytest.raises(ArchitectureError, match="mesh"):
            slice_fabric(cgra, [1, 1])

    def test_too_many_regions_for_rows(self):
        with pytest.raises(ArchitectureError, match="rows"):
            slice_fabric(CGRA.square(2), [1, 1, 1])


class TestBoundaryDomains:
    def test_producers_pinned_to_south_consumers_to_north(self):
        dfg = get_kernel("gsm")
        plan = partition_dfg(dfg, 2)
        regions = slice_fabric(CGRA.square(4), [len(p) for p in plan.partitions])
        domains = boundary_domains(plan, regions)
        south0 = set(regions[0].local_row(regions[0].south_border()))
        north1 = set(regions[1].local_row(regions[1].north_border()))
        producers = {c.edge.src for c in plan.cut_edges}
        consumers = {c.edge.dst for c in plan.cut_edges}
        dom0 = dict(domains[0])
        dom1 = dict(domains[1])
        for node in producers:
            assert set(dom0[node]) <= south0
        for node in consumers:
            assert set(dom1[node]) <= north1

    def test_only_cut_endpoints_are_restricted(self):
        dfg = get_kernel("gsm")
        plan = partition_dfg(dfg, 2)
        regions = slice_fabric(CGRA.square(4), [len(p) for p in plan.partitions])
        domains = boundary_domains(plan, regions)
        cut_nodes = {c.edge.src for c in plan.cut_edges} | {
            c.edge.dst for c in plan.cut_edges
        }
        restricted = {node for dom in domains for node, _ in dom}
        assert restricted == cut_nodes

    def test_domains_never_empty(self):
        for name in ("sha", "bitcount", "backprop"):
            plan = partition_dfg(get_kernel(name), 3)
            regions = slice_fabric(
                CGRA.square(6), [len(p) for p in plan.partitions]
            )
            for dom in boundary_domains(plan, regions):
                for _, allowed in dom:
                    assert allowed

    def test_middle_partition_uses_both_borders(self):
        """A node producing to p+1 and consuming from p-1 may use either."""
        dfg = get_kernel("sha")
        plan = partition_dfg(dfg, 3)
        regions = slice_fabric(CGRA.square(6), [len(p) for p in plan.partitions])
        domains = boundary_domains(plan, regions)
        mid = regions[1]
        both = set(mid.local_row(mid.north_border())) | set(
            mid.local_row(mid.south_border())
        )
        for node, allowed in domains[1]:
            assert set(allowed) <= both
