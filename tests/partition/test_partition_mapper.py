"""End-to-end tests for the partition-and-stitch mapping driver."""

import dataclasses

import pytest

from repro.cgra.architecture import CGRA
from repro.cgra.topology import Topology
from repro.core.encoder import EncoderConfig, MappingEncoder
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.dfg.graph import paper_running_example
from repro.exceptions import EncodingError, MappingError
from repro.kernels import get_kernel
from repro.partition import PartitionConfig, PartitionMapper


class TestPartitionMapperEndToEnd:
    def test_running_example_partitioned_on_4x4(self):
        outcome = PartitionMapper(
            PartitionConfig(num_partitions=2, timeout=120)
        ).map(paper_running_example(), CGRA.square(4))
        assert outcome.success
        assert outcome.validated
        assert outcome.ii >= outcome.minimum_ii
        assert outcome.mapping.violations() == []
        assert outcome.num_partitions == 2
        assert len(outcome.stitch.offsets) == 2
        assert outcome.final_status == "mapped"

    def test_single_partition_degenerates_to_whole_fabric(self):
        outcome = PartitionMapper(
            PartitionConfig(num_partitions=1, timeout=120)
        ).map(get_kernel("srand"), CGRA.square(4))
        assert outcome.success
        assert outcome.stitch.num_route_nodes == 0
        assert outcome.stitch.offsets == [0]

    def test_partition_outcomes_recorded_per_partition(self):
        outcome = PartitionMapper(
            PartitionConfig(num_partitions=2, timeout=120)
        ).map(get_kernel("gsm"), CGRA.square(4))
        assert outcome.success
        assert len(outcome.partition_outcomes) == 2
        assert all(sub.success for sub in outcome.partition_outcomes)
        assert all(sub.ii == outcome.ii for sub in outcome.partition_outcomes)

    def test_validation_can_be_skipped(self):
        outcome = PartitionMapper(
            PartitionConfig(num_partitions=2, timeout=120,
                            validate_iterations=0)
        ).map(get_kernel("srand"), CGRA.square(4))
        assert outcome.success
        assert not outcome.validated

    def test_summary_mentions_partitions_and_ii(self):
        outcome = PartitionMapper(
            PartitionConfig(num_partitions=2, timeout=120)
        ).map(get_kernel("srand"), CGRA.square(4))
        text = outcome.summary()
        assert "2 partitions" in text
        assert f"II={outcome.ii}" in text


class TestPartitionMapperErrors:
    def test_torus_fabric_raises_mapping_error(self):
        cgra = CGRA(rows=4, cols=4, topology=Topology.TORUS)
        with pytest.raises(MappingError, match="mesh"):
            PartitionMapper(PartitionConfig(num_partitions=2)).map(
                get_kernel("srand"), cgra
            )

    def test_too_many_partitions_raises(self):
        with pytest.raises(MappingError):
            PartitionMapper(PartitionConfig(num_partitions=12)).map(
                get_kernel("srand"), CGRA.square(4)
            )

    def test_budget_exhaustion_returns_failed_outcome(self):
        outcome = PartitionMapper(
            PartitionConfig(num_partitions=2, max_ii=2, timeout=120)
        ).map(get_kernel("bitcount"), CGRA.square(4))
        assert not outcome.success
        assert outcome.final_status == "failed"
        assert outcome.repair_log  # the negotiation trace explains why


class TestPlacementDomainPlumbing:
    """The encoder/mapper hook the partition sub-solves ride on."""

    def test_domain_restricts_placement(self):
        dfg = paper_running_example()
        cgra = CGRA.square(3)
        domains = tuple(
            (node_id, (0, 1, 2)) for node_id in dfg.node_ids
        )
        outcome = SatMapItMapper(
            MapperConfig(placement_domains=domains)
        ).map(dfg, cgra)
        assert outcome.success
        used = {p.pe for p in outcome.mapping.placements.values()}
        assert used <= {0, 1, 2}

    def test_empty_intersection_raises_encoding_error(self):
        from repro.core.mobility import KernelMobilitySchedule, MobilitySchedule

        dfg = paper_running_example()
        cgra = CGRA.square(2)
        kms = KernelMobilitySchedule.build(MobilitySchedule.build(dfg), 3)
        config = EncoderConfig(placement_domains=((1, ()),))
        with pytest.raises(EncodingError, match="excludes every capable PE"):
            MappingEncoder(dfg, cgra, kms, config)

    def test_domains_disable_symmetry_breaking(self):
        """Pinning a node to one PE must never be 'broken' away."""
        dfg = paper_running_example()
        cgra = CGRA.square(3)
        # Pin node 1 to the last PE — symmetry breaking would anchor the
        # fundamental domain elsewhere and make this UNSAT.
        outcome = SatMapItMapper(
            MapperConfig(placement_domains=((1, (8,)),))
        ).map(dfg, cgra)
        assert outcome.success
        assert outcome.mapping.placements[1].pe == 8

    def test_domains_are_part_of_the_cache_key(self, tmp_path):
        from repro.search.cache import MappingCache

        dfg = paper_running_example()
        cgra = CGRA.square(2)
        cache = MappingCache(str(tmp_path))
        free = MapperConfig(cache_dir=str(tmp_path))
        pinned = dataclasses.replace(
            free, placement_domains=((1, (1, 2)),)
        )
        assert cache.key(dfg, cgra, free) != cache.key(dfg, cgra, pinned)

    def test_seed_heuristic_disabled_under_domains(self):
        dfg = paper_running_example()
        outcome = SatMapItMapper(
            MapperConfig(
                seed_heuristic=True,
                placement_domains=((1, (0, 1, 2, 3)),),
            )
        ).map(dfg, CGRA.square(2))
        assert outcome.success
        # The heuristic pre-pass is not domain-aware; it must not run.
        assert outcome.seed_ii is None
