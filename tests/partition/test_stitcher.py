"""Stitch legality tests.

The contract under test: whatever the stitcher returns passes the full
legality oracle (``Mapping.violations()`` plus a cycle-accurate simulator
replay against the golden model), and anything illegal — including a
deliberately corrupted boundary placement — raises :class:`StitchError`
rather than being silently accepted.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgra.architecture import CGRA
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.core.mapping import Placement
from repro.core.regalloc import allocate_registers
from repro.dfg.graph import Opcode
from repro.kernels import get_kernel, random_layered_dfg
from repro.partition import (
    PartitionConfig,
    PartitionMapper,
    StitchError,
    boundary_domains,
    partition_dfg,
    slice_fabric,
    stitch,
)
from repro.simulator import CGRASimulator


def _solve_partitions(dfg, cgra, num_partitions=2, ii_cap=20):
    """Run the pipeline up to (but not including) the stitch, by hand.

    Returns ``(plan, regions, partials, ii)`` with every partition solved
    at the same II, for tests that need to tamper with the partials before
    stitching.
    """
    plan = partition_dfg(dfg, num_partitions)
    regions = slice_fabric(cgra, [len(p) for p in plan.partitions])
    domains = boundary_domains(plan, regions)
    mapper_cls = PartitionMapper(PartitionConfig(num_partitions=num_partitions))
    sub_dfgs = [
        mapper_cls._sub_dfg(dfg, plan, p) for p in range(plan.num_partitions)
    ]
    for ii in range(2, ii_cap):
        partials = []
        for p, (sub, region) in enumerate(zip(sub_dfgs, regions)):
            config = MapperConfig(
                max_ii=ii, placement_domains=domains[p] or None
            )
            outcome = SatMapItMapper(config).map(sub, region.sub_cgra,
                                                 start_ii=ii)
            if not outcome.success:
                break
            partials.append(outcome.mapping)
        if len(partials) != plan.num_partitions:
            continue
        try:  # only return an II at which the partials actually stitch
            stitch(dfg, cgra, plan, regions, partials, ii)
        except StitchError:
            continue
        return plan, regions, partials, ii
    raise AssertionError("no common II found for the test fixture")


class TestStitchedMappingLegality:
    def test_stitched_bitcount_passes_violations(self):
        dfg = get_kernel("bitcount")
        cgra = CGRA.square(4)
        plan, regions, partials, ii = _solve_partitions(dfg, cgra)
        result = stitch(dfg, cgra, plan, regions, partials, ii)
        assert result.mapping.violations() == []
        assert result.mapping.ii == ii

    def test_stitched_mapping_survives_simulator_replay(self):
        dfg = get_kernel("gsm")
        cgra = CGRA.square(4)
        outcome = PartitionMapper(
            PartitionConfig(num_partitions=2, timeout=120)
        ).map(dfg, cgra)
        assert outcome.success
        assert outcome.validated
        allocation = allocate_registers(
            outcome.mapping.dfg, cgra, outcome.mapping,
            neighbour_register_file_access=True,
        )
        assert allocation.success
        result = CGRASimulator(outcome.mapping, allocation).run(4)
        assert result.success, result.errors

    def test_route_chains_use_route_opcode_and_free_slots(self):
        dfg = get_kernel("bitcount")
        cgra = CGRA.square(4)
        plan, regions, partials, ii = _solve_partitions(dfg, cgra)
        result = stitch(dfg, cgra, plan, regions, partials, ii)
        route_ids = {r for chain in result.route_chains.values() for r in chain}
        for route_id in route_ids:
            assert result.mapping.dfg.node(route_id).opcode is Opcode.ROUTE
        # Slot exclusivity over original + route nodes comes from
        # violations() == [], asserted indirectly by stitch(); spot-check it.
        slots = [
            (p.pe, p.cycle)
            for p in result.mapping.placements.values()
        ]
        assert len(slots) == len(set(slots))

    def test_offsets_zero_for_first_partition(self):
        dfg = get_kernel("bitcount")
        cgra = CGRA.square(4)
        plan, regions, partials, ii = _solve_partitions(dfg, cgra)
        result = stitch(dfg, cgra, plan, regions, partials, ii)
        assert result.offsets[0] == 0
        assert all(off >= 0 for off in result.offsets)


class TestBrokenBoundaryRegression:
    """A deliberately broken boundary must be *caught*, never accepted."""

    def test_corrupted_boundary_placement_raises(self):
        dfg = get_kernel("bitcount")
        cgra = CGRA.square(4)
        plan, regions, partials, ii = _solve_partitions(dfg, cgra)
        # Break an internal dependency of partition 0: yank a node with an
        # internal predecessor back to its producer's cycle.  The offset
        # pass translates whole partitions, so it cannot repair a broken
        # *internal* timing — the legality pass must refuse the stitch.
        sub_nodes = set(plan.partitions[0])
        victim = None
        for edge in dfg.edges:
            if edge.src in sub_nodes and edge.dst in sub_nodes and edge.distance == 0:
                victim = edge
                break
        assert victim is not None
        placements = partials[0].placements
        src_p = placements[victim.src]
        dst_p = placements[victim.dst]
        placements[victim.dst] = Placement(
            victim.dst, dst_p.pe, src_p.cycle, src_p.iteration
        )
        with pytest.raises(StitchError, match="illegal|unroutable"):
            stitch(dfg, cgra, plan, regions, partials, ii)

    def test_wrong_ii_raises(self):
        dfg = get_kernel("bitcount")
        cgra = CGRA.square(4)
        plan, regions, partials, ii = _solve_partitions(dfg, cgra)
        with pytest.raises(StitchError, match="negotiated"):
            stitch(dfg, cgra, plan, regions, partials, ii + 1)

    def test_unplaced_node_raises(self):
        dfg = get_kernel("bitcount")
        cgra = CGRA.square(4)
        plan, regions, partials, ii = _solve_partitions(dfg, cgra)
        victim = plan.partitions[0][0]
        del partials[0].placements[victim]
        with pytest.raises(StitchError, match="unplaced"):
            stitch(dfg, cgra, plan, regions, partials, ii)

    def test_mismatched_partition_count_raises(self):
        dfg = get_kernel("bitcount")
        cgra = CGRA.square(4)
        plan, regions, partials, ii = _solve_partitions(dfg, cgra)
        with pytest.raises(StitchError, match="disagree"):
            stitch(dfg, cgra, plan, regions, partials[:1], ii)


@settings(max_examples=6, deadline=None)
@given(
    width=st.integers(min_value=2, max_value=3),
    layers=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_stitched_random_dfgs_are_legal(width, layers, seed):
    """Any stitched mapping of a random layered DFG passes the full oracle."""
    dfg = random_layered_dfg(layers, width, seed=seed)
    cgra = CGRA.square(4)
    outcome = PartitionMapper(
        PartitionConfig(num_partitions=2, timeout=120)
    ).map(dfg, cgra)
    assert outcome.success, outcome.repair_log
    assert outcome.mapping.violations() == []
    assert outcome.validated  # simulator replay ran and passed
