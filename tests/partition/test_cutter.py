"""Tests for the DFG partitioner (balanced edge-cut, recurrences intact)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg.graph import DFG, paper_running_example
from repro.exceptions import DFGError
from repro.kernels import get_kernel, random_dfg
from repro.partition import PartitionPlan, partition_dfg
from repro.partition.cutter import PARTITION_STRATEGIES, _strongly_connected


def chain(n):
    return DFG.from_edge_list("chain", n, [(i, i + 1) for i in range(n - 1)])


class TestBasicInvariants:
    def test_covers_every_node_exactly_once(self):
        dfg = get_kernel("gsm")
        plan = partition_dfg(dfg, 3)
        seen = [node for part in plan.partitions for node in part]
        assert sorted(seen) == sorted(dfg.node_ids)

    def test_cut_edges_point_forward(self):
        dfg = get_kernel("sha")
        plan = partition_dfg(dfg, 4)
        assert plan.cut_edges  # sha has cross-partition dependencies
        for cut in plan.cut_edges:
            assert cut.src_partition < cut.dst_partition

    def test_assignment_is_inverse_of_partitions(self):
        plan = partition_dfg(get_kernel("bitcount"), 2)
        for index, part in enumerate(plan.partitions):
            for node_id in part:
                assert plan.assignment[node_id] == index
                assert plan.partition_of(node_id) == index

    def test_recurrence_cycles_stay_in_one_partition(self):
        dfg = get_kernel("bitcount")  # has an accumulator recurrence
        plan = partition_dfg(dfg, 2)
        for component in _strongly_connected(dfg):
            owners = {plan.assignment[node] for node in component}
            assert len(owners) == 1

    def test_single_partition_is_identity(self):
        dfg = get_kernel("nw")
        plan = partition_dfg(dfg, 1)
        assert plan.num_partitions == 1
        assert plan.cut_size == 0
        assert sorted(plan.partitions[0]) == sorted(dfg.node_ids)

    def test_validate_passes_on_fresh_plan(self):
        dfg = paper_running_example()
        plan = partition_dfg(dfg, 2)
        plan.validate(dfg)  # must not raise

    def test_chain_partitions_are_contiguous_and_balanced(self):
        plan = partition_dfg(chain(12), 4)
        sizes = [len(part) for part in plan.partitions]
        assert sizes == [3, 3, 3, 3]
        assert plan.cut_size == 3  # one cut edge per boundary
        assert plan.balance == pytest.approx(1.0)


class TestErrors:
    def test_more_partitions_than_supernodes(self):
        with pytest.raises(DFGError, match="supernodes"):
            partition_dfg(chain(3), 4)

    def test_zero_partitions(self):
        with pytest.raises(DFGError, match="at least one"):
            partition_dfg(chain(3), 0)

    def test_unknown_strategy(self):
        with pytest.raises(DFGError, match="strategy"):
            partition_dfg(chain(4), 2, strategy="metis")

    def test_validate_rejects_backwards_cut(self):
        dfg = chain(4)
        plan = partition_dfg(dfg, 2)
        for cut in plan.cut_edges:
            object.__setattr__(cut, "src_partition", 1)
            object.__setattr__(cut, "dst_partition", 0)
        with pytest.raises(DFGError, match="backwards"):
            plan.validate(dfg)

    def test_validate_rejects_missing_node(self):
        dfg = chain(4)
        plan = partition_dfg(dfg, 2)
        plan.partitions[0].remove(0)
        del plan.assignment[0]
        with pytest.raises(DFGError, match="cover"):
            plan.validate(dfg)


class TestStrategies:
    def test_refine_never_worse_than_topo(self):
        for name in ("sha", "gsm", "patricia", "backprop"):
            dfg = get_kernel(name)
            topo = partition_dfg(dfg, 3, strategy="topo")
            refined = partition_dfg(dfg, 3, strategy="refine")
            assert refined.cut_size <= topo.cut_size
            refined.validate(dfg)

    def test_strategies_tuple_matches_cli_choices(self):
        assert PARTITION_STRATEGIES == ("topo", "refine")


class TestSerialization:
    def test_to_dict_round_trips_key_facts(self):
        plan = partition_dfg(get_kernel("gsm"), 2)
        data = plan.to_dict()
        assert data["cut_size"] == plan.cut_size
        assert data["strategy"] == "topo"
        assert len(data["partitions"]) == 2
        assert all(
            cut["src_partition"] < cut["dst_partition"]
            for cut in data["cut_edges"]
        )

    def test_summary_mentions_sizes_and_cut(self):
        plan = partition_dfg(get_kernel("gsm"), 2)
        text = plan.summary()
        assert "2 partitions" in text
        assert "cut edges" in text


@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(min_value=6, max_value=40),
    num_partitions=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
    strategy=st.sampled_from(PARTITION_STRATEGIES),
)
def test_random_dfg_plans_always_validate(num_nodes, num_partitions, seed, strategy):
    """Any plan the cutter produces passes its own structural invariants."""
    dfg = random_dfg(num_nodes, seed=seed)
    try:
        plan = partition_dfg(dfg, num_partitions, strategy=strategy)
    except DFGError:
        # Legal outcome: recurrences may leave fewer supernodes than
        # requested partitions.
        supers = len(_strongly_connected(dfg))
        assert supers < num_partitions or supers == 1
        return
    assert isinstance(plan, PartitionPlan)
    plan.validate(dfg)
    assert plan.num_partitions == num_partitions
    assert all(part for part in plan.partitions)  # no empty partitions
