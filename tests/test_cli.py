"""Tests for the command line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_defaults(self):
        args = build_parser().parse_args(["map", "--kernel", "srand"])
        assert args.rows == 4 and args.cols == 4
        assert args.kernel == "srand"

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "--kernels", "srand", "nw", "--sizes", "2", "3", "--timeout", "10"]
        )
        assert args.kernels == ["srand", "nw"]
        assert args.sizes == [2, 3]
        assert args.jobs == 1
        assert args.backend == "cdcl"
        assert args.seed is None
        assert args.amo_encoding == "auto"

    def test_solver_flags_plumbed(self):
        args = build_parser().parse_args(
            ["map", "--kernel", "srand", "--backend", "dpll", "--seed", "7",
             "--amo-encoding", "pairwise"]
        )
        assert args.backend == "dpll"
        assert args.seed == 7
        assert args.amo_encoding == "pairwise"
        args = build_parser().parse_args(
            ["sweep", "--jobs", "4", "--backend", "cdcl", "--seed", "3",
             "--amo-encoding", "commander"]
        )
        assert args.jobs == 4
        assert args.seed == 3
        assert args.amo_encoding == "commander"

    def test_unknown_backend_rejected(self, capsys):
        # Backend names are validated in the command (the registry is open
        # for external:<path> specs), not by argparse choices.
        exit_code = main(["map", "--kernel", "srand", "--backend", "z3"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("error:")
        assert "z3" in captured.err

    def test_missing_solver_binary_is_one_line_error(self, capsys):
        import shutil

        if shutil.which("kissat"):
            pytest.skip("kissat installed; unavailable-backend path untestable")
        exit_code = main(["map", "--kernel", "srand", "--backend", "kissat"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.count("\n") == 1  # a single line, not a traceback
        assert "kissat" in captured.err and "apt-get" in captured.err

    def test_dimacs_and_proof_flags_parsed(self):
        args = build_parser().parse_args(
            ["map", "--kernel", "srand", "--backend", "subprocess",
             "--dimacs-dir", "/tmp/dimacs", "--reuse-dimacs", "--proof"]
        )
        assert args.backend == "subprocess"
        assert args.dimacs_dir == "/tmp/dimacs"
        assert args.reuse_dimacs is True
        assert args.proof is True
        defaults = build_parser().parse_args(["map", "--kernel", "srand"])
        assert defaults.dimacs_dir is None
        assert defaults.reuse_dimacs is False
        assert defaults.proof is False
        sweep = build_parser().parse_args(
            ["sweep", "--backend", "subprocess", "--dimacs-dir", "/tmp/d",
             "--reuse-dimacs", "--proof"]
        )
        assert sweep.backend == "subprocess"
        assert sweep.dimacs_dir == "/tmp/d"
        assert sweep.reuse_dimacs is True
        assert sweep.proof is True

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "--kernel", "unknown"])

    def test_search_flags_parsed(self):
        args = build_parser().parse_args(
            ["map", "--kernel", "srand", "--search", "portfolio",
             "--jobs", "4", "--cache", "/tmp/cache",
             "--portfolio-variants", "no-probe", "sequential"]
        )
        assert args.search == "portfolio"
        assert args.jobs == 4
        assert args.cache == "/tmp/cache"
        assert args.portfolio_variants == ["no-probe", "sequential"]
        args = build_parser().parse_args(
            ["sweep", "--search", "bisect", "--cache", "/tmp/cache"]
        )
        assert args.search == "bisect"
        assert args.cache == "/tmp/cache"

    def test_seed_and_tuner_flags_parsed(self):
        args = build_parser().parse_args(
            ["map", "--kernel", "srand", "--seed-heuristic",
             "--seed-budget", "0.5", "--tuner", "/tmp/tuner",
             "--cache-max-mb", "16"]
        )
        assert args.seed_heuristic is True
        assert args.seed_budget == 0.5
        assert args.tuner == "/tmp/tuner"
        assert args.cache_max_mb == 16.0
        defaults = build_parser().parse_args(["map", "--kernel", "srand"])
        assert defaults.seed_heuristic is False
        assert defaults.tuner is None
        assert defaults.cache_max_mb is None
        sweep = build_parser().parse_args(
            ["sweep", "--seed-heuristic", "--tuner", "/tmp/tuner",
             "--cache-max-mb", "8"]
        )
        assert sweep.seed_heuristic is True
        assert sweep.tuner == "/tmp/tuner"
        assert sweep.cache_max_mb == 8.0

    def test_unknown_search_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["map", "--kernel", "srand", "--search", "random-walk"]
            )

    def test_unknown_portfolio_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["map", "--kernel", "srand", "--portfolio-variants", "quantum"]
            )


class TestCommands:
    def test_map_command_prints_kernel_report(self, capsys):
        exit_code = main(["map", "--kernel", "srand", "--rows", "2", "--cols", "2",
                          "--timeout", "30"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "II=" in captured.out
        assert "cycle" in captured.out

    def test_map_command_with_source_file(self, tmp_path, capsys):
        source = tmp_path / "loop.kernel"
        source.write_text("acc = acc + a[i]\n")
        exit_code = main(["map", "--source", str(source), "--rows", "2", "--cols", "2",
                          "--timeout", "30"])
        assert exit_code == 0
        assert "II=" in capsys.readouterr().out

    def test_map_requires_kernel_or_source(self):
        with pytest.raises(SystemExit):
            main(["map", "--rows", "2", "--cols", "2"])

    def test_show_command(self, capsys):
        exit_code = main(["show", "--kernel", "nw", "--sizes", "2", "--ii", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "MII on 2x2" in captured.out
        assert "KMS (II=3" in captured.out

    def test_sweep_command_tiny(self, capsys, tmp_path):
        report = tmp_path / "report.md"
        exit_code = main([
            "sweep", "--kernels", "srand", "--sizes", "2", "--timeout", "20",
            "--pathseeker-repeats", "1", "--write-report", str(report),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 6" in captured.out
        assert report.exists()

    def test_map_with_cache_round_trip(self, capsys, tmp_path):
        cache = tmp_path / "mapcache"
        exit_code = main([
            "map", "--kernel", "srand", "--rows", "2", "--cols", "2",
            "--timeout", "30", "--cache", str(cache),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cache: miss" in captured.out
        assert "1 write(s)" in captured.out

        exit_code = main([
            "map", "--kernel", "srand", "--rows", "2", "--cols", "2",
            "--timeout", "30", "--cache", str(cache),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cache: hit" in captured.out
        assert "cached" in captured.out

    def test_map_with_portfolio_search(self, capsys):
        exit_code = main([
            "map", "--kernel", "srand", "--rows", "2", "--cols", "2",
            "--timeout", "60", "--search", "portfolio", "--jobs", "2",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "II=" in captured.out
        assert "portfolio:" in captured.out
        assert "worker(s) launched" in captured.out

    def test_map_with_seed_heuristic_reports_seed(self, capsys):
        exit_code = main([
            "map", "--kernel", "gsm", "--rows", "2", "--cols", "2",
            "--timeout", "60", "--seed-heuristic",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "seed: " in captured.out

    def test_map_with_tuner_consults_on_second_run(self, capsys, tmp_path):
        tuner = tmp_path / "lane-tuner"
        argv = [
            "map", "--kernel", "gsm", "--rows", "2", "--cols", "2",
            "--timeout", "60", "--search", "portfolio", "--jobs", "2",
            "--tuner", str(tuner),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "tuner: cold start" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "tuner: consulted persisted lane stats" in second

    def test_sweep_with_cache_reuses_results(self, capsys, tmp_path):
        cache = tmp_path / "sweepcache"
        argv = [
            "sweep", "--kernels", "srand", "--sizes", "2", "--timeout", "20",
            "--pathseeker-repeats", "1", "--cache", str(cache),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "mapping cache: 0/1" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "mapping cache: 1/1" in second
        assert "[cache]" in second

    def test_map_with_dpll_backend_and_seed(self, capsys):
        exit_code = main([
            "map", "--kernel", "srand", "--rows", "2", "--cols", "2",
            "--timeout", "30", "--backend", "dpll", "--seed", "1",
            "--amo-encoding", "pairwise",
        ])
        assert exit_code == 0
        assert "II=" in capsys.readouterr().out

    def test_map_with_subprocess_backend(self, capsys, tmp_path):
        exit_code = main([
            "map", "--kernel", "srand", "--rows", "2", "--cols", "2",
            "--timeout", "60", "--backend", "subprocess",
            "--dimacs-dir", str(tmp_path),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "II=" in captured.out
        assert list(tmp_path.glob("*.cnf")), "exported DIMACS files expected"

    def test_map_with_proof_reports_digest(self, capsys, tmp_path):
        # gsm@2x2 walks through UNSAT rungs before mapping, so --proof has
        # something to certify.
        exit_code = main([
            "map", "--kernel", "gsm", "--rows", "2", "--cols", "2",
            "--timeout", "60", "--proof", "--dimacs-dir", str(tmp_path),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "proof: " in captured.out
        assert "UNSAT attempt(s) logged" in captured.out
        assert "digest" in captured.out

    def test_sweep_command_parallel_jobs(self, capsys):
        exit_code = main([
            "sweep", "--kernels", "srand", "--sizes", "2", "--timeout", "20",
            "--pathseeker-repeats", "1", "--jobs", "2",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "2 parallel jobs" in captured.out
        assert "Figure 6" in captured.out


class TestArchitectureFlags:
    def test_arch_flags_parsed(self):
        args = build_parser().parse_args(
            ["map", "--kernel", "srand", "--arch-preset", "mem_edge_4x4",
             "--save-mapping", "out.json"]
        )
        assert args.arch_preset == "mem_edge_4x4"
        assert args.save_mapping == "out.json"

    def test_arch_preset_and_spec_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["map", "--kernel", "srand", "--arch-preset", "mem_edge_4x4",
                 "--arch-spec", "arch.json"]
            )

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["map", "--kernel", "srand", "--arch-preset", "nope"]
            )

    def test_sweep_scenarios_parsed(self):
        args = build_parser().parse_args(
            ["sweep", "--scenarios", "homogeneous", "mem_edge"]
        )
        assert args.scenarios == ["homogeneous", "mem_edge"]

    def test_map_with_preset_and_save_mapping(self, capsys, tmp_path):
        out = tmp_path / "mapping.json"
        exit_code = main([
            "map", "--kernel", "srand", "--arch-preset", "mem_edge_4x4",
            "--timeout", "60", "--save-mapping", str(out),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "II=" in captured.out
        assert out.exists()

        from repro.core.mapping import Mapping

        mapping = Mapping.from_json(out.read_text())
        assert mapping.is_valid()
        assert not mapping.cgra.is_homogeneous

    def test_map_with_spec_file(self, capsys, tmp_path):
        import json

        spec = {
            "rows": 2, "cols": 2, "registers_per_pe": 4,
            "pe_classes": {"full": {"capabilities": ["alu", "mul", "div", "mem"]}},
            "default_class": "full",
        }
        path = tmp_path / "arch.json"
        path.write_text(json.dumps(spec))
        exit_code = main([
            "map", "--kernel", "srand", "--arch-spec", str(path), "--timeout", "60",
        ])
        assert exit_code == 0
        assert "II=" in capsys.readouterr().out

    def test_map_reports_unmappable_kernel(self, capsys, tmp_path):
        import json

        spec = {
            "rows": 2, "cols": 2,
            "pe_classes": {"alu": {"capabilities": ["alu"]}},
            "default_class": "alu",
        }
        path = tmp_path / "arch.json"
        path.write_text(json.dumps(spec))
        # srand stores to out[i]: no memory-capable PE -> early clear error.
        exit_code = main([
            "map", "--kernel", "srand", "--arch-spec", str(path), "--timeout", "60",
        ])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "cannot fit" in captured.err

    def test_map_reports_bad_spec_file(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{")
        exit_code = main([
            "map", "--kernel", "srand", "--arch-spec", str(path), "--timeout", "60",
        ])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err


class TestSweepErrorPath:
    def test_mid_sweep_backend_loss_is_one_line_error(self, capsys, monkeypatch):
        """A solver binary vanishing mid-sweep must surface exactly like
        the map path: 'error: ...' on stderr, exit 2, no traceback."""
        import repro.cli as cli_module
        from repro.sat.backend import BackendUnavailableError

        def vanish(config, progress=True, jobs=1, **farm_kwargs):
            raise BackendUnavailableError(
                "external solver 'kissat' disappeared mid-sweep"
            )

        monkeypatch.setattr(cli_module, "run_sweep", vanish)
        exit_code = main([
            "sweep", "--kernels", "srand", "--sizes", "2", "--timeout", "5",
        ])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("error:")
        assert captured.err.count("\n") == 1
        assert "kissat" in captured.err

    def test_mid_sweep_mapping_error_is_one_line_error(self, capsys, monkeypatch):
        import repro.cli as cli_module
        from repro.exceptions import MappingError

        def explode(config, progress=True, jobs=1, **farm_kwargs):
            raise MappingError("scenario fabric rejected kernel")

        monkeypatch.setattr(cli_module, "run_sweep", explode)
        exit_code = main([
            "sweep", "--kernels", "srand", "--sizes", "2", "--timeout", "5",
        ])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("error:")
        assert captured.err.count("\n") == 1


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8157
        assert args.pool == 2
        assert args.cache == ".service-cache"
        assert args.cache_max_mb is None
        assert args.default_timeout == 60.0
        assert args.max_timeout == 600.0

    def test_serve_flags_plumbed(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--pool", "4", "--cache", "/tmp/c",
            "--cache-max-mb", "64", "--tuner", "/tmp/t",
            "--default-timeout", "30", "--max-timeout", "120",
        ])
        assert args.port == 0
        assert args.pool == 4
        assert args.cache == "/tmp/c"
        assert args.cache_max_mb == 64.0
        assert args.tuner == "/tmp/t"
        assert args.default_timeout == 30.0
        assert args.max_timeout == 120.0
