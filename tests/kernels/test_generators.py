"""Tests for the synthetic DFG generators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg.analysis import asap_schedule, critical_path_length
from repro.kernels.generators import random_dfg, random_layered_dfg


class TestRandomDFG:
    def test_deterministic_for_same_seed(self):
        a = random_dfg(12, seed=3)
        b = random_dfg(12, seed=3)
        assert a.num_nodes == b.num_nodes
        assert [(e.src, e.dst, e.distance) for e in a.edges] == [
            (e.src, e.dst, e.distance) for e in b.edges
        ]

    def test_every_non_root_node_has_a_predecessor(self):
        dfg = random_dfg(15, seed=1)
        for node_id in dfg.node_ids[1:]:
            assert dfg.predecessors(node_id)

    def test_named(self):
        assert random_dfg(5, seed=2, name="custom").name == "custom"

    @settings(max_examples=30, deadline=None)
    @given(num_nodes=st.integers(2, 30), seed=st.integers(0, 1000))
    def test_always_valid(self, num_nodes, seed):
        dfg = random_dfg(num_nodes, seed=seed)
        dfg.validate()  # raises on failure
        assert dfg.num_nodes == num_nodes


class TestLayeredDFG:
    def test_shape(self):
        dfg = random_layered_dfg(num_layers=4, width=3, seed=0)
        assert dfg.num_nodes == 12
        assert critical_path_length(dfg) == 4

    def test_fan_in_respected(self):
        dfg = random_layered_dfg(num_layers=3, width=4, fan_in=2, seed=1)
        asap = asap_schedule(dfg)
        for node_id in dfg.node_ids:
            if asap[node_id] > 0:
                assert 1 <= len(dfg.predecessors(node_id)) <= 2

    def test_recurrence_optional(self):
        with_rec = random_layered_dfg(3, 2, seed=0, with_recurrence=True)
        without = random_layered_dfg(3, 2, seed=0, with_recurrence=False)
        assert with_rec.back_edges()
        assert not without.back_edges()

    @settings(max_examples=20, deadline=None)
    @given(layers=st.integers(1, 6), width=st.integers(1, 5), seed=st.integers(0, 100))
    def test_always_valid(self, layers, width, seed):
        dfg = random_layered_dfg(layers, width, seed=seed)
        dfg.validate()
        assert dfg.num_nodes == layers * width
