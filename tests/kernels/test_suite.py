"""Tests for the benchmark kernel suite."""

import pytest

from repro.dfg.analysis import minimum_initiation_interval
from repro.kernels import all_kernel_names, all_kernels, get_kernel, get_kernel_spec

PAPER_BENCHMARKS = [
    "sha", "gsm", "patricia", "bitcount", "backprop", "nw", "srand",
    "hotspot", "sha2", "basicmath", "stringsearch",
]


class TestSuiteContents:
    def test_all_eleven_paper_benchmarks_present(self):
        assert all_kernel_names() == PAPER_BENCHMARKS

    def test_specs_have_provenance(self):
        for name in all_kernel_names():
            spec = get_kernel_spec(name)
            assert spec.suite in ("mibench", "rodinia")
            assert spec.description
            assert spec.source.strip()

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            get_kernel_spec("does_not_exist")

    def test_all_kernels_returns_dfgs(self):
        kernels = all_kernels()
        assert set(kernels) == set(PAPER_BENCHMARKS)

    def test_kernels_are_cached(self):
        assert get_kernel("sha") is get_kernel("sha")


class TestKernelStructure:
    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_kernel_is_valid_dfg(self, name):
        dfg = get_kernel(name)
        dfg.validate()
        assert dfg.num_nodes >= 10
        assert dfg.num_edges >= dfg.num_nodes - 1

    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_kernel_has_loop_carried_dependency(self, name):
        """Every benchmark is a loop body: it has at least one back edge
        (induction variable or accumulator)."""
        assert get_kernel(name).back_edges()

    def test_difficulty_ordering_matches_paper(self):
        """patricia and backprop are the large kernels that defeat the
        heuristics on 2x2; nw/srand/basicmath/stringsearch are the small
        ones."""
        sizes = {name: get_kernel(name).num_nodes for name in PAPER_BENCHMARKS}
        for big in ("patricia", "backprop"):
            for small in ("nw", "srand", "basicmath", "stringsearch"):
                assert sizes[big] > sizes[small]

    def test_mii_spread_across_2x2(self):
        """On the 2x2 fabric the minimum IIs span a wide range (the paper's
        Figure 6 bars range from about 2 to 14)."""
        miis = [
            minimum_initiation_interval(get_kernel(name), 4)
            for name in PAPER_BENCHMARKS
        ]
        assert min(miis) <= 4
        assert max(miis) >= 10
