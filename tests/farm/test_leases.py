"""Lease/retry/quarantine protocol, driven with a fake clock — no
processes anywhere in this file."""

from __future__ import annotations

import pytest

from repro.exceptions import MappingError
from repro.farm.journal import SweepJournal, WorkItem
from repro.farm.leases import LeasedWorkQueue
from repro.farm.retry import (
    PERMANENT,
    TRANSIENT,
    RetryPolicy,
    classify_failure,
)
from repro.sat.backend import BackendUnavailableError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _items(count: int) -> list[WorkItem]:
    return [
        WorkItem(index=i, id=f"item-{i:03d}", kernel=f"k{i}", size=3,
                 mapper="SAT-MapIt", scenario="homogeneous")
        for i in range(count)
    ]


def _queue(count: int = 3, **kwargs) -> tuple[LeasedWorkQueue, FakeClock]:
    clock = FakeClock()
    kwargs.setdefault("policy", RetryPolicy(max_retries=2, backoff_base=1.0,
                                            jitter=0.0))
    kwargs.setdefault("lease_ttl", 10.0)
    queue = LeasedWorkQueue(_items(count), clock=clock, **kwargs)
    return queue, clock


class TestClassify:
    def test_mapping_error_is_permanent(self):
        assert classify_failure(MappingError("no fit")) == PERMANENT

    def test_everything_else_is_transient(self):
        assert classify_failure(BackendUnavailableError("kissat")) == TRANSIENT
        assert classify_failure(RuntimeError("boom")) == TRANSIENT
        assert classify_failure(OSError(12, "ENOMEM")) == TRANSIENT


class TestBackoff:
    def test_exponential_with_cap(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_cap=5.0, jitter=0.0)
        assert [policy.backoff(n) for n in range(4)] == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_is_deterministic_per_item_and_attempt(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.backoff(1, key="a") == policy.backoff(1, key="a")
        assert policy.backoff(1, key="a") != policy.backoff(1, key="b")
        assert policy.backoff(1, key="a") != policy.backoff(2, key="a")

    def test_exhausted(self):
        policy = RetryPolicy(max_retries=2)
        assert not policy.exhausted(0)
        assert not policy.exhausted(1)
        assert policy.exhausted(2)


class TestLeaseProtocol:
    def test_items_leased_in_sweep_order(self):
        queue, _clock = _queue(3)
        item0, attempt = queue.acquire(worker=0)
        assert (item0.index, attempt) == (0, 0)
        item1, _ = queue.acquire(worker=1)
        assert item1.index == 1
        assert queue.lease_of(0) == item0.id

    def test_one_lease_per_worker(self):
        queue, _clock = _queue(3)
        queue.acquire(worker=0)
        with pytest.raises(ValueError, match="already holds"):
            queue.acquire(worker=0)

    def test_complete_frees_worker_and_finishes(self):
        queue, _clock = _queue(1)
        item, _ = queue.acquire(worker=0)
        assert queue.complete(item.id, {"ii": 3})
        assert queue.finished
        assert queue.stats.completed == 1
        assert queue.lease_of(0) is None

    def test_duplicate_complete_is_ignored(self):
        # A reaped-but-alive straggler may deliver after the item was
        # re-run to completion: first result wins.
        queue, _clock = _queue(1)
        item, _ = queue.acquire(worker=0)
        assert queue.complete(item.id, {"ii": 3})
        assert not queue.complete(item.id, {"ii": 4})
        assert queue.results[item.id] == {"ii": 3}
        assert queue.stats.completed == 1

    def test_heartbeat_extends_lease(self):
        queue, clock = _queue(1, lease_ttl=10.0)
        queue.acquire(worker=0)
        clock.advance(8.0)
        queue.heartbeat(0)
        clock.advance(8.0)
        assert queue.expired() == []  # 8 s since last beat < 10 s TTL
        clock.advance(3.0)
        assert len(queue.expired()) == 1

    def test_expiry_without_heartbeat(self):
        queue, clock = _queue(1, lease_ttl=10.0)
        item, _ = queue.acquire(worker=0)
        clock.advance(10.1)
        (lease,) = queue.expired()
        assert lease.item.id == item.id
        assert queue.expire(lease) == "requeued"
        assert queue.stats.leases_expired == 1
        assert queue.stats.retries == 1


class TestRetries:
    def test_transient_failure_requeues_with_backoff(self):
        queue, clock = _queue(1)
        item, _ = queue.acquire(worker=0)
        assert queue.fail(item.id, "crash", TRANSIENT) == "requeued"
        # Backing off: not ready immediately, ready after the delay.
        assert queue.acquire(worker=0) is None
        assert queue.next_ready_in() == pytest.approx(1.0)
        clock.advance(1.0)
        leased = queue.acquire(worker=0)
        assert leased is not None
        assert leased[1] == 1  # second attempt
        assert queue.attempts_of(item.id) == 1

    def test_permanent_failure_quarantines_immediately(self):
        queue, _clock = _queue(1)
        item, _ = queue.acquire(worker=0)
        assert queue.fail(item.id, "unmappable", PERMANENT) == "quarantined"
        assert queue.finished
        assert queue.quarantined == {item.id: "unmappable"}
        assert queue.stats.quarantined == 1
        assert queue.stats.retries == 0

    def test_retry_cap_quarantines_poison_item(self):
        queue, clock = _queue(1)  # max_retries=2
        outcomes = []
        for _ in range(3):
            clock.advance(60.0)
            item, _attempt = queue.acquire(worker=0)
            outcomes.append(queue.fail(item.id, "still broken", TRANSIENT))
        assert outcomes == ["requeued", "requeued", "quarantined"]
        assert queue.finished
        assert queue.stats.retries == 2
        assert queue.stats.transient_failures == 3

    def test_fail_after_completion_is_stale(self):
        queue, _clock = _queue(1)
        item, _ = queue.acquire(worker=0)
        queue.complete(item.id, {"ii": 3})
        assert queue.fail(item.id, "late", TRANSIENT) == "ignored"
        assert queue.stats.quarantined == 0


class TestResumePreload:
    def test_preloaded_done_items_are_never_leased(self):
        queue, _clock = _queue(3)
        queue.preload_done("item-001", {"ii": 5})
        seen = []
        while True:
            leased = queue.acquire(worker=len(seen))
            if leased is None:
                break
            seen.append(leased[0].id)
        assert seen == ["item-000", "item-002"]
        assert queue.stats.skipped == 1

    def test_preloaded_quarantine_and_attempts(self):
        queue, clock = _queue(3)
        queue.preload_quarantined("item-000", "poison")
        queue.preload_attempts("item-001", 2)
        item, attempt = queue.acquire(worker=0)
        assert item.id == "item-001"
        assert attempt == 2  # one strike left before the cap
        assert queue.fail(item.id, "again", TRANSIENT) == "quarantined"

    def test_duplicate_item_ids_rejected(self):
        items = _items(2)
        clone = WorkItem(index=1, id=items[0].id, kernel="x", size=2,
                         mapper="RAMP", scenario="homogeneous")
        with pytest.raises(ValueError, match="duplicate"):
            LeasedWorkQueue([items[0], clone])


class TestJournalMirroring:
    def test_transitions_are_appended(self, tmp_path):
        items = _items(2)
        journal = SweepJournal(tmp_path)
        journal.create("cfg", items)
        clock = FakeClock()
        queue = LeasedWorkQueue(
            items,
            policy=RetryPolicy(max_retries=0, jitter=0.0),
            journal=journal,
            clock=clock,
        )
        item, _ = queue.acquire(worker=0)
        queue.complete(item.id, {"ii": 3})
        item2, _ = queue.acquire(worker=0)
        queue.fail(item2.id, "boom", TRANSIENT)  # cap 0 -> quarantine
        journal.close()

        state = SweepJournal(tmp_path).replay()
        assert state.done == {item.id: {"ii": 3}}
        assert state.quarantined == {item2.id: "boom"}
        assert not state.in_flight
