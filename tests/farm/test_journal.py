"""Journal format: create/append/replay, crash tolerance, compatibility."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import FarmError
from repro.experiments.runner import ExperimentConfig
from repro.farm.journal import (
    SCHEMA,
    JournalState,
    SweepJournal,
    WorkItem,
    config_fingerprint,
    sweep_config_digest,
    work_item_id,
)


def _items(count: int = 3, digest: str = "d" * 64) -> list[WorkItem]:
    return [
        WorkItem(
            index=i,
            id=work_item_id("srand", 3, "SAT-MapIt", "homogeneous", digest)[:40]
            + f"{i:024d}",
            kernel="srand",
            size=3,
            mapper="SAT-MapIt",
            scenario="homogeneous",
        )
        for i in range(count)
    ]


class TestDigest:
    def test_digest_is_stable_for_equal_configs(self):
        assert sweep_config_digest(ExperimentConfig()) == sweep_config_digest(
            ExperimentConfig()
        )

    def test_digest_changes_with_protocol_fields(self):
        base = sweep_config_digest(ExperimentConfig())
        assert sweep_config_digest(ExperimentConfig(timeout=1.0)) != base
        assert sweep_config_digest(ExperimentConfig(kernels=("srand",))) != base
        assert sweep_config_digest(ExperimentConfig(backend="dpll")) != base

    def test_execution_knobs_do_not_change_the_digest(self):
        # Resuming with a looser retry cap or lease TTL is legitimate: the
        # item IDs and results are unaffected by either.
        base = sweep_config_digest(ExperimentConfig())
        assert sweep_config_digest(ExperimentConfig(max_retries=9)) == base
        assert sweep_config_digest(ExperimentConfig(lease_ttl=1.0)) == base
        fingerprint = config_fingerprint(ExperimentConfig())
        assert "max_retries" not in fingerprint
        assert "lease_ttl" not in fingerprint

    def test_item_ids_are_distinct_per_coordinate(self):
        digest = sweep_config_digest(ExperimentConfig())
        ids = {
            work_item_id(kernel, size, mapper, scenario, digest)
            for kernel in ("srand", "basicmath")
            for size in (2, 3)
            for mapper in ("SAT-MapIt", "RAMP")
            for scenario in ("homogeneous", "mem_edge")
        }
        assert len(ids) == 16


class TestCreateReplay:
    def test_roundtrip(self, tmp_path):
        items = _items()
        journal = SweepJournal(tmp_path)
        journal.create("cfg", items)
        journal.append("lease", id=items[0].id, worker=0, attempt=0)
        journal.append("done", id=items[0].id, record={"ii": 3})
        journal.append("lease", id=items[1].id, worker=1, attempt=0)
        journal.close()

        state = journal.replay()
        assert isinstance(state, JournalState)
        assert state.config_digest == "cfg"
        assert [item.id for item in state.items] == [item.id for item in items]
        assert state.done == {items[0].id: {"ii": 3}}
        # The unresolved lease was in flight at the crash point.
        assert state.in_flight == {items[1].id}

    def test_create_refuses_existing_journal(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.create("cfg", _items(1))
        journal.close()
        with pytest.raises(FarmError, match="resume"):
            SweepJournal(tmp_path).create("cfg", _items(1))

    def test_replay_missing_journal(self, tmp_path):
        with pytest.raises(FarmError, match="no sweep journal"):
            SweepJournal(tmp_path / "nowhere").replay()

    def test_requeue_and_quarantine_fold(self, tmp_path):
        items = _items(2)
        journal = SweepJournal(tmp_path)
        journal.create("cfg", items)
        journal.append("lease", id=items[0].id, worker=0, attempt=0)
        journal.append("failed", id=items[0].id, error="boom", kind="transient",
                       attempt=0)
        journal.append("requeued", id=items[0].id, attempt=1, backoff_s=0.1)
        journal.append("lease", id=items[1].id, worker=1, attempt=0)
        journal.append("failed", id=items[1].id, error="unmappable",
                       kind="permanent", attempt=0)
        journal.append("quarantined", id=items[1].id, error="unmappable")
        journal.close()

        state = journal.replay()
        assert state.attempts == {items[0].id: 1}
        assert state.quarantined == {items[1].id: "unmappable"}
        assert not state.in_flight


class TestCrashTolerance:
    def test_torn_final_line_is_ignored(self, tmp_path):
        items = _items(2)
        journal = SweepJournal(tmp_path)
        journal.create("cfg", items)
        journal.append("done", id=items[0].id, record={"ii": 4})
        journal.close()
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "done", "id": "trunc')  # killed mid-append

        state = journal.replay()
        assert state.done == {items[0].id: {"ii": 4}}

    def test_midfile_corruption_raises(self, tmp_path):
        items = _items(2)
        journal = SweepJournal(tmp_path)
        journal.create("cfg", items)
        journal.close()
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        lines[1] = '{"type": "item", "broken'
        journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(FarmError, match="corrupt journal line"):
            journal.replay()

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"type": "done", "id": "x"}) + "\n",
                        encoding="utf-8")
        with pytest.raises(FarmError, match="missing journal header"):
            SweepJournal(tmp_path).replay()

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            json.dumps({"type": "header", "schema": "other/9",
                        "config_digest": "cfg"}) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(FarmError, match="schema"):
            SweepJournal(tmp_path).replay()

    def test_unknown_event_types_are_forward_compatible(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.create("cfg", _items(1))
        journal.append("telemetry", id="whatever", extra=1)
        journal.append("resumed", done=0, quarantined=0)
        journal.close()
        state = journal.replay()  # must not raise
        assert state.config_digest == "cfg"
        assert SCHEMA.startswith("satmapit-farm-journal/")
