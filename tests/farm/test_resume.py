"""Crash-resume integration: SIGKILL a journalled sweep mid-run, resume
it with ``--resume`` semantics, and demand (a) no finished item is ever
solved twice and (b) the final records equal an uninterrupted run."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.experiments.runner import ExperimentConfig, run_sweep

SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")

KERNELS = ("srand", "basicmath")
SIZES = (3,)
TIMEOUT = 20.0


def _config(cache_dir: str) -> ExperimentConfig:
    return ExperimentConfig(
        kernels=KERNELS, sizes=SIZES, timeout=TIMEOUT, cache_dir=cache_dir
    )


def _journal_events(journal_dir: Path) -> list[dict]:
    path = journal_dir / "journal.jsonl"
    if not path.exists():
        return []
    events = []
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn final append
    return events


def _done_ids(events: list[dict]) -> list[str]:
    return [e["id"] for e in events if e.get("type") == "done"]


def test_sigkilled_sweep_resumes_without_resolving(tmp_path):
    journal_dir = tmp_path / "journal"
    cache_dir = tmp_path / "cache"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    argv = [
        sys.executable, "-m", "repro.cli", "sweep",
        "--kernels", *KERNELS,
        "--sizes", *[str(s) for s in SIZES],
        "--timeout", str(int(TIMEOUT)),
        "--jobs", "2",
        "--journal", str(journal_dir),
        "--cache", str(cache_dir),
    ]
    # Own session so the whole tree (CLI + farm workers) dies on one kill.
    proc = subprocess.Popen(
        argv, env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        # Wait until at least one item finished, then SIGKILL mid-sweep.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if _done_ids(_journal_events(journal_dir)):
                break
            time.sleep(0.05)
    finally:
        if proc.poll() is None:
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
        proc.wait(timeout=30)

    events_before = _journal_events(journal_dir)
    done_before = _done_ids(events_before)
    assert done_before, "sweep finished or died before any item completed"
    interrupted = len(done_before) < 2 * len(KERNELS) * len(SIZES)

    resumed = run_sweep(
        _config(str(cache_dir)), jobs=2,
        journal_dir=str(journal_dir), resume=True,
    )

    # Journal-skip counters: everything finished pre-kill was served from
    # the journal; nothing was solved twice (each id has at most one
    # ``done`` event across both runs).
    assert resumed.farm is not None and resumed.farm.resumed
    assert resumed.farm.skipped == len(done_before)
    done_after = _done_ids(_journal_events(journal_dir))
    assert sorted(set(done_after)) == sorted(done_after)
    assert set(done_before) <= set(done_after)
    resumed_records = [r for r in resumed.records if r.resumed]
    assert len(resumed_records) == len(done_before)
    if interrupted:
        assert resumed.farm.completed > 0  # the resume did real work

    # The resumed sweep's final report equals an uninterrupted run.
    reference = run_sweep(_config(str(cache_dir)))
    assert [
        (r.kernel, r.size, r.mapper, r.scenario, r.status, r.ii)
        for r in resumed.records
    ] == [
        (r.kernel, r.size, r.mapper, r.scenario, r.status, r.ii)
        for r in reference.records
    ]
