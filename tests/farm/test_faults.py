"""Fault-plan parsing and the determinism of every injected fault."""

from __future__ import annotations

import json

import pytest

from repro.farm.faults import CHAOS_ENV, FaultPlan, corrupt_newest_entry
from repro.sat.backend import BackendUnavailableError


class TestSpecParsing:
    def test_full_spec(self):
        plan = FaultPlan.from_spec(
            "kill-after=2,wedge-after=5,backend-rate=0.25,"
            "backend-attempts=3,corrupt-cache-after=4,seed=7,target-worker=1"
        )
        assert plan == FaultPlan(
            kill_worker_after=2,
            wedge_worker_after=5,
            backend_fail_rate=0.25,
            backend_fail_attempts=3,
            corrupt_cache_after=4,
            seed=7,
            target_worker=1,
        )
        assert plan.active

    def test_empty_and_whitespace_parts(self):
        assert FaultPlan.from_spec("") == FaultPlan()
        assert FaultPlan.from_spec(" kill-after=1 , ") == FaultPlan(
            kill_worker_after=1
        )
        assert not FaultPlan().active

    def test_unknown_knob(self):
        with pytest.raises(ValueError, match="unknown chaos knob"):
            FaultPlan.from_spec("explode=1")

    def test_non_numeric_value(self):
        with pytest.raises(ValueError, match="needs a number"):
            FaultPlan.from_spec("kill-after=soon")

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({CHAOS_ENV: "  "}) is None
        plan = FaultPlan.from_env({CHAOS_ENV: "backend-rate=1.0"})
        assert plan is not None and plan.backend_fail_rate == 1.0


class TestBackendCoin:
    def test_deterministic_per_item(self):
        plan = FaultPlan(backend_fail_rate=0.5, backend_fail_attempts=2, seed=3)
        for item in ("a", "b", "c"):
            first = plan.should_fail_backend(item, 0)
            assert plan.should_fail_backend(item, 0) == first
            assert plan.should_fail_backend(item, 1) == first

    def test_attempts_beyond_the_doomed_window_succeed(self):
        # Convergence guarantee: with max_retries >= backend_fail_attempts
        # every item eventually passes, so the chaos invariant can demand a
        # complete, identical sweep.
        plan = FaultPlan(backend_fail_rate=1.0, backend_fail_attempts=2)
        assert plan.should_fail_backend("x", 0)
        assert plan.should_fail_backend("x", 1)
        assert not plan.should_fail_backend("x", 2)

    def test_rate_bounds(self):
        never = FaultPlan(backend_fail_rate=0.0)
        always = FaultPlan(backend_fail_rate=1.0)
        items = [f"item-{i}" for i in range(64)]
        assert not any(never.should_fail_backend(i, 0) for i in items)
        assert all(always.should_fail_backend(i, 0) for i in items)

    def test_rate_selects_roughly_that_fraction(self):
        plan = FaultPlan(backend_fail_rate=0.5, seed=1)
        items = [f"item-{i}" for i in range(400)]
        doomed = sum(plan.should_fail_backend(i, 0) for i in items)
        assert 120 < doomed < 280

    def test_check_backend_raises_with_attempt_context(self):
        plan = FaultPlan(backend_fail_rate=1.0, backend_fail_attempts=1)
        with pytest.raises(BackendUnavailableError, match="injected backend"):
            plan.check_backend("item", 0)
        plan.check_backend("item", 1)  # past the doomed window: no raise

    def test_targeting_other_worker_is_inert(self):
        plan = FaultPlan(kill_worker_after=0, target_worker=7)
        # Would SIGKILL this test process if the target check failed.
        plan.on_item_received(worker=0, items_received=1)
        plan.on_item_received(worker=1, items_received=99)


class TestCacheCorruption:
    def test_corrupts_newest_entry(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"ii": 3}), encoding="utf-8")
        new.write_text(json.dumps({"ii": 4}), encoding="utf-8")
        import os
        os.utime(old, (1, 1))
        victim = corrupt_newest_entry(tmp_path)
        assert victim == new
        with pytest.raises(json.JSONDecodeError):
            json.loads(new.read_text(encoding="utf-8"))
        json.loads(old.read_text(encoding="utf-8"))  # untouched

    def test_empty_cache_is_a_noop(self, tmp_path):
        assert corrupt_newest_entry(tmp_path) is None
