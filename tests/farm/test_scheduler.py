"""Chaos suite: the farm under injected faults must produce exactly the
records of a fault-free sweep, with nonzero fault counters.

Every fault here is deterministic (see repro.farm.faults), so these tests
assert equality, not survival.  The sweeps are tiny (one kernel, one
size, two mappers) to keep the suite inside tier-1 budgets.
"""

from __future__ import annotations

import pytest

import repro.experiments.runner as runner_module
from repro.exceptions import FarmError, MappingError
from repro.experiments.runner import (
    RAMP,
    SAT_MAPIT,
    ExperimentConfig,
    run_sweep,
)
from repro.farm.faults import FaultPlan

FAST = ExperimentConfig(
    kernels=("srand",),
    sizes=(3,),
    mappers=(SAT_MAPIT, RAMP),
    timeout=15.0,
)


def _shape(sweep):
    return [
        (r.kernel, r.size, r.mapper, r.scenario, r.status, r.ii)
        for r in sweep.records
    ]


@pytest.fixture(scope="module")
def clean():
    """The fault-free reference sweep (serial path)."""
    return run_sweep(FAST)


class TestFarmMatchesSerial:
    def test_records_and_stats(self, clean):
        farmed = run_sweep(FAST, jobs=2)
        assert _shape(farmed) == _shape(clean)
        assert farmed.farm is not None
        assert farmed.farm.completed == farmed.farm.items == len(clean.records)
        assert farmed.farm.retries == 0
        assert farmed.farm.worker_crashes == 0
        assert clean.farm is None  # serial sweeps bypass the farm

    def test_env_chaos_routes_serial_sweep_through_farm(self, clean, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "backend-rate=1.0,backend-attempts=1")
        faulted = run_sweep(FAST)  # jobs=1, but chaos forces the farm
        assert _shape(faulted) == _shape(clean)
        assert faulted.farm is not None
        assert faulted.farm.retries == len(clean.records)


class TestKillChaos:
    def test_worker_kill_is_retried_to_identical_records(self, clean):
        # Worker 0 SIGKILLs itself upon receiving its first item, while
        # the lease is open: the scheduler must requeue and respawn.
        plan = FaultPlan(kill_worker_after=0)
        faulted = run_sweep(FAST, jobs=2, faults=plan)
        assert _shape(faulted) == _shape(clean)
        assert faulted.farm.worker_crashes >= 1
        assert faulted.farm.retries >= 1
        assert sum(r.retries for r in faulted.records) >= 1

    def test_sole_worker_kill_forces_respawn(self, clean):
        # With one worker, its death leaves more outstanding work than
        # live workers — the scheduler must respawn or the sweep hangs.
        plan = FaultPlan(kill_worker_after=0)
        faulted = run_sweep(FAST, jobs=1, journal_dir=None, faults=plan)
        assert _shape(faulted) == _shape(clean)
        assert faulted.farm.worker_crashes >= 1
        assert faulted.farm.worker_respawns >= 1


class TestWedgeChaos:
    def test_sigstop_wedge_expires_lease_and_recovers(self, clean):
        # Worker 0 SIGSTOPs itself with an item leased.  Its process stays
        # alive, so only the missing heartbeats can save the sweep: the
        # lease must expire, the worker must be reaped (SIGKILL reaches
        # stopped processes), and the item must be re-run elsewhere.
        plan = FaultPlan(wedge_worker_after=0)
        config = ExperimentConfig(
            kernels=FAST.kernels,
            sizes=FAST.sizes,
            mappers=FAST.mappers,
            timeout=FAST.timeout,
            lease_ttl=1.0,
        )
        faulted = run_sweep(config, jobs=2, faults=plan)
        assert _shape(faulted) == _shape(clean)
        assert faulted.farm.leases_expired >= 1
        assert faulted.farm.retries >= 1


class TestBackendChaos:
    def test_doomed_first_attempts_converge(self, clean):
        plan = FaultPlan(backend_fail_rate=1.0, backend_fail_attempts=1)
        faulted = run_sweep(FAST, jobs=2, faults=plan)
        assert _shape(faulted) == _shape(clean)
        # Every item burned exactly its one doomed attempt.
        assert faulted.farm.retries == len(clean.records)
        assert all(r.retries == 1 for r in faulted.records)
        assert faulted.farm.quarantined == 0

    def test_cache_corruption_mid_run_is_recovered(self, clean, tmp_path):
        plan = FaultPlan(corrupt_cache_after=0)
        config = ExperimentConfig(
            kernels=FAST.kernels,
            sizes=FAST.sizes,
            mappers=FAST.mappers,
            timeout=FAST.timeout,
            cache_dir=str(tmp_path / "cache"),
        )
        first = run_sweep(config, jobs=2, faults=plan)
        assert _shape(first) == _shape(clean)
        # The corrupted entry must be detected and re-solved, never served:
        # a second sweep over the same cache still produces clean records.
        second = run_sweep(config, jobs=2)
        assert _shape(second) == _shape(clean)


class TestQuarantine:
    def test_permanent_failure_is_quarantined_not_retried(self, monkeypatch):
        real_run_single = runner_module.run_single

        def poisoned(kernel, size, mapper_name, config=None, scenario="homogeneous"):
            if mapper_name == RAMP:
                raise MappingError("injected: kernel cannot fit this fabric")
            return real_run_single(kernel, size, mapper_name, config, scenario)

        # Farm workers are forked, so the patched module function is what
        # they resolve at start-up.
        monkeypatch.setattr(runner_module, "run_single", poisoned)
        sweep = run_sweep(FAST, jobs=2)
        assert sweep.farm.quarantined == 1
        assert sweep.farm.retries == 0  # permanent: no retry burned
        by_mapper = {r.mapper: r for r in sweep.records}
        bad = by_mapper[RAMP]
        assert bad.quarantined and bad.status == "failed" and bad.ii is None
        assert "cannot fit" in bad.failure
        assert by_mapper[SAT_MAPIT].status == "mapped"


class TestJournalGuards:
    def test_resume_with_different_config_refuses(self, tmp_path):
        journal = str(tmp_path / "journal")
        run_sweep(FAST, jobs=2, journal_dir=journal)
        other = ExperimentConfig(
            kernels=FAST.kernels,
            sizes=FAST.sizes,
            mappers=FAST.mappers,
            timeout=FAST.timeout + 1.0,  # protocol change
        )
        with pytest.raises(FarmError, match="different"):
            run_sweep(other, jobs=2, journal_dir=journal, resume=True)

    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        journal = str(tmp_path / "journal")
        run_sweep(FAST, jobs=2, journal_dir=journal)
        with pytest.raises(FarmError, match="resume"):
            run_sweep(FAST, jobs=2, journal_dir=journal)

    def test_resume_with_looser_execution_knobs_is_legal(self, tmp_path):
        journal = str(tmp_path / "journal")
        run_sweep(FAST, jobs=2, journal_dir=journal)
        loosened = ExperimentConfig(
            kernels=FAST.kernels,
            sizes=FAST.sizes,
            mappers=FAST.mappers,
            timeout=FAST.timeout,
            max_retries=9,
            lease_ttl=5.0,
        )
        resumed = run_sweep(loosened, jobs=2, journal_dir=journal, resume=True)
        assert resumed.farm.resumed
        assert resumed.farm.skipped == len(resumed.records)
        assert all(r.resumed for r in resumed.records)
