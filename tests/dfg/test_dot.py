"""Tests for DOT export."""

from repro.dfg.dot import to_dot, write_dot
from repro.dfg.graph import DFG, paper_running_example


class TestDotExport:
    def test_contains_all_nodes_and_edges(self):
        dfg = paper_running_example()
        dot = to_dot(dfg)
        assert dot.startswith('digraph "running_example"')
        for node in dfg.nodes:
            assert f"n{node.node_id} [" in dot
        assert dot.count("->") == dfg.num_edges

    def test_back_edges_marked_dashed(self):
        dfg = DFG.from_edge_list("t", 2, [(0, 1), (1, 0, 1)])
        dot = to_dot(dfg)
        assert "style=dashed" in dot
        assert 'label="d=1"' in dot

    def test_highlighting(self):
        dfg = DFG.from_edge_list("t", 2, [(0, 1)])
        dot = to_dot(dfg, highlight={0: "red"})
        assert 'fillcolor="red"' in dot

    def test_write_dot(self, tmp_path):
        path = tmp_path / "graph.dot"
        write_dot(paper_running_example(), str(path))
        assert path.read_text().startswith("digraph")
