"""Tests for ASAP/ALAP/mobility analysis and MII bounds.

The running-example assertions check the exact tables of the paper's
Figure 4.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg.analysis import (
    alap_schedule,
    asap_schedule,
    critical_path_length,
    minimum_initiation_interval,
    mobility,
    recurrence_mii,
    resource_mii,
)
from repro.dfg.graph import DFG, paper_running_example
from repro.exceptions import DFGError
from repro.kernels.generators import random_dfg


class TestPaperFigure4:
    """ASAP / ALAP / mobility of the running example (paper Figure 4)."""

    def setup_method(self):
        self.dfg = paper_running_example()

    def test_asap_levels(self):
        asap = asap_schedule(self.dfg)
        levels = {}
        for node, time in asap.items():
            levels.setdefault(time, set()).add(node)
        assert levels[0] == {1, 2, 3, 4}
        assert levels[1] == {5, 7, 10}
        assert levels[2] == {6, 11}
        assert levels[3] == {8}
        assert levels[4] == {9}

    def test_alap_levels(self):
        alap = alap_schedule(self.dfg)
        levels = {}
        for node, time in alap.items():
            levels.setdefault(time, set()).add(node)
        assert levels[0] == {3}
        assert levels[1] == {4, 5}
        assert levels[2] == {1, 6, 7}
        assert levels[3] == {2, 8, 10}
        assert levels[4] == {9, 11}

    def test_mobility_rows_match_figure(self):
        windows = mobility(self.dfg)
        rows = {time: set() for time in range(5)}
        for node, window in windows.items():
            for time in window:
                rows[time].add(node)
        assert rows[0] == {1, 2, 3, 4}
        assert rows[1] == {1, 2, 4, 5, 7, 10}
        assert rows[2] == {1, 2, 6, 7, 10, 11}
        assert rows[3] == {2, 8, 10, 11}
        assert rows[4] == {9, 11}

    def test_critical_path_is_five_cycles(self):
        assert critical_path_length(self.dfg) == 5

    def test_mii_on_2x2_matches_paper_ii(self):
        # The paper's running example maps with II = 3 on the 2x2 CGRA and
        # 11 nodes / 4 PEs gives ResMII = 3.
        assert resource_mii(self.dfg, 4) == 3
        assert minimum_initiation_interval(self.dfg, 4) == 3


class TestSchedules:
    def test_asap_of_source_is_zero(self):
        dfg = DFG.from_edge_list("t", 3, [(0, 1), (1, 2)])
        assert asap_schedule(dfg)[0] == 0
        assert asap_schedule(dfg)[2] == 2

    def test_alap_respects_requested_length(self):
        dfg = DFG.from_edge_list("t", 3, [(0, 1), (1, 2)])
        alap = alap_schedule(dfg, length=5)
        assert alap[2] == 4
        assert alap[0] == 2

    def test_alap_too_short_raises(self):
        dfg = DFG.from_edge_list("t", 3, [(0, 1), (1, 2)])
        with pytest.raises(DFGError):
            alap_schedule(dfg, length=2)

    def test_mobility_window_contains_asap_and_alap(self):
        dfg = paper_running_example()
        asap = asap_schedule(dfg)
        alap = alap_schedule(dfg)
        for node, window in mobility(dfg).items():
            assert window.start == asap[node]
            assert window.stop - 1 == alap[node]

    def test_latency_respected(self):
        dfg = DFG()
        dfg.add_node(0, latency=3)
        dfg.add_node(1)
        dfg.add_edge(0, 1)
        assert asap_schedule(dfg)[1] == 3
        assert critical_path_length(dfg) == 4

    def test_back_edges_ignored_by_asap(self):
        dfg = DFG.from_edge_list("t", 2, [(0, 1), (1, 0, 1)])
        assert asap_schedule(dfg) == {0: 0, 1: 1}

    def test_empty_dfg(self):
        assert critical_path_length(DFG()) == 0
        assert asap_schedule(DFG()) == {}


class TestMII:
    def test_resource_mii(self):
        dfg = paper_running_example()
        assert resource_mii(dfg, 4) == 3
        assert resource_mii(dfg, 9) == 2
        assert resource_mii(dfg, 16) == 1

    def test_resource_mii_requires_positive_pes(self):
        with pytest.raises(ValueError):
            resource_mii(paper_running_example(), 0)

    def test_resource_mii_empty_dfg(self):
        assert resource_mii(DFG(), 4) == 1

    def test_recurrence_mii_simple_cycle(self):
        # Cycle of 3 nodes with a single distance-1 back edge: RecMII = 3.
        dfg = DFG.from_edge_list("t", 3, [(0, 1), (1, 2), (2, 0, 1)])
        assert recurrence_mii(dfg) == 3

    def test_recurrence_mii_larger_distance(self):
        dfg = DFG.from_edge_list("t", 3, [(0, 1), (1, 2), (2, 0, 2)])
        assert recurrence_mii(dfg) == 2  # ceil(3 / 2)

    def test_recurrence_mii_no_cycles(self):
        dfg = DFG.from_edge_list("t", 3, [(0, 1), (1, 2)])
        assert recurrence_mii(dfg) == 1

    def test_zero_distance_cycle_rejected(self):
        dfg = DFG()
        dfg.add_node(0)
        dfg.add_node(1)
        dfg.add_edge(0, 1)
        dfg.add_edge(1, 0)
        with pytest.raises(DFGError):
            recurrence_mii(dfg)

    def test_minimum_ii_is_max_of_bounds(self):
        dfg = DFG.from_edge_list("t", 4, [(0, 1), (1, 2), (2, 3), (3, 0, 1)])
        # RecMII = 4, ResMII on 16 PEs = 1.
        assert minimum_initiation_interval(dfg, 16) == 4
        # ResMII on 1 PE = 4 as well.
        assert minimum_initiation_interval(dfg, 1) == 4


@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_schedule_invariants_on_random_dfgs(num_nodes, seed):
    """ASAP <= ALAP, dependencies respected, CP equals max ASAP + latency."""
    dfg = random_dfg(num_nodes, seed=seed)
    asap = asap_schedule(dfg)
    alap = alap_schedule(dfg)
    for node in dfg.node_ids:
        assert asap[node] <= alap[node]
    for edge in dfg.forward_edges():
        assert asap[edge.dst] >= asap[edge.src] + dfg.node(edge.src).latency
        assert alap[edge.dst] >= alap[edge.src] + dfg.node(edge.src).latency
    assert critical_path_length(dfg) == max(
        asap[n] + dfg.node(n).latency for n in dfg.node_ids
    )
