"""Tests for the DFG data structure."""

import pytest

from repro.dfg.graph import DFG, DFGEdge, DFGNode, Opcode, paper_running_example
from repro.exceptions import DFGError


class TestNodes:
    def test_add_node_defaults(self):
        dfg = DFG(name="t")
        node = dfg.add_node()
        assert node.node_id == 0
        assert node.opcode is Opcode.ADD
        assert dfg.num_nodes == 1

    def test_add_node_auto_ids_are_sequential(self):
        dfg = DFG()
        ids = [dfg.add_node().node_id for _ in range(4)]
        assert ids == [0, 1, 2, 3]

    def test_add_node_explicit_id_and_opcode_string(self):
        dfg = DFG()
        node = dfg.add_node(7, "mul", name="m")
        assert node.node_id == 7
        assert node.opcode is Opcode.MUL
        assert dfg.node(7).name == "m"

    def test_duplicate_node_id_rejected(self):
        dfg = DFG()
        dfg.add_node(1)
        with pytest.raises(DFGError):
            dfg.add_node(1)

    def test_negative_node_id_rejected(self):
        with pytest.raises(DFGError):
            DFGNode(-1)

    def test_zero_latency_rejected(self):
        with pytest.raises(DFGError):
            DFGNode(0, latency=0)

    def test_missing_node_lookup(self):
        with pytest.raises(DFGError):
            DFG().node(3)

    def test_node_label(self):
        assert DFGNode(4, Opcode.MUL).label == "4:mul"
        assert DFGNode(4, Opcode.MUL, name="x").label == "4:x"

    def test_nodes_sorted_by_id(self):
        dfg = DFG()
        dfg.add_node(5)
        dfg.add_node(2)
        assert [n.node_id for n in dfg.nodes] == [2, 5]
        assert len(dfg) == 2
        assert [n.node_id for n in dfg] == [2, 5]


class TestEdges:
    def _two_node_dfg(self):
        dfg = DFG()
        dfg.add_node(0)
        dfg.add_node(1)
        return dfg

    def test_add_edge(self):
        dfg = self._two_node_dfg()
        edge = dfg.add_edge(0, 1)
        assert edge == DFGEdge(0, 1, 0, 0)
        assert not edge.is_back_edge
        assert dfg.num_edges == 1

    def test_back_edge_flag(self):
        dfg = self._two_node_dfg()
        edge = dfg.add_edge(1, 0, distance=1)
        assert edge.is_back_edge

    def test_edge_with_missing_endpoint_rejected(self):
        dfg = self._two_node_dfg()
        with pytest.raises(DFGError):
            dfg.add_edge(0, 9)
        with pytest.raises(DFGError):
            dfg.add_edge(9, 0)

    def test_negative_distance_rejected(self):
        with pytest.raises(DFGError):
            DFGEdge(0, 1, distance=-1)

    def test_predecessors_and_successors(self):
        dfg = DFG()
        for i in range(3):
            dfg.add_node(i)
        dfg.add_edge(0, 2)
        dfg.add_edge(1, 2)
        dfg.add_edge(2, 0, distance=1)
        assert {e.src for e in dfg.predecessors(2)} == {0, 1}
        assert {e.dst for e in dfg.successors(2)} == {0}
        assert len(dfg.forward_edges()) == 2
        assert len(dfg.back_edges()) == 1


class TestValidation:
    def test_forward_cycle_detected(self):
        dfg = DFG()
        for i in range(3):
            dfg.add_node(i)
        dfg.add_edge(0, 1)
        dfg.add_edge(1, 2)
        dfg.add_edge(2, 0)  # forward cycle, should have been a back edge
        with pytest.raises(DFGError):
            dfg.validate()

    def test_cycle_broken_by_back_edge_is_valid(self):
        dfg = DFG()
        for i in range(3):
            dfg.add_node(i)
        dfg.add_edge(0, 1)
        dfg.add_edge(1, 2)
        dfg.add_edge(2, 0, distance=1)
        dfg.validate()

    def test_copy_is_deep_for_structure(self):
        dfg = paper_running_example()
        clone = dfg.copy()
        clone.add_node(99)
        assert dfg.num_nodes == 11
        assert clone.num_nodes == 12
        assert clone.num_edges == dfg.num_edges

    def test_to_networkx(self):
        dfg = paper_running_example()
        graph = dfg.to_networkx()
        assert graph.number_of_nodes() == dfg.num_nodes
        assert graph.number_of_edges() == dfg.num_edges


class TestFromEdgeList:
    def test_basic_construction(self):
        dfg = DFG.from_edge_list("t", 4, [(0, 1), (1, 2), (2, 3), (3, 0, 1)])
        assert dfg.num_nodes == 4
        assert dfg.num_edges == 4
        assert len(dfg.back_edges()) == 1

    def test_opcodes_applied(self):
        dfg = DFG.from_edge_list("t", 2, [(0, 1)], opcodes={0: "load", 1: Opcode.MUL})
        assert dfg.node(0).opcode is Opcode.LOAD
        assert dfg.node(1).opcode is Opcode.MUL

    def test_invalid_edge_list_raises(self):
        with pytest.raises(DFGError):
            DFG.from_edge_list("t", 2, [(0, 1), (1, 0)])


class TestRunningExample:
    def test_matches_paper_size(self):
        dfg = paper_running_example()
        assert dfg.num_nodes == 11
        assert len(dfg.back_edges()) == 1
        dfg.validate()

    def test_node_ids_one_based_like_paper(self):
        dfg = paper_running_example()
        assert dfg.node_ids == list(range(1, 12))


class TestOpcodes:
    def test_memory_flag(self):
        assert Opcode.LOAD.is_memory
        assert Opcode.STORE.is_memory
        assert not Opcode.ADD.is_memory

    def test_commutativity_flag(self):
        assert Opcode.ADD.is_commutative
        assert not Opcode.SUB.is_commutative
        assert not Opcode.SHL.is_commutative

    def test_repr_mentions_counts(self):
        dfg = paper_running_example()
        assert "nodes=11" in repr(dfg)
