"""DRAT proof logging and the bundled forward checker.

Two layers under test: the checker itself (RUP steps, RAT fallback,
deletions, assumption cubes, malformed traces) and the CDCL engine's proof
emission — every UNSAT answer the solver produces while logging must yield a
trace the bundled checker verifies, including UNSAT-under-assumptions
answers, where the trace ends with the negated assumption cube.
"""

from __future__ import annotations

import random

import pytest

from repro.sat.backend import CDCLBackend
from repro.sat.cnf import CNF
from repro.sat.drat import (
    ProofLogger,
    check_proof,
    check_proof_file,
    drat_trim_available,
    parse_proof,
    proof_digest,
    run_drat_trim,
)
from repro.sat.solver import CDCLSolver

from tests.sat.test_differential import random_cnf

#: Binary-counting CNF over 3 variables: all 8 sign patterns, trivially
#: UNSAT and refutable by RUP alone.
ALL_PATTERNS_3 = [
    (s1 * 1, s2 * 2, s3 * 3)
    for s1 in (1, -1)
    for s2 in (1, -1)
    for s3 in (1, -1)
]


def _cnf(clauses) -> CNF:
    cnf = CNF()
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


# ---------------------------------------------------------------------------
# Checker unit tests
# ---------------------------------------------------------------------------


def test_rup_refutation_accepted():
    clauses = [(1, 2), (1, -2), (-1, 2), (-1, -2)]
    result = check_proof(clauses, "1 0\n0\n")
    assert result.ok, result.reason
    assert result.steps == 2


def test_implicit_empty_clause_accepted():
    # Solvers may end the trace without the explicit "0" line; the checker
    # accepts iff the empty clause is RUP after all additions.
    clauses = [(1,), (-1, 2), (-2,)]
    assert check_proof(clauses, "").ok


def test_non_rup_addition_rejected():
    # (-2) is neither RUP nor RAT here: both clauses contain 2, and neither
    # resolvent is a unit-propagation consequence.
    result = check_proof([(1, 2), (-1, 2)], "-2 0\n0\n")
    assert not result.ok
    assert "-2" in (result.reason or "")


def test_vacuous_rat_does_not_fake_a_refutation():
    # (1) is vacuously RAT over [(1, 2)] (no clause contains -1), but the
    # empty clause still does not follow — the proof must be rejected at
    # the end, not waved through.
    assert not check_proof([(1, 2)], "1 0\n0\n").ok


def test_unsat_claim_without_derivation_rejected():
    assert not check_proof([(1, 2), (-1, 2)], "0\n").ok


def test_deletions_are_honoured():
    # (1) is RUP from the first two clauses; deleting one of them first
    # must invalidate the later step.
    clauses = [(1, 2), (1, -2), (-1,)]
    good = "1 0\n0\n"
    bad = "d 1 2 0\n1 0\n0\n"
    assert check_proof(clauses, good).ok
    assert not check_proof(clauses, bad).ok


def test_deleting_absent_clause_is_tolerated():
    # Omitted deletions are sound, and solvers may delete clauses the
    # checker never saw (e.g. logged before a restart); both directions
    # must be tolerated rather than fatal.
    clauses = [(1,), (-1,)]
    assert check_proof(clauses, "d 5 6 0\n0\n").ok


def test_rat_step_accepted():
    # Canonical DRAT example (Wetzler et al.): the first addition is not
    # RUP but is RAT on its first literal.
    clauses = [
        (1, 2, -3), (-1, -2, 3), (2, 3, -4), (-2, -3, 4),
        (-1, -3, -4), (1, 3, 4), (-1, 2, 4), (1, -2, -4),
    ]
    result = check_proof(clauses, "-1 0\n2 0\n0\n")
    assert result.ok, result.reason
    assert result.rat_steps >= 1


def test_trivially_unsat_formula():
    assert check_proof([()], "").ok
    assert check_proof([(1,), ()], "0\n").ok


def test_assumption_cube_closes_the_proof():
    # F = (¬1∨2)(¬2∨3)(¬1∨¬3) is SAT, UNSAT under assumption 1.  The
    # solver's trace ends with the negated cube (¬1), which is RUP; the
    # checker then refutes F + cube.
    clauses = [(-1, 2), (-2, 3), (-1, -3)]
    trace = "-1 0\n"
    assert check_proof(clauses, trace, assumptions=[1]).ok
    # Without the assumption the formula is satisfiable and the same trace
    # must NOT check out as a refutation.
    assert not check_proof(clauses, trace).ok


def test_parse_proof_and_malformed_lines():
    steps = parse_proof("1 -2 0\nd 3 0\n0\n")
    assert steps == [(False, (1, -2)), (True, (3,)), (False, ())]
    with pytest.raises(ValueError):
        parse_proof("1 -2\n")  # missing terminating zero


# ---------------------------------------------------------------------------
# ProofLogger
# ---------------------------------------------------------------------------


def test_proof_logger_memory_and_file_agree(tmp_path):
    path = tmp_path / "trace.drat"
    with ProofLogger(path) as to_file:
        to_file.add([1, -2])
        to_file.delete([3, 4])
        to_file.add([])
        file_digest = to_file.digest()
    in_memory = ProofLogger()
    in_memory.add([1, -2])
    in_memory.delete([3, 4])
    in_memory.add([])
    assert path.read_text() == in_memory.text() == "1 -2 0\nd 3 4 0\n0\n"
    assert file_digest == in_memory.digest() == proof_digest(in_memory.text())


def test_proof_logger_single_empty_clause():
    logger = ProofLogger()
    logger.add([])
    logger.add([])  # conflict rediscovery must not duplicate the terminator
    assert logger.text() == "0\n"


# ---------------------------------------------------------------------------
# CDCL proof emission
# ---------------------------------------------------------------------------


def test_cdcl_refutation_proof_checks(tmp_path):
    path = tmp_path / "cdcl.drat"
    logger = ProofLogger(path)
    solver = CDCLSolver(proof=logger)
    result = solver.solve(_cnf(ALL_PATTERNS_3))
    logger.close()
    assert result.status == "UNSAT"
    verdict = check_proof_file(ALL_PATTERNS_3, path)
    assert verdict.ok, verdict.reason


def test_cdcl_assumption_proof_checks():
    clauses = [(-1, 2), (-2, 3), (-1, -3)]
    logger = ProofLogger()
    solver = CDCLSolver(proof=logger)
    result = solver.solve(_cnf(clauses), assumptions=[1])
    assert result.status == "UNSAT"
    verdict = check_proof(clauses, logger.text(), assumptions=[1])
    assert verdict.ok, verdict.reason


@pytest.mark.parametrize("block", range(4))
def test_cdcl_proofs_on_random_unsat_instances(block):
    """Every UNSAT verdict the logging solver emits must be certifiable.

    Reuses the differential corpus generator; learned-clause deletions
    (``_reduce_learned``) are part of the logged trace, so instances hard
    enough to trigger reduction exercise the deletion path too.
    """
    checked = 0
    for seed in range(block * 25, (block + 1) * 25):
        rng = random.Random(seed)
        cnf = random_cnf(rng)
        logger = ProofLogger()
        result = CDCLSolver(random_seed=seed, proof=logger).solve(cnf)
        if result.status != "UNSAT":
            continue
        verdict = check_proof(cnf.clauses, logger.text())
        assert verdict.ok, f"seed {seed}: {verdict.reason}"
        checked += 1
    assert checked  # the corpus straddles the phase transition


def test_cdcl_backend_proof_digest(tmp_path):
    path = tmp_path / "backend.drat"
    backend = CDCLBackend(proof_path=str(path))
    backend.new_vars(3)
    for clause in ALL_PATTERNS_3:
        backend.add_clause(clause)
    assert backend.proof_digest() is None  # nothing derived yet
    result = backend.solve()
    assert result.status == "UNSAT"
    digest = backend.proof_digest()
    assert digest == proof_digest(path.read_text())
    verdict = check_proof_file(ALL_PATTERNS_3, path)
    assert verdict.ok, verdict.reason


@pytest.mark.skipif(not drat_trim_available(), reason="drat-trim not installed")
def test_drat_trim_agrees(tmp_path):
    path = tmp_path / "trim.drat"
    logger = ProofLogger(path)
    result = CDCLSolver(proof=logger).solve(_cnf(ALL_PATTERNS_3))
    logger.close()
    assert result.status == "UNSAT"
    ok, _output = run_drat_trim(ALL_PATTERNS_3, path)
    assert ok
