"""Tests for the reference DPLL solver."""

import pytest

from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver


class TestBasicDecisions:
    def test_empty_formula_is_sat(self):
        assert DPLLSolver().solve(CNF()) == {}

    def test_single_unit_clause(self):
        model = DPLLSolver().solve(CNF(clauses=[[3]]))
        assert model is not None
        assert model[3] is True

    def test_negative_unit_clause(self):
        model = DPLLSolver().solve(CNF(clauses=[[-2]]))
        assert model is not None
        assert model[2] is False

    def test_contradictory_units_unsat(self):
        assert DPLLSolver().solve(CNF(clauses=[[1], [-1]])) is None

    def test_empty_clause_unsat(self):
        cnf = CNF(clauses=[[1]])
        cnf.add_clause([])
        assert DPLLSolver().solve(cnf) is None

    def test_model_covers_all_variables(self):
        cnf = CNF(num_vars=5, clauses=[[1, 2]])
        model = DPLLSolver().solve(cnf)
        assert model is not None
        assert set(model) == {1, 2, 3, 4, 5}

    def test_model_satisfies_formula(self):
        cnf = CNF(clauses=[[1, 2], [-1, 3], [-2, -3], [2, 3]])
        model = DPLLSolver().solve(cnf)
        assert model is not None
        assert cnf.evaluate(model)

    def test_classic_unsat_instance(self):
        # All eight clauses over three variables: unsatisfiable.
        clauses = [
            [1, 2, 3], [1, 2, -3], [1, -2, 3], [1, -2, -3],
            [-1, 2, 3], [-1, 2, -3], [-1, -2, 3], [-1, -2, -3],
        ]
        assert DPLLSolver().solve(CNF(clauses=clauses)) is None


class TestAssumptions:
    def test_assumption_forces_value(self):
        cnf = CNF(clauses=[[1, 2]])
        model = DPLLSolver().solve(cnf, assumptions=[-1])
        assert model is not None
        assert model[1] is False
        assert model[2] is True

    def test_conflicting_assumptions_unsat(self):
        cnf = CNF(num_vars=1)
        assert DPLLSolver().solve(cnf, assumptions=[1, -1]) is None

    def test_assumption_conflicting_with_formula(self):
        cnf = CNF(clauses=[[1]])
        assert DPLLSolver().solve(cnf, assumptions=[-1]) is None


class TestBudget:
    def test_decision_budget_enforced(self):
        # Pigeonhole 4 pigeons / 3 holes is small but needs several decisions.
        cnf = _pigeonhole(4, 3)
        solver = DPLLSolver(max_decisions=1)
        with pytest.raises(RuntimeError):
            solver.solve(cnf)

    def test_decision_counter_tracks_work(self):
        solver = DPLLSolver()
        solver.solve(_pigeonhole(3, 2))
        assert solver.decisions >= 1


def _pigeonhole(pigeons: int, holes: int) -> CNF:
    cnf = CNF()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[(p, h)] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


class TestPigeonhole:
    def test_unsat_when_more_pigeons(self):
        assert DPLLSolver().solve(_pigeonhole(4, 3)) is None

    def test_sat_when_enough_holes(self):
        model = DPLLSolver().solve(_pigeonhole(3, 3))
        assert model is not None
