"""The subprocess solving layer: lifecycle, parsing, proofs, differential.

The bundled ``subprocess`` backend (``python -m repro.sat.pysolver``) keeps
every test runnable without a system solver; the same differential and
mapper-equivalence checks are additionally parametrised over real binaries
(kissat/cadical/minisat) and skip when those are not installed — CI installs
one and exercises them.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import stat
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.cgra.architecture import CGRA
from repro.exceptions import MappingError
from repro.kernels import get_kernel
from repro.sat.backend import (
    BackendUnavailableError,
    backend_instrumented,
    create_backend,
    validate_backend,
)
from repro.sat.drat import proof_digest
from repro.sat.external import (
    BUNDLED_BACKEND,
    KNOWN_SOLVERS,
    ExternalSolverError,
    ExternalSolverSpec,
    SubprocessBackend,
    ensure_available,
    is_external_backend,
    resolve_spec,
)
from repro.sat.solver import CDCLSolver

from tests.sat.test_differential import random_cnf

#: Real system solvers, exercised only where installed (CI installs kissat).
REAL_SOLVERS = [
    pytest.param(
        name,
        marks=pytest.mark.skipif(
            shutil.which(name) is None, reason=f"{name} not installed"
        ),
    )
    for name in sorted(KNOWN_SOLVERS)
]

UNSAT_3 = [
    (s1 * 1, s2 * 2, s3 * 3)
    for s1 in (1, -1)
    for s2 in (1, -1)
    for s3 in (1, -1)
]


def _bundled(**kwargs) -> SubprocessBackend:
    return SubprocessBackend(resolve_spec(BUNDLED_BACKEND), **kwargs)


def _script(tmp_path, body: str) -> str:
    path = tmp_path / "solver.sh"
    path.write_text(f"#!/bin/sh\n{body}\n")
    path.chmod(path.stat().st_mode | stat.S_IXUSR)
    return str(path)


# ---------------------------------------------------------------------------
# Availability / registry
# ---------------------------------------------------------------------------


def test_missing_binary_raises_with_install_hint():
    missing = [n for n in KNOWN_SOLVERS if shutil.which(n) is None]
    if not missing:
        pytest.skip("every known solver is installed here")
    name = missing[0]
    with pytest.raises(BackendUnavailableError) as excinfo:
        create_backend(name)
    assert excinfo.value.binary == name
    assert excinfo.value.hint == KNOWN_SOLVERS[name].install_hint
    assert "not found" in str(excinfo.value)
    with pytest.raises(BackendUnavailableError):
        validate_backend(name)


def test_external_path_resolution(tmp_path):
    with pytest.raises(BackendUnavailableError):
        resolve_spec("external:/no/such/solver")
    with pytest.raises(ValueError):
        resolve_spec("external:")
    with pytest.raises(ValueError):
        resolve_spec("lingeling-from-the-future")
    script = _script(tmp_path, "exit 20")
    spec = resolve_spec(f"external:{script}")
    assert spec.command == (script,)
    validate_backend(f"external:{script}")  # must not raise


def test_backend_classification():
    assert is_external_backend(BUNDLED_BACKEND)
    assert is_external_backend("kissat")
    assert is_external_backend("external:/usr/bin/foo")
    assert not is_external_backend("cdcl")
    ensure_available("cdcl")  # no-op for internal backends
    ensure_available(BUNDLED_BACKEND)
    assert not backend_instrumented(BUNDLED_BACKEND)
    assert not backend_instrumented("external:/usr/bin/foo")
    assert backend_instrumented("cdcl")


def test_proof_requires_capable_solver():
    spec = ExternalSolverSpec(name="noproof", command=("true",))
    with pytest.raises(ValueError, match="proof"):
        SubprocessBackend(spec, proof=True)


# ---------------------------------------------------------------------------
# Bundled backend: solving, cubes, proofs, export reuse
# ---------------------------------------------------------------------------


def test_bundled_sat_and_unsat_under_cube():
    backend = _bundled()
    backend.new_vars(3)
    backend.add_clause([1, 2])
    backend.add_clause([-2, 3])
    result = backend.solve()
    assert result.status == "SAT"
    assert backend.accumulated_cnf.evaluate(result.model)
    # The same formula under a contradictory assumption cube...
    assert backend.solve(assumptions=[-1, 2, -3]).status == "UNSAT"
    # ...and the accumulated formula is unchanged by the earlier cube.
    assert backend.solve(assumptions=[1]).status == "SAT"
    assert backend.stats.solve_calls == 3
    assert backend.stats.clauses_added == 2
    assert backend.stats.solve_time > 0
    assert backend.stats.conflicts == 0  # not instrumented, never faked


def test_model_projection_and_default_completion():
    backend = _bundled()
    backend.new_vars(4)
    backend.add_clause([1])
    result = backend.solve(model_vars=[1, 4])
    assert result.status == "SAT"
    assert set(result.model) == {1, 4}
    assert result.model[1] is True


def test_unsat_proof_digest_and_verification():
    backend = _bundled(proof=True, verify_proofs=True)
    backend.new_vars(3)
    for clause in UNSAT_3:
        backend.add_clause(clause)
    assert backend.proof_digest() is None
    result = backend.solve()
    assert result.status == "UNSAT"
    digest = backend.proof_digest()
    assert digest is not None
    assert backend.last_proof_path is not None
    with open(backend.last_proof_path, encoding="utf-8") as stream:
        assert proof_digest(stream.read()) == digest


def test_unsat_under_assumptions_proof_verifies():
    # F is SAT; only the cube makes it UNSAT.  verify_proofs replays the
    # bundled checker with the cube as unit clauses — a proof-convention
    # bug here would raise ExternalSolverError instead of returning.
    backend = _bundled(proof=True, verify_proofs=True)
    backend.new_vars(3)
    backend.add_clause([-1, 2])
    backend.add_clause([-2, 3])
    backend.add_clause([-1, -3])
    result = backend.solve(assumptions=[1])
    assert result.status == "UNSAT"
    assert backend.proof_digest() is not None


def test_dimacs_dir_content_addressing_and_reuse(tmp_path):
    backend = _bundled(dimacs_dir=tmp_path, reuse_dimacs=True, tag="t@2x2")
    backend.new_vars(2)
    backend.add_clause([1, 2])
    backend.solve(assumptions=[-1])
    first = backend.last_dimacs_path
    assert first is not None and first.startswith(str(tmp_path))
    content = Path(first).read_text()
    # The cube rides along as trailing unit clauses, counted in the header.
    assert content == "p cnf 2 2\n1 2 0\n-1 0\n"
    stamp = os.stat(first).st_mtime_ns
    # Identical re-solve maps to the same content-addressed file and the
    # reuse flag skips the rewrite.
    backend.solve(assumptions=[-1])
    assert backend.last_dimacs_path == first
    assert os.stat(first).st_mtime_ns == stamp
    # A different cube is a different formula, hence a different file.
    backend.solve(assumptions=[2])
    assert backend.last_dimacs_path != first


# ---------------------------------------------------------------------------
# Subprocess lifecycle against scripted fake solvers
# ---------------------------------------------------------------------------


def test_timeout_kills_the_solver_process(tmp_path):
    # The fake solver ignores its input and sleeps far past the budget; the
    # backend must SIGKILL the process group and report UNKNOWN promptly.
    script = _script(tmp_path, "sleep 60")
    backend = SubprocessBackend(resolve_spec(f"external:{script}"))
    backend.new_vars(1)
    backend.add_clause([1])
    start = time.perf_counter()
    result = backend.solve(time_limit=0.3)
    elapsed = time.perf_counter() - start
    assert result.status == "UNKNOWN"
    assert result.model is None
    assert elapsed < 10.0


def test_unparseable_output_is_an_error(tmp_path):
    script = _script(tmp_path, 'echo "segfault noises" >&2\nexit 3')
    backend = SubprocessBackend(resolve_spec(f"external:{script}"))
    backend.new_vars(1)
    backend.add_clause([1])
    with pytest.raises(ExternalSolverError, match="segfault noises"):
        backend.solve()


def test_exit_code_fallback_parsing(tmp_path):
    unsat = SubprocessBackend(resolve_spec(f"external:{_script(tmp_path, 'exit 20')}"))
    unsat.new_vars(1)
    unsat.add_clause([1])
    assert unsat.solve().status == "UNSAT"

    sat = SubprocessBackend(resolve_spec(f"external:{_script(tmp_path, 'exit 10')}"))
    sat.new_vars(2)
    sat.add_clause([-1, -2])
    result = sat.solve()
    # Exit 10 with no "v" lines: don't-care completion defaults every
    # variable to False.
    assert result.status == "SAT"
    assert result.model == {1: False, 2: False}


def test_minisat_dialect_result_file(tmp_path):
    def backend_for(body: str) -> SubprocessBackend:
        spec = ExternalSolverSpec(
            name="fakemini",
            command=(_script(tmp_path, body),),
            dialect="minisat",
        )
        backend = SubprocessBackend(spec)
        backend.new_vars(3)
        backend.add_clause([1, -2])
        return backend

    sat = backend_for('echo "SAT 1 -2 0" > "$2"\nexit 10')
    result = sat.solve()
    assert result.status == "SAT"
    assert result.model == {1: True, 2: False, 3: False}
    assert backend_for('echo "UNSAT" > "$2"\nexit 20').solve().status == "UNSAT"
    assert backend_for('echo "INDET" > "$2"\nexit 0').solve().status == "UNKNOWN"


def test_pysolver_cli_speaks_competition_format(tmp_path):
    cnf_path = tmp_path / "f.cnf"
    cnf_path.write_text("p cnf 2 2\n1 2 0\n-1 0\n")
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.sat.pysolver", str(cnf_path)],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 10
    assert "s SATISFIABLE" in proc.stdout
    assert any(line.startswith("v ") for line in proc.stdout.splitlines())

    proof_path = tmp_path / "f.drat"
    cnf_path.write_text("p cnf 1 2\n1 0\n-1 0\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.sat.pysolver", str(cnf_path),
         str(proof_path)],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 20
    assert "s UNSATISFIABLE" in proc.stdout
    assert proof_path.exists()


# ---------------------------------------------------------------------------
# Differential fuzzing vs the internal CDCL engine
# ---------------------------------------------------------------------------


def _differential_block(backend_name: str, seeds: range) -> None:
    for seed in seeds:
        rng = random.Random(seed)
        cnf = random_cnf(rng)
        internal = CDCLSolver(random_seed=seed).solve(cnf)
        backend = create_backend(backend_name)
        backend.new_vars(cnf.num_vars)
        for clause in cnf.clauses:
            backend.add_clause(clause)
        assumptions = []
        if rng.random() < 0.5:
            count = rng.randint(1, min(3, cnf.num_vars))
            chosen = rng.sample(range(1, cnf.num_vars + 1), k=count)
            assumptions = [
                var if rng.random() < 0.5 else -var for var in chosen
            ]
            internal = CDCLSolver(random_seed=seed).solve(
                cnf, assumptions=assumptions
            )
        external = backend.solve(assumptions=assumptions)
        assert external.status == internal.status, (
            f"seed {seed}: {backend_name} {external.status} "
            f"vs cdcl {internal.status} (assumptions={assumptions})"
        )
        if external.status == "SAT":
            model = dict(external.model)
            for lit in assumptions:
                assert model.get(abs(lit), False) is (lit > 0), (
                    f"seed {seed}: cube literal {lit} violated"
                )
            assert cnf.evaluate(model), f"seed {seed}: model invalid"


# The same 200-seed corpus as tests/sat/test_differential.py: two blocks in
# tier-1 (the bundled engine spawns one process per instance), the rest in
# the nightly slow tier.
@pytest.mark.parametrize("block", range(2))
def test_differential_bundled_vs_cdcl(block):
    _differential_block(BUNDLED_BACKEND, range(block * 25, (block + 1) * 25))


@pytest.mark.slow
@pytest.mark.parametrize("block", range(2, 8))
def test_differential_bundled_vs_cdcl_extended(block):
    _differential_block(BUNDLED_BACKEND, range(block * 25, (block + 1) * 25))


@pytest.mark.parametrize("solver", REAL_SOLVERS)
def test_differential_real_solver_vs_cdcl(solver):
    _differential_block(solver, range(0, 50))


# ---------------------------------------------------------------------------
# Mapper integration
# ---------------------------------------------------------------------------


def _mapper_config(backend: str, **extra) -> MapperConfig:
    # Decisive attempts and no regalloc post-pass make the II a formula
    # property, so backends must agree exactly (see experiments/perf.py).
    return MapperConfig(
        timeout=120.0,
        backend=backend,
        slack_conflict_limit=None,
        run_register_allocation=False,
        random_seed=0,
        **extra,
    )


def _map_ii(backend: str, **extra):
    mapper = SatMapItMapper(_mapper_config(backend, **extra))
    return mapper.map(get_kernel("gsm"), CGRA.square(2))


def test_mapper_ii_identical_subprocess_vs_cdcl():
    internal = _map_ii("cdcl")
    external = _map_ii(BUNDLED_BACKEND)
    assert external.final_status == internal.final_status == "mapped"
    assert external.ii == internal.ii
    # Every decisive attempt verdict matches rung for rung.
    internal_rungs = [(a.ii, a.schedule_slack, a.status) for a in internal.attempts]
    external_rungs = [(a.ii, a.schedule_slack, a.status) for a in external.attempts]
    assert external_rungs == internal_rungs


@pytest.mark.parametrize("solver", REAL_SOLVERS)
def test_mapper_ii_identical_real_solver_vs_cdcl(solver):
    internal = _map_ii("cdcl")
    external = _map_ii(solver)
    assert external.final_status == internal.final_status == "mapped"
    assert external.ii == internal.ii


def test_mapper_rejects_external_with_preprocess():
    with pytest.raises(MappingError, match="preprocess"):
        _map_ii(BUNDLED_BACKEND, preprocess=True)


def test_mapper_rejects_external_without_incremental():
    with pytest.raises(MappingError, match="incremental"):
        _map_ii(BUNDLED_BACKEND, incremental=False)


def test_mapper_records_proof_digests_and_cache_entry(tmp_path):
    outcome = _map_ii(
        BUNDLED_BACKEND,
        proof=True,
        dimacs_dir=str(tmp_path / "dimacs"),
        cache_dir=str(tmp_path / "cache"),
    )
    assert outcome.final_status == "mapped"
    unsat = [a for a in outcome.attempts if a.status == "UNSAT"]
    assert unsat and all(a.proof_digest for a in unsat)
    assert outcome.proof_path is not None and os.path.exists(outcome.proof_path)
    entries = list((tmp_path / "cache").glob("*.json"))
    assert len(entries) == 1
    entry = json.loads(entries[0].read_text())
    digests = entry["unsat_proof_digests"]
    assert digests == {
        str(a.ii): a.proof_digest for a in unsat
    }


def test_mapper_proof_digests_with_internal_backend(tmp_path):
    outcome = _map_ii("cdcl", proof=True, dimacs_dir=str(tmp_path))
    assert outcome.final_status == "mapped"
    unsat = [a for a in outcome.attempts if a.status == "UNSAT"]
    assert unsat and all(a.proof_digest for a in unsat)
    assert outcome.proof_path is not None
    traces = list(tmp_path.glob("*.drat"))
    assert traces, "cdcl proof trace should land in --dimacs-dir"


# ---------------------------------------------------------------------------
# Transient launch failures: bounded retry before BackendUnavailableError
# ---------------------------------------------------------------------------

class TestLaunchRetry:
    """ENOMEM/EAGAIN forks and signal-killed solvers are machine trouble,
    not formula trouble: ``_run`` retries them with bounded backoff and
    only then raises :class:`BackendUnavailableError`, reporting how many
    attempts it burned."""

    @staticmethod
    def _backend() -> SubprocessBackend:
        backend = SubprocessBackend(resolve_spec(BUNDLED_BACKEND))
        backend.add_clause([1])
        return backend

    def test_transient_fork_failure_is_retried(self, monkeypatch):
        import errno

        import repro.sat.external as external

        monkeypatch.setattr(external, "LAUNCH_BACKOFF", 0.0)
        real_popen = subprocess.Popen
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise OSError(errno.EAGAIN, "Resource temporarily unavailable")
            return real_popen(*args, **kwargs)

        monkeypatch.setattr(external.subprocess, "Popen", flaky)
        result = self._backend().solve()
        assert result.status == "SAT"
        assert calls["n"] == 3

    def test_exhausted_retries_report_attempt_count(self, monkeypatch):
        import errno

        import repro.sat.external as external

        monkeypatch.setattr(external, "LAUNCH_BACKOFF", 0.0)
        calls = {"n": 0}

        def doomed(*args, **kwargs):
            calls["n"] += 1
            raise OSError(errno.ENOMEM, "Cannot allocate memory")

        monkeypatch.setattr(external.subprocess, "Popen", doomed)
        with pytest.raises(BackendUnavailableError) as excinfo:
            self._backend().solve()
        assert calls["n"] == external.LAUNCH_RETRIES + 1
        message = str(excinfo.value)
        assert f"{external.LAUNCH_RETRIES + 1} launch attempt" in message
        assert "Cannot allocate memory" in message

    def test_permanent_launch_failure_fails_fast(self, monkeypatch):
        import errno

        import repro.sat.external as external

        calls = {"n": 0}

        def missing(*args, **kwargs):
            calls["n"] += 1
            raise OSError(errno.ENOENT, "No such file or directory")

        monkeypatch.setattr(external.subprocess, "Popen", missing)
        with pytest.raises(BackendUnavailableError, match="failed to launch"):
            self._backend().solve()
        assert calls["n"] == 1  # no retry can conjure a missing binary

    @staticmethod
    def _flaky_solver_script(tmp_path: Path, always_die: bool = False) -> Path:
        """A competition-interface solver that SIGKILLs itself on its first
        run (or every run), then answers SAT."""
        marker = tmp_path / "died-once"
        script = tmp_path / "flaky-solver.sh"
        die = "kill -9 $$" if always_die else (
            f'if [ ! -e "{marker}" ]; then touch "{marker}"; kill -9 $$; fi'
        )
        script.write_text(
            "#!/bin/sh\n"
            f"{die}\n"
            'echo "s SATISFIABLE"\n'
            'echo "v 1 0"\n'
            "exit 10\n"
        )
        script.chmod(script.stat().st_mode | stat.S_IXUSR)
        return script

    def test_solver_killed_by_signal_is_retried(self, tmp_path, monkeypatch):
        import repro.sat.external as external

        monkeypatch.setattr(external, "LAUNCH_BACKOFF", 0.0)
        script = self._flaky_solver_script(tmp_path)
        backend = SubprocessBackend(resolve_spec(f"external:{script}"))
        backend.add_clause([1])
        result = backend.solve()
        assert result.status == "SAT"
        assert (tmp_path / "died-once").exists()

    def test_solver_dying_every_time_exhausts_to_unavailable(
        self, tmp_path, monkeypatch
    ):
        import repro.sat.external as external

        monkeypatch.setattr(external, "LAUNCH_BACKOFF", 0.0)
        script = self._flaky_solver_script(tmp_path, always_die=True)
        backend = SubprocessBackend(resolve_spec(f"external:{script}"))
        backend.add_clause([1])
        with pytest.raises(BackendUnavailableError) as excinfo:
            backend.solve()
        message = str(excinfo.value)
        assert "killed by signal 9" in message
        assert "launch attempt" in message
