"""Tests for the cardinality encodings (at-most-one / exactly-one)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.encodings import (
    AMOEncoding,
    at_least_one,
    at_most_one,
    count_true,
    exactly_one,
)

def _models_over(cnf: CNF, variables: list[int]) -> set[tuple[bool, ...]]:
    """Enumerate all satisfying assignments projected onto ``variables``."""
    solutions: set[tuple[bool, ...]] = set()
    free = [var for var in range(1, cnf.num_vars + 1)]
    for bits in itertools.product([False, True], repeat=len(free)):
        assignment = dict(zip(free, bits))
        if cnf.evaluate(assignment):
            solutions.add(tuple(assignment[v] for v in variables))
    return solutions


@pytest.mark.parametrize("encoding", list(AMOEncoding))
class TestAtMostOne:
    def test_no_literals_is_noop(self, encoding):
        cnf = CNF()
        at_most_one(cnf, [], encoding)
        assert cnf.num_clauses == 0

    def test_single_literal_is_noop(self, encoding):
        cnf = CNF(num_vars=1)
        at_most_one(cnf, [1], encoding)
        assert cnf.num_clauses == 0

    @pytest.mark.parametrize("n", [2, 3, 5, 7])
    def test_semantics_exhaustive(self, encoding, n):
        """Every projected model has at most one literal true, and every
        such combination is attainable."""
        cnf = CNF(num_vars=n)
        variables = list(range(1, n + 1))
        at_most_one(cnf, variables, encoding)
        projected = _models_over(cnf, variables)
        expected = {
            bits
            for bits in itertools.product([False, True], repeat=n)
            if sum(bits) <= 1
        }
        assert projected == expected

    def test_two_true_unsat(self, encoding):
        cnf = CNF(num_vars=4)
        at_most_one(cnf, [1, 2, 3, 4], encoding)
        cnf.add_clause([1])
        cnf.add_clause([3])
        assert DPLLSolver().solve(cnf) is None


@pytest.mark.parametrize("encoding", list(AMOEncoding))
class TestExactlyOne:
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_semantics_exhaustive(self, encoding, n):
        cnf = CNF(num_vars=n)
        variables = list(range(1, n + 1))
        exactly_one(cnf, variables, encoding)
        projected = _models_over(cnf, variables)
        expected = {
            bits
            for bits in itertools.product([False, True], repeat=n)
            if sum(bits) == 1
        }
        assert projected == expected

    def test_forcing_last_literal(self, encoding):
        cnf = CNF(num_vars=5)
        exactly_one(cnf, [1, 2, 3, 4, 5], encoding)
        for var in (1, 2, 3, 4):
            cnf.add_clause([-var])
        model = DPLLSolver().solve(cnf)
        assert model is not None
        assert model[5] is True


class TestClauseCounts:
    def test_pairwise_is_quadratic(self):
        cnf = CNF(num_vars=10)
        at_most_one(cnf, list(range(1, 11)), AMOEncoding.PAIRWISE)
        assert cnf.num_clauses == 45  # C(10, 2)

    def test_sequential_is_linear(self):
        cnf = CNF(num_vars=20)
        at_most_one(cnf, list(range(1, 21)), AMOEncoding.SEQUENTIAL)
        assert cnf.num_clauses == 3 * 20 - 4
        assert cnf.num_vars == 20 + 19  # auxiliary registers

    def test_commander_uses_fewer_clauses_than_pairwise(self):
        literals = list(range(1, 41))
        pairwise = CNF(num_vars=40)
        at_most_one(pairwise, literals, AMOEncoding.PAIRWISE)
        commander = CNF(num_vars=40)
        at_most_one(commander, literals, AMOEncoding.COMMANDER)
        assert commander.num_clauses < pairwise.num_clauses


class TestHelpers:
    def test_at_least_one_empty_is_unsat(self):
        cnf = CNF()
        at_least_one(cnf, [])
        assert cnf.clauses == [()]

    def test_count_true(self):
        assert count_true([1, -2, 3], {1: True, 2: True, 3: False}) == 1

    def test_string_encoding_names_accepted(self):
        cnf = CNF(num_vars=3)
        at_most_one(cnf, [1, 2, 3], "pairwise")
        assert cnf.num_clauses == 3


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=2, max_value=9), data=st.data())
def test_all_encodings_equisatisfiable(n, data):
    """Under any forced partial assignment, the three encodings agree."""
    forced_true = data.draw(st.sets(st.integers(1, n), max_size=2))
    results = []
    for encoding in list(AMOEncoding):
        cnf = CNF(num_vars=n)
        at_most_one(cnf, list(range(1, n + 1)), encoding)
        for var in forced_true:
            cnf.add_clause([var])
        results.append(DPLLSolver().solve(cnf) is not None)
    assert len(set(results)) == 1
