"""Tests for the pluggable incremental solver backends.

The heart of this module is the assumption cross-check: the incremental CDCL
backend must agree with the DPLL reference oracle on random formulas under
random assumption sets, including repeated ``solve`` calls on a growing
clause set (SAT→UNSAT transitions, recovery after UNSAT-under-assumptions).
"""

import random

import pytest

from repro.sat.backend import (
    BackendStats,
    CDCLBackend,
    DPLLBackend,
    SolverBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.solver import CDCLSolver


def _random_clauses(rng, num_vars, num_clauses, width=3):
    clauses = []
    for _ in range(num_clauses):
        clauses.append([
            rng.choice([1, -1]) * rng.randint(1, num_vars)
            for _ in range(rng.randint(1, width))
        ])
    return clauses


def _random_assumptions(rng, num_vars, max_count):
    count = rng.randint(0, max_count)
    variables = rng.sample(range(1, num_vars + 1), min(count, num_vars))
    return [rng.choice([1, -1]) * var for var in variables]


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "cdcl" in names
        assert "dpll" in names

    def test_create_backend_by_name(self):
        backend = create_backend("cdcl")
        assert backend.name == "cdcl"
        assert isinstance(backend, SolverBackend)
        assert isinstance(create_backend("dpll"), DPLLBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            create_backend("z3")

    def test_custom_backend_registration(self):
        register_backend("custom-test", CDCLBackend)
        try:
            assert "custom-test" in available_backends()
            assert isinstance(create_backend("custom-test"), CDCLBackend)
        finally:
            import repro.sat.backend as backend_module

            del backend_module._REGISTRY["custom-test"]

    def test_factory_kwargs_forwarded(self):
        backend = create_backend("cdcl", random_seed=7)
        assert backend._solver.random_seed == 7


@pytest.mark.parametrize("name", ["cdcl", "dpll"])
class TestProtocolBasics:
    def test_grow_and_solve(self, name):
        backend = create_backend(name)
        a, b = backend.new_var(), backend.new_var()
        backend.add_clause([a, b])
        backend.add_clause([-a])
        result = backend.solve()
        assert result.is_sat
        assert result.model[a] is False
        assert result.model[b] is True
        assert backend.num_vars == 2

    def test_assumptions_flip_answer(self, name):
        backend = create_backend(name)
        a = backend.new_var()
        b = backend.new_var()
        backend.add_clause([a, b])
        assert backend.solve(assumptions=[-a, -b]).is_unsat
        assert backend.solve(assumptions=[-a]).is_sat
        # The backend recovered: UNSAT under assumptions is not sticky.
        assert backend.solve().is_sat

    def test_sat_to_unsat_transition(self, name):
        backend = create_backend(name)
        a = backend.new_var()
        assert backend.solve().is_sat
        backend.add_clause([a])
        assert backend.solve().is_sat
        backend.add_clause([-a])
        assert backend.solve().is_unsat
        # Root-level UNSAT is permanent.
        assert backend.solve().is_unsat
        assert backend.solve(assumptions=[a]).is_unsat

    def test_stats_accumulate_across_calls(self, name):
        backend = create_backend(name)
        a = backend.new_var()
        backend.add_clause([a])
        backend.solve()
        backend.solve()
        assert isinstance(backend.stats, BackendStats)
        assert backend.stats.solve_calls == 2
        assert backend.stats.variables_added == 1
        assert backend.stats.clauses_added == 1


class TestIncrementalCDCL:
    def test_learned_clauses_persist_across_calls(self):
        backend = create_backend("cdcl")
        # A selector-guarded pigeonhole 5-into-4 core: refuting it under the
        # selector assumption forces clause learning, and because the
        # contradiction is conditional the formula itself stays satisfiable.
        guard = backend.new_var()
        holes, pigeons = 4, 5
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[(p, h)] = backend.new_var()
        for p in range(pigeons):
            backend.add_clause([var[(p, h)] for h in range(holes)] + [-guard])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    backend.add_clause([-var[(p1, h)], -var[(p2, h)], -guard])
        first = backend.solve(assumptions=[guard])
        assert first.is_unsat
        assert first.stats.conflicts > 0
        carried = backend.stats.learned_in_db
        assert carried > 0
        # The backend is still usable and starts the next call with the
        # learned clauses in the database.
        second = backend.solve()
        assert second.is_sat
        assert backend.stats.solve_calls == 2
        assert backend.stats.learned_in_db >= carried

    def test_selector_guarded_groups(self):
        """The mapper's retirement pattern: groups hang off selector literals."""
        backend = create_backend("cdcl")
        s1, s2 = backend.new_var(), backend.new_var()
        x = backend.new_var()
        backend.add_clause([x, -s1])  # group 1 forces x
        backend.add_clause([-x, -s2])  # group 2 forbids x
        on1 = backend.solve(assumptions=[s1])
        assert on1.is_sat and on1.model[x] is True
        on2 = backend.solve(assumptions=[s2])
        assert on2.is_sat and on2.model[x] is False
        assert backend.solve(assumptions=[s1, s2]).is_unsat
        # Retire group 1, group 2 still solvable.
        backend.add_clause([-s1])
        assert backend.solve(assumptions=[s2]).is_sat

    def test_incremental_matches_oneshot_on_growing_formula(self):
        rng = random.Random(42)
        backend = create_backend("cdcl")
        cnf = CNF(num_vars=8)
        for _ in range(8):
            backend.new_var()
        for round_index in range(12):
            for clause in _random_clauses(rng, 8, 4):
                backend.add_clause(clause)
                cnf.add_clause(clause)
            incremental = backend.solve()
            oneshot = CDCLSolver().solve(cnf)
            assert incremental.status == oneshot.status, f"round {round_index}"
            if incremental.is_sat:
                assert cnf.evaluate(incremental.model)


class TestAssumptionCrossCheck:
    """CDCL and the DPLL oracle agree under random assumption sets."""

    @pytest.mark.parametrize("seed", range(20))
    def test_single_solve_with_assumptions(self, seed):
        rng = random.Random(seed)
        num_vars = 4 + seed % 8
        clauses = _random_clauses(rng, num_vars, 10 + 3 * (seed % 10))
        assumptions = _random_assumptions(rng, num_vars, 4)

        backend = create_backend("cdcl")
        cnf = CNF(num_vars=num_vars)
        for _ in range(num_vars):
            backend.new_var()
        for clause in clauses:
            backend.add_clause(clause)
            cnf.add_clause(clause)

        cdcl = backend.solve(assumptions=assumptions)
        dpll = DPLLSolver().solve(cnf, assumptions=assumptions)
        assert cdcl.is_sat == (dpll is not None)
        if cdcl.is_sat:
            assert cnf.evaluate(cdcl.model)
            for lit in assumptions:
                assert cdcl.model[abs(lit)] == (lit > 0)

    @pytest.mark.parametrize("seed", range(10))
    def test_repeated_incremental_solves_on_growing_clause_set(self, seed):
        """One persistent backend, many (grow, assume, solve) rounds."""
        rng = random.Random(1000 + seed)
        num_vars = 6 + seed % 5
        backend = create_backend("cdcl")
        cnf = CNF(num_vars=num_vars)
        for _ in range(num_vars):
            backend.new_var()

        went_unsat = False
        for round_index in range(10):
            for clause in _random_clauses(rng, num_vars, 3):
                backend.add_clause(clause)
                cnf.add_clause(clause)
            assumptions = _random_assumptions(rng, num_vars, 3)
            cdcl = backend.solve(assumptions=assumptions)
            dpll = DPLLSolver().solve(cnf, assumptions=assumptions)
            assert cdcl.is_sat == (dpll is not None), (
                f"seed {seed} round {round_index} assumptions {assumptions}"
            )
            if cdcl.is_sat:
                assert cnf.evaluate(cdcl.model)
            elif DPLLSolver().solve(cnf) is None:
                went_unsat = True  # root UNSAT reached; later rounds stay UNSAT
        if went_unsat:
            assert backend.solve().is_unsat

    @pytest.mark.parametrize("seed", range(5))
    def test_dpll_backend_agrees_with_cdcl_backend(self, seed):
        rng = random.Random(2000 + seed)
        num_vars = 5 + seed
        clauses = _random_clauses(rng, num_vars, 12 + 2 * seed)
        backends = [create_backend("cdcl"), create_backend("dpll")]
        for backend in backends:
            for _ in range(num_vars):
                backend.new_var()
            for clause in clauses:
                backend.add_clause(clause)
        assumptions = _random_assumptions(rng, num_vars, 3)
        results = [backend.solve(assumptions=assumptions) for backend in backends]
        assert results[0].status == results[1].status


class TestDPLLBackend:
    def test_decision_budget_reports_unknown(self):
        backend = create_backend("dpll")
        # Pigeonhole 7-into-6 needs far more than 2 decisions to refute.
        holes, pigeons = 6, 7
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[(p, h)] = backend.new_var()
        for p in range(pigeons):
            backend.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    backend.add_clause([-var[(p1, h)], -var[(p2, h)]])
        assert backend.solve(conflict_limit=2).status == "UNKNOWN"
