"""Tests for the CNF container and DIMACS serialisation."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sat.cnf import CNF, clause_satisfied


class TestConstruction:
    def test_empty_formula(self):
        cnf = CNF()
        assert cnf.num_vars == 0
        assert cnf.num_clauses == 0
        assert len(cnf) == 0

    def test_new_var_increments(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_new_vars_bulk(self):
        cnf = CNF()
        assert cnf.new_vars(3) == [1, 2, 3]
        assert cnf.num_vars == 3

    def test_new_vars_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CNF().new_vars(-1)

    def test_negative_num_vars_rejected(self):
        with pytest.raises(ValueError):
            CNF(num_vars=-1)

    def test_add_clause_grows_num_vars(self):
        cnf = CNF()
        cnf.add_clause([3, -5])
        assert cnf.num_vars == 5
        assert cnf.clauses == [(3, -5)]

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            CNF().add_clause([1, 0])

    def test_duplicate_literals_removed(self):
        cnf = CNF()
        cnf.add_clause([1, 1, 2])
        assert cnf.clauses == [(1, 2)]

    def test_tautology_dropped(self):
        cnf = CNF()
        cnf.add_clause([1, -1, 2])
        assert cnf.num_clauses == 0
        # Variables are still registered.
        assert cnf.num_vars == 2

    def test_empty_clause_kept(self):
        cnf = CNF()
        cnf.add_clause([])
        assert cnf.clauses == [()]

    def test_ensure_var(self):
        cnf = CNF()
        cnf.ensure_var(7)
        assert cnf.num_vars == 7
        cnf.ensure_var(3)
        assert cnf.num_vars == 7

    def test_ensure_var_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CNF().ensure_var(0)

    def test_constructor_with_clauses(self):
        cnf = CNF(num_vars=2, clauses=[[1, 2], [-1]])
        assert cnf.num_clauses == 2
        assert cnf.num_vars == 2

    def test_extend_merges_clauses(self):
        a = CNF(clauses=[[1, 2]])
        b = CNF(clauses=[[-2, 3]])
        a.extend(b)
        assert a.num_clauses == 2
        assert a.num_vars == 3

    def test_repr(self):
        cnf = CNF(clauses=[[1, 2]])
        assert "num_vars=2" in repr(cnf)

    def test_dedup_drops_exact_duplicates_at_ingest(self):
        cnf = CNF(dedup=True)
        cnf.add_clause([1, 2])
        cnf.add_clause([2, 1])  # same clause, different literal order
        cnf.add_clause([1, 2, 3])
        cnf.add_clause([1, 2])
        assert cnf.num_clauses == 2
        assert cnf.num_duplicates_dropped == 2

    def test_dedup_off_by_default(self):
        cnf = CNF(clauses=[[1, 2], [2, 1]])
        assert cnf.num_clauses == 2
        assert cnf.num_duplicates_dropped == 0

    def test_dedup_applies_to_extend(self):
        cnf = CNF(dedup=True, clauses=[[1, 2]])
        cnf.extend(CNF(clauses=[[2, 1], [3]]))
        assert cnf.num_clauses == 2
        assert cnf.num_duplicates_dropped == 1
        # And clauses brought in via extend participate in later dedup.
        cnf.add_clause([3])
        assert cnf.num_clauses == 2
        assert cnf.num_duplicates_dropped == 2


class TestEvaluation:
    def test_evaluate_true(self):
        cnf = CNF(clauses=[[1, -2], [2, 3]])
        assert cnf.evaluate({1: True, 2: False, 3: True})

    def test_evaluate_false(self):
        cnf = CNF(clauses=[[1], [-1]])
        assert not cnf.evaluate({1: True})

    def test_unassigned_variable_counts_as_unsatisfied(self):
        cnf = CNF(clauses=[[1, 2]])
        assert not cnf.evaluate({})

    def test_clause_satisfied_helper(self):
        assert clause_satisfied((1, -2), {2: False})
        assert not clause_satisfied((1, -2), {1: False, 2: True})


class TestDimacs:
    def test_to_dimacs_format(self):
        cnf = CNF(clauses=[[1, -2], [2]])
        text = cnf.to_dimacs()
        lines = text.strip().splitlines()
        assert lines[0] == "p cnf 2 2"
        assert lines[1] == "1 -2 0"
        assert lines[2] == "2 0"

    def test_round_trip(self):
        cnf = CNF(clauses=[[1, -2, 3], [2], [-3, -1]])
        parsed = CNF.from_dimacs(cnf.to_dimacs())
        assert parsed.num_vars == cnf.num_vars
        assert parsed.clauses == cnf.clauses

    def test_parse_with_comments_and_blank_lines(self):
        text = "c a comment\n\np cnf 3 2\n1 2 0\nc another\n-3 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.num_vars == 3
        assert cnf.clauses == [(1, 2), (-3,)]

    def test_parse_clause_spanning_lines(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.clauses == [(1, 2, 3)]

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError):
            CNF.from_dimacs("p cnf 3\n1 0\n")

    def test_more_clauses_than_declared_rejected(self):
        with pytest.raises(ValueError):
            CNF.from_dimacs("p cnf 2 1\n1 0\n2 0\n")

    def test_stream_io(self):
        cnf = CNF(clauses=[[1, 2]])
        buffer = io.StringIO()
        cnf.write_dimacs(buffer)
        buffer.seek(0)
        parsed = CNF.read_dimacs(buffer)
        assert parsed.clauses == cnf.clauses

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=-6, max_value=6).filter(lambda x: x != 0),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_round_trip_property(self, clauses):
        cnf = CNF(clauses=clauses)
        parsed = CNF.from_dimacs(cnf.to_dimacs())
        assert parsed.clauses == cnf.clauses
        assert parsed.num_vars == cnf.num_vars
