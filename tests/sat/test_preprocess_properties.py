"""Hypothesis property tests for the preprocessing pipeline pieces.

Three properties the ISSUE pins down:

* subsumption (with self-subsuming resolution) never changes satisfiability
  — it is an equivalence-preserving transformation;
* the full pipeline's BVE reconstruction always yields a valid extension:
  any model of the simplified formula extends to a model of the original;
* frozen variables survive simplification verbatim — they are never retired
  and the simplified formula stays *equivalent* to the original over them
  (same verdict under any frozen-literal assumption).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.preprocess import PreprocessConfig, simplify
from repro.sat.solver import CDCLSolver

_MAX_VARS = 8


@st.composite
def cnfs(draw):
    """Small random CNFs (mixed widths, occasionally empty clauses' worth)."""
    num_vars = draw(st.integers(2, _MAX_VARS))
    literal = st.integers(1, num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clause = st.lists(literal, min_size=1, max_size=4)
    clauses = draw(st.lists(clause, min_size=1, max_size=24))
    return CNF(num_vars=num_vars, clauses=clauses)


def _status(cnf: CNF, assumptions=()) -> str:
    model = DPLLSolver().solve(cnf, assumptions=assumptions)
    return "SAT" if model is not None else "UNSAT"


@settings(max_examples=120, deadline=None)
@given(cnf=cnfs())
def test_subsumption_preserves_satisfiability(cnf):
    config = PreprocessConfig(
        unit_propagation=False,
        pure_literals=False,
        variable_elimination=False,
        subsumption=True,
        self_subsumption=True,
    )
    simplified, _recon, stats = simplify(cnf, config=config)
    assert _status(simplified) == _status(cnf)
    # Subsumption only ever removes or strengthens clauses.
    assert simplified.num_clauses <= cnf.num_clauses
    assert stats.eliminated_variables == 0 and stats.pure_literals == 0


@settings(max_examples=120, deadline=None)
@given(cnf=cnfs())
def test_reconstruction_extends_every_model(cnf):
    simplified, reconstructor, _stats = simplify(cnf)
    result = CDCLSolver().solve(simplified)
    assert result.status == _status(cnf)
    if result.is_sat:
        model = reconstructor.extend(result.model)
        assert cnf.evaluate(model)
        # The extension covers the full original variable universe.
        assert set(model) >= set(range(1, cnf.num_vars + 1))


@settings(max_examples=80, deadline=None)
@given(cnf=cnfs(), data=st.data())
def test_frozen_vars_survive_verbatim(cnf, data):
    frozen = data.draw(
        st.lists(
            st.integers(1, cnf.num_vars), min_size=1, max_size=cnf.num_vars,
            unique=True,
        )
    )
    simplified, reconstructor, _stats = simplify(cnf, frozen=frozen)
    # Frozen variables are never eliminated or silently fixed away.
    assert not (reconstructor.retired_vars & set(frozen))
    # Equivalence over the frozen variables: any frozen assumption decides
    # the same way on the original and the simplified formula.
    for var in frozen:
        for literal in (var, -var):
            assert _status(simplified, [literal]) == _status(cnf, [literal]), (
                literal
            )
