"""Unit tests for the flat-arena CDCL core's data structures.

Covers the pieces the classic black-box solver tests cannot see: binary and
ternary implication-list propagation, guard-aware ternary routing, watch
(ref, blocker) invariants under detachment and arena compaction, the bulk
``add_clauses`` ingest (trusted and untrusted), and SAT-model projection.
"""

from __future__ import annotations

import random

import pytest

from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.solver import CDCLSolver


def _pigeonhole(pigeons: int, holes: int) -> CNF:
    cnf = CNF()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[(p, h)] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


def _random_clauses(rng, num_vars, num_clauses, width=3):
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, width)
        variables = rng.sample(range(1, num_vars + 1), min(size, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


class TestBinaryImplicationLists:
    def test_binary_clause_propagates_without_watches(self):
        solver = CDCLSolver()
        solver.ensure_vars(2)
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1])
        assert result.is_sat
        assert result.model[2] is True
        # The implication was served by the binary lists, not the watches.
        assert result.stats.binary_propagations >= 1

    def test_binary_conflict_detected(self):
        solver = CDCLSolver()
        solver.ensure_vars(3)
        solver.add_clause([1, 2])
        solver.add_clause([1, -2])
        result = solver.solve(assumptions=[-1])
        assert result.is_unsat

    def test_binary_chain_needs_no_decisions(self):
        # 1 -> 2 -> 3 -> ... -> 10, with 1 forced: pure implication-list work.
        cnf = CNF(clauses=[[1]] + [[-i, i + 1] for i in range(1, 10)])
        result = CDCLSolver().solve(cnf)
        assert result.is_sat
        assert all(result.model[i] for i in range(1, 11))
        assert result.stats.decisions == 0


class TestTernaryImplicationLists:
    def test_ternary_unit_implication_both_orders(self):
        for assumptions in ([-1, -2], [-2, -1]):
            solver = CDCLSolver()
            solver.ensure_vars(3)
            solver.add_clause([1, 2, 3])
            result = solver.solve(assumptions=assumptions)
            assert result.is_sat
            assert result.model[3] is True

    def test_ternary_conflict(self):
        solver = CDCLSolver()
        solver.ensure_vars(3)
        solver.add_clause([1, 2, 3])
        solver.add_clause([1, 2, -3])
        result = solver.solve(assumptions=[-1, -2])
        assert result.is_unsat

    def test_ternary_reason_supports_conflict_analysis(self):
        # The analyzer must resolve through ternary (bit-packed) reasons.
        cnf = CNF(clauses=[
            [1, 2, 3], [1, 2, -3], [1, -2, 3], [1, -2, -3],
            [-1, 2, 3], [-1, 2, -3], [-1, -2, 3], [-1, -2, -3],
        ])
        result = CDCLSolver().solve(cnf)
        assert result.is_unsat


class TestGuardedTernary:
    def test_guarded_batch_propagates_under_assumption(self):
        solver = CDCLSolver()
        selector = solver.new_var()
        a, b = solver.new_var(), solver.new_var()
        # (a | b | -selector): binary-effective while selector is assumed.
        solver.add_clauses([[a, b, -selector]], trusted=True, guard=-selector)
        result = solver.solve(assumptions=[selector, -a])
        assert result.is_sat
        assert result.model[b] is True
        solver.debug_check_invariants()

    def test_guarded_group_retires_cleanly(self):
        solver = CDCLSolver()
        selector = solver.new_var()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clauses(
            [[a, b, -selector], [-a, b, -selector], [a, -b, -selector],
             [-a, -b, -selector]],
            trusted=True,
            guard=-selector,
        )
        # UNSAT while the group is active...
        assert solver.solve(assumptions=[selector]).is_unsat
        # ...but retiring the group (root unit + pins) leaves a SAT database.
        assert solver.add_clauses([[-selector], [-a], [-b]])
        result = solver.solve()
        assert result.is_sat
        assert result.model[selector] is False
        solver.debug_check_invariants()

    def test_guarded_routing_matches_plain_semantics(self):
        rng = random.Random(7)
        for trial in range(30):
            num_vars = rng.randint(3, 8)
            clauses = _random_clauses(rng, num_vars, rng.randint(3, 20), width=2)
            plain = CDCLSolver()
            guarded = CDCLSolver()
            selector = plain.new_var()
            assert guarded.new_var() == selector
            plain.ensure_vars(num_vars + 1)
            guarded.ensure_vars(num_vars + 1)
            shifted = [[lit + 1 if lit > 0 else lit - 1 for lit in clause]
                       for clause in clauses]
            plain.add_clauses([c + [-selector] for c in shifted])
            guarded.add_clauses(
                [c + [-selector] for c in shifted],
                trusted=True,
                guard=-selector,
            )
            expected = plain.solve(assumptions=[selector])
            actual = guarded.solve(assumptions=[selector])
            assert expected.status == actual.status, f"trial {trial}"
            guarded.debug_check_invariants()


class TestWatchInvariants:
    def test_invariants_after_plain_solves(self):
        rng = random.Random(3)
        for trial in range(20):
            cnf = CNF(num_vars=8)
            for clause in _random_clauses(rng, 8, 25, width=5):
                cnf.add_clause(clause)
            solver = CDCLSolver()
            solver.solve(cnf)
            solver.debug_check_invariants()

    def test_invariants_survive_detach_and_compaction(self):
        # A tiny learned limit forces many _reduce_learned rounds (swap-
        # remove detach) and arena compactions during one hard solve.
        solver = CDCLSolver(learned_limit_base=30)
        result = solver.solve(_pigeonhole(7, 6))
        assert result.is_unsat
        assert result.stats.deleted_clauses > 0
        solver.debug_check_invariants()

    def test_compaction_preserves_verdicts_incrementally(self):
        solver = CDCLSolver(learned_limit_base=25)
        cnf = _pigeonhole(6, 5)
        solver.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            solver.add_clause(clause)
        extra = solver.new_var()
        assert solver.solve(assumptions=[extra]).is_unsat
        solver.debug_check_invariants()
        # The database itself stays usable after reduction/compaction.
        assert solver.solve(assumptions=[-extra]).is_unsat


class TestBulkAddClauses:
    def test_bulk_matches_sequential_adds(self):
        rng = random.Random(11)
        for trial in range(40):
            num_vars = rng.randint(2, 9)
            clauses = _random_clauses(rng, num_vars, rng.randint(2, 25))
            one = CDCLSolver()
            one.ensure_vars(num_vars)
            ok_one = all(one.add_clause(c) for c in clauses)
            two = CDCLSolver()
            two.ensure_vars(num_vars)
            ok_two = two.add_clauses(clauses)
            assert ok_one == ok_two, f"trial {trial}"
            if ok_one:
                assert one.solve().status == two.solve().status

    def test_unit_batch_single_propagation_sweep(self):
        solver = CDCLSolver()
        solver.ensure_vars(50)
        assert solver.add_clauses([[-v] for v in range(1, 51)])
        result = solver.solve()
        assert result.is_sat
        assert all(result.model[v] is False for v in range(1, 51))

    def test_bulk_detects_root_conflict(self):
        solver = CDCLSolver()
        solver.ensure_vars(2)
        assert not solver.add_clauses([[1], [2], [-1]])
        assert solver.solve().is_unsat

    def test_trusted_matches_untrusted(self):
        rng = random.Random(23)
        for trial in range(30):
            num_vars = rng.randint(2, 9)
            clauses = _random_clauses(rng, num_vars, rng.randint(2, 25))
            plain = CDCLSolver()
            plain.ensure_vars(num_vars)
            ok_plain = plain.add_clauses(clauses)
            trusted = CDCLSolver()
            trusted.ensure_vars(num_vars)
            ok_trusted = trusted.add_clauses(clauses, trusted=True)
            assert ok_plain == ok_trusted, f"trial {trial}"
            if ok_plain:
                assert plain.solve().status == trusted.solve().status

    def test_clauses_added_counter(self):
        solver = CDCLSolver()
        solver.ensure_vars(3)
        solver.add_clauses([[1, 2], [2, 3], [1, 2, 3]])
        assert solver.clauses_added == 3


class TestModelProjection:
    def test_projection_subset_of_full_model(self):
        cnf = CNF(clauses=[[1, 2, 3], [-1, 4], [2, -4, 5]])
        full = CDCLSolver().solve(cnf)
        projected = CDCLSolver().solve(cnf, model_vars=[2, 4])
        assert projected.is_sat
        assert set(projected.model) == {2, 4}
        for var, value in projected.model.items():
            assert full.model[var] == value

    def test_projection_ignores_unknown_vars(self):
        result = CDCLSolver().solve(CNF(clauses=[[1]]), model_vars=[1, 99])
        assert result.model == {1: True}

    def test_incremental_projection(self):
        solver = CDCLSolver()
        solver.ensure_vars(4)
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1], model_vars=[2])
        assert result.model == {2: True}


class TestStatsCounters:
    def test_blocker_skips_and_arena_bytes_populated(self):
        solver = CDCLSolver()
        result = solver.solve(_pigeonhole(6, 5))
        assert result.is_unsat
        assert result.stats.arena_bytes >= 0
        assert solver.arena_bytes == result.stats.arena_bytes

    def test_cross_check_arena_vs_dpll_on_mixed_widths(self):
        rng = random.Random(5)
        for trial in range(25):
            num_vars = rng.randint(3, 9)
            cnf = CNF(num_vars=num_vars)
            for clause in _random_clauses(rng, num_vars, rng.randint(4, 30),
                                          width=5):
                cnf.add_clause(clause)
            arena = CDCLSolver().solve(cnf)
            oracle = DPLLSolver().solve(cnf)
            assert arena.is_sat == (oracle is not None), f"trial {trial}"
            if arena.is_sat:
                assert cnf.evaluate(arena.model)


class TestGuardedGroupLifecycle:
    """Fuzz the mapper's attempt lifecycle: guarded groups solved under an
    assumption, then retired with a root unit plus variable pins — the
    incremental verdicts must match a DPLL oracle on the active group."""

    def test_sequential_groups_match_dpll(self):
        rng = random.Random(42)
        for trial in range(15):
            solver = CDCLSolver()
            for group in range(3):
                selector = solver.new_var()
                num_vars = rng.randint(3, 6)
                base = solver.num_vars
                for _ in range(num_vars):
                    solver.new_var()
                clauses = []
                for _ in range(rng.randint(3, 18)):
                    size = rng.randint(1, 3)
                    variables = rng.sample(range(base + 1, base + num_vars + 1),
                                           min(size, num_vars))
                    clauses.append(
                        [v if rng.random() < 0.5 else -v for v in variables]
                    )
                solver.add_clauses(
                    [c + [-selector] for c in clauses],
                    trusted=True,
                    guard=-selector,
                )
                result = solver.solve(assumptions=[selector])
                oracle_cnf = CNF(num_vars=base + num_vars)
                for clause in clauses:
                    oracle_cnf.add_clause(clause)
                oracle = DPLLSolver().solve(oracle_cnf)
                assert result.is_sat == (oracle is not None), (
                    f"trial {trial} group {group}"
                )
                if result.is_sat:
                    projected = {
                        abs(v): result.model[abs(v)]
                        for clause in clauses
                        for v in clause
                    }
                    assert oracle_cnf.evaluate(projected)
                # Retire the group exactly like the mapper does.
                assert solver.add_clauses(
                    [[-selector]]
                    + [[-v] for v in range(base + 1, base + num_vars + 1)]
                )
                solver.debug_check_invariants()


class TestRareBranches:
    def test_var_activity_rescale_mid_search(self):
        solver = CDCLSolver()
        solver._var_inc = 1e100  # next bump overflows and rescales
        result = solver.solve(_pigeonhole(4, 3))
        assert result.is_unsat
        assert max(solver._activity) <= 1e100

    def test_clause_activity_rescale(self):
        solver = CDCLSolver()
        solver._cla_inc = 1e20
        result = solver.solve(_pigeonhole(5, 4))
        assert result.is_unsat

    def test_mixed_guard_falls_back_to_plain_ternary(self):
        solver = CDCLSolver()
        s1, s2 = solver.new_var(), solver.new_var()
        a, b, c = solver.new_var(), solver.new_var(), solver.new_var()
        solver.add_clauses([[a, b, -s1]], trusted=True, guard=-s1)
        # Shares ``a`` but carries a different guard: must not corrupt the
        # guard table — the clause falls back to the plain ternary scheme.
        solver.add_clauses([[a, c, -s2]], trusted=True, guard=-s2)
        solver.debug_check_invariants()
        result = solver.solve(assumptions=[s1, s2, -a])
        assert result.is_sat
        assert result.model[b] is True and result.model[c] is True

    def test_new_vars_with_hints_uses_slow_path(self):
        solver = CDCLSolver(activity_hints={2: 5.0}, phase_hints={1: True})
        variables = solver.new_vars(3)
        assert variables == [1, 2, 3]
        assert solver._activity[2] == 5.0
        assert solver._phase[1] is True

    def test_bulk_resimplify_after_pending_units(self):
        solver = CDCLSolver()
        solver.ensure_vars(4)
        # The unit [1] is pending when [−1, 2, 3, 4] arrives: the batch
        # must flush propagation and re-simplify before attaching.
        assert solver.add_clauses([[1], [-1, 2, 3, 4], [-1, -2]])
        result = solver.solve(assumptions=[-3])
        assert result.is_sat
        assert result.model[1] is True
        assert result.model[4] is True

    def test_negative_new_vars_rejected(self):
        with pytest.raises(ValueError):
            CDCLSolver().new_vars(-1)


class TestHeapDedupExactness:
    def test_freshest_entry_pop_invalidates_heap_act(self):
        """Regression: popping a variable's freshest heap entry must not
        leave ``heap_act`` claiming an exact entry is still queued — the
        next backtrack would then skip the push and only stale low-priority
        duplicates would represent the variable (wrong VSIDS order)."""
        solver = CDCLSolver()
        solver.ensure_vars(2)
        solver._activity[1] = 5.0
        solver._activity[2] = 3.0
        import heapq
        heapq.heappush(solver._order, (-5.0, 1))
        solver._heap_count[1] += 1
        solver._heap_act[1] = 5.0
        heapq.heappush(solver._order, (-3.0, 2))
        solver._heap_count[2] += 1
        solver._heap_act[2] = 3.0
        # Pop var1's fresh entry (highest priority), as a decision would.
        lit = solver._pick_branch_literal()
        assert lit >> 1 == 1
        # Simulate var1 being assigned by that decision, then unassigned.
        solver._trail.append(lit)
        solver._trail_lim.append(0)
        solver._value[lit] = 1
        solver._value[lit ^ 1] = -1
        solver._backtrack(0)
        # The next pick must still prefer var1 (activity 5.0) over var2.
        assert (solver._pick_branch_literal() >> 1) == 1
