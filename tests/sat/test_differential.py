"""Differential fuzzing of the SAT stack.

Seeded random CNF instances (varying variable counts, clause counts and
clause widths) are decided three ways — plain CDCL, the reference DPLL
oracle, and preprocessed CDCL — and every verdict must agree.  For every SAT
answer, the model (reconstructed, for the preprocessed path) must satisfy
the *original* clauses, which is exactly the property an unsound simplifier
would break first.  A second family drives the incremental
:class:`PreprocessingBackend` with clause batches and assumptions over
frozen variables, cross-checked against DPLL on the accumulated formula.
"""

from __future__ import annotations

import random

import pytest

from repro.sat.backend import CDCLBackend
from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.preprocess import PreprocessingBackend, simplify
from repro.sat.solver import CDCLSolver


def random_cnf(
    rng: random.Random,
    min_vars: int = 4,
    max_vars: int = 12,
    max_width: int = 3,
    density: tuple[float, float] = (1.0, 4.2),
) -> CNF:
    """One seeded random CNF with mixed clause widths.

    Densities around the 3-SAT phase transition (~4.2 clauses/var) keep the
    SAT/UNSAT split roughly balanced so both verdicts are exercised.
    """
    num_vars = rng.randint(min_vars, max_vars)
    num_clauses = max(1, int(num_vars * rng.uniform(*density)))
    cnf = CNF(num_vars=num_vars)
    for _ in range(num_clauses):
        width = rng.randint(1, max_width)
        literals = []
        for _ in range(width):
            var = rng.randint(1, num_vars)
            literals.append(var if rng.random() < 0.5 else -var)
        cnf.add_clause(literals)
    return cnf


def _dpll_status(cnf: CNF, assumptions=()) -> str:
    model = DPLLSolver().solve(cnf, assumptions=assumptions)
    return "SAT" if model is not None else "UNSAT"


def _check_instance(seed: int) -> None:
    rng = random.Random(seed)
    cnf = random_cnf(rng)
    plain = CDCLSolver().solve(cnf)
    oracle = _dpll_status(cnf)
    assert plain.status == oracle, f"seed {seed}: CDCL {plain.status} vs DPLL {oracle}"
    if plain.is_sat:
        assert cnf.evaluate(plain.model), f"seed {seed}: CDCL model invalid"

    simplified, reconstructor, stats = simplify(cnf)
    preprocessed = CDCLSolver().solve(simplified)
    assert preprocessed.status == plain.status, (
        f"seed {seed}: preprocessed verdict {preprocessed.status} "
        f"vs plain {plain.status} (stats: {stats})"
    )
    if preprocessed.is_sat:
        model = reconstructor.extend(preprocessed.model)
        assert cnf.evaluate(model), (
            f"seed {seed}: reconstructed model does not satisfy the "
            f"original clauses (stats: {stats})"
        )


# 200 seeded instances, split into chunks so a failure names its block and
# the suite stays granular under -x.
@pytest.mark.parametrize("block", range(8))
def test_differential_verdicts_and_models(block):
    for seed in range(block * 25, (block + 1) * 25):
        _check_instance(seed)


@pytest.mark.parametrize("block", range(4))
def test_differential_incremental_backend(block):
    """Batched clauses + assumptions through the preprocessing backend."""
    for seed in range(block * 25, (block + 1) * 25):
        rng = random.Random(90_000 + seed)
        cnf = random_cnf(rng, min_vars=5, max_vars=11)
        clauses = [list(clause) for clause in cnf.clauses]
        rng.shuffle(clauses)
        half = len(clauses) // 2
        batches = [clauses[:half], clauses[half:]]
        assume_pool = rng.sample(
            range(1, cnf.num_vars + 1), k=min(3, cnf.num_vars)
        )
        # The soundness contract: variables referenced after the first
        # flush (later batches, assumptions) are frozen up front.
        frozen = {abs(lit) for clause in batches[1] for lit in clause}
        frozen |= set(assume_pool)

        backend = PreprocessingBackend(CDCLBackend())
        for _ in range(cnf.num_vars):
            backend.new_var()
        backend.freeze(frozen)

        accumulated = CNF(num_vars=cnf.num_vars)
        for batch in batches:
            for clause in batch:
                backend.add_clause(clause)
                accumulated.add_clause(clause)
            count = rng.randint(0, len(assume_pool))
            assumptions = [
                var if rng.random() < 0.5 else -var
                for var in assume_pool[:count]
            ]
            result = backend.solve(assumptions=assumptions)
            oracle = _dpll_status(accumulated, assumptions)
            assert result.status == oracle, (
                f"seed {seed}: backend {result.status} vs DPLL {oracle} "
                f"under {assumptions}"
            )
            if result.is_sat:
                model = result.model
                for lit in assumptions:
                    assert model.get(abs(lit), False) == (lit > 0), (
                        f"seed {seed}: assumption {lit} violated"
                    )
                assert accumulated.evaluate(model), (
                    f"seed {seed}: reconstructed incremental model invalid"
                )


@pytest.mark.slow
@pytest.mark.parametrize("block", range(8))
def test_differential_extended(block):
    """Wider and denser instances; excluded from the default (tier-1) run."""
    for seed in range(500_000 + block * 50, 500_000 + (block + 1) * 50):
        rng = random.Random(seed)
        cnf = random_cnf(rng, min_vars=8, max_vars=18, max_width=5)
        plain = CDCLSolver().solve(cnf)
        oracle = _dpll_status(cnf)
        assert plain.status == oracle, seed
        simplified, reconstructor, _stats = simplify(cnf)
        preprocessed = CDCLSolver().solve(simplified)
        assert preprocessed.status == plain.status, seed
        if preprocessed.is_sat:
            assert cnf.evaluate(reconstructor.extend(preprocessed.model)), seed
