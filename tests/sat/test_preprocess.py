"""Unit tests for the SatELite-style preprocessing pipeline."""

import pytest

from repro.cgra.architecture import CGRA
from repro.core.encoder import EncoderConfig, MappingEncoder
from repro.core.mobility import KernelMobilitySchedule, MobilitySchedule
from repro.exceptions import PreprocessError
from repro.kernels import get_kernel
from repro.sat.backend import CDCLBackend, available_backends, create_backend
from repro.sat.cnf import CNF
from repro.sat.preprocess import (
    PreprocessConfig,
    PreprocessingBackend,
    Reconstructor,
    simplify,
)
from repro.sat.solver import CDCLSolver


def _cnf(num_vars, clauses):
    return CNF(num_vars=num_vars, clauses=clauses)


class TestUnitPropagation:
    def test_units_propagate_to_fixpoint(self):
        # 1 forces 2, 2 forces 3; all three disappear from the formula.
        cnf = _cnf(4, [[1], [-1, 2], [-2, 3], [3, 4], [-3, 4, -4]])
        simplified, recon, stats = simplify(cnf)
        assert stats.units_fixed == 3
        assert simplified.num_clauses == 0  # everything satisfied at root
        model = recon.extend({})
        assert model[1] and model[2] and model[3]
        assert cnf.evaluate(model)

    def test_conflicting_units_yield_empty_clause(self):
        cnf = _cnf(2, [[1], [-1]])
        simplified, _recon, _stats = simplify(cnf)
        assert () in simplified.clauses
        assert CDCLSolver().solve(simplified).is_unsat

    def test_frozen_unit_kept_verbatim(self):
        cnf = _cnf(3, [[2], [-2, 3]])
        simplified, _recon, _stats = simplify(cnf, frozen=[2])
        assert (2,) in simplified.clauses
        # Equivalence over frozen vars: assuming ¬2 must now be UNSAT.
        assert CDCLSolver().solve(simplified, assumptions=[-2]).is_unsat


class TestPureLiterals:
    def test_pure_literal_removed_and_reconstructed(self):
        # 4 occurs only positively (1 and 2 occur in both polarities, so
        # only 4 is pure); its clauses vanish.
        cnf = _cnf(4, [[4, 1], [4, 2], [1, -2], [-1, 2]])
        simplified, recon, stats = simplify(
            cnf, config=PreprocessConfig(variable_elimination=False)
        )
        assert stats.pure_literals >= 1
        assert all(4 not in clause and -4 not in clause for clause in simplified.clauses)
        result = CDCLSolver().solve(simplified)
        model = recon.extend(result.model)
        assert model[4] is True
        assert cnf.evaluate(model)

    def test_frozen_variable_never_pure_eliminated(self):
        cnf = _cnf(2, [[1, 2]])
        simplified, recon, _stats = simplify(cnf, frozen=[1, 2])
        assert simplified.num_clauses == 1
        assert not recon.retired_vars


class TestSubsumption:
    def test_subsumed_clause_removed(self):
        cnf = _cnf(3, [[1, 2], [1, 2, 3]])
        config = PreprocessConfig(pure_literals=False, variable_elimination=False)
        simplified, _recon, stats = simplify(cnf, config=config)
        assert stats.subsumed_clauses == 1
        assert simplified.clauses == [(1, 2)]

    def test_duplicate_clauses_counted_at_ingest(self):
        cnf = CNF(num_vars=3)
        cnf.add_clause([1, 2])
        cnf.add_clause([2, 1])  # same clause, different order
        cnf.add_clause([1, 2, 3])
        _simplified, _recon, stats = simplify(cnf)
        assert stats.duplicate_clauses == 1

    def test_self_subsumption_strengthens(self):
        # (1 ∨ 2) and (¬1 ∨ 2 ∨ 3): resolving on 1 gives (2 ∨ 3) ⊂ the
        # second clause, so it is strengthened to drop ¬1... here the rule
        # strips ¬1 because {2} ⊆ {2, 3}.
        cnf = _cnf(3, [[1, 2], [-1, 2, 3]])
        config = PreprocessConfig(pure_literals=False, variable_elimination=False)
        simplified, _recon, stats = simplify(cnf, config=config)
        assert stats.strengthened_clauses >= 1
        assert (2, 3) in simplified.clauses


class TestVariableElimination:
    def test_elimination_shrinks_and_reconstructs(self):
        # Variable 1 occurs once per polarity: classic NiVER elimination.
        cnf = _cnf(4, [[1, 2], [-1, 3], [2, 3, 4], [-2, -3], [-4, 2]])
        simplified, recon, stats = simplify(cnf, config=PreprocessConfig())
        assert stats.eliminated_variables >= 1
        result = CDCLSolver().solve(simplified)
        assert result.is_sat
        model = recon.extend(result.model)
        assert cnf.evaluate(model)

    def test_frozen_vars_survive_elimination(self):
        cnf = _cnf(4, [[1, 2], [-1, 3], [2, 3, 4], [-2, -3], [-4, 2]])
        frozen = [1, 2, 3, 4]
        simplified, recon, stats = simplify(cnf, frozen=frozen)
        assert stats.eliminated_variables == 0
        assert not recon.retired_vars
        # Every frozen literal can still be assumed on the simplified CNF
        # with the same verdict as on the original.
        for lit in (1, -1, 2, -2, 3, -3, 4, -4):
            original = CDCLSolver().solve(cnf, assumptions=[lit]).status
            reduced = CDCLSolver().solve(simplified, assumptions=[lit]).status
            assert original == reduced, lit

    def test_reconstruction_orders_chained_eliminations(self):
        # 1 defined from 2, then 2 from 3: reverse replay must fix 2 first.
        cnf = _cnf(3, [[1, 2], [-1, -2], [2, 3], [-2, -3]])
        simplified, recon, stats = simplify(cnf)
        result = CDCLSolver().solve(simplified)
        assert result.is_sat
        model = recon.extend(result.model)
        assert cnf.evaluate(model)
        assert stats.eliminated_variables + stats.pure_literals >= 1


class TestEncoderFormula:
    def test_reduces_clause_count_on_paper_kernel(self):
        """Acceptance: real encoder CNF shrinks, verdict and model survive."""
        dfg = get_kernel("srand")
        cgra = CGRA.square(2)
        kms = KernelMobilitySchedule.build(MobilitySchedule.build(dfg), 4)
        encoding = MappingEncoder(dfg, cgra, kms, EncoderConfig()).encode()
        simplified, recon, stats = simplify(
            encoding.cnf, frozen=encoding.variables.values()
        )
        assert stats.clauses_removed > 0
        assert simplified.num_clauses < encoding.cnf.num_clauses
        result = CDCLSolver().solve(simplified, time_limit=60)
        reference = CDCLSolver().solve(encoding.cnf, time_limit=60)
        assert result.status == reference.status
        if result.is_sat:
            model = recon.extend(result.model)
            assert encoding.cnf.evaluate(model)
            placements = encoding.decode(model)
            assert set(placements) == set(dfg.node_ids)


class TestPreprocessingBackend:
    def test_registry_exposes_preprocessing_backends(self):
        names = available_backends()
        assert "cdcl+preprocess" in names
        assert "dpll+preprocess" in names
        backend = create_backend("cdcl+preprocess", random_seed=7)
        assert backend.name == "cdcl+preprocess"

    def test_solve_reconstructs_models(self):
        backend = PreprocessingBackend(CDCLBackend())
        for _ in range(4):
            backend.new_var()
        backend.add_clause([1, 2])
        backend.add_clause([-1, 3])
        backend.add_clause([-3, 4])
        result = backend.solve()
        assert result.is_sat
        model = result.model
        assert (model[1] or model[2]) and (not model[1] or model[3])

    def test_post_elimination_reference_raises(self):
        backend = PreprocessingBackend(CDCLBackend())
        for _ in range(3):
            backend.new_var()
        backend.add_clause([1, 2])
        backend.add_clause([-1, 3])
        assert backend.solve().is_sat
        retired = backend.retired_vars
        assert retired  # something was eliminated or fixed
        victim = next(iter(retired))
        with pytest.raises(PreprocessError):
            backend.add_clause([victim])
        with pytest.raises(PreprocessError):
            backend.freeze([victim])

    def test_frozen_vars_usable_across_batches(self):
        backend = PreprocessingBackend(CDCLBackend())
        for _ in range(4):
            backend.new_var()
        backend.freeze([1, 2])
        backend.add_clause([1, 3])
        backend.add_clause([-3, 2])
        assert backend.solve(assumptions=[-1]).is_sat
        # Frozen vars can appear in later clauses and assumptions.
        backend.add_clause([-2, 4])
        result = backend.solve(assumptions=[-1])
        assert result.is_sat
        model = result.model
        assert not model[1] and model[2] and model[4]

    def test_stats_accumulate_over_flushes(self):
        backend = PreprocessingBackend(CDCLBackend())
        for _ in range(6):
            backend.new_var()
        backend.add_clause([1, 2])
        backend.add_clause([1, 2])  # duplicate
        backend.solve()
        first = backend.preprocess_stats.original_clauses
        assert backend.preprocess_stats.duplicate_clauses == 1
        backend.add_clause([3, 4])
        backend.add_clause([4, 3])  # duplicate within second batch
        backend.solve()
        assert backend.preprocess_stats.original_clauses > first
        assert backend.preprocess_stats.duplicate_clauses == 2
        assert backend.stats.solve_calls == 2


class TestReconstructor:
    def test_extend_completes_unconstrained_vars(self):
        recon = Reconstructor(num_vars=5)
        model = recon.extend({1: True})
        assert model == {1: True, 2: False, 3: False, 4: False, 5: False}

    def test_extend_overrides_stale_values(self):
        recon = Reconstructor(num_vars=2)
        recon.record_fixed(2)
        # The solver may report an arbitrary value for an eliminated var.
        model = recon.extend({1: True, 2: False})
        assert model[2] is True
