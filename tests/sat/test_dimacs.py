"""DIMACS export/import round-trip properties and mapper integration.

The contract under test (see :mod:`repro.sat.dimacs`): ``dumps`` output is a
fixpoint under ``loads``; assumption cubes survive as trailing unit clauses
and are split back out on import; and the varmap projects an external model
onto mapper variables so ``MappingEncoding.decode`` produces literally the
same placements the internal solver's model would.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgra.architecture import CGRA
from repro.core.encoder import MappingEncoder
from repro.core.mobility import KernelMobilitySchedule, MobilitySchedule
from repro.kernels import get_kernel
from repro.sat.backend import DPLLBackend
from repro.sat.cnf import CNF
from repro.sat.dimacs import (
    SIDECAR_SUFFIX,
    DimacsDocument,
    VarMap,
    attempt_varmap,
    dumps,
    export_backend,
    export_encoding,
    loads,
    project_model,
    read_document,
    write_document,
)
from repro.sat.solver import CDCLSolver

# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

_NUM_VARS = 8

_literals = st.integers(min_value=1, max_value=_NUM_VARS).flatmap(
    lambda var: st.sampled_from([var, -var])
)
_clauses = st.lists(
    st.lists(_literals, min_size=1, max_size=4), min_size=0, max_size=12
)
_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz[],0123456789", min_size=1, max_size=8
)


@st.composite
def documents(draw) -> DimacsDocument:
    cnf = CNF(num_vars=_NUM_VARS)
    for clause in draw(_clauses):
        cnf.add_clause(clause)
    cube_vars = draw(
        st.lists(
            st.integers(min_value=1, max_value=_NUM_VARS),
            max_size=4,
            unique=True,
        )
    )
    cube = tuple(
        var if draw(st.booleans()) else -var for var in cube_vars
    )
    named_vars = draw(
        st.lists(
            st.integers(min_value=1, max_value=_NUM_VARS),
            max_size=4,
            unique=True,
        )
    )
    names = draw(
        st.lists(_names, min_size=len(named_vars), max_size=len(named_vars),
                 unique=True)
    )
    varmap = VarMap(dict(zip(named_vars, names)))
    comments = tuple(draw(st.lists(_names, max_size=2)))
    return DimacsDocument(cnf=cnf, varmap=varmap, cube=cube, comments=comments)


@settings(max_examples=200, deadline=None)
@given(documents())
def test_dumps_loads_fixpoint(doc):
    """export -> import -> export is byte-identical (canonical form)."""
    text = dumps(doc)
    assert dumps(loads(text)) == text


@settings(max_examples=100, deadline=None)
@given(documents())
def test_roundtrip_preserves_structure(doc):
    """Clauses, cube, varmap and comments all survive the round trip."""
    back = loads(dumps(doc))
    assert back.cnf.clauses == doc.cnf.clauses
    assert back.cnf.num_vars == doc.cnf.num_vars
    assert back.cube == doc.cube
    assert dict(back.varmap.items()) == dict(doc.varmap.items())
    assert back.comments == doc.comments


@settings(max_examples=100, deadline=None)
@given(documents())
def test_cube_appends_unit_clauses(doc):
    """The serialised formula really asserts the cube (standalone solvers)."""
    text = dumps(doc)
    standalone = CNF.from_dimacs(
        "\n".join(
            line for line in text.splitlines() if not line.startswith("c")
        )
        + "\n"
    )
    assert standalone.num_clauses == doc.cnf.num_clauses + len(doc.cube)
    tail = standalone.clauses[standalone.num_clauses - len(doc.cube):]
    assert tail == [(lit,) for lit in doc.cube]


def test_cube_comment_mismatch_rejected():
    text = dumps(DimacsDocument(cnf=CNF(num_vars=2), cube=(1, -2)))
    # Drop the trailing unit clauses but keep the cube comment.
    lines = [line for line in text.splitlines() if line not in ("1 0", "-2 0")]
    with pytest.raises(ValueError, match="cube comment"):
        loads("\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# VarMap basics
# ---------------------------------------------------------------------------


def test_varmap_rejects_collisions_and_bad_names():
    varmap = VarMap({1: "a"})
    with pytest.raises(ValueError):
        varmap.bind(1, "b")
    with pytest.raises(ValueError):
        varmap.bind(2, "a")
    with pytest.raises(ValueError):
        varmap.bind(3, "has space")
    with pytest.raises(ValueError):
        varmap.bind(0, "zero")
    varmap.bind(1, "a")  # re-binding identically is a no-op
    assert varmap.var("a") == 1 and varmap.name(1) == "a"


def test_varmap_sidecar_roundtrip(tmp_path):
    doc = DimacsDocument(
        cnf=CNF(num_vars=3), varmap=VarMap({1: "x", 3: "sel"})
    )
    doc.cnf.add_clause([1, -3])
    path = write_document(doc, tmp_path / "out.cnf")
    sidecar = path.with_name(path.name + SIDECAR_SUFFIX)
    assert sidecar.exists()
    # A comment-stripping solver pipeline loses the in-file varmap; the
    # sidecar alone must restore it.
    stripped = "\n".join(
        line
        for line in path.read_text().splitlines()
        if not line.startswith("c")
    )
    path.write_text(stripped + "\n")
    back = read_document(path)
    assert dict(back.varmap.items()) == {1: "x", 3: "sel"}


# ---------------------------------------------------------------------------
# Mapper-attempt integration
# ---------------------------------------------------------------------------


def _encoded_attempt():
    dfg = get_kernel("stringsearch")
    cgra = CGRA.square(3)
    kms = KernelMobilitySchedule.build(MobilitySchedule.build(dfg), 2)
    return MappingEncoder(dfg, cgra, kms).encode()


def test_external_model_decodes_identically(tmp_path):
    """Round-tripped model -> project_model -> decode matches the internal path."""
    encoding = _encoded_attempt()
    internal = CDCLSolver(random_seed=0).solve(encoding.cnf)
    assert internal.status == "SAT"
    expected = encoding.decode(internal.model)

    path = export_encoding(encoding, tmp_path / "attempt.cnf")
    doc = read_document(path)
    external = CDCLSolver(random_seed=0).solve(doc.cnf)
    assert external.status == "SAT"
    placements = encoding.decode(project_model(doc, external.model))
    assert placements == expected


def test_attempt_varmap_names_every_placement_variable():
    encoding = _encoded_attempt()
    varmap = attempt_varmap(encoding)
    assert len(varmap) == len(encoding.variables)
    (node, pe, cycle, iteration), var = next(iter(encoding.variables.items()))
    assert varmap.name(var) == f"x[n{node},p{pe},c{cycle},i{iteration}]"


def test_assumptions_survive_as_cube(tmp_path):
    """Exported assumptions constrain the standalone formula."""
    encoding = _encoded_attempt()
    # Pin the first placement variable false via the cube.
    var = next(iter(encoding.variables.values()))
    path = export_encoding(encoding, tmp_path / "cube.cnf", assumptions=[-var])
    doc = read_document(path)
    assert doc.cube == (-var,)
    result = CDCLSolver(random_seed=0).solve(
        doc.cnf, assumptions=list(doc.cube)
    )
    assert result.status == "SAT"
    assert result.model[var] is False


def test_export_encoding_requires_standalone_cnf(tmp_path):
    encoding = _encoded_attempt()
    encoding.cnf = None  # incremental attempts emit straight into a backend
    with pytest.raises(ValueError, match="accumulated clause set"):
        export_encoding(encoding, tmp_path / "x.cnf")


def test_export_backend_accumulated_clauses(tmp_path):
    backend = DPLLBackend()
    backend.new_vars(3)
    backend.add_clause([1, 2])
    backend.add_clause([-2, 3])
    path = export_backend(
        backend, tmp_path / "b.cnf", assumptions=[1], comments=["attempt 0"]
    )
    doc = read_document(path)
    assert doc.cnf.clauses == [(1, 2), (-2, 3)]
    assert doc.cube == (1,)
    assert doc.comments == ("attempt 0",)
