"""Tests for the CDCL solver."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.solver import CDCLSolver, _luby


def _pigeonhole(pigeons: int, holes: int) -> CNF:
    cnf = CNF()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[(p, h)] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


class TestBasics:
    def test_empty_formula_sat(self):
        result = CDCLSolver().solve(CNF())
        assert result.is_sat
        assert result.model == {}

    def test_unit_clauses(self):
        result = CDCLSolver().solve(CNF(clauses=[[1], [-2]]))
        assert result.is_sat
        assert result.model == {1: True, 2: False}

    def test_empty_clause_unsat(self):
        cnf = CNF(clauses=[[1]])
        cnf.add_clause([])
        assert CDCLSolver().solve(cnf).is_unsat

    def test_contradictory_units_unsat(self):
        assert CDCLSolver().solve(CNF(clauses=[[1], [-1]])).is_unsat

    def test_model_satisfies_formula(self):
        cnf = CNF(clauses=[[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]])
        result = CDCLSolver().solve(cnf)
        assert result.is_sat
        assert cnf.evaluate(result.model)

    def test_implication_chain(self):
        # 1 -> 2 -> 3 -> ... -> 10, with 1 forced.
        cnf = CNF(clauses=[[1]] + [[-i, i + 1] for i in range(1, 10)])
        result = CDCLSolver().solve(cnf)
        assert result.is_sat
        assert all(result.model[i] for i in range(1, 11))
        # The whole chain is derived by propagation, not decisions.
        assert result.stats.decisions == 0

    def test_unsat_needs_conflict_analysis(self):
        cnf = CNF(clauses=[
            [1, 2], [1, -2], [-1, 3], [-1, -3],
        ])
        result = CDCLSolver().solve(cnf)
        assert result.is_unsat

    def test_result_flags(self):
        sat = CDCLSolver().solve(CNF(clauses=[[1]]))
        assert sat.is_sat and not sat.is_unsat
        unsat = CDCLSolver().solve(CNF(clauses=[[1], [-1]]))
        assert unsat.is_unsat and not unsat.is_sat


class TestPigeonhole:
    @pytest.mark.parametrize("pigeons,holes,expected", [
        (3, 3, "SAT"),
        (4, 3, "UNSAT"),
        (5, 4, "UNSAT"),
        (6, 5, "UNSAT"),
    ])
    def test_pigeonhole_instances(self, pigeons, holes, expected):
        result = CDCLSolver().solve(_pigeonhole(pigeons, holes))
        assert result.status == expected

    def test_stats_populated_on_hard_instance(self):
        result = CDCLSolver().solve(_pigeonhole(6, 5))
        assert result.stats.conflicts > 0
        assert result.stats.decisions > 0
        assert result.stats.propagations > 0
        assert result.stats.solve_time > 0


class TestAssumptions:
    def test_assumptions_restrict_models(self):
        cnf = CNF(clauses=[[1, 2]])
        result = CDCLSolver().solve(cnf, assumptions=[-1])
        assert result.is_sat
        assert result.model[1] is False
        assert result.model[2] is True

    def test_assumption_conflict(self):
        cnf = CNF(clauses=[[1]])
        assert CDCLSolver().solve(cnf, assumptions=[-1]).is_unsat

    def test_multiple_assumptions(self):
        cnf = CNF(num_vars=4, clauses=[[1, 2, 3, 4]])
        result = CDCLSolver().solve(cnf, assumptions=[-1, -2, -3])
        assert result.is_sat
        assert result.model[4] is True


class TestBudgets:
    def test_conflict_limit_returns_unknown(self):
        result = CDCLSolver().solve(_pigeonhole(7, 6), conflict_limit=5)
        assert result.status == "UNKNOWN"
        assert result.model is None

    def test_time_limit_returns_unknown(self):
        result = CDCLSolver().solve(_pigeonhole(9, 8), time_limit=0.001)
        assert result.status in ("UNKNOWN", "UNSAT")


class TestRestartsAndDeletion:
    def test_restarts_happen_on_hard_instances(self):
        solver = CDCLSolver(restart_base=10)
        result = solver.solve(_pigeonhole(6, 5))
        assert result.is_unsat
        assert result.stats.restarts > 0

    def test_clause_deletion_triggers(self):
        solver = CDCLSolver(learned_limit_base=50)
        result = solver.solve(_pigeonhole(7, 6))
        assert result.is_unsat
        assert result.stats.learned_clauses > 50


class TestLuby:
    def test_first_terms(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8
        ]

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            _luby(0)


def _random_cnf(seed: int, num_vars: int, num_clauses: int, width: int = 3) -> CNF:
    rng = random.Random(seed)
    cnf = CNF(num_vars=num_vars)
    for _ in range(num_clauses):
        clause = [
            rng.choice([1, -1]) * rng.randint(1, num_vars)
            for _ in range(rng.randint(1, width))
        ]
        cnf.add_clause(clause)
    return cnf


class TestCrossCheck:
    @pytest.mark.parametrize("seed", range(25))
    def test_agrees_with_dpll_on_random_formulas(self, seed):
        cnf = _random_cnf(seed, num_vars=4 + seed % 8, num_clauses=10 + 3 * (seed % 10))
        cdcl = CDCLSolver().solve(cnf)
        dpll = DPLLSolver().solve(cnf)
        assert cdcl.is_sat == (dpll is not None)
        if cdcl.is_sat:
            assert cnf.evaluate(cdcl.model)


@settings(max_examples=40, deadline=None)
@given(
    num_vars=st.integers(min_value=2, max_value=10),
    clauses=st.lists(
        st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=3),
        min_size=1,
        max_size=30,
    ),
    signs=st.lists(st.booleans(), min_size=1, max_size=90),
)
def test_cdcl_matches_dpll_property(num_vars, clauses, signs):
    """CDCL and DPLL agree on satisfiability for arbitrary small formulas."""
    cnf = CNF(num_vars=num_vars)
    sign_index = 0
    for clause in clauses:
        literals = []
        for literal in clause:
            variable = (literal - 1) % num_vars + 1
            positive = signs[sign_index % len(signs)]
            sign_index += 1
            literals.append(variable if positive else -variable)
        cnf.add_clause(literals)
    cdcl = CDCLSolver().solve(cnf)
    dpll = DPLLSolver().solve(cnf)
    assert cdcl.is_sat == (dpll is not None)
    if cdcl.is_sat:
        assert cnf.evaluate(cdcl.model)
