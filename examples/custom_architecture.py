#!/usr/bin/env python3
"""Design-space exploration over CGRA architecture parameters.

Maps one kernel (a Sobel-like 3-tap stencil written in the loop language)
across a grid of architecture variants — mesh size, interconnect topology and
register-file size — and reports how the achievable II changes.  This is the
kind of question a CGRA architect would use the mapper for: how much fabric
does this loop actually need?

Run with::

    python examples/custom_architecture.py
"""

from repro import CGRA, MapperConfig, SatMapItMapper, compile_loop
from repro.cgra.topology import Topology
from repro.dfg.analysis import minimum_initiation_interval

STENCIL = """
left = pixels[i]
centre = pixels[i + 1]
right = pixels[i + 2]
grad = (right - left) * 2 + (centre >> 1)
clamped = grad > 255 ? 255 : grad
acc = acc + clamped
out[i] = clamped
"""


def explore() -> None:
    dfg = compile_loop(STENCIL, name="sobel_row")
    print(f"kernel: {dfg}")
    mapper = SatMapItMapper(MapperConfig(timeout=90))

    print()
    print("mesh size sweep (4 registers/PE, mesh interconnect)")
    print(f"{'fabric':10s} {'MII':>4s} {'II':>4s} {'time [s]':>9s} {'utilisation':>12s}")
    for size in (2, 3, 4, 5):
        cgra = CGRA.square(size)
        outcome = mapper.map(dfg, cgra)
        mii = minimum_initiation_interval(dfg, cgra.num_pes)
        ii = outcome.ii if outcome.success else "-"
        utilisation = (
            f"{outcome.mapping.pe_utilisation():.0%}" if outcome.success else "-"
        )
        print(f"{size}x{size:<8d} {mii:4d} {ii!s:>4s} {outcome.total_time:9.2f} "
              f"{utilisation:>12s}")

    print()
    print("interconnect sweep on a 3x3 fabric")
    for topology in (Topology.MESH, Topology.TORUS, Topology.DIAGONAL, Topology.FULL):
        cgra = CGRA(rows=3, cols=3, topology=topology)
        outcome = mapper.map(dfg, cgra)
        ii = outcome.ii if outcome.success else "-"
        print(f"  {topology.value:9s} II={ii} ({outcome.total_time:.2f}s)")

    print()
    print("register file sweep on a 3x3 mesh")
    for registers in (1, 2, 4, 8):
        cgra = CGRA.square(3, registers_per_pe=registers)
        outcome = mapper.map(dfg, cgra)
        ii = outcome.ii if outcome.success else "-"
        pressure = (
            outcome.register_allocation.max_pressure
            if outcome.register_allocation is not None
            else "-"
        )
        print(f"  {registers} registers/PE: II={ii} (max pressure {pressure})")


if __name__ == "__main__":
    explore()
