#!/usr/bin/env python3
"""Quickstart: map a small loop onto a CGRA and inspect the result.

Run with::

    python examples/quickstart.py

Pipeline demonstrated (paper Figure 3): loop source -> DFG -> SAT-based
modulo scheduling -> register allocation -> kernel visualisation -> cycle
accurate simulation against the golden model.
"""

from repro import CGRA, MapperConfig, SatMapItMapper, compile_loop
from repro.core.visualize import render_grid, render_mapping_report
from repro.simulator import CGRASimulator


def main() -> None:
    # 1. Write the loop body in the front-end's loop language.  `i` is the
    #    implicit loop index; `acc` is read before it is written, so it
    #    becomes a loop-carried accumulator.
    source = """
    t = a[i] + b[i]
    acc = acc + t * gain
    out[i] = acc >> 2
    """
    dfg = compile_loop(source, name="weighted_sum")
    print(f"compiled loop: {dfg}")

    # 2. Describe the target CGRA: the paper's 4x4 mesh with 4 registers/PE.
    cgra = CGRA.square(4, registers_per_pe=4)
    print(f"target fabric: {cgra}")

    # 3. Run SAT-MapIt.  The mapper starts at the minimum II (max of ResMII
    #    and RecMII) and increases it until the SAT solver finds a mapping
    #    that also passes register allocation.
    mapper = SatMapItMapper(MapperConfig(timeout=120))
    outcome = mapper.map(dfg, cgra)
    print()
    print(outcome.summary())
    for attempt in outcome.attempts:
        print(f"  II={attempt.ii} slack={attempt.schedule_slack}: {attempt.status} "
              f"({attempt.num_clauses} clauses, {attempt.solve_time:.2f}s solve)")

    if not outcome.success:
        raise SystemExit("mapping failed — try a larger fabric or timeout")

    # 4. Inspect the steady-state kernel.
    print()
    print(render_mapping_report(outcome.mapping, outcome.register_allocation))
    print()
    print("PE grid at kernel cycle 0:")
    print(render_grid(outcome.mapping, cycle=0))

    # 5. Validate the mapping dynamically: execute it cycle by cycle and check
    #    every operand against the golden-model interpreter.
    simulation = CGRASimulator(outcome.mapping, outcome.register_allocation).run(6)
    print()
    print(f"simulation: {simulation}")
    if not simulation.success:
        for error in simulation.errors[:5]:
            print(f"  {error}")
        raise SystemExit("simulation failed")
    print("the mapping computes the loop correctly for 6 iterations")


if __name__ == "__main__":
    main()
