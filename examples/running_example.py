#!/usr/bin/env python3
"""Walk through the paper's running example (Figures 2, 4 and 5).

Reconstructs the 11-node DFG of Figure 2a, prints the ASAP/ALAP/mobility
table of Figure 4, folds it into the Kernel Mobility Schedule of Figure 5 for
II = 3, and finally maps it onto the 2x2 CGRA of Figure 2c with the SAT
mapper — reproducing the paper's II = 3 kernel.

Run with::

    python examples/running_example.py
"""

from repro import CGRA, SatMapItMapper
from repro.core.mobility import KernelMobilitySchedule, MobilitySchedule
from repro.core.visualize import render_kernel
from repro.dfg.analysis import alap_schedule, asap_schedule, minimum_initiation_interval
from repro.dfg.graph import paper_running_example


def main() -> None:
    dfg = paper_running_example()
    print(f"running example DFG: {dfg}")

    print("\nASAP / ALAP schedules (paper Figure 4):")
    asap = asap_schedule(dfg)
    alap = alap_schedule(dfg)
    print(f"{'node':>5s} {'ASAP':>5s} {'ALAP':>5s} {'mobility':>9s}")
    for node in dfg.node_ids:
        print(f"{node:5d} {asap[node]:5d} {alap[node]:5d} {alap[node] - asap[node] + 1:9d}")

    mobility = MobilitySchedule.build(dfg)
    print("\nMobility Schedule (paper Figure 4, MS column):")
    print(mobility)

    cgra = CGRA.square(2)
    ii = minimum_initiation_interval(dfg, cgra.num_pes)
    print(f"\nMII on {cgra.name}: {ii} (ResMII = ceil(11/4) = 3)")

    kms = KernelMobilitySchedule.build(mobility, ii)
    print("\nKernel Mobility Schedule (paper Figure 5):")
    print(kms)

    outcome = SatMapItMapper().map(dfg, cgra)
    print(f"\n{outcome.summary()}")
    print("\nSteady-state kernel (compare with paper Figure 2c):")
    print(render_kernel(outcome.mapping))


if __name__ == "__main__":
    main()
