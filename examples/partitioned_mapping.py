#!/usr/bin/env python3
"""Partition-and-stitch: map a kernel too big for one SAT formula.

Run with::

    python examples/partitioned_mapping.py

The monolithic encoder scales with |nodes| x |PEs| x II — on an 8x8
fabric a 30+ node kernel produces formulas the solver cannot finish in
minutes.  The partitioned mapper (``repro.partition``) min-cuts the DFG
into balanced pieces (recurrence cycles kept intact), maps each piece
onto its own horizontal strip of the fabric as an independent — much
smaller — SAT problem, then stitches the partial mappings back together
by translating each partition in time and routing every cut edge across
the strip boundary.  The stitched whole is checked by the same legality
oracle as any monolithic mapping: ``Mapping.violations()`` plus a
cycle-accurate simulator replay.

CLI equivalent::

    repro map --kernel sha --rows 8 --cols 8 --partition --partitions 2
"""

from repro.cgra.architecture import CGRA
from repro.kernels import get_kernel
from repro.partition import PartitionConfig, PartitionMapper

def main() -> None:
    # 1. A mid-size paper kernel (38 nodes) and a fabric with plenty of
    #    room — exactly the regime where the monolithic formula explodes
    #    but each half fits comfortably.
    dfg = get_kernel("sha")
    cgra = CGRA.square(8, registers_per_pe=4)
    print(f"kernel: {dfg}")
    print(f"fabric: {cgra}")

    # 2. Partition-and-stitch.  Two partitions, each solved on its own
    #    4-row strip with cut-edge endpoints pinned near the shared
    #    border so the stitch has short routes to build.
    config = PartitionConfig(num_partitions=2, timeout=120)
    outcome = PartitionMapper(config).map(dfg, cgra)
    print()
    print(f"partition plan: {outcome.plan.summary()}")
    for index, region in enumerate(outcome.regions):
        rows = f"rows {region.row_start}..{region.row_end - 1}"
        print(f"  partition {index}: {len(outcome.plan.partitions[index])} "
              f"node(s) on {rows}")

    if not outcome.success:
        for entry in outcome.repair_log:
            print(f"  repair: {entry}")
        raise SystemExit("partitioned mapping failed — raise the timeout")

    # 3. The negotiated result: every partition solved at the same II,
    #    cut edges routed across the border (each hop is a ROUTE node on
    #    a real PE), and the whole validated by simulator replay.
    print()
    print(outcome.summary())
    print(f"stitch: offsets {outcome.stitch.offsets}, "
          f"{outcome.stitch.num_route_nodes} route node(s)")
    print(f"violations: {outcome.mapping.violations() or 'none'}")
    print(f"simulator-validated: {outcome.validated}")

    # 4. The repair log shows the II negotiation: IIs that failed inside
    #    a partition, failed to stitch, or failed register allocation
    #    before the final II was found.
    if outcome.repair_log:
        print()
        print("negotiation trace:")
        for entry in outcome.repair_log:
            print(f"  {entry}")


if __name__ == "__main__":
    main()
