#!/usr/bin/env python3
"""Compare SAT-MapIt with the RAMP / PathSeeker baselines (paper Figure 6).

Maps a selection of the MiBench/Rodinia benchmark kernels onto 2x2 and 3x3
meshes with all three mappers and prints the achieved IIs and mapping times —
a miniature version of the paper's evaluation (the full protocol lives in
``benchmarks/`` and ``python -m repro.cli sweep``).

Run with::

    python examples/benchmark_comparison.py [--kernels sha gsm ...] [--sizes 2 3]
"""

import argparse

from repro import CGRA, MapperConfig, SatMapItMapper
from repro.baselines import BaselineConfig, PathSeekerMapper, RampMapper
from repro.kernels import all_kernel_names, get_kernel


def run(kernels: list[str], sizes: list[int], timeout: float) -> None:
    print(f"{'kernel':13s} {'mesh':5s} {'nodes':>5s} "
          f"{'SAT-MapIt':>12s} {'RAMP':>12s} {'PathSeeker':>12s}")
    wins = 0
    comparisons = 0
    for name in kernels:
        dfg = get_kernel(name)
        for size in sizes:
            cgra = CGRA.square(size)
            results = {}
            results["SAT-MapIt"] = SatMapItMapper(MapperConfig(timeout=timeout)).map(dfg, cgra)
            results["RAMP"] = RampMapper(BaselineConfig(timeout=timeout)).map(dfg, cgra)
            results["PathSeeker"] = PathSeekerMapper(BaselineConfig(timeout=timeout)).map(dfg, cgra)

            def cell(outcome):
                if outcome.success:
                    return f"II={outcome.ii} {outcome.total_time:5.1f}s"
                return f"{outcome.final_status:>7s}"

            print(f"{name:13s} {size}x{size:<3d} {dfg.num_nodes:5d} "
                  f"{cell(results['SAT-MapIt']):>12s} {cell(results['RAMP']):>12s} "
                  f"{cell(results['PathSeeker']):>12s}")

            sat = results["SAT-MapIt"]
            best_soa = min(
                (o.ii for o in (results["RAMP"], results["PathSeeker"]) if o.success),
                default=None,
            )
            if sat.success:
                comparisons += 1
                if best_soa is None or sat.ii < best_soa:
                    wins += 1
    if comparisons:
        print()
        print(f"SAT-MapIt strictly better on {wins}/{comparisons} pairs "
              f"({wins / comparisons:.1%}; the paper reports 47.72% over 44 pairs)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="+", default=["srand", "basicmath", "nw", "stringsearch"],
                        choices=all_kernel_names())
    parser.add_argument("--sizes", nargs="+", type=int, default=[2, 3])
    parser.add_argument("--timeout", type=float, default=60.0)
    args = parser.parse_args()
    run(args.kernels, args.sizes, args.timeout)


if __name__ == "__main__":
    main()
