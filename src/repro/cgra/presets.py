"""Named heterogeneous fabric presets.

Each preset models a fabric shape that shows up in real CGRA designs:

* ``hycube_like`` — a 4x4 array in the spirit of HyCube: every PE has a
  multiplier, but only the leftmost column talks to the data memory (the
  load/store units sit next to the memory banks).
* ``mem_edge_4x4`` — memory ports only on the boundary ring; the interior
  PEs are pure compute tiles.  ``mem_edge(size)`` generalises to any square.
* ``mul_sparse`` — multipliers/dividers only on a checkerboard subset, the
  classic area-saving layout for DSP-heavy arrays; memory everywhere.

Presets return ordinary :class:`~repro.cgra.architecture.CGRA` values, so
everything downstream (encoder pruning, symmetry filtering, register
allocation, the simulator's legality oracle) applies unchanged.  The registry
feeds the CLI's ``--arch-preset`` flag and the experiment runner's
heterogeneous sweep scenarios.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.cgra.architecture import CGRA
from repro.cgra.capabilities import PEClass
from repro.dfg.graph import OpClass
from repro.exceptions import ArchitectureError

_COMPUTE = frozenset({OpClass.ALU, OpClass.MUL, OpClass.DIV})
_FULL = frozenset(OpClass)
_ALU_MEM = frozenset({OpClass.ALU, OpClass.MEM})


def hycube_like(registers_per_pe: int = 4) -> CGRA:
    """4x4 fabric with memory ports on the leftmost column only."""
    classes = (
        PEClass(name="mem_col", capabilities=_FULL),
        PEClass(name="compute", capabilities=_COMPUTE),
    )
    return CGRA.patterned(
        4, 4, classes,
        lambda row, col: "mem_col" if col == 0 else "compute",
        registers_per_pe=registers_per_pe,
        name="hycube_like",
    )


def mem_edge(size: int = 4, registers_per_pe: int = 4) -> CGRA:
    """Square fabric with memory ports only on the boundary ring."""
    if size < 2:
        raise ArchitectureError(f"mem_edge needs at least a 2x2 grid, got {size}")
    classes = (
        PEClass(name="edge", capabilities=_FULL),
        PEClass(name="core", capabilities=_COMPUTE),
    )

    def assign(row: int, col: int) -> str:
        on_edge = row in (0, size - 1) or col in (0, size - 1)
        return "edge" if on_edge else "core"

    return CGRA.patterned(
        size, size, classes, assign,
        registers_per_pe=registers_per_pe,
        name=f"mem_edge_{size}x{size}",
    )


def mem_edge_4x4(registers_per_pe: int = 4) -> CGRA:
    """The 4x4 instance of :func:`mem_edge` (the issue's reference fabric)."""
    return mem_edge(4, registers_per_pe)


def mul_sparse(size: int = 4, registers_per_pe: int = 4) -> CGRA:
    """Square fabric with multipliers/dividers on a checkerboard subset."""
    classes = (
        PEClass(name="dsp", capabilities=_FULL),
        PEClass(name="lite", capabilities=_ALU_MEM),
    )
    return CGRA.patterned(
        size, size, classes,
        lambda row, col: "dsp" if (row + col) % 2 == 0 else "lite",
        registers_per_pe=registers_per_pe,
        name=f"mul_sparse_{size}x{size}",
    )


ARCH_PRESETS: dict[str, Callable[[], CGRA]] = {
    "hycube_like": hycube_like,
    "mem_edge_4x4": mem_edge_4x4,
    "mul_sparse": mul_sparse,
}


def arch_preset_names() -> list[str]:
    """Names accepted by ``--arch-preset`` (stable order)."""
    return sorted(ARCH_PRESETS)


def get_arch_preset(name: str, registers_per_pe: int = 4) -> CGRA:
    """Instantiate a preset fabric by name."""
    try:
        factory = ARCH_PRESETS[name]
    except KeyError as exc:
        raise ArchitectureError(
            f"unknown architecture preset {name!r}; "
            f"available: {', '.join(arch_preset_names())}"
        ) from exc
    return factory(registers_per_pe=registers_per_pe)
