"""CGRA architecture model.

The target machine of the paper is a 2D mesh of processing elements (PEs),
each with an ALU and a small local register file, connected to its nearest
neighbours (Figure 1).  :class:`~repro.cgra.architecture.CGRA` captures the
parameters the mapper needs: grid shape, register count per PE, the
interconnect topology (which PEs can exchange a value in one cycle), and —
for heterogeneous fabrics — the per-PE capability classes describing which
functional units (ALU / MUL / DIV / MEM) each tile implements.
"""

from repro.cgra.architecture import CGRA, PE
from repro.cgra.capabilities import (
    ALL_OP_CLASSES,
    PEClass,
    capability_resource_mii,
    check_kernel_fits,
    effective_minimum_ii,
    opcode_class_histogram,
)
from repro.cgra.presets import (
    ARCH_PRESETS,
    arch_preset_names,
    get_arch_preset,
    hycube_like,
    mem_edge,
    mem_edge_4x4,
    mul_sparse,
)
from repro.cgra.topology import Topology, hop_distance, neighbourhood

__all__ = [
    "ALL_OP_CLASSES",
    "ARCH_PRESETS",
    "CGRA",
    "PE",
    "PEClass",
    "Topology",
    "arch_preset_names",
    "capability_resource_mii",
    "check_kernel_fits",
    "effective_minimum_ii",
    "get_arch_preset",
    "hop_distance",
    "hycube_like",
    "mem_edge",
    "mem_edge_4x4",
    "mul_sparse",
    "neighbourhood",
    "opcode_class_histogram",
]
