"""CGRA architecture model.

The target machine of the paper is a 2D mesh of processing elements (PEs),
each with an ALU and a small local register file, connected to its nearest
neighbours (Figure 1).  :class:`~repro.cgra.architecture.CGRA` captures the
parameters the mapper needs: grid shape, register count per PE, and the
interconnect topology (which PEs can exchange a value in one cycle).
"""

from repro.cgra.architecture import CGRA, PE
from repro.cgra.topology import Topology, neighbourhood

__all__ = ["CGRA", "PE", "Topology", "neighbourhood"]
