"""CGRA architecture description.

The :class:`CGRA` class models the paper's target fabric — an ``R x C`` grid
of processing elements with a near-neighbour interconnect — extended with a
first-class *capability* model for heterogeneous arrays: each PE belongs to a
:class:`~repro.cgra.capabilities.PEClass` that fixes which op classes it
implements (ALU / MUL / DIV / MEM) and how many local registers it has.  An
empty class table reproduces the paper's homogeneous mesh of identical PEs.

PEs are identified both by a linear index (row-major, which is what the SAT
encoding uses as the ``p`` coordinate of a literal) and by their
``(row, col)`` position.  Fabrics can be built programmatically, through the
named presets in :mod:`repro.cgra.presets`, or declaratively from a JSON/dict
spec via :meth:`CGRA.from_spec`.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from functools import cached_property

from repro.cgra.capabilities import (
    ALL_OP_CLASSES,
    DEFAULT_CLASS_NAME,
    PEClass,
)
from repro.cgra.topology import (
    Position,
    Topology,
    hop_distance,
    neighbourhood,
)
from repro.dfg.graph import OpClass, Opcode
from repro.exceptions import ArchitectureError


@dataclass(frozen=True)
class PE:
    """A single processing element."""

    index: int
    row: int
    col: int
    num_registers: int
    capabilities: frozenset[OpClass] = ALL_OP_CLASSES
    pe_class: str = DEFAULT_CLASS_NAME

    @property
    def position(self) -> Position:
        return (self.row, self.col)

    @property
    def name(self) -> str:
        return f"PE[{self.row},{self.col}]"

    def supports(self, opcode: Opcode | str) -> bool:
        """Whether this PE can execute ``opcode``."""
        return Opcode(opcode).op_class in self.capabilities

    def supports_class(self, op_class: OpClass | str) -> bool:
        """Whether this PE implements the functional-unit class."""
        return OpClass(op_class) in self.capabilities


@dataclass(frozen=True)
class CGRA:
    """A coarse-grain reconfigurable array.

    Parameters mirror the experimental setup of the paper: meshes from 2x2 to
    5x5, four local registers per PE and a 4-nearest-neighbour interconnect.
    ``pe_classes`` and ``class_map`` describe heterogeneous fabrics: the
    former lists the available PE kinds, the latter assigns one class name to
    every PE in row-major order.  Leaving both empty models the homogeneous
    array of identical full-capability PEs.
    """

    rows: int = 4
    cols: int = 4
    registers_per_pe: int = 4
    topology: Topology = Topology.MESH
    pe_classes: tuple[PEClass, ...] = ()
    class_map: tuple[str, ...] = ()
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ArchitectureError(
                f"CGRA must have at least one row and column, got {self.rows}x{self.cols}"
            )
        if self.registers_per_pe < 1:
            raise ArchitectureError(
                f"each PE needs at least one register, got {self.registers_per_pe}"
            )
        object.__setattr__(self, "topology", Topology(self.topology))
        object.__setattr__(
            self, "pe_classes", tuple(self.pe_classes)
        )
        object.__setattr__(self, "class_map", tuple(self.class_map))
        names = [pe_class.name for pe_class in self.pe_classes]
        if len(set(names)) != len(names):
            raise ArchitectureError(f"duplicate PE class names: {names}")
        if self.class_map:
            if len(self.class_map) != self.rows * self.cols:
                raise ArchitectureError(
                    f"class_map has {len(self.class_map)} entries, expected one "
                    f"per PE ({self.rows * self.cols})"
                )
            known = set(names) | {DEFAULT_CLASS_NAME}
            unknown = sorted(set(self.class_map) - known)
            if unknown:
                raise ArchitectureError(
                    f"class_map references undeclared PE classes: {unknown}"
                )
        if not self.name:
            object.__setattr__(self, "name", f"cgra_{self.rows}x{self.cols}")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        """Total number of processing elements."""
        return self.rows * self.cols

    @cached_property
    def _classes_by_name(self) -> dict[str, PEClass]:
        table = {pe_class.name: pe_class for pe_class in self.pe_classes}
        table.setdefault(DEFAULT_CLASS_NAME, PEClass(name=DEFAULT_CLASS_NAME))
        return table

    def pe_class_of(self, index: int) -> PEClass:
        """The :class:`PEClass` governing PE ``index``."""
        if not self.class_map:
            return self._classes_by_name[DEFAULT_CLASS_NAME]
        if not 0 <= index < self.num_pes:
            raise ArchitectureError(
                f"PE index {index} out of range for {self.rows}x{self.cols} CGRA"
            )
        return self._classes_by_name[self.class_map[index]]

    @cached_property
    def pes(self) -> tuple[PE, ...]:
        """All PEs in row-major order."""
        result = []
        for row in range(self.rows):
            for col in range(self.cols):
                index = row * self.cols + col
                pe_class = self.pe_class_of(index)
                result.append(
                    PE(
                        index,
                        row,
                        col,
                        pe_class.registers or self.registers_per_pe,
                        pe_class.capabilities,
                        pe_class.name,
                    )
                )
        return tuple(result)

    def pe(self, index: int) -> PE:
        """Look up a PE by linear index."""
        if not 0 <= index < self.num_pes:
            raise ArchitectureError(
                f"PE index {index} out of range for {self.rows}x{self.cols} CGRA"
            )
        return self.pes[index]

    def pe_index(self, position: Position) -> int:
        """Linear (row-major) index of the PE at ``position``."""
        row, col = position
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ArchitectureError(
                f"position {position} outside a {self.rows}x{self.cols} grid"
            )
        return row * self.cols + col

    def pe_position(self, index: int) -> Position:
        """Grid position of PE ``index``."""
        return (self.pe(index).row, self.pe(index).col)

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------
    @cached_property
    def is_homogeneous(self) -> bool:
        """Whether every PE has the same capabilities and register count."""
        signatures = {self._signature(pe) for pe in range(self.num_pes)}
        return len(signatures) <= 1

    def _signature(self, index: int) -> tuple[frozenset[OpClass], int]:
        """Capability signature deciding PE interchangeability."""
        pe = self.pe(index)
        return (pe.capabilities, pe.num_registers)

    @cached_property
    def _capable_pes(self) -> dict[OpClass, tuple[int, ...]]:
        table: dict[OpClass, list[int]] = {op_class: [] for op_class in OpClass}
        for pe in self.pes:
            for op_class in pe.capabilities:
                table[op_class].append(pe.index)
        return {op_class: tuple(indices) for op_class, indices in table.items()}

    def capable_pes(self, op_class: OpClass | str) -> tuple[int, ...]:
        """Indices of the PEs implementing ``op_class`` (ascending order)."""
        return self._capable_pes[OpClass(op_class)]

    def pes_supporting(self, opcode: Opcode | str) -> tuple[int, ...]:
        """Indices of the PEs able to execute ``opcode`` (ascending order)."""
        return self.capable_pes(Opcode(opcode).op_class)

    def capability_summary(self) -> str:
        """Compact per-class PE counts, e.g. ``alu:16 mul:16 div:16 mem:12``."""
        return " ".join(
            f"{op_class.value}:{len(self.capable_pes(op_class))}"
            for op_class in OpClass
        )

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    @cached_property
    def _neighbour_table(self) -> dict[int, tuple[int, ...]]:
        table: dict[int, tuple[int, ...]] = {}
        for pe in self.pes:
            positions = neighbourhood(
                pe.position, self.rows, self.cols, self.topology, include_self=True
            )
            table[pe.index] = tuple(self.pe_index(pos) for pos in positions)
        return table

    def neighbours(self, index: int, include_self: bool = True) -> tuple[int, ...]:
        """PE indices that can receive a value from PE ``index`` in one hop."""
        result = self._neighbour_table[self.pe(index).index]
        if include_self:
            return result
        return tuple(pe for pe in result if pe != index)

    def are_neighbours(self, a: int, b: int, include_self: bool = True) -> bool:
        """Whether PE ``b`` can consume a value produced on PE ``a``."""
        if a == b:
            return include_self
        return b in self._neighbour_table[self.pe(a).index]

    def distance(self, a: int, b: int) -> int:
        """Exact minimum hop count between two PEs on this topology.

        Manhattan on the mesh, wrap-around-aware Manhattan on the torus,
        Chebyshev on the 8-neighbour diagonal grid, and at most one hop on
        the idealised full crossbar.
        """
        return hop_distance(
            self.pe_position(a), self.pe_position(b),
            self.rows, self.cols, self.topology,
        )

    # ------------------------------------------------------------------
    # Symmetries
    # ------------------------------------------------------------------
    @cached_property
    def symmetries(self) -> tuple[tuple[int, ...], ...]:
        """Capability-preserving grid automorphisms as PE-index permutations.

        The geometric candidates are the dihedral transforms of the grid
        (8 for a square, 4 for a rectangle) plus, on the torus, every
        wrap-around translation composed with them.  A candidate survives
        only if it maps each PE onto a PE with the same capability signature
        (capabilities and register count): a reflection that would land a
        memory node on an ALU-only PE is not a symmetry of a heterogeneous
        fabric.  Every permutation returned maps neighbours to neighbours
        and preserves capabilities, so applying it to a legal mapping yields
        another legal mapping.
        """
        rows, cols = self.rows, self.cols
        geometric = [lambda pos: pos,
                     lambda pos: (rows - 1 - pos[0], pos[1]),
                     lambda pos: (pos[0], cols - 1 - pos[1]),
                     lambda pos: (rows - 1 - pos[0], cols - 1 - pos[1])]
        if rows == cols:
            geometric.extend([
                lambda pos: (pos[1], pos[0]),
                lambda pos: (cols - 1 - pos[1], pos[0]),
                lambda pos: (pos[1], rows - 1 - pos[0]),
                lambda pos: (cols - 1 - pos[1], rows - 1 - pos[0]),
            ])
        transforms = list(geometric)
        if self.topology is Topology.TORUS:
            # Wrap-around links make every translation an automorphism too.
            transforms = [
                (lambda base, dr, dc: lambda pos: (
                    (base(pos)[0] + dr) % rows, (base(pos)[1] + dc) % cols
                ))(base, d_row, d_col)
                for base in geometric
                for d_row in range(rows)
                for d_col in range(cols)
            ]

        permutations: list[tuple[int, ...]] = []
        for transform in transforms:
            permutation = tuple(
                self.pe_index(transform(self.pe_position(index)))
                for index in range(self.num_pes)
            )
            if permutation in permutations:
                continue
            if all(
                self._signature(permutation[pe]) == self._signature(pe)
                for pe in range(self.num_pes)
            ):
                permutations.append(permutation)
        return tuple(permutations)

    def symmetry_fundamental_domain(self) -> tuple[int, ...]:
        """A minimal set of PEs intersecting every symmetry orbit.

        Restricting a single (anchor) node to these PEs is a sound
        symmetry-breaking constraint: any legal mapping can be transformed by
        a capability-preserving grid automorphism so that the anchor lands
        inside the domain.  On the full crossbar *any* permutation of
        same-signature PEs is an automorphism, so one representative per
        capability signature suffices.
        """
        if self.topology is Topology.FULL:
            seen: set[tuple[frozenset[OpClass], int]] = set()
            representatives: list[int] = []
            for pe in range(self.num_pes):
                signature = self._signature(pe)
                if signature not in seen:
                    seen.add(signature)
                    representatives.append(pe)
            return tuple(representatives)
        canonical: set[int] = set()
        for pe in range(self.num_pes):
            canonical.add(min(permutation[pe] for permutation in self.symmetries))
        return tuple(sorted(canonical))

    # ------------------------------------------------------------------
    # Declarative specs
    # ------------------------------------------------------------------
    def to_spec(self) -> dict:
        """JSON-serialisable description round-tripping through :meth:`from_spec`."""
        spec: dict = {
            "name": self.name,
            "rows": self.rows,
            "cols": self.cols,
            "registers_per_pe": self.registers_per_pe,
            "topology": self.topology.value,
        }
        if self.pe_classes:
            spec["pe_classes"] = {
                pe_class.name: pe_class.to_spec() for pe_class in self.pe_classes
            }
        if self.class_map:
            spec["assignment"] = [
                list(self.class_map[row * self.cols:(row + 1) * self.cols])
                for row in range(self.rows)
            ]
        return spec

    @classmethod
    def from_spec(cls, spec: dict) -> "CGRA":
        """Build a fabric from a declarative dict (see ``README.md``).

        Recognised keys: ``rows``, ``cols``, ``registers_per_pe``,
        ``topology``, ``name``, ``pe_classes`` (name -> {``capabilities``,
        ``registers``}), ``assignment`` (rows x cols grid of class names, or
        a flat row-major list) and ``default_class`` (class used where the
        assignment is omitted).
        """
        if not isinstance(spec, dict):
            raise ArchitectureError(
                f"architecture spec must be an object, got {type(spec).__name__}"
            )
        rows = int(spec.get("rows", 4))
        cols = int(spec.get("cols", 4))
        classes = tuple(
            PEClass.from_spec(name, entry)
            for name, entry in spec.get("pe_classes", {}).items()
        )
        class_names = {pe_class.name for pe_class in classes}
        default_class = spec.get("default_class")
        if default_class is not None and default_class not in class_names:
            raise ArchitectureError(
                f"default_class {default_class!r} is not declared in pe_classes"
            )
        assignment = spec.get("assignment")
        class_map: tuple[str, ...] = ()
        # An empty assignment must not silently bypass the class table (it
        # would fall back to full-capability defaults for every PE).
        if assignment:
            if assignment and isinstance(assignment[0], (list, tuple)):
                if len(assignment) != rows or any(len(r) != cols for r in assignment):
                    raise ArchitectureError(
                        f"assignment grid must be {rows}x{cols} class names"
                    )
                flat = [name for row in assignment for name in row]
            else:
                flat = list(assignment)
            class_map = tuple(str(name) for name in flat)
        elif default_class is not None:
            class_map = (default_class,) * (rows * cols)
        elif classes:
            raise ArchitectureError(
                "spec declares pe_classes but neither an assignment grid nor "
                "a default_class"
            )
        return cls(
            rows=rows,
            cols=cols,
            registers_per_pe=int(spec.get("registers_per_pe", 4)),
            topology=Topology(spec.get("topology", Topology.MESH)),
            pe_classes=classes,
            class_map=class_map,
            name=spec.get("name", ""),
        )

    @classmethod
    def from_spec_file(cls, path: str) -> "CGRA":
        """Load a fabric from a JSON architecture spec file."""
        try:
            with open(path, encoding="utf-8") as stream:
                spec = json.load(stream)
        except OSError as exc:
            raise ArchitectureError(
                f"cannot read architecture spec {path!r}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ArchitectureError(
                f"architecture spec {path!r} is not valid JSON: {exc}"
            ) from exc
        return cls.from_spec(spec)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-paragraph human readable description."""
        base = (
            f"{self.rows}x{self.cols} CGRA ({self.num_pes} PEs), "
            f"{self.registers_per_pe} registers per PE, "
            f"{self.topology.value} interconnect"
        )
        if self.is_homogeneous:
            return base
        counts = Counter(self.class_map)
        mix = ", ".join(f"{count}x{name}" for name, count in sorted(counts.items()))
        return f"{base}, heterogeneous ({mix}; {self.capability_summary()})"

    def __str__(self) -> str:
        return self.describe()

    @classmethod
    def square(cls, size: int, registers_per_pe: int = 4,
               topology: Topology | str = Topology.MESH) -> "CGRA":
        """Build the square meshes used throughout the paper (2x2 … 5x5)."""
        return cls(rows=size, cols=size, registers_per_pe=registers_per_pe,
                   topology=Topology(topology))

    @classmethod
    def patterned(
        cls,
        rows: int,
        cols: int,
        classes: tuple[PEClass, ...],
        assign,
        registers_per_pe: int = 4,
        topology: Topology | str = Topology.MESH,
        name: str = "",
    ) -> "CGRA":
        """Build a heterogeneous fabric from an ``(row, col) -> class name`` rule."""
        class_map = tuple(
            assign(row, col) for row in range(rows) for col in range(cols)
        )
        return cls(
            rows=rows,
            cols=cols,
            registers_per_pe=registers_per_pe,
            topology=Topology(topology),
            pe_classes=classes,
            class_map=class_map,
            name=name,
        )
