"""CGRA architecture description.

The :class:`CGRA` class models the paper's target fabric: an ``R x C`` grid of
identical processing elements, each holding a small local register file, with
a near-neighbour interconnect.  PEs are identified both by a linear index
(row-major, which is what the SAT encoding uses as the ``p`` coordinate of a
literal) and by their ``(row, col)`` position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.cgra.topology import Position, Topology, manhattan_distance, neighbourhood
from repro.exceptions import ArchitectureError


@dataclass(frozen=True)
class PE:
    """A single processing element."""

    index: int
    row: int
    col: int
    num_registers: int

    @property
    def position(self) -> Position:
        return (self.row, self.col)

    @property
    def name(self) -> str:
        return f"PE[{self.row},{self.col}]"


@dataclass(frozen=True)
class CGRA:
    """A coarse-grain reconfigurable array.

    Parameters mirror the experimental setup of the paper: meshes from 2x2 to
    5x5, four local registers per PE and a 4-nearest-neighbour interconnect.
    """

    rows: int = 4
    cols: int = 4
    registers_per_pe: int = 4
    topology: Topology = Topology.MESH
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ArchitectureError(
                f"CGRA must have at least one row and column, got {self.rows}x{self.cols}"
            )
        if self.registers_per_pe < 1:
            raise ArchitectureError(
                f"each PE needs at least one register, got {self.registers_per_pe}"
            )
        object.__setattr__(self, "topology", Topology(self.topology))
        if not self.name:
            object.__setattr__(self, "name", f"cgra_{self.rows}x{self.cols}")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        """Total number of processing elements."""
        return self.rows * self.cols

    @cached_property
    def pes(self) -> tuple[PE, ...]:
        """All PEs in row-major order."""
        return tuple(
            PE(self.pe_index((row, col)), row, col, self.registers_per_pe)
            for row in range(self.rows)
            for col in range(self.cols)
        )

    def pe(self, index: int) -> PE:
        """Look up a PE by linear index."""
        if not 0 <= index < self.num_pes:
            raise ArchitectureError(
                f"PE index {index} out of range for {self.rows}x{self.cols} CGRA"
            )
        return self.pes[index]

    def pe_index(self, position: Position) -> int:
        """Linear (row-major) index of the PE at ``position``."""
        row, col = position
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ArchitectureError(
                f"position {position} outside a {self.rows}x{self.cols} grid"
            )
        return row * self.cols + col

    def pe_position(self, index: int) -> Position:
        """Grid position of PE ``index``."""
        return (self.pe(index).row, self.pe(index).col)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    @cached_property
    def _neighbour_table(self) -> dict[int, tuple[int, ...]]:
        table: dict[int, tuple[int, ...]] = {}
        for pe in self.pes:
            positions = neighbourhood(
                pe.position, self.rows, self.cols, self.topology, include_self=True
            )
            table[pe.index] = tuple(self.pe_index(pos) for pos in positions)
        return table

    def neighbours(self, index: int, include_self: bool = True) -> tuple[int, ...]:
        """PE indices that can receive a value from PE ``index`` in one hop."""
        result = self._neighbour_table[self.pe(index).index]
        if include_self:
            return result
        return tuple(pe for pe in result if pe != index)

    def are_neighbours(self, a: int, b: int, include_self: bool = True) -> bool:
        """Whether PE ``b`` can consume a value produced on PE ``a``."""
        if a == b:
            return include_self
        return b in self._neighbour_table[self.pe(a).index]

    def distance(self, a: int, b: int) -> int:
        """Manhattan distance between two PEs (hop-count lower bound)."""
        return manhattan_distance(self.pe_position(a), self.pe_position(b))

    # ------------------------------------------------------------------
    # Symmetries
    # ------------------------------------------------------------------
    @cached_property
    def symmetries(self) -> tuple[tuple[int, ...], ...]:
        """Grid automorphisms as PE-index permutations.

        For a square grid the dihedral group of the square (8 elements), for a
        rectangular grid the subgroup without 90-degree rotations (4
        elements), and for the idealised full crossbar every PE is equivalent
        (handled separately by :meth:`symmetry_fundamental_domain`).  Every
        permutation returned maps neighbours to neighbours, so applying it to
        a legal mapping yields another legal mapping.
        """
        rows, cols = self.rows, self.cols
        transforms: list[tuple[int, ...]] = []

        def add(transform) -> None:
            permutation = tuple(
                self.pe_index(transform(self.pe_position(index)))
                for index in range(self.num_pes)
            )
            if permutation not in transforms:
                transforms.append(permutation)

        add(lambda pos: pos)
        add(lambda pos: (rows - 1 - pos[0], pos[1]))
        add(lambda pos: (pos[0], cols - 1 - pos[1]))
        add(lambda pos: (rows - 1 - pos[0], cols - 1 - pos[1]))
        if rows == cols:
            add(lambda pos: (pos[1], pos[0]))
            add(lambda pos: (cols - 1 - pos[1], pos[0]))
            add(lambda pos: (pos[1], rows - 1 - pos[0]))
            add(lambda pos: (cols - 1 - pos[1], rows - 1 - pos[0]))
        return tuple(transforms)

    def symmetry_fundamental_domain(self) -> tuple[int, ...]:
        """A minimal set of PEs intersecting every symmetry orbit.

        Restricting a single (anchor) node to these PEs is a sound
        symmetry-breaking constraint: any legal mapping can be transformed by
        a grid automorphism so that the anchor lands inside the domain.
        """
        if self.topology is Topology.FULL:
            return (0,)
        canonical: set[int] = set()
        for pe in range(self.num_pes):
            canonical.add(min(permutation[pe] for permutation in self.symmetries))
        return tuple(sorted(canonical))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-paragraph human readable description."""
        return (
            f"{self.rows}x{self.cols} CGRA ({self.num_pes} PEs), "
            f"{self.registers_per_pe} registers per PE, "
            f"{self.topology.value} interconnect"
        )

    def __str__(self) -> str:
        return self.describe()

    @classmethod
    def square(cls, size: int, registers_per_pe: int = 4,
               topology: Topology | str = Topology.MESH) -> "CGRA":
        """Build the square meshes used throughout the paper (2x2 … 5x5)."""
        return cls(rows=size, cols=size, registers_per_pe=registers_per_pe,
                   topology=Topology(topology))
