"""Interconnect topologies for 2D CGRA meshes.

A topology answers one question for the mapper: given a PE position, which
PE positions can receive its output within one cycle?  All topologies include
the PE itself (a value can always stay local through the PE's register file).
"""

from __future__ import annotations

from enum import Enum

from repro.exceptions import ArchitectureError

Position = tuple[int, int]


class Topology(str, Enum):
    """Supported interconnect shapes."""

    MESH = "mesh"  # 4-nearest-neighbour, no wrap-around (paper's target)
    TORUS = "torus"  # 4-nearest-neighbour with wrap-around links
    DIAGONAL = "diagonal"  # 8-neighbour (king moves), no wrap-around
    FULL = "full"  # all-to-all (idealised crossbar)


_CARDINAL = ((-1, 0), (1, 0), (0, -1), (0, 1))
_DIAGONAL = _CARDINAL + ((-1, -1), (-1, 1), (1, -1), (1, 1))


def neighbourhood(
    position: Position,
    rows: int,
    cols: int,
    topology: Topology | str = Topology.MESH,
    include_self: bool = True,
) -> list[Position]:
    """Positions reachable from ``position`` in a single hop.

    The result is sorted for determinism.  ``include_self`` controls whether
    the PE itself is part of the neighbourhood (the mapper treats "same PE"
    as a legal data transfer through the local register file).
    """
    topology = Topology(topology)
    row, col = position
    if not (0 <= row < rows and 0 <= col < cols):
        raise ArchitectureError(
            f"position {position} outside a {rows}x{cols} grid"
        )
    neighbours: set[Position] = set()
    if include_self:
        neighbours.add(position)
    if topology is Topology.FULL:
        neighbours.update((r, c) for r in range(rows) for c in range(cols))
        if not include_self:
            neighbours.discard(position)
        return sorted(neighbours)
    offsets = _DIAGONAL if topology is Topology.DIAGONAL else _CARDINAL
    for d_row, d_col in offsets:
        new_row, new_col = row + d_row, col + d_col
        if topology is Topology.TORUS:
            new_row %= rows
            new_col %= cols
        if 0 <= new_row < rows and 0 <= new_col < cols:
            neighbours.add((new_row, new_col))
    if not include_self:
        neighbours.discard(position)
    return sorted(neighbours)


def manhattan_distance(a: Position, b: Position) -> int:
    """Manhattan distance between two grid positions (no wrap-around)."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def hop_distance(
    a: Position,
    b: Position,
    rows: int,
    cols: int,
    topology: Topology | str = Topology.MESH,
) -> int:
    """Exact minimum hop count between two positions on a given topology.

    * ``MESH`` — Manhattan distance (one cardinal step per hop).
    * ``TORUS`` — Manhattan distance with wrap-around: each axis may go the
      short way around the ring.
    * ``DIAGONAL`` — Chebyshev distance (king moves cover both axes at once).
    * ``FULL`` — every pair of distinct PEs is one hop apart.
    """
    topology = Topology(topology)
    if topology is Topology.FULL:
        return 0 if a == b else 1
    d_row = abs(a[0] - b[0])
    d_col = abs(a[1] - b[1])
    if topology is Topology.TORUS:
        d_row = min(d_row, rows - d_row)
        d_col = min(d_col, cols - d_col)
        return d_row + d_col
    if topology is Topology.DIAGONAL:
        return max(d_row, d_col)
    return d_row + d_col
