"""Capability model for heterogeneous CGRA fabrics.

Real CGRAs are rarely homogeneous: memory ports sit on the array boundary
(next to the data-memory banks), multipliers and dividers are instantiated on
a subset of the PEs, and register-file sizes differ between "fat" and "thin"
tiles.  This module describes those differences:

* :class:`~repro.dfg.graph.OpClass` (defined next to the opcode set) names the
  functional-unit classes an instruction may require;
* :class:`PEClass` bundles a capability set and a register-file size under a
  name (``"full"``, ``"alu"``, …);
* the helpers below answer the fabric-level feasibility questions the mapper
  asks before spending any SAT effort: can this kernel's opcode histogram fit
  the fabric at all, and what II floor do the capability-constrained resources
  impose?

The :class:`~repro.cgra.architecture.CGRA` class holds a tuple of PE classes
plus a per-PE assignment; an empty class table means the classic homogeneous
fabric of the paper.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.dfg.graph import DFG, OpClass
from repro.exceptions import ArchitectureError, MappingError

#: Capability set of the paper's homogeneous PEs: every class implemented.
ALL_OP_CLASSES: frozenset[OpClass] = frozenset(OpClass)

#: Name used for the implicit class of a homogeneous fabric.
DEFAULT_CLASS_NAME = "default"


@dataclass(frozen=True)
class PEClass:
    """A named kind of processing element.

    ``registers`` overrides the fabric-wide ``registers_per_pe`` for PEs of
    this class; ``None`` inherits the fabric default.
    """

    name: str
    capabilities: frozenset[OpClass] = ALL_OP_CLASSES
    registers: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("PE class needs a non-empty name")
        if not self.capabilities:
            raise ArchitectureError(
                f"PE class {self.name!r} must implement at least one op class"
            )
        object.__setattr__(
            self, "capabilities", frozenset(OpClass(c) for c in self.capabilities)
        )
        if self.registers is not None and self.registers < 1:
            raise ArchitectureError(
                f"PE class {self.name!r} needs at least one register, "
                f"got {self.registers}"
            )

    def to_spec(self) -> dict:
        """JSON-serialisable description of the class."""
        spec: dict = {"capabilities": sorted(c.value for c in self.capabilities)}
        if self.registers is not None:
            spec["registers"] = self.registers
        return spec

    @classmethod
    def from_spec(cls, name: str, spec: dict) -> "PEClass":
        """Build a class from its declarative description."""
        if not isinstance(spec, dict):
            raise ArchitectureError(
                f"PE class {name!r} spec must be an object, got {type(spec).__name__}"
            )
        raw = spec.get("capabilities", sorted(c.value for c in OpClass))
        try:
            capabilities = frozenset(OpClass(entry) for entry in raw)
        except ValueError as exc:
            raise ArchitectureError(
                f"PE class {name!r} lists an unknown capability: {exc}; "
                f"known: {', '.join(c.value for c in OpClass)}"
            ) from exc
        return cls(name=name, capabilities=capabilities,
                   registers=spec.get("registers"))


def opcode_class_histogram(dfg: DFG) -> dict[OpClass, int]:
    """Number of DFG nodes per required op class."""
    counter: Counter[OpClass] = Counter(node.opcode.op_class for node in dfg.nodes)
    return dict(counter)


def check_kernel_fits(dfg: DFG, cgra) -> None:
    """Raise :class:`MappingError` when no II can ever map ``dfg`` on ``cgra``.

    A kernel whose opcode histogram needs an op class no PE implements is
    infeasible at every II; failing here (with the histogram in the message)
    saves the whole iterative SAT search.
    """
    missing: list[str] = []
    for op_class, count in sorted(opcode_class_histogram(dfg).items()):
        if count and not cgra.capable_pes(op_class):
            missing.append(f"{count} {op_class.value} node(s)")
    if missing:
        raise MappingError(
            f"kernel {dfg.name!r} cannot fit fabric {cgra.name!r} at any II: "
            f"no PE implements {', '.join(missing)} "
            f"(fabric capabilities: {cgra.capability_summary()})"
        )


def capability_resource_mii(dfg: DFG, cgra) -> int:
    """Capability-aware resource MII.

    The classic ResMII divides the node count by the PE count; on a
    heterogeneous fabric each op class is additionally limited to its capable
    PEs, so the bound is ``max over classes of ceil(#class nodes / #capable
    PEs)``.  Assumes :func:`check_kernel_fits` has passed (every used class
    has at least one capable PE).
    """
    best = 1
    for op_class, count in opcode_class_histogram(dfg).items():
        capable = len(cgra.capable_pes(op_class))
        if count and capable:
            best = max(best, math.ceil(count / capable))
    return best


def effective_minimum_ii(dfg: DFG, cgra) -> int:
    """The MII seeding the iterative search, capability floor included."""
    from repro.dfg.analysis import minimum_initiation_interval

    return max(
        minimum_initiation_interval(dfg, cgra.num_pes),
        capability_resource_mii(dfg, cgra),
    )
