"""Exception hierarchy shared across the reproduction packages."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class DFGError(ReproError):
    """Raised for malformed or inconsistent data-flow graphs."""


class FrontendError(ReproError):
    """Raised when loop source code cannot be lexed, parsed or lowered."""


class ArchitectureError(ReproError):
    """Raised for invalid CGRA architecture descriptions."""


class MappingError(ReproError):
    """Raised when a mapper cannot produce or validate a mapping."""


class EncodingError(ReproError):
    """Raised when the CNF encoding of a mapping problem is inconsistent."""


class PreprocessError(ReproError):
    """Raised when CNF preprocessing is used unsoundly (e.g. a clause added
    after simplification references an eliminated variable)."""


class RegisterAllocationError(ReproError):
    """Raised when register allocation fails irrecoverably."""


class SimulationError(ReproError):
    """Raised when the CGRA simulator detects an illegal execution."""


class FarmError(ReproError):
    """Raised for unrecoverable sweep-farm conditions: a corrupt work
    journal, a resume attempt against a journal written by a different
    experiment configuration, or a journal directory that already holds a
    sweep (use ``--resume`` or a fresh directory)."""
