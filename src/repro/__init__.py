"""SAT-MapIt reproduction: a SAT-based modulo scheduling mapper for CGRAs.

The package reproduces the system described in "SAT-MapIt: A SAT-based Modulo
Scheduling Mapper for Coarse Grain Reconfigurable Architectures" (DATE 2023).

High-level entry points:

* :class:`repro.core.mapper.SatMapItMapper` — the SAT-based mapper (paper
  contribution).
* :mod:`repro.baselines` — heuristic baseline mappers in the spirit of RAMP
  and PathSeeker.
* :mod:`repro.kernels` — the benchmark loop-kernel suite used by the paper's
  evaluation.
* :mod:`repro.experiments` — the harness that regenerates Figure 6 and
  Tables I–IV.
"""

from repro.cgra.architecture import CGRA
from repro.cgra.capabilities import PEClass
from repro.cgra.presets import arch_preset_names, get_arch_preset
from repro.core.mapper import MapperConfig, MappingOutcome, SatMapItMapper
from repro.dfg.graph import DFG, DFGEdge, DFGNode, OpClass, Opcode
from repro.frontend import compile_loop

__version__ = "1.1.0"

__all__ = [
    "CGRA",
    "DFG",
    "DFGEdge",
    "DFGNode",
    "OpClass",
    "Opcode",
    "PEClass",
    "SatMapItMapper",
    "MapperConfig",
    "MappingOutcome",
    "arch_preset_names",
    "compile_loop",
    "get_arch_preset",
    "__version__",
]
