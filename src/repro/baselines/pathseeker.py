"""PathSeeker-style baseline: randomised modulo scheduling with local repair.

PathSeeker (Balasubramanian & Shrivastava, DATE 2022) improves on CRIMSON's
randomised iterative modulo scheduling by analysing mapping failures and
locally adjusting the schedule instead of blindly re-randomising.  The
behaviour captured here:

* randomised priority perturbations (seeded, so experiments are repeatable),
* failure-driven adjustment: nodes that were still unscheduled when an
  attempt ran out of budget get their priority boosted in the next attempt
  (the "local adjustment"),
* several restarts per II before giving up and increasing the II.

The paper repeats every PathSeeker experiment ten times because of this
randomisation; the experiment harness does the same (configurable).
"""

from __future__ import annotations

import random

from repro.baselines.base import (
    BaselineConfig,
    HeuristicMapper,
    height_priorities,
    modulo_schedule_with_diagnostics,
)
from repro.cgra.architecture import CGRA
from repro.core.mapping import Mapping
from repro.dfg.graph import DFG


class PathSeekerMapper(HeuristicMapper):
    """Randomised heuristic with failure-driven local adjustments."""

    name = "PathSeeker"

    def __init__(self, config: BaselineConfig | None = None) -> None:
        super().__init__(config or BaselineConfig(attempts_per_ii=10, random_seed=1))

    # ------------------------------------------------------------------
    def _priorities(
        self, dfg: DFG, ii: int, attempt: int, rng: random.Random
    ) -> dict[int, float]:
        heights = height_priorities(dfg)
        if attempt == 0:
            return heights
        # CRIMSON-style randomisation, stronger on later attempts.
        spread = 1.0 + attempt
        return {n: heights[n] + rng.uniform(0.0, spread) for n in dfg.node_ids}

    def _try_ii(
        self, dfg: DFG, cgra: CGRA, ii: int, rng: random.Random, start: float
    ) -> Mapping | None:
        boosts: dict[int, float] = {}
        for attempt in range(self.config.attempts_per_ii):
            if self._out_of_time(start):
                return None
            priorities = self._priorities(dfg, ii, attempt, rng)
            for node_id, boost in boosts.items():
                priorities[node_id] = priorities.get(node_id, 0.0) + boost
            mapping, leftover = modulo_schedule_with_diagnostics(
                dfg,
                cgra,
                ii,
                priorities,
                rng,
                budget_factor=self.config.budget_factor,
                enforce_output_register=self.config.enforce_output_register,
            )
            if mapping is not None:
                return mapping
            # Failure-driven local adjustment: promote the stuck nodes.
            for node_id in leftover:
                boosts[node_id] = boosts.get(node_id, 0.0) + dfg.num_nodes / 2.0
        return None
