"""Exhaustive mapping oracle for tiny instances.

Enumerates every assignment of nodes to (PE, flat time) positions within a
bounded schedule, in increasing II order, and returns the first legal mapping.
Exponential, therefore only usable for DFGs of a handful of nodes — which is
exactly what the test-suite needs: an independent certificate that the SAT
mapper's II is optimal under the same legality rules.
"""

from __future__ import annotations

import itertools
import time

from repro.cgra.architecture import CGRA
from repro.cgra.capabilities import check_kernel_fits, effective_minimum_ii
from repro.core.mapper import IIAttempt, MappingOutcome
from repro.core.mapping import Mapping
from repro.core.regalloc import allocate_registers
from repro.dfg.analysis import critical_path_length
from repro.dfg.graph import DFG
from repro.exceptions import MappingError


class ExhaustiveMapper:
    """Brute-force optimal mapper (oracle for tests and tiny examples)."""

    name = "Exhaustive"

    def __init__(
        self,
        max_nodes: int = 8,
        max_ii: int = 8,
        schedule_slack: int = 1,
        timeout: float | None = None,
        enforce_output_register: bool = True,
        run_register_allocation: bool = True,
    ) -> None:
        self.max_nodes = max_nodes
        self.max_ii = max_ii
        self.schedule_slack = schedule_slack
        self.timeout = timeout
        self.enforce_output_register = enforce_output_register
        self.run_register_allocation = run_register_allocation

    def map(self, dfg: DFG, cgra: CGRA, start_ii: int | None = None) -> MappingOutcome:
        """Enumerate placements in increasing II order."""
        if dfg.num_nodes > self.max_nodes:
            raise MappingError(
                f"exhaustive mapper limited to {self.max_nodes} nodes, "
                f"got {dfg.num_nodes}"
            )
        dfg.validate()
        check_kernel_fits(dfg, cgra)
        start = time.perf_counter()
        mii = effective_minimum_ii(dfg, cgra)
        outcome = MappingOutcome(
            success=False, dfg_name=dfg.name, cgra_name=cgra.name, minimum_ii=mii
        )
        first_ii = max(start_ii or mii, 1)
        for ii in range(first_ii, self.max_ii + 1):
            attempt = IIAttempt(ii=ii, schedule_slack=self.schedule_slack, status="UNSAT")
            outcome.attempts.append(attempt)
            solve_start = time.perf_counter()
            mapping = self._search_ii(dfg, cgra, ii, start)
            attempt.solve_time = time.perf_counter() - solve_start
            if mapping is None:
                if self._out_of_time(start):
                    attempt.status = "UNKNOWN"
                    outcome.timed_out = True
                    break
                continue
            allocation = None
            if self.run_register_allocation:
                allocation = allocate_registers(dfg, cgra, mapping)
                if not allocation.success:
                    attempt.status = "REGALLOC_FAIL"
                    continue
                mapping.apply_allocation(allocation)
            attempt.status = "SAT"
            outcome.success = True
            outcome.ii = ii
            outcome.mapping = mapping
            outcome.register_allocation = allocation
            break
        outcome.total_time = time.perf_counter() - start
        return outcome

    # ------------------------------------------------------------------
    def _search_ii(self, dfg: DFG, cgra: CGRA, ii: int, start: float) -> Mapping | None:
        """Depth-first enumeration with incremental pruning."""
        length = max(critical_path_length(dfg) + self.schedule_slack, ii)
        # Capability pruning: each node only ever visits the PEs that
        # implement its opcode's class.
        positions_for = {
            node_id: [
                (pe, flat)
                for flat in range(length)
                for pe in cgra.pes_supporting(dfg.node(node_id).opcode)
            ]
            for node_id in dfg.node_ids
        }
        node_ids = dfg.node_ids
        assignment: dict[int, tuple[int, int]] = {}
        occupied: set[tuple[int, int]] = set()

        def compatible(node_id: int, pe: int, flat: int) -> bool:
            for edge in itertools.chain(dfg.predecessors(node_id), dfg.successors(node_id)):
                other = edge.src if edge.dst == node_id else edge.dst
                if other == node_id or other not in assignment:
                    continue
                other_pe, other_flat = assignment[other]
                if edge.dst == node_id:
                    src_pe, src_flat, dst_pe, dst_flat = other_pe, other_flat, pe, flat
                else:
                    src_pe, src_flat, dst_pe, dst_flat = pe, flat, other_pe, other_flat
                if not cgra.are_neighbours(src_pe, dst_pe, include_self=True):
                    return False
                consumed = dst_flat + edge.distance * ii
                if consumed < src_flat + dfg.node(edge.src).latency:
                    return False
            return True

        # The DFS prunes on neighbourhood, timing and slot exclusivity; the
        # remaining rules (output-register survival, register pressure) are
        # only decidable on complete candidates and are checked at the leaves.
        found: list[Mapping] = []

        def search(index: int) -> bool:
            if self._out_of_time(start):
                return False
            if index == len(node_ids):
                mapping = Mapping(dfg=dfg, cgra=cgra, ii=ii)
                for nid, (pe, flat) in assignment.items():
                    mapping.place(nid, pe, flat % ii, flat // ii)
                if mapping.violations(check_overwrite=self.enforce_output_register):
                    return False
                if self.run_register_allocation and not allocate_registers(
                    dfg, cgra, mapping
                ).success:
                    return False
                found.append(mapping)
                return True
            node_id = node_ids[index]
            for pe, flat in positions_for[node_id]:
                if (pe, flat % ii) in occupied:
                    continue
                if not compatible(node_id, pe, flat):
                    continue
                assignment[node_id] = (pe, flat)
                occupied.add((pe, flat % ii))
                if search(index + 1):
                    return True
                del assignment[node_id]
                occupied.discard((pe, flat % ii))
            return False

        search(0)
        return found[0] if found else None

    def _out_of_time(self, start: float) -> bool:
        return self.timeout is not None and (time.perf_counter() - start) >= self.timeout
