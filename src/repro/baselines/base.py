"""Shared machinery of the heuristic baseline mappers.

Both RAMP-like and PathSeeker-like mappers are built on iterative modulo
scheduling (Rau's IMS) extended with placement, the algorithmic family every
modern CGRA heuristic mapper descends from: nodes are scheduled in priority
order into a modulo reservation table; a node that cannot be scheduled in its
II-wide window is *force-placed* and the conflicting nodes are evicted and
rescheduled, within an operation budget.  If the budget runs out the II is
increased.

This module holds that scheduling engine and the common iterative-II driver;
the concrete baselines only decide how priorities are produced, how ties are
broken and how many retries each II receives.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

import networkx as nx

from repro.cgra.architecture import CGRA
from repro.cgra.capabilities import check_kernel_fits, effective_minimum_ii
from repro.core.mapper import IIAttempt, MappingOutcome
from repro.core.mapping import Mapping
from repro.core.regalloc import allocate_registers
from repro.dfg.graph import DFG
from repro.exceptions import ReproError


@dataclass(frozen=True)
class BaselineConfig:
    """Knobs shared by the heuristic mappers."""

    max_ii: int = 50
    timeout: float | None = None
    #: Number of scheduling attempts (distinct priority orders / seeds) per II.
    attempts_per_ii: int = 8
    #: Scheduling-operation budget per attempt, as a multiple of the node
    #: count (Rau's IMS uses a comparable budget).
    budget_factor: int = 12
    #: Enforce the output-register survival rule while placing.  Default off:
    #: like the SAT mapper's default model, a consumer reads the producer's
    #: register file and register allocation accounts for the liveness.
    enforce_output_register: bool = False
    neighbour_register_file_access: bool = True
    run_register_allocation: bool = True
    random_seed: int | None = 0
    verbose: bool = False


class HeuristicMapper:
    """Base class implementing the iterative-II scheduling loop."""

    name = "heuristic"

    def __init__(self, config: BaselineConfig | None = None) -> None:
        self.config = config or BaselineConfig()

    # ------------------------------------------------------------------
    # Interface shared with SatMapItMapper
    # ------------------------------------------------------------------
    def map(self, dfg: DFG, cgra: CGRA, start_ii: int | None = None) -> MappingOutcome:
        """Iteratively search for the smallest II the heuristic can realise."""
        config = self.config
        dfg.validate()
        check_kernel_fits(dfg, cgra)
        start = time.perf_counter()
        rng = random.Random(config.random_seed)
        mii = effective_minimum_ii(dfg, cgra)
        first_ii = max(start_ii or mii, 1)
        outcome = MappingOutcome(
            success=False, dfg_name=dfg.name, cgra_name=cgra.name, minimum_ii=mii
        )

        for ii in range(first_ii, config.max_ii + 1):
            if self._out_of_time(start):
                outcome.timed_out = True
                break
            attempt = IIAttempt(ii=ii, schedule_slack=0, status="UNSAT")
            outcome.attempts.append(attempt)
            solve_start = time.perf_counter()
            mapping = self._try_ii(dfg, cgra, ii, rng, start)
            attempt.solve_time = time.perf_counter() - solve_start
            if mapping is None:
                if self._out_of_time(start):
                    attempt.status = "UNKNOWN"
                    outcome.timed_out = True
                    break
                continue
            allocation = None
            if config.run_register_allocation:
                allocation = allocate_registers(
                    dfg, cgra, mapping, config.neighbour_register_file_access
                )
                if not allocation.success:
                    attempt.status = "REGALLOC_FAIL"
                    continue
                mapping.apply_allocation(allocation)
            if not self._validated(mapping, allocation):
                # The SAT path refuses to report a mapping its legality
                # oracle rejects; the heuristics get the same discipline —
                # an ejection-scheduler bug must surface as a failed II,
                # never as a reported "success" that does not execute.
                attempt.status = "INVALID"
                continue
            attempt.status = "SAT"
            outcome.success = True
            outcome.ii = ii
            outcome.mapping = mapping
            outcome.register_allocation = allocation
            break

        outcome.total_time = time.perf_counter() - start
        return outcome

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def _priorities(self, dfg: DFG, ii: int, attempt: int,
                    rng: random.Random) -> dict[int, float]:
        """Node priorities (higher = scheduled earlier) for one attempt."""
        raise NotImplementedError

    def _try_ii(
        self, dfg: DFG, cgra: CGRA, ii: int, rng: random.Random, start: float
    ) -> Mapping | None:
        for attempt in range(self.config.attempts_per_ii):
            if self._out_of_time(start):
                return None
            priorities = self._priorities(dfg, ii, attempt, rng)
            mapping = modulo_schedule_with_ejection(
                dfg,
                cgra,
                ii,
                priorities,
                rng,
                budget_factor=self.config.budget_factor,
                enforce_output_register=self.config.enforce_output_register,
            )
            if mapping is not None:
                return mapping
        return None

    def _out_of_time(self, start: float) -> bool:
        timeout = self.config.timeout
        return timeout is not None and (time.perf_counter() - start) >= timeout

    def _validated(self, mapping: Mapping, allocation) -> bool:
        """Legality-oracle check a candidate result must pass to be reported.

        Structural rules first (the same ``violations()`` oracle the SAT
        path raises on), then two simulated iterations against the
        reference interpreter — the end-to-end evidence the test-suite
        holds SAT mappings to.  The simulation leg needs the register
        allocation to be meaningful: without one the machine model keeps a
        single virtual register per producer, so any value living longer
        than one II self-overwrites — a lifetime the real flow's register
        allocation handles fine — and the oracle would reject mappings the
        SAT reference accepts.  Allocation-free runs get the structural
        check only.
        """
        from repro.simulator import CGRASimulator

        if mapping.violations(
            check_overwrite=self.config.enforce_output_register
        ):
            return False
        if allocation is None:
            return True
        try:
            simulation = CGRASimulator(
                mapping,
                allocation,
                neighbour_register_file_access=(
                    self.config.neighbour_register_file_access
                ),
            ).run(2)
        except ReproError:
            return False
        return simulation.success


# ----------------------------------------------------------------------
# Priority functions
# ----------------------------------------------------------------------
def node_heights(dfg: DFG) -> dict[int, int]:
    """Height (longest forward path to any sink) of every node."""
    graph = nx.DiGraph()
    graph.add_nodes_from(dfg.node_ids)
    graph.add_edges_from((e.src, e.dst) for e in dfg.forward_edges())
    heights: dict[int, int] = {}
    for node_id in reversed(list(nx.topological_sort(graph))):
        successors = list(graph.successors(node_id))
        if not successors:
            heights[node_id] = 0
        else:
            heights[node_id] = 1 + max(heights[s] for s in successors)
    return heights


def height_priority_order(dfg: DFG) -> list[int]:
    """Deterministic list-scheduling order: tallest nodes first."""
    heights = node_heights(dfg)
    return sorted(dfg.node_ids, key=lambda n: (-heights[n], n))


def height_priorities(dfg: DFG) -> dict[int, float]:
    """Height-based priorities (the classic IMS priority function)."""
    return {node: float(height) for node, height in node_heights(dfg).items()}


# ----------------------------------------------------------------------
# Iterative modulo scheduling with ejection (Rau-style IMS + placement)
# ----------------------------------------------------------------------
def modulo_schedule_with_ejection(
    dfg: DFG,
    cgra: CGRA,
    ii: int,
    priorities: dict[int, float],
    rng: random.Random,
    budget_factor: int = 12,
    enforce_output_register: bool = False,
) -> Mapping | None:
    """One IMS pass: schedule + place all nodes, ejecting on conflicts.

    Returns a legal :class:`Mapping` or ``None`` when the operation budget is
    exhausted before every node is scheduled.
    """
    mapping, _leftover = modulo_schedule_with_diagnostics(
        dfg, cgra, ii, priorities, rng,
        budget_factor=budget_factor,
        enforce_output_register=enforce_output_register,
    )
    return mapping


def modulo_schedule_with_diagnostics(
    dfg: DFG,
    cgra: CGRA,
    ii: int,
    priorities: dict[int, float],
    rng: random.Random,
    budget_factor: int = 12,
    enforce_output_register: bool = False,
) -> tuple[Mapping | None, set[int]]:
    """IMS pass that also reports which nodes were left unscheduled.

    The second element of the result is the set of nodes still unscheduled
    when the budget ran out (empty on success); PathSeeker uses it for its
    failure-driven priority adjustment.
    """
    budget = max(budget_factor * dfg.num_nodes, 4 * dfg.num_nodes)
    unscheduled = set(dfg.node_ids)
    flat_times: dict[int, int] = {}
    pes: dict[int, int] = {}
    slots: dict[tuple[int, int], int] = {}
    #: Last time a node was force-placed (Rau's progress guarantee).
    previous_time: dict[int, int] = {}
    operations = 0

    while unscheduled and operations < budget:
        operations += 1
        node_id = max(unscheduled, key=lambda n: (priorities.get(n, 0.0), -n))
        unscheduled.discard(node_id)

        earliest = _earliest_start(dfg, ii, node_id, flat_times)
        if node_id in previous_time:
            earliest = max(earliest, previous_time[node_id] + 1)

        placed = _try_window(
            dfg, cgra, ii, node_id, earliest, flat_times, pes, slots, rng,
            enforce_output_register,
        )
        if placed:
            continue

        # Force placement at the earliest slot and eject whatever conflicts.
        forced_time = earliest
        previous_time[node_id] = forced_time
        forced_pe = _choose_forced_pe(dfg, cgra, node_id, pes, slots, forced_time % ii, rng)
        _evict_conflicts(
            dfg, cgra, ii, node_id, forced_pe, forced_time, flat_times, pes, slots,
            unscheduled, enforce_output_register,
        )
        flat_times[node_id] = forced_time
        pes[node_id] = forced_pe
        slots[(forced_pe, forced_time % ii)] = node_id

    if unscheduled:
        return None, set(unscheduled)

    mapping = Mapping(dfg=dfg, cgra=cgra, ii=ii)
    for node_id, flat in flat_times.items():
        mapping.place(node_id, pes[node_id], flat % ii, flat // ii)
    if mapping.violations(check_overwrite=enforce_output_register):
        return None, set(dfg.node_ids)
    return mapping, set()


def _earliest_start(
    dfg: DFG, ii: int, node_id: int, flat_times: dict[int, int]
) -> int:
    earliest = 0
    for edge in dfg.predecessors(node_id):
        if edge.src in flat_times:
            earliest = max(
                earliest,
                flat_times[edge.src] + dfg.node(edge.src).latency - edge.distance * ii,
            )
    return max(earliest, 0)


def _transfer_ok(
    dfg: DFG,
    cgra: CGRA,
    ii: int,
    src: int,
    src_pe: int,
    src_flat: int,
    dst: int,
    dst_pe: int,
    dst_flat: int,
    distance: int,
    slots: dict[tuple[int, int], int],
    enforce_output_register: bool,
) -> bool:
    """Whether one dependency is satisfied by the two tentative placements."""
    if not cgra.are_neighbours(src_pe, dst_pe, include_self=True):
        return False
    consumed = dst_flat + distance * ii
    if consumed < src_flat + dfg.node(src).latency:
        return False
    if enforce_output_register and src_pe != dst_pe:
        if consumed - src_flat > ii:
            return False
        for intermediate in range(src_flat + 1, consumed):
            occupant = slots.get((src_pe, intermediate % ii))
            if occupant is not None and occupant != src:
                return False
    return True


def _partner_violations(
    dfg: DFG,
    cgra: CGRA,
    ii: int,
    node_id: int,
    pe: int,
    flat: int,
    flat_times: dict[int, int],
    pes: dict[int, int],
    slots: dict[tuple[int, int], int],
    enforce_output_register: bool,
) -> list[int]:
    """Scheduled partners whose dependency with ``node_id`` would be violated."""
    violations: list[int] = []
    for edge in dfg.predecessors(node_id):
        if edge.src in flat_times and not _transfer_ok(
            dfg, cgra, ii, edge.src, pes[edge.src], flat_times[edge.src],
            node_id, pe, flat, edge.distance, slots, enforce_output_register,
        ):
            violations.append(edge.src)
    for edge in dfg.successors(node_id):
        if edge.dst in flat_times and not _transfer_ok(
            dfg, cgra, ii, node_id, pe, flat,
            edge.dst, pes[edge.dst], flat_times[edge.dst], edge.distance, slots,
            enforce_output_register,
        ):
            violations.append(edge.dst)
    return violations


def _try_window(
    dfg: DFG,
    cgra: CGRA,
    ii: int,
    node_id: int,
    earliest: int,
    flat_times: dict[int, int],
    pes: dict[int, int],
    slots: dict[tuple[int, int], int],
    rng: random.Random,
    enforce_output_register: bool,
) -> bool:
    """Try to place ``node_id`` inside its II-wide window without ejections."""
    candidate_pes = _candidate_pes(dfg, cgra, node_id, pes, rng)
    for flat in range(earliest, earliest + ii):
        cycle = flat % ii
        for pe in candidate_pes:
            if (pe, cycle) in slots:
                continue
            if _partner_violations(
                dfg, cgra, ii, node_id, pe, flat, flat_times, pes, slots,
                enforce_output_register,
            ):
                continue
            flat_times[node_id] = flat
            pes[node_id] = pe
            slots[(pe, cycle)] = node_id
            return True
    return False


def _candidate_pes(
    dfg: DFG, cgra: CGRA, node_id: int, pes: dict[int, int], rng: random.Random
) -> list[int]:
    """Capable PE candidates ordered by affinity to already-placed partners.

    Only PEs implementing the node's op class are ever considered, so the
    heuristics obey the same capability rules as the SAT encoder and the
    comparison between mappers stays fair on heterogeneous fabrics.
    """
    partner_pes = [
        pes[edge.src] for edge in dfg.predecessors(node_id) if edge.src in pes
    ] + [
        pes[edge.dst] for edge in dfg.successors(node_id) if edge.dst in pes
    ]
    candidates = list(cgra.pes_supporting(dfg.node(node_id).opcode))
    rng.shuffle(candidates)
    if not partner_pes:
        return candidates

    def affinity(pe: int) -> int:
        return sum(0 if cgra.are_neighbours(partner, pe) else cgra.distance(partner, pe)
                   for partner in partner_pes)

    candidates.sort(key=affinity)
    return candidates


def _choose_forced_pe(
    dfg: DFG,
    cgra: CGRA,
    node_id: int,
    pes: dict[int, int],
    slots: dict[tuple[int, int], int],
    cycle: int,
    rng: random.Random,
) -> int:
    """PE used for a forced placement: close to partners, low eviction cost."""
    candidates = _candidate_pes(dfg, cgra, node_id, pes, rng)

    def cost(pe: int) -> int:
        return 1 if (pe, cycle) in slots else 0

    return min(candidates, key=cost)


def _evict_conflicts(
    dfg: DFG,
    cgra: CGRA,
    ii: int,
    node_id: int,
    pe: int,
    flat: int,
    flat_times: dict[int, int],
    pes: dict[int, int],
    slots: dict[tuple[int, int], int],
    unscheduled: set[int],
    enforce_output_register: bool,
) -> None:
    """Remove the slot occupant and every partner violated by the forced node."""
    occupant = slots.get((pe, flat % ii))
    victims = set()
    if occupant is not None and occupant != node_id:
        victims.add(occupant)
    victims.update(
        _partner_violations(
            dfg, cgra, ii, node_id, pe, flat, flat_times, pes, slots,
            enforce_output_register,
        )
    )
    for victim in victims:
        if victim == node_id or victim not in flat_times:
            continue
        del slots[(pes[victim], flat_times[victim] % ii)]
        del flat_times[victim]
        del pes[victim]
        unscheduled.add(victim)
