"""RAMP-style baseline: resource-aware iterative modulo scheduling.

RAMP (Dave et al., DAC 2018) refines REGIMap by explicitly modelling a set of
routing/placement strategies and picking the best one per loop.  Without
reproducing its clique machinery, the defining behaviour kept here is:

* deterministic, height-driven scheduling priority (the classic IMS priority),
* a small portfolio of priority strategies tried in a fixed order for every
  candidate II (fan-out aware, program-order aware, recurrence aware),
* failure means "increase the II", exactly like the original.
"""

from __future__ import annotations

import random

from repro.baselines.base import BaselineConfig, HeuristicMapper, height_priorities
from repro.dfg.analysis import asap_schedule
from repro.dfg.graph import DFG


class RampMapper(HeuristicMapper):
    """Deterministic resource-aware heuristic in the spirit of RAMP."""

    name = "RAMP"

    def __init__(self, config: BaselineConfig | None = None) -> None:
        super().__init__(config or BaselineConfig(attempts_per_ii=6, random_seed=7))

    def _priorities(
        self, dfg: DFG, ii: int, attempt: int, rng: random.Random
    ) -> dict[int, float]:
        """Deterministic priority portfolio (one strategy per attempt).

        Strategy 0: pure height (critical chains first).
        Strategy 1: height with fan-out emphasis (high-degree producers first,
        RAMP's resource-awareness).
        Strategy 2: recurrence emphasis — nodes on loop-carried cycles first.
        Strategy 3: reverse program order (late consumers first).
        Further attempts apply small deterministic rotations of the height
        priorities, emulating RAMP's exploration of alternative strategies.
        """
        heights = height_priorities(dfg)
        if attempt == 0:
            return heights
        if attempt == 1:
            fanout = {n: len(dfg.successors(n)) for n in dfg.node_ids}
            return {n: heights[n] + 0.3 * fanout[n] for n in dfg.node_ids}
        if attempt == 2:
            on_cycle = {edge.src for edge in dfg.back_edges()} | {
                edge.dst for edge in dfg.back_edges()
            }
            return {
                n: heights[n] + (dfg.num_nodes if n in on_cycle else 0)
                for n in dfg.node_ids
            }
        if attempt == 3:
            asap = asap_schedule(dfg)
            return {n: float(asap[n]) for n in dfg.node_ids}
        # Deterministic perturbation for the remaining strategies.
        return {
            n: heights[n] + ((n * (attempt + 3)) % 7) * 0.1 for n in dfg.node_ids
        }
