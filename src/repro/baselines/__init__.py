"""Heuristic baseline mappers.

The paper compares SAT-MapIt against RAMP (Dave et al., DAC 2018) and
PathSeeker (Balasubramanian & Shrivastava, DATE 2022), using the authors'
binaries.  Those binaries are not redistributable, so this package
re-implements the two algorithmic families on top of the same DFG / CGRA /
Mapping substrate:

* :class:`~repro.baselines.ramp.RampMapper` — deterministic iterative modulo
  scheduling with height-based priorities, resource-aware placement and a
  small set of retry strategies per II.
* :class:`~repro.baselines.pathseeker.PathSeekerMapper` — randomised iterative
  modulo scheduling with failure-driven local adjustments and multiple
  restarts per II.
* :class:`~repro.baselines.exhaustive.ExhaustiveMapper` — brute-force oracle
  for tiny instances, used by the test-suite to certify optimal IIs.

All mappers share the interface of
:class:`repro.core.mapper.SatMapItMapper` (``map(dfg, cgra) ->
MappingOutcome``) and produce mappings that are checked by the same legality
rules, so the comparison in the experiment harness is apples-to-apples.
"""

from dataclasses import replace

from repro.baselines.base import BaselineConfig, HeuristicMapper
from repro.baselines.exhaustive import ExhaustiveMapper
from repro.baselines.pathseeker import PathSeekerMapper
from repro.baselines.ramp import RampMapper

#: Heuristic mappers usable as budgeted pre-passes (II-seeding, quick
#: feasibility probes).  The exhaustive oracle is deliberately absent: it
#: has no meaningful behaviour under a wall budget.
HEURISTIC_MAPPERS: dict[str, type[HeuristicMapper]] = {
    "ramp": RampMapper,
    "pathseeker": PathSeekerMapper,
}


def run_budgeted(name, dfg, cgra, *, time_budget, start_ii=None, **overrides):
    """Run one heuristic mapper under a hard wall-clock budget.

    ``name`` picks a mapper from :data:`HEURISTIC_MAPPERS`; the mapper keeps
    its class-default tuning (attempts per II, random seed) and only the
    budget plus any explicit ``BaselineConfig`` ``overrides`` are replaced.
    This is the entry point the II-seeding layer (:mod:`repro.search.seed`)
    drives, and the shape a service-side quick-probe endpoint would call.
    """
    try:
        mapper_cls = HEURISTIC_MAPPERS[name]
    except KeyError:
        raise ValueError(
            f"unknown heuristic mapper {name!r}; "
            f"available: {sorted(HEURISTIC_MAPPERS)}"
        ) from None
    base = mapper_cls().config
    config = replace(base, timeout=time_budget, **overrides)
    return mapper_cls(config).map(dfg, cgra, start_ii=start_ii)


__all__ = [
    "BaselineConfig",
    "HeuristicMapper",
    "HEURISTIC_MAPPERS",
    "RampMapper",
    "PathSeekerMapper",
    "ExhaustiveMapper",
    "run_budgeted",
]
