"""Heuristic baseline mappers.

The paper compares SAT-MapIt against RAMP (Dave et al., DAC 2018) and
PathSeeker (Balasubramanian & Shrivastava, DATE 2022), using the authors'
binaries.  Those binaries are not redistributable, so this package
re-implements the two algorithmic families on top of the same DFG / CGRA /
Mapping substrate:

* :class:`~repro.baselines.ramp.RampMapper` — deterministic iterative modulo
  scheduling with height-based priorities, resource-aware placement and a
  small set of retry strategies per II.
* :class:`~repro.baselines.pathseeker.PathSeekerMapper` — randomised iterative
  modulo scheduling with failure-driven local adjustments and multiple
  restarts per II.
* :class:`~repro.baselines.exhaustive.ExhaustiveMapper` — brute-force oracle
  for tiny instances, used by the test-suite to certify optimal IIs.

All mappers share the interface of
:class:`repro.core.mapper.SatMapItMapper` (``map(dfg, cgra) ->
MappingOutcome``) and produce mappings that are checked by the same legality
rules, so the comparison in the experiment harness is apples-to-apples.
"""

from repro.baselines.base import BaselineConfig, HeuristicMapper
from repro.baselines.exhaustive import ExhaustiveMapper
from repro.baselines.pathseeker import PathSeekerMapper
from repro.baselines.ramp import RampMapper

__all__ = [
    "BaselineConfig",
    "HeuristicMapper",
    "RampMapper",
    "PathSeekerMapper",
    "ExhaustiveMapper",
]
