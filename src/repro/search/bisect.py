"""Bisection search over the II with UNSAT answers as lower bounds.

Modulo-scheduling feasibility is monotone in the II for decisive attempts:
a larger II only relaxes the resource and timing constraints, so an UNSAT
answer at II = k rules out every II <= k and a SAT answer at II = k bounds
the optimum from above.  The strategy exploits both directions:

1. **Gallop** upward from the first candidate with exponentially growing
   gaps (+1, +2, +4, ...) until an II maps (clamping the last probe to the
   II cap, so total failure is still a proof over the whole range).
2. **Binary-search** the open interval between the last failure and the
   found upper bound, keeping the lowest mapping seen.

When the gap between the minimum II and the achievable II is wide (tiny
fabrics, congested kernels), this attempts O(log gap) instances instead of
the ladder's O(gap).  Skipping is only sound against *proofs*: a
conflict- or time-bounded attempt that ends inconclusively rules out
nothing below it, so the first non-decisive failure drops the search into
a sequential (ladder-style) sweep of the not-yet-ruled-out range, skipping
only IIs already attempted.  On decisive runs (the perf suite, the CI
equivalence gate) that fallback never triggers and the answer is identical
to the ladder's.

One persistent backend serves all probes in incremental mode: attempts are
selector-guarded constraint groups, so probing out of ladder order is sound
(retiring a group is an assumption flip, independent of II ordering).

With a heuristic seed (``MapperConfig.seed_heuristic``), phase 1 vanishes:
the seed mapping is already a validated upper bound, so the binary search
starts on ``[first_ii, seed.ii - 1]`` and the seed is the fallback answer
when the whole interval is refuted or the clock runs out.
"""

from __future__ import annotations

from repro.search.base import SearchContext, SearchResult, SearchStrategy


class BisectionStrategy(SearchStrategy):
    """Gallop to a feasible II, then binary-search down to the optimum."""

    name = "bisect"

    def search(self, ctx: SearchContext) -> SearchResult | None:
        """Bisect the II range using UNSAT answers as lower bounds."""
        backend = ctx.make_backend()
        best: SearchResult | None = None
        visited: set[int] = set()
        lo = ctx.first_ii  # lowest II not yet ruled out
        if lo > ctx.max_ii:
            return None

        if ctx.seed is not None:
            # A heuristic seed *is* the feasible upper bound the gallop
            # exists to discover: skip phase 1 entirely and binary-search
            # [first_ii, seed.ii - 1] directly.  A seed at the first
            # candidate is provably optimal (the MII bounds from below).
            if ctx.seed.ii <= lo:
                return ctx.seed
            best = ctx.seed
            hi = min(ctx.max_ii, ctx.seed.ii - 1)
        else:
            # Phase 1: gallop for a feasible upper bound.
            gap = 1
            probe = lo
            hi = ctx.max_ii
            while best is None:
                if ctx.out_of_time():
                    ctx.outcome.timed_out = True
                    return None
                probe = min(probe, ctx.max_ii)
                found = ctx.attempt(probe, backend)
                visited.add(probe)
                if found is not None:
                    best = found
                    hi = probe - 1
                    break
                if ctx.outcome.timed_out:
                    return None
                if not ctx.attempt_was_decisive(probe):
                    # An inconclusive (bounded) failure proves nothing about
                    # the IIs below the probe — skipping from here would be
                    # unsound.
                    return self._sequential_tail(
                        ctx, backend, lo, ctx.max_ii, visited, None
                    )
                lo = probe + 1
                if probe >= ctx.max_ii:
                    return None  # every II up to the cap is refuted
                probe = probe + gap  # gaps +1, +2, +4, ... as documented
                gap *= 2

        # Phase 2: binary search in [lo, hi] below the found bound.
        while lo <= hi:
            if ctx.out_of_time():
                ctx.outcome.timed_out = True
                return best
            mid = (lo + hi) // 2
            found = ctx.attempt(mid, backend)
            visited.add(mid)
            if found is not None:
                best = found
                hi = mid - 1
            else:
                if ctx.outcome.timed_out:
                    return best
                if not ctx.attempt_was_decisive(mid):
                    return self._sequential_tail(
                        ctx, backend, lo, hi, visited, best
                    )
                lo = mid + 1
        return best

    @staticmethod
    def _sequential_tail(
        ctx: SearchContext,
        backend,
        lo: int,
        hi: int,
        visited: set[int],
        best: SearchResult | None,
    ) -> SearchResult | None:
        """Ladder-style sweep of ``[lo, hi]`` once skipping became unsound.

        Visits every not-yet-attempted II in ascending order; the first
        success is minimal among the unruled candidates (everything below
        ``lo`` was decisively refuted, everything already visited failed),
        falling back to the ``best`` upper bound found before the switch.
        """
        for ii in range(lo, hi + 1):
            if ii in visited:
                continue
            if ctx.out_of_time():
                ctx.outcome.timed_out = True
                return best
            found = ctx.attempt(ii, backend)
            if found is not None:
                return found
            if ctx.outcome.timed_out:
                return best
        return best
