"""II-search orchestration layer (strategies + persistent mapping cache).

The SAT-MapIt mapping problem is solved as a ladder of SAT instances, one
candidate initiation interval at a time.  *How* that ladder is walked is a
policy decision independent of how a single (II, slack) attempt is encoded
and solved, so this package factors it out of the mapper:

* :class:`repro.search.base.SearchStrategy` — the policy interface; the
  mapper delegates its II search to a strategy and keeps doing everything
  else (encoding, solving, register allocation, stats) itself.
* :class:`repro.search.ladder.LadderStrategy` — the paper's sequential
  climb (the default, behaviour-identical to the pre-refactor loop).
* :class:`repro.search.bisect.BisectionStrategy` — gallop for a feasible
  upper bound, then binary-search the gap using UNSAT answers as lower
  bounds.
* :class:`repro.search.portfolio.PortfolioStrategy` — a process-based
  parallel portfolio that races several IIs and/or solver configurations
  and cancels the losers on the first win at the frontier II.
* :class:`repro.search.cache.MappingCache` — a persistent, content-addressed
  result cache keyed by (DFG, CGRA spec, mapper configuration, solver
  version).
* :mod:`repro.search.seed` — a budgeted heuristic pre-pass (RAMP /
  PathSeeker) whose validated mapping becomes a feasible upper bound every
  strategy exploits, and the anytime answer on timeout.
* :class:`repro.search.tuner.LaneTuner` — a persistent per-problem-class
  statistics store the portfolio consults to pick its lane line-up and
  probe budgets, learning from every settled race.

Strategies are selected by name through ``MapperConfig.search`` / the CLI's
``--search`` flag; new ones plug in via :func:`register_strategy`.
"""

from __future__ import annotations

from repro.search.base import (
    SearchContext,
    SearchResult,
    SearchStrategy,
    available_strategies,
    create_strategy,
    register_strategy,
)
from repro.search.bisect import BisectionStrategy
from repro.search.cache import CacheStats, MappingCache, cache_key
from repro.search.ladder import LadderStrategy
from repro.search.portfolio import (
    PORTFOLIO_VARIANTS,
    PortfolioStrategy,
)
from repro.search.seed import SeedResult, run_seed
from repro.search.tuner import LaneTuner, TunerStats, tuner_key

register_strategy("ladder", LadderStrategy)
register_strategy("bisect", BisectionStrategy)
register_strategy("portfolio", PortfolioStrategy)

__all__ = [
    "BisectionStrategy",
    "CacheStats",
    "LadderStrategy",
    "LaneTuner",
    "MappingCache",
    "PORTFOLIO_VARIANTS",
    "PortfolioStrategy",
    "SearchContext",
    "SearchResult",
    "SearchStrategy",
    "SeedResult",
    "TunerStats",
    "available_strategies",
    "cache_key",
    "create_strategy",
    "register_strategy",
    "run_seed",
    "tuner_key",
]
