"""Persistent, content-addressed mapping cache.

``repro map`` / ``repro sweep`` re-solve identical mapping problems from
scratch on every invocation; at service scale the same (kernel, fabric,
configuration) triple arrives over and over.  This module memoises
successful mapping runs on disk:

* **Key** — the SHA-256 of a canonical JSON rendering of the DFG, the CGRA
  spec, the *semantic* mapper-configuration fields, the starting II and the
  solver-core version (:data:`repro.sat.solver.SOLVER_VERSION`).  Execution
  details that cannot change which mapping is found — timeouts, verbosity,
  the search strategy, worker counts, the cache directory itself — are
  excluded, so a portfolio run primes the cache for a later ladder run of
  the same problem.  Bumping the solver version changes every key, which
  is how stale results from an older engine are invalidated wholesale.
* **Entry** — one ``<key>.json`` file under the cache directory holding the
  achieved II and the full mapping (placements plus register assignment),
  written atomically *and durably* (temp file, fsync, rename, directory
  fsync) so concurrent sweep workers can share a directory and a served
  entry survives power loss — a resumed sweep treats cache hits as settled
  work it will never redo.
* **Recovery** — unreadable or tampered entries are deleted on lookup and
  counted (``corrupted`` / ``invalidated``) rather than raised; a cache can
  never make a mapping run fail, only skip work.

Only *successful* runs are cached: a failure is relative to the run's
budgets (timeout, II cap), which the key deliberately ignores.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import re
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.mapping import Mapping
from repro.sat.solver import SOLVER_VERSION

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.cgra.architecture import CGRA
    from repro.core.mapper import MapperConfig, MappingOutcome
    from repro.dfg.graph import DFG

#: Entry-format tag; bumping it invalidates every existing entry.
SCHEMA = "satmapit-mapcache/1"

#: Shape of a legal cache namespace (tenant id): one path component, no
#: separators or traversal, bounded length.
_NAMESPACE_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def resolve_cache_dir(
    cache_dir: str | os.PathLike, namespace: str | None = None
) -> Path:
    """The directory a (possibly namespaced) cache handle lives in.

    A namespace (the service's tenant id) selects one subdirectory of the
    cache root; its alphabet is restricted so request-supplied tenant
    strings can never traverse outside the root (``..``, separators and
    dotfile prefixes all fail the pattern).
    """
    root = Path(cache_dir)
    if namespace is None:
        return root
    if not _NAMESPACE_RE.match(namespace):
        raise ValueError(
            f"illegal cache namespace {namespace!r}: must match "
            f"{_NAMESPACE_RE.pattern}"
        )
    return root / namespace


#: Minimum age (seconds since mtime) before an atomic-write temp file is
#: considered crash-orphaned and swept.  Generous compared to the
#: milliseconds a live writer holds one open, so the sweep can never race
#: an in-progress ``store()`` in another process.
STALE_TEMP_AGE = 300.0

#: MapperConfig fields that determine *which* mapping a run can produce.
#: Everything else (timeout, attempt_time_limit, verbose, search,
#: search_jobs, portfolio_variants, cache_dir, cache_max_mb, the
#: heuristic-seeding knobs and tuner_dir) only affects how fast or whether
#: the run finishes within budget, never the II of a completed run, and is
#: deliberately excluded from the key — a seeded portfolio run primes the
#: cache for a later unseeded ladder run of the same problem.
SEMANTIC_CONFIG_FIELDS: tuple[str, ...] = (
    "max_ii",
    "schedule_slack",
    "max_extra_slack",
    "slack_conflict_limit",
    "regalloc_retries",
    "amo_encoding",
    "amo_probe_conflicts",
    "backend",
    "preprocess",
    "incremental",
    "max_iteration_span",
    "enforce_output_register",
    "symmetry_breaking",
    "neighbour_register_file_access",
    "run_register_allocation",
    "solver_conflict_limit",
    "random_seed",
    # Partition-and-stitch sub-solves restrict nodes to fabric regions; a
    # domain-restricted problem must never collide with the unrestricted one
    # (or a different restriction of it) in the cache.
    "placement_domains",
)


@dataclass
class CacheStats:
    """Counters for one cache handle (reported per mapping run / sweep)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Entries discarded because their schema / solver version / key did not
    #: match what their filename promised (manual copies, version skew).
    invalidated: int = 0
    #: Entries deleted because they could not be parsed or decoded into a
    #: legal mapping.
    corrupted: int = 0
    #: Entries pruned (oldest first) to keep the directory inside its size
    #: budget (``MappingCache(max_mb=...)``).
    evicted: int = 0
    #: Crash-orphaned atomic-write temp files (``*.tmp``) swept from the
    #: cache directory.  A writer that dies between ``NamedTemporaryFile``
    #: and ``os.replace`` leaves its temp file behind; without the sweep
    #: those orphans accumulate unboundedly and are invisible to the size
    #: budget.  Only temps older than :data:`STALE_TEMP_AGE` are touched,
    #: so a live concurrent writer is never raced.
    temp_files_swept: int = 0

    def summary(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.writes} write(s), {self.invalidated} invalidated, "
            f"{self.corrupted} corrupted, {self.evicted} evicted, "
            f"{self.temp_files_swept} stale temp(s) swept"
        )


@dataclass
class CacheHit:
    """A successfully recovered cache entry."""

    key: str
    ii: int
    minimum_ii: int
    mapping: Mapping
    entry: dict


def config_fingerprint(config: "MapperConfig") -> dict:
    """The semantic slice of a mapper configuration, as plain data."""
    fingerprint: dict = {}
    for name in SEMANTIC_CONFIG_FIELDS:
        value = getattr(config, name, None)
        if isinstance(value, enum.Enum):
            value = value.value
        fingerprint[name] = value
    return fingerprint


def cache_key(
    dfg: "DFG",
    cgra: "CGRA",
    config: "MapperConfig",
    start_ii: int | None = None,
    solver_version: str = SOLVER_VERSION,
) -> str:
    """Canonical content hash of one mapping problem."""
    payload = {
        "schema": SCHEMA,
        "solver_version": solver_version,
        "dfg": dfg.to_dict(),
        "cgra": cgra.to_spec(),
        "config": config_fingerprint(config),
        "start_ii": start_ii,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class MappingCache:
    """Disk-backed mapping memo, one JSON file per cache key."""

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        solver_version: str = SOLVER_VERSION,
        max_mb: float | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.solver_version = solver_version
        #: Directory size budget in bytes; ``None`` leaves growth unbounded.
        self.max_bytes = None if max_mb is None else int(max_mb * 1024 * 1024)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def key(
        self,
        dfg: "DFG",
        cgra: "CGRA",
        config: "MapperConfig",
        start_ii: int | None = None,
    ) -> str:
        return cache_key(
            dfg, cgra, config, start_ii=start_ii,
            solver_version=self.solver_version,
        )

    def path_for(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    # ------------------------------------------------------------------
    def lookup(
        self,
        dfg: "DFG",
        cgra: "CGRA",
        config: "MapperConfig",
        start_ii: int | None = None,
    ) -> CacheHit | None:
        """Recover a cached result, or ``None`` (recording a miss)."""
        return self.lookup_key(self.key(dfg, cgra, config, start_ii))

    def lookup_key(self, key: str) -> CacheHit | None:
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self._discard(path, corrupted=True)
            return None
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            self._discard(path, corrupted=True)
            return None
        if not isinstance(entry, dict) or (
            entry.get("schema") != SCHEMA
            or entry.get("solver_version") != self.solver_version
            or entry.get("key") != key
        ):
            self._discard(path, corrupted=False)
            return None
        try:
            mapping = Mapping.from_dict(entry["mapping"])
            ii = int(entry["ii"])
            minimum_ii = int(entry.get("minimum_ii", 1))
        except Exception:
            self._discard(path, corrupted=True)
            return None
        if mapping.ii != ii or mapping.violations():
            # A tampered or bit-rotted mapping must never be served.
            self._discard(path, corrupted=True)
            return None
        self.stats.hits += 1
        return CacheHit(
            key=key, ii=ii, minimum_ii=minimum_ii, mapping=mapping, entry=entry
        )

    def _discard(self, path: Path, corrupted: bool) -> None:
        """Drop a bad entry (recovery path) and record why."""
        if corrupted:
            self.stats.corrupted += 1
        else:
            self.stats.invalidated += 1
        self.stats.misses += 1
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone / unwritable dir
            pass

    # ------------------------------------------------------------------
    def store(
        self,
        key: str,
        outcome: "MappingOutcome",
    ) -> Path | None:
        """Persist a successful outcome under ``key`` (atomic write)."""
        if not outcome.success or outcome.mapping is None or outcome.ii is None:
            return None
        entry = {
            "schema": SCHEMA,
            "solver_version": self.solver_version,
            "key": key,
            "dfg_name": outcome.dfg_name,
            "cgra_name": outcome.cgra_name,
            "ii": outcome.ii,
            "minimum_ii": outcome.minimum_ii,
            "attempts": len(outcome.attempts),
            "total_time": round(outcome.total_time, 4),
            "search_strategy": outcome.search_strategy,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "mapping": outcome.mapping.to_dict(),
        }
        # UNSAT attempts below the final II are the entry's *lower-bound
        # evidence*; with proof logging on each carries the SHA-256 digest
        # of its DRAT trace (see repro.sat.drat), so a served bound remains
        # independently checkable against a retained trace.
        proof_digests = {
            str(attempt.ii): attempt.proof_digest
            for attempt in outcome.attempts
            if attempt.status == "UNSAT" and attempt.proof_digest
        }
        if proof_digests:
            entry["unsat_proof_digests"] = proof_digests
        path = self.path_for(key)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.cache_dir, suffix=".tmp", delete=False,
            encoding="utf-8",
        )
        try:
            with handle as stream:
                json.dump(entry, stream, indent=2)
                stream.write("\n")
                # Durability, not just atomicity: flush+fsync the temp file
                # before the rename (or a crash can promote an empty/partial
                # file to a valid-looking entry name), then fsync the
                # directory so the rename itself survives power loss — the
                # farm's resume path treats served cache entries as settled
                # work it will never redo.
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(handle.name, path)
            self._fsync_directory()
        except OSError:  # pragma: no cover - disk-full style failures
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            return None
        self.stats.writes += 1
        self.sweep_stale_temps()
        self._enforce_budget(keep=path)
        return path

    def _fsync_directory(self) -> None:
        """Flush the directory entry of a just-renamed file to disk.

        ``os.replace`` is atomic against concurrent readers but not against
        power loss until the containing directory is fsynced.  Best-effort:
        filesystems that refuse directory fds (or fsync on them) keep the
        old, rename-only guarantee.
        """
        try:
            fd = os.open(self.cache_dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def sweep_stale_temps(self, now: float | None = None) -> int:
        """Delete crash-orphaned atomic-write temp files; return the count.

        A ``store()`` that dies between creating its ``*.tmp`` file and the
        ``os.replace`` leaves the temp behind forever — no later lookup or
        eviction ever globs it.  Any ``*.tmp`` older than
        :data:`STALE_TEMP_AGE` is such an orphan (a live writer holds its
        temp for milliseconds); younger temps are left alone so a concurrent
        writer in another process is never raced.  Called on every
        ``store()`` and directly by long-lived holders (the service's
        telemetry loop); swept files are counted in
        ``CacheStats.temp_files_swept``.
        """
        now = time.time() if now is None else now
        swept = 0
        for path in self.cache_dir.glob("*.tmp"):
            try:
                stat = path.stat()
            except OSError:
                continue
            if now - stat.st_mtime < STALE_TEMP_AGE:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            self.stats.temp_files_swept += 1
            swept += 1
        return swept

    def directory_stats(self, now: float | None = None) -> dict:
        """Snapshot of the on-disk cache state, for telemetry endpoints.

        Returns entry count and bytes, the age span of the finished
        entries (seconds since mtime), any temp files currently present,
        and the configured budget — everything ``GET /stats`` needs
        without holding extra state in the handle.
        """
        now = time.time() if now is None else now
        entries = 0
        entry_bytes = 0
        ages: list[float] = []
        temp_files = 0
        temp_bytes = 0
        for path in self.cache_dir.glob("*"):
            try:
                stat = path.stat()
            except OSError:
                continue
            if path.suffix == ".json":
                entries += 1
                entry_bytes += stat.st_size
                ages.append(max(0.0, now - stat.st_mtime))
            elif path.suffix == ".tmp":
                temp_files += 1
                temp_bytes += stat.st_size
        return {
            "entries": entries,
            "entry_bytes": entry_bytes,
            "oldest_entry_age_s": round(max(ages), 3) if ages else None,
            "newest_entry_age_s": round(min(ages), 3) if ages else None,
            "temp_files": temp_files,
            "temp_bytes": temp_bytes,
            "max_bytes": self.max_bytes,
        }

    def _enforce_budget(self, keep: Path | None = None) -> None:
        """Prune oldest entries first until the directory fits the budget.

        The entry just written (``keep``) is exempt — a single oversized
        store must not evict itself, or a hot loop would write and delete
        the same key forever.  Temp files count against the budget too
        (they occupy the same disk; stale ones were just swept, live ones
        belong to a concurrent writer) but are never evicted here — only
        finished ``*.json`` entries are.  Races with concurrent sweep
        workers are benign: a vanished file is simply skipped.
        """
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for pattern in ("*.json", "*.tmp"):
            for path in self.cache_dir.glob(pattern):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                if pattern == "*.json":
                    entries.append((stat.st_mtime, path, stat.st_size))
                total += stat.st_size
        for _mtime, path, size in sorted(entries):
            if total <= self.max_bytes:
                return
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            self.stats.evicted += 1
            total -= size
