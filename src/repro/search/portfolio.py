"""Process-based parallel portfolio over IIs and solver configurations.

The ladder spends its wall-clock on two things: the UNSAT proofs of the
infeasible IIs below the optimum, and the final SAT attempt itself.  Both
are raced here:

* **across IIs** — one worker process per candidate II, so the proof work
  of II = k and the mapping work of II = k+1 overlap instead of queueing;
* **across configurations** — each II can additionally be raced by several
  *variants* of the solver configuration (probe-free AUTO, forced pairwise
  AMO, sequential AMO, CNF preprocessing).  Variant runtimes on a hard
  instance differ by integer factors and no single variant dominates, which
  is the classic SAT-portfolio observation; the first variant to answer
  settles the II for everyone.

Work items ``(ii, variant)`` are dispatched in II-major order onto at most
``MapperConfig.search_jobs`` worker processes.  Results are aggregated per
II, and the **frontier** (the lowest unresolved II) decides the race: a win
at the frontier II cancels every other worker and returns; a frontier
failure advances the frontier and may promote an already-finished win at a
higher II.  A win above the frontier never returns early — minimality
requires every II below it to be resolved first, exactly like the ladder.

Soundness across variants: every variant encodes the same mapping problem
(AMO encodings and CNF preprocessing preserve satisfiability), so a SAT
answer from *any* variant is a valid mapping and a decisive all-UNSAT
answer from any variant is a proof of infeasibility for the II itself.
Inconclusive failures (conflict- or time-bounded attempts) only fail the II
once every variant has failed it.  A **register-allocation** failure is
weaker still: it rejects the specific models one variant's trajectory kept
finding, not the II — so the first regalloc-blocked verdict at an II
escalates it with one extra lane under the unmodified (``default``)
configuration before the frontier may pass it, keeping the portfolio's II
aligned with the sequential ladder's even when colouring, not
satisfiability, is the binding constraint.

Each worker runs a single-II mapping through the ordinary
:class:`~repro.core.mapper.SatMapItMapper` (ladder strategy, caching off),
so per-attempt stats come back intact and are merged into the parent run's
outcome; attempts of cancelled workers die with their process and are
counted in ``MappingOutcome.portfolio_cancelled``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.sat.encodings import AMOEncoding
from repro.search.base import SearchContext, SearchResult, SearchStrategy

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.core.mapper import MapperConfig, MappingOutcome

#: Named solver-configuration variants a portfolio can race at each II.
#: Every variant preserves satisfiability of the mapping problem, so their
#: answers are interchangeable; only their runtimes differ.
PORTFOLIO_VARIANTS: dict[str, dict] = {
    # The mapper's default trajectory (AUTO encoding with the sequential
    # probe/escalation phase).
    "default": {},
    # AUTO without the probe: skips the escalation detour, which wins on
    # attempts the probe budget cannot settle.
    "no-probe": {"amo_probe_conflicts": None},
    # Forced quadratic pairwise AMO: maximal propagation per conflict.
    "pairwise": {"amo_encoding": AMOEncoding.PAIRWISE,
                 "amo_probe_conflicts": None},
    # Forced sequential-counter AMO: smallest encoding, fastest to emit.
    "sequential": {"amo_encoding": AMOEncoding.SEQUENTIAL,
                   "amo_probe_conflicts": None},
    # SatELite-style CNF simplification before solving.
    "preprocess": {"preprocess": True},
    # External-solver lanes (see repro.sat.external): the attempt is
    # exported to DIMACS and solved by a subprocess.  They are ordinary
    # lanes to the racing/cancellation machinery and the tuner; their
    # availability is validated up front by variant_overrides so a missing
    # binary fails as one clear error, not per worker.  "subprocess" is
    # the always-available bundled solver; "kissat"/"minisat" need the
    # system binary on PATH.
    "subprocess": {"backend": "subprocess"},
    "kissat": {"backend": "kissat"},
    "minisat": {"backend": "minisat"},
}

#: Default racing line-up (see ``MapperConfig.portfolio_variants``).
#: ``no-probe`` leads: a worker that owns exactly one II has no use for the
#: sequential probe/escalation two-phase — the probe exists to spare the
#: *ladder* quadratic pairwise emission on easy attempts, but the attempts
#: a portfolio is bought for are the hard ones, which always escalate, so
#: for a dedicated worker the probe is pure overhead.
DEFAULT_VARIANTS: tuple[str, ...] = ("no-probe", "default", "pairwise")

#: Seconds between liveness checks while waiting on the result queue.
_POLL_INTERVAL = 0.2

#: Poll rounds a dead worker's lane stays open for its (possibly still
#: in-flight) queued answer before being counted as failed.
_REAP_GRACE_POLLS = 10

#: Seconds a cancelled worker gets to honour SIGTERM before the reap
#: escalates to SIGKILL (see :func:`reap_process`).
_TERM_GRACE = 5.0


def reap_process(process, grace: float | None = None) -> None:
    """Cancel a worker process, guaranteeing it is dead on return.

    ``terminate()`` (SIGTERM) first, so the worker can run its cleanup
    handlers; if it has not exited within ``grace`` seconds (default
    :data:`_TERM_GRACE`) — a worker stuck in native solver code, or one
    that installed a SIGTERM handler/ignore — escalate to ``kill()``
    (SIGKILL, uncatchable) and join without a timeout.  SIGKILL cannot be
    blocked, so the unbounded join always returns; the old
    terminate-and-hope path silently leaked any worker that shrugged off
    SIGTERM, which a long-lived service cannot afford.
    """
    if process.is_alive():
        process.terminate()
    process.join(timeout=_TERM_GRACE if grace is None else grace)
    if process.is_alive():
        process.kill()
        process.join()


def variant_overrides(names: tuple[str, ...]) -> list[dict]:
    """Resolve variant names to config overrides, validating early.

    External-solver lanes additionally resolve their binary here, so the
    whole race aborts with one :class:`BackendUnavailableError` before any
    worker is spawned.
    """
    from repro.sat.external import ensure_available

    overrides = []
    for name in names:
        try:
            overrides.append(PORTFOLIO_VARIANTS[name])
        except KeyError:
            raise ValueError(
                f"unknown portfolio variant {name!r}; "
                f"available: {sorted(PORTFOLIO_VARIANTS)}"
            ) from None
        backend = PORTFOLIO_VARIANTS[name].get("backend")
        if backend:
            ensure_available(backend)
    return overrides


def _portfolio_worker(result_queue, token, dfg, cgra, config, ii) -> None:
    """Run one (II, variant) mapping attempt and ship the outcome back.

    ``config`` arrives fully specialised (variant overrides applied, ladder
    strategy, caching off, ``max_ii`` pinned to ``ii``); the worker is just
    an ordinary single-II mapper run in its own process.
    """
    from repro.core.mapper import SatMapItMapper

    try:
        outcome = SatMapItMapper(config).map(dfg, cgra, start_ii=ii)
        result_queue.put((token, outcome))
    except BaseException as exc:  # pragma: no cover - crash containment
        result_queue.put((token, repr(exc)))


#: Sentinel lane index for a regalloc-triggered escalation to the
#: ``default`` variant (see ``PortfolioStrategy`` docstring).
_DEFAULT_LANE = -1


@dataclass
class _IIState:
    """Aggregated verdict for one candidate II across its racing lanes."""

    total_lanes: int
    win: "MappingOutcome | None" = None
    winning_variant: str | None = None
    unsat_proof: bool = False
    failed_lanes: int = 0
    #: Whether a regalloc-blocked verdict already spawned the extra
    #: ``default``-variant lane (at most one per II).
    escalated: bool = False

    @property
    def resolved(self) -> bool:
        return (
            self.win is not None
            or self.unsat_proof
            or self.failed_lanes >= self.total_lanes
        )

    @property
    def infeasible(self) -> bool:
        return self.win is None and self.resolved


class PortfolioStrategy(SearchStrategy):
    """Race IIs and configuration variants; first frontier win takes all."""

    name = "portfolio"

    def search(self, ctx: SearchContext) -> SearchResult | None:
        config = ctx.config
        if ctx.first_ii > ctx.max_ii:
            return None
        seed = ctx.seed
        if seed is not None and seed.ii <= ctx.first_ii:
            # The seed already sits on the lower bound — provably optimal,
            # nothing to race.
            return seed
        # A seed caps the raced range: lanes only prove optimality downward
        # from it; the frontier passing ``top_ii`` means every lower II is
        # resolved infeasible and the seed mapping is the answer.
        top_ii = ctx.max_ii if seed is None else min(ctx.max_ii, seed.ii - 1)
        variant_names = tuple(config.portfolio_variants) or ("default",)
        probe_override: int | None = None
        tuner = ctx.tuner
        tuner_key: str | None = None
        if tuner is not None:
            tuner_key = tuner.key(ctx.dfg, ctx.cgra)
            choice = tuner.choose(
                tuner_key, variant_names, tuple(PORTFOLIO_VARIANTS)
            )
            ctx.outcome.tuner_consulted = choice.consulted
            if choice.consulted:
                variant_names = choice.lineup
                probe_override = choice.probe_conflicts
        # Racing variants only pays when they actually run in parallel: on a
        # box with fewer cores than variants, the extra lanes just timeshare
        # the winner's core.  Trim the line-up to the machine's parallelism
        # (the II race across workers is kept — cancelling a moot II's
        # worker costs nothing).  Explicit line-ups stay explicit: the trim
        # only drops variants, never reorders them.
        cpu_budget = os.cpu_count() or 1
        variant_names = variant_names[: max(1, cpu_budget)]
        ctx.outcome.tuner_lineup = variant_names if tuner is not None else None
        overrides = variant_overrides(variant_names)
        jobs = max(1, config.search_jobs)

        mp_ctx = multiprocessing.get_context()
        result_queue = mp_ctx.Queue()
        # Work items in II-major order: the frontier II gets all its
        # variants in flight before the next II is touched.  Escalation
        # lanes (see ``settle``) jump this queue through ``urgent``.
        items = [
            (ii, v)
            for ii in range(ctx.first_ii, top_ii + 1)
            for v in range(len(variant_names))
        ]
        next_item = 0
        urgent: list[tuple[int, int]] = []
        active: dict[int, tuple] = {}  # token -> (process, ii, lane)
        spawned: list = []  # every worker process ever launched
        meta: dict[int, tuple[int, int]] = {}  # token -> (ii, lane), kept
        settled: set[int] = set()  # tokens whose verdict is recorded
        cancelled: set[int] = set()  # tokens terminated as moot
        # Tokens whose process died before their answer arrived: the result
        # may still be in flight through the queue's feeder thread, so the
        # lane is only failed after a grace period of poll rounds.
        pending_dead: dict[int, int] = {}
        states: dict[int, _IIState] = {}
        # One record per settled lane, for the tuner: which lane, at which
        # II, did it deliver the verdict and how much wall/conflicts it
        # spent.  ``won`` is resolved at return time against the winning II.
        lane_log: list[dict] = []
        frontier = ctx.first_ii
        best_win_ii: int | None = None  # lowest II with a win so far
        token_counter = 0

        outcome = ctx.outcome

        def lane_name(lane: int) -> str:
            return "default" if lane == _DEFAULT_LANE else variant_names[lane]

        def lane_overrides(lane: int) -> dict:
            return {} if lane == _DEFAULT_LANE else overrides[lane]

        def launch(ii: int, lane: int) -> None:
            nonlocal token_counter
            worker_config = self._worker_config(
                config, lane_overrides(lane), ii, ctx.remaining_time(),
                probe_override,
            )
            token = token_counter
            token_counter += 1
            process = mp_ctx.Process(
                target=_portfolio_worker,
                args=(result_queue, token, ctx.dfg, ctx.cgra,
                      worker_config, ii),
                daemon=True,
            )
            process.start()
            active[token] = (process, ii, lane)
            spawned.append(process)
            meta[token] = (ii, lane)
            outcome.portfolio_launched += 1
            states.setdefault(ii, _IIState(len(variant_names)))

        def dispatch() -> None:
            nonlocal next_item
            while len(active) < jobs and (urgent or next_item < len(items)):
                if urgent:
                    ii, lane = urgent.pop(0)
                    state = states.get(ii)
                    if state is not None and (
                        state.win is not None or state.unsat_proof
                    ):
                        # A sibling lane settled the II while the
                        # escalation waited for a worker slot.
                        state.total_lanes -= 1
                        continue
                    launch(ii, lane)
                    continue
                ii, lane = items[next_item]
                state = states.get(ii)
                if (
                    (best_win_ii is not None and ii >= best_win_ii)
                    or (state is not None and state.resolved)
                ):
                    # The answer is <= best_win_ii / the II is already
                    # settled; work there is moot.
                    next_item += 1
                    continue
                next_item += 1
                launch(ii, lane)

        def cancel_all() -> None:
            for token, (process, _ii, _variant) in active.items():
                if process.is_alive():
                    process.terminate()
                cancelled.add(token)
                outcome.portfolio_cancelled += 1
            for process, _ii, _variant in active.values():
                # The TERM was already sent above; reap_process re-sends it
                # harmlessly and escalates to SIGKILL on a worker that
                # ignores it, so no child can outlive the strategy.
                reap_process(process)
            active.clear()

        def settle(token: int, payload) -> None:
            """Fold one worker's answer into its II's aggregate state.

            Keyed on ``meta`` (which outlives ``active``) so an answer that
            arrives *after* its dead process was reaped still lands; answers
            from cancelled workers and double deliveries are dropped.
            """
            nonlocal best_win_ii
            if token in settled or token in cancelled or token not in meta:
                return
            settled.add(token)
            pending_dead.pop(token, None)
            ii, lane = meta[token]
            state = states[ii]
            if isinstance(payload, str):  # worker crashed; treat as failure
                state.failed_lanes += 1
                lane_log.append({
                    "ii": ii, "lane": lane_name(lane), "outcome": None,
                    "wall_s": 0.0, "conflicts": 0,
                })
                return
            worker_outcome = payload
            lane_log.append({
                "ii": ii,
                "lane": lane_name(lane),
                "outcome": worker_outcome,
                "wall_s": worker_outcome.total_time,
                "conflicts": sum(
                    a.conflicts for a in worker_outcome.attempts
                ),
            })
            outcome.attempts.extend(worker_outcome.attempts)
            if worker_outcome.success and worker_outcome.mapping is not None:
                if state.win is None:
                    state.win = worker_outcome
                    state.winning_variant = lane_name(lane)
                if best_win_ii is None or ii < best_win_ii:
                    best_win_ii = ii
                return
            if (
                worker_outcome.attempts
                and not worker_outcome.timed_out
                and all(a.status == "UNSAT" for a in worker_outcome.attempts)
            ):
                # A decisive proof of infeasibility — variant-independent.
                # (A timed-out worker's partial all-UNSAT record is *not* a
                # proof: untried slack levels might still map this II.)
                state.unsat_proof = True
                return
            state.failed_lanes += 1
            if any(
                a.status == "REGALLOC_FAIL" for a in worker_outcome.attempts
            ) and self._should_escalate(state, lane, variant_names, config,
                                        lane_overrides(lane)):
                # SAT models exist at this II but this variant's models kept
                # failing register allocation — a *model*-dependent verdict,
                # unlike UNSAT.  Give the II one extra lane under the
                # unmodified configuration (the ladder's own trajectory)
                # before letting the frontier pass it.
                state.escalated = True
                state.total_lanes += 1
                urgent.append((ii, _DEFAULT_LANE))

        def expire_pending_dead() -> None:
            """Fail the lanes of dead workers whose grace period ran out."""
            for token in list(pending_dead):
                pending_dead[token] -= 1
                if pending_dead[token] > 0:
                    continue
                del pending_dead[token]
                if token in settled or token in cancelled:
                    continue
                settled.add(token)
                ii, _lane = meta[token]
                states[ii].failed_lanes += 1

        try:
            dispatch()
            while active or pending_dead:
                deadline = ctx.remaining_time()
                timeout = (
                    _POLL_INTERVAL
                    if deadline is None
                    else max(0.01, min(_POLL_INTERVAL, deadline))
                )
                try:
                    token, payload = result_queue.get(timeout=timeout)
                except queue_module.Empty:
                    if ctx.out_of_time():
                        outcome.timed_out = True
                        cancel_all()
                        self._finalise_attempts(outcome)
                        # The seed is the anytime answer of last resort:
                        # feasible and validated, merely not proven minimal.
                        return self._anytime_result(states, frontier) or seed
                    # Workers that died without answering get a grace
                    # period (their result may still be in the queue's
                    # feeder pipeline) before their lane is failed.
                    for dead in [t for t, (p, _ii, _v) in active.items()
                                 if not p.is_alive()]:
                        process, _ii, _lane = active.pop(dead)
                        process.join()
                        if dead not in settled:
                            pending_dead.setdefault(dead, _REAP_GRACE_POLLS)
                    expire_pending_dead()
                else:
                    settle(token, payload)
                    entry = active.pop(token, None)
                    if entry is not None:
                        entry[0].join()

                # Advance the frontier over every freshly resolved II.
                while True:
                    state = states.get(frontier)
                    if state is None or not state.resolved:
                        break
                    if state.win is not None:
                        outcome.portfolio_winner = state.winning_variant
                        cancel_all()
                        self._finalise_attempts(outcome)
                        if tuner is not None and tuner_key is not None:
                            self._record_tuner(
                                tuner, tuner_key, lane_log, frontier,
                                state.win,
                            )
                        return SearchResult(
                            ii=frontier,
                            mapping=state.win.mapping,
                            allocation=state.win.register_allocation,
                        )
                    frontier += 1
                if frontier > top_ii:
                    # Every raced II is resolved infeasible: with a seed the
                    # seed mapping is the (now provably minimal among the
                    # unruled candidates) answer; without one the run failed.
                    cancel_all()
                    self._finalise_attempts(outcome)
                    return seed
                # Cancel workers made moot by a win at a lower II or by a
                # sibling variant settling their II.
                self._cancel_moot(active, states, best_win_ii, cancelled,
                                  outcome)
                dispatch()
        finally:
            cancel_all()
            result_queue.close()
            # Lifecycle invariant: whatever path led here (win, exhaustion,
            # timeout, crash), no worker may outlive the strategy — a leaked
            # child would accumulate forever in a long-lived service process.
            assert not any(
                process.is_alive() for process in spawned
            ), "portfolio leaked live worker process(es) at strategy exit"
        # Workers drained without a frontier verdict (e.g. silent worker
        # deaths resolved the remaining IIs): fall back to the same sound
        # walk the timeout path uses.
        self._finalise_attempts(outcome)
        return self._anytime_result(states, frontier) or seed

    # ------------------------------------------------------------------
    @staticmethod
    def _worker_config(
        config: "MapperConfig", overrides: dict, ii: int,
        remaining: float | None, probe_override: int | None = None,
    ) -> "MapperConfig":
        """Specialise the run's config for one (II, variant) worker.

        Seeding and tuning are parent-side concerns: the parent already ran
        the heuristic pre-pass and consulted the store, so workers get both
        switched off (a worker re-seeding its single II would be pure
        overhead and a worker re-recording would double-count races).
        """
        fields: dict = dict(overrides)
        fields["search"] = "ladder"
        fields["cache_dir"] = None
        fields["max_ii"] = ii
        fields["verbose"] = False
        fields["seed_heuristic"] = False
        fields["tuner_dir"] = None
        if remaining is not None:
            fields["timeout"] = remaining
        if (
            probe_override is not None
            and "amo_probe_conflicts" not in overrides
            and config.amo_probe_conflicts is not None
        ):
            # Tuner-sized probe budget, applied only to lanes that keep the
            # probe/escalation two-phase (sound: an inconclusive probe still
            # escalates to the full encoding, whatever its budget).
            fields["amo_probe_conflicts"] = probe_override
        return replace(config, **fields)

    @staticmethod
    def _record_tuner(
        tuner, key: str, lane_log: list[dict], win_ii: int, winner,
    ) -> None:
        """Feed the settled race back into the lane store.

        Only lanes that raced the *winning* II to a verdict carry signal:
        the one whose outcome became the win is the winner, its settled
        siblings are losses.  Lanes at other IIs (proof work) and cancelled
        lanes (no verdict) are not scored.
        """
        results = [
            {
                "lane": entry["lane"],
                "won": entry["outcome"] is winner,
                "wall_s": entry["wall_s"],
                "conflicts": entry["conflicts"],
            }
            for entry in lane_log
            if entry["ii"] == win_ii
        ]
        tuner.record(key, results)

    @staticmethod
    def _cancel_moot(
        active: dict, states: dict, best_win_ii: int | None,
        cancelled: set, outcome,
    ) -> None:
        """Terminate workers whose answer can no longer matter.

        A worker is moot when its II is above a lower II that already has a
        win (the answer is at most that win), or when a sibling variant has
        settled its II either way.
        """
        def moot(ii: int) -> bool:
            if best_win_ii is not None and ii > best_win_ii:
                return True
            state = states.get(ii)
            return state is not None and state.resolved

        for token in [t for t, (_p, ii, _v) in active.items() if moot(ii)]:
            process, _ii, _variant = active.pop(token)
            reap_process(process)
            cancelled.add(token)
            outcome.portfolio_cancelled += 1

    @staticmethod
    def _should_escalate(
        state: _IIState, lane: int, variant_names: tuple[str, ...],
        config: "MapperConfig", lane_ovr: dict,
    ) -> bool:
        """Whether a regalloc-blocked lane earns the II a ``default`` lane.

        Pointless when the II already escalated, when ``default`` is part of
        the racing line-up anyway, or when the failing lane's overrides are
        a no-op against the base configuration (re-running the identical
        trajectory cannot change the verdict).
        """
        if state.escalated or lane == _DEFAULT_LANE:
            return False
        if "default" in variant_names:
            return False
        return replace(config, **lane_ovr) != config

    @staticmethod
    def _finalise_attempts(outcome: "MappingOutcome") -> None:
        """Order merged attempts by II (stable within an II's variants)."""
        outcome.attempts.sort(key=lambda attempt: attempt.ii)

    def _anytime_result(
        self, states: dict[int, _IIState], frontier: int
    ) -> SearchResult | None:
        """On timeout, surface the lowest win whose lower IIs all failed.

        Walking up from the frontier: a resolved-infeasible II is skipped,
        a win is returned (every II below it is proven out), and an
        unresolved II stops the walk — a win above it would be unsound to
        claim as minimal, matching what the ladder would have reached.
        """
        for ii in sorted(states):
            if ii < frontier:
                continue
            state = states[ii]
            if state.infeasible:
                continue
            if state.win is not None:
                return SearchResult(
                    ii=ii,
                    mapping=state.win.mapping,
                    allocation=state.win.register_allocation,
                )
            return None
        return None
