"""Strategy interface and the mapper/strategy bridge.

A *search strategy* decides which candidate IIs to attempt and in what
order; the mapper keeps owning what one attempt means (mobility schedule,
encoding, solving, register allocation, per-attempt stats).  The bridge
between the two is :class:`SearchContext`: a thin facade over one mapping
run that lets a strategy request "attempt this II" without seeing any of
the encoding machinery, while every attempt it triggers lands in the run's
:class:`~repro.core.mapper.MappingOutcome` exactly as before.

The contract every strategy must honour:

* return the *smallest* feasible II it can prove within the run's budgets
  (for the sequential ladder this is by construction; bisection relies on
  feasibility being monotone in the II, which holds for decisive attempts);
* record timeouts by setting ``ctx.outcome.timed_out`` and returning what
  it has (``None`` or a feasible-but-possibly-non-minimal result — the
  anytime behaviour the ladder already had);
* never mutate the mapper's configuration.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (mapper imports us)
    from repro.cgra.architecture import CGRA
    from repro.core.mapper import MapperConfig, MappingOutcome, SatMapItMapper
    from repro.core.mapping import Mapping
    from repro.core.regalloc import RegisterAllocation
    from repro.dfg.graph import DFG
    from repro.sat.backend import SolverBackend


@dataclass
class SearchResult:
    """A feasible mapping found by a strategy."""

    ii: int
    mapping: "Mapping"
    allocation: "RegisterAllocation | None"


class SearchContext:
    """One mapping run, as seen by a search strategy."""

    def __init__(
        self,
        mapper: "SatMapItMapper",
        dfg: "DFG",
        cgra: "CGRA",
        outcome: "MappingOutcome",
        start: float,
        first_ii: int,
        seed: SearchResult | None = None,
        tuner: object | None = None,
    ) -> None:
        self.mapper = mapper
        self.dfg = dfg
        self.cgra = cgra
        self.outcome = outcome
        self.start = start
        self.first_ii = first_ii
        #: Validated heuristic upper bound (see :mod:`repro.search.seed`):
        #: a feasible mapping at ``seed.ii``.  Strategies only need to
        #: search ``[first_ii, seed.ii - 1]`` and fall back to the seed
        #: itself on exhaustion or timeout; ``None`` in unseeded runs.
        self.seed = seed
        #: Persistent lane-statistics handle
        #: (:class:`repro.search.tuner.LaneTuner`) the portfolio consults
        #: and feeds; ``None`` when tuning is off.
        self.tuner = tuner

    @property
    def config(self) -> "MapperConfig":
        return self.mapper.config

    @property
    def max_ii(self) -> int:
        return self.config.max_ii

    def make_backend(self) -> "SolverBackend | None":
        """A fresh persistent backend (``None`` in non-incremental mode)."""
        from repro.sat.backend import create_backend
        from repro.sat.external import is_external_backend

        config = self.config
        if not config.incremental:
            return None
        name = self.outcome.backend_name
        kwargs: dict[str, object] = {"random_seed": config.random_seed}
        if is_external_backend(name):
            kwargs.update(
                dimacs_dir=config.dimacs_dir,
                reuse_dimacs=config.reuse_dimacs,
                proof=config.proof,
                # Opting into proofs buys certified UNSAT answers: every
                # external refutation is replayed through the bundled
                # forward checker before the mapper trusts it.
                verify_proofs=config.proof,
                tag=f"{self.dfg.name}@{self.cgra.name}",
            )
        elif config.proof and name == "cdcl":
            # The internal engine streams its DRAT trace to a file; with
            # --dimacs-dir the trace lands next to the exports, otherwise
            # in the system temp dir (the per-attempt digest is the durable
            # artefact either way).
            import os
            import tempfile

            directory = config.dimacs_dir
            if directory is not None:
                os.makedirs(directory, exist_ok=True)
            fd, path = tempfile.mkstemp(
                dir=directory,
                prefix=f"{self.dfg.name}@{self.cgra.name}-",
                suffix=".drat",
            )
            os.close(fd)
            kwargs["proof_path"] = path
        return create_backend(name, **kwargs)

    def attempt(
        self, ii: int, backend: "SolverBackend | None"
    ) -> SearchResult | None:
        """Attempt one II (all slack levels) through the mapper's machinery.

        Every (II, slack) attempt is appended to the run's outcome; a
        timeout inside the attempt sets ``outcome.timed_out``.
        """
        before = len(self.outcome.attempts)
        found = self.mapper._try_ii(
            self.dfg, self.cgra, ii, self.outcome, self.start, backend
        )
        if self.seed is not None:
            for attempt in self.outcome.attempts[before:]:
                attempt.seed_ceiling = self.seed.ii
        if found is None:
            return None
        mapping, allocation = found
        return SearchResult(ii=ii, mapping=mapping, allocation=allocation)

    def attempt_was_decisive(self, ii: int) -> bool:
        """Whether every recorded attempt at ``ii`` answered UNSAT.

        Strategies that skip IIs (bisection) use this to distinguish a
        *proof* of infeasibility from an inconclusive (conflict- or
        time-bounded) attempt.
        """
        statuses = [a.status for a in self.outcome.attempts if a.ii == ii]
        return bool(statuses) and all(s == "UNSAT" for s in statuses)

    def out_of_time(self) -> bool:
        return self.mapper._out_of_time(self.start)

    def remaining_time(self) -> float | None:
        return self.mapper._remaining_time(self.start)


class SearchStrategy(abc.ABC):
    """Policy deciding which IIs to attempt, in what order, and when to stop."""

    #: Registry / CLI name; set by subclasses.
    name: str = "?"

    @abc.abstractmethod
    def search(self, ctx: SearchContext) -> SearchResult | None:
        """Run the II search; return the best result found (or ``None``)."""


StrategyFactory = Callable[[], SearchStrategy]

_REGISTRY: dict[str, StrategyFactory] = {}


def register_strategy(name: str, factory: StrategyFactory) -> None:
    """Register a strategy factory under ``name`` (overwrites silently)."""
    if not name:
        raise ValueError("strategy name must be non-empty")
    _REGISTRY[name] = factory


def available_strategies() -> list[str]:
    """Names of all registered search strategies, sorted."""
    return sorted(_REGISTRY)


def create_strategy(name: str) -> SearchStrategy:
    """Instantiate a registered strategy by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown search strategy {name!r}; "
            f"available: {available_strategies()}"
        ) from None
    return factory()
