"""Heuristic II-seeding: prime the SAT search with a feasible upper bound.

The SAT strategies spend nearly all of their wall-clock proving IIs
infeasible upward from the MII and then solving the final II — yet the
repo's heuristic mappers (RAMP, PathSeeker) can often *realise* a feasible
II in milliseconds.  This module runs them as a budgeted pre-pass and turns
the best validated result into a :class:`~repro.search.base.SearchResult`
every strategy can exploit:

* the **ladder** stops climbing at ``seed.ii - 1`` and falls back to the
  seed mapping when the climb exhausts or times out;
* **bisection** skips its gallop phase — the seed is the upper bound, the
  binary search starts directly on ``[first_ii, seed.ii - 1]``;
* the **portfolio** only races IIs below the seed, so SAT lanes prove
  optimality *downward* instead of discovering feasibility upward;
* a seed at the first candidate II (the MII is a lower bound) is returned
  immediately — provably optimal with zero SAT attempts.

A seed is only trusted after the same legality oracle the SAT path answers
to: structural ``violations()`` plus two simulated iterations against the
reference interpreter.  The heuristic mappers validate their own results
too (:meth:`HeuristicMapper._validated`); the re-check here keeps the
seeding layer sound even against a future mapper that does not.

Seeding never changes the *cache* identity of a problem: like the search
strategy, it can only change which of several equally-minimal mappings is
found, never the II of a completed run — the CI equivalence gate
(``repro.experiments.perf --check-strategies``) holds seeded strategies to
exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.baselines import run_budgeted
from repro.exceptions import ReproError
from repro.search.base import SearchResult

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.cgra.architecture import CGRA
    from repro.core.mapper import MapperConfig
    from repro.dfg.graph import DFG


@dataclass
class SeedResult:
    """The best validated heuristic mapping found within the seed budget."""

    ii: int
    mapping: object
    allocation: object | None
    #: Which heuristic produced the winning mapping ("ramp"/"pathseeker").
    mapper_name: str
    #: Wall-clock seconds the whole seeding pre-pass spent (all mappers).
    wall_time: float

    def as_search_result(self) -> SearchResult:
        return SearchResult(
            ii=self.ii, mapping=self.mapping, allocation=self.allocation
        )


def run_seed(
    dfg: "DFG",
    cgra: "CGRA",
    config: "MapperConfig",
    first_ii: int,
    budget: float | None = None,
) -> SeedResult | None:
    """Race the configured heuristic mappers inside one wall budget.

    Mappers run sequentially, each given what remains of the budget; a
    later mapper only searches *below* the best II found so far (its II cap
    is ``best.ii - 1``), and the pre-pass stops early once a seed reaches
    ``first_ii`` — the MII is a lower bound, nothing can beat it.  Returns
    ``None`` when no mapper produces a validated mapping within budget,
    in which case every strategy falls back to its exact unseeded walk.
    """
    total_budget = config.seed_time_budget if budget is None else budget
    if total_budget <= 0:
        return None
    start = time.perf_counter()
    best: SeedResult | None = None
    for name in config.seed_mappers:
        remaining = total_budget - (time.perf_counter() - start)
        if remaining <= 0:
            break
        max_ii = config.max_ii if best is None else best.ii - 1
        if max_ii < first_ii:
            break
        try:
            outcome = run_budgeted(
                name, dfg, cgra,
                time_budget=remaining,
                start_ii=first_ii,
                max_ii=max_ii,
                run_register_allocation=config.run_register_allocation,
                neighbour_register_file_access=(
                    config.neighbour_register_file_access
                ),
                enforce_output_register=config.enforce_output_register,
            )
        except (ValueError, ReproError):
            continue
        if not outcome.success or outcome.mapping is None:
            continue
        if not _validated(outcome.mapping, outcome.register_allocation, config):
            continue
        if best is None or outcome.ii < best.ii:
            best = SeedResult(
                ii=outcome.ii,
                mapping=outcome.mapping,
                allocation=outcome.register_allocation,
                mapper_name=name,
                wall_time=0.0,
            )
        if best.ii <= first_ii:
            break
    if best is not None:
        best.wall_time = time.perf_counter() - start
    return best


def _validated(mapping, allocation, config: "MapperConfig") -> bool:
    """The SAT path's legality oracle, applied to a heuristic candidate.

    Simulation requires the register allocation to model multi-iteration
    lifetimes (virtual registers hold one value per producer); allocation-
    free runs — where the SAT reference itself skips allocation — get the
    structural check only.
    """
    from repro.simulator import CGRASimulator

    if mapping.violations(check_overwrite=config.enforce_output_register):
        return False
    if allocation is None:
        return True
    try:
        simulation = CGRASimulator(
            mapping,
            allocation,
            neighbour_register_file_access=(
                config.neighbour_register_file_access
            ),
        ).run(2)
    except ReproError:
        return False
    return simulation.success
