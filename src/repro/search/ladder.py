"""The paper's sequential II ladder (the default strategy).

Climb from the minimum II one step at a time until an attempt succeeds or a
bound is hit.  One persistent backend serves the whole climb (in incremental
mode), so learned clauses, activities and phases carry across II bumps —
this is behaviour-identical to the loop :meth:`SatMapItMapper.map` ran
inline before the search layer was factored out, and the test-suite uses it
as the semantic reference for every other strategy.
"""

from __future__ import annotations

from repro.search.base import SearchContext, SearchResult, SearchStrategy


class LadderStrategy(SearchStrategy):
    """Sequential climb: try II, II+1, II+2, ... until one maps."""

    name = "ladder"

    def search(self, ctx: SearchContext) -> SearchResult | None:
        backend = ctx.make_backend()
        for ii in range(ctx.first_ii, ctx.max_ii + 1):
            if ctx.out_of_time():
                ctx.outcome.timed_out = True
                return None
            found = ctx.attempt(ii, backend)
            if found is not None:
                return found
            if ctx.outcome.timed_out:
                return None
        return None
