"""The paper's sequential II ladder (the default strategy).

Climb from the minimum II one step at a time until an attempt succeeds or a
bound is hit.  One persistent backend serves the whole climb (in incremental
mode), so learned clauses, activities and phases carry across II bumps —
this is behaviour-identical to the loop :meth:`SatMapItMapper.map` ran
inline before the search layer was factored out, and the test-suite uses it
as the semantic reference for every other strategy.
"""

from __future__ import annotations

from repro.search.base import SearchContext, SearchResult, SearchStrategy


class LadderStrategy(SearchStrategy):
    """Sequential climb: try II, II+1, II+2, ... until one maps.

    A heuristic seed (``ctx.seed``) caps the climb: the seed mapping is a
    validated answer at ``seed.ii``, so the ladder only needs to probe
    strictly below it and returns the seed when the capped climb exhausts
    or times out — at ``seed.ii == first_ii`` the seed is provably optimal
    (the MII is a lower bound) and no SAT work runs at all.
    """

    name = "ladder"

    def search(self, ctx: SearchContext) -> SearchResult | None:
        """Climb IIs sequentially from the MII (the paper's strategy)."""
        seed = ctx.seed
        if seed is not None and seed.ii <= ctx.first_ii:
            return seed
        top_ii = ctx.max_ii if seed is None else min(ctx.max_ii, seed.ii - 1)
        backend = ctx.make_backend()
        for ii in range(ctx.first_ii, top_ii + 1):
            if ctx.out_of_time():
                ctx.outcome.timed_out = True
                return seed
            found = ctx.attempt(ii, backend)
            if found is not None:
                return found
            if ctx.outcome.timed_out:
                return seed
        return seed
