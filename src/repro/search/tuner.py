"""Adaptive lane scheduler: learn the portfolio line-up from traffic.

The portfolio races several solver-configuration *lanes* at each II
(:data:`repro.search.portfolio.PORTFOLIO_VARIANTS`).  Which lane wins is
instance-dependent but far from random: kernels of a similar shape on the
same fabric keep being won by the same lanes.  This module persists that
signal — per-lane win/loss counts, wall time and winning conflict counts —
keyed by a **(kernel-feature-vector, fabric-spec-hash)** digest, so the
next request for a structurally similar problem starts with the
historically strongest lanes first and a probe conflict budget sized to
what past winners actually needed.

The key is deliberately *coarser* than the mapping cache's: the cache must
identify one exact problem, the tuner wants its statistics to generalise
across kernels that merely look alike (same node/edge/recurrence counts,
same opcode-class histogram).  Storage mirrors ``cache.py``'s discipline:
one ``<key>.json`` per entry, atomic temp-file + rename writes, unreadable
or mismatched entries deleted on load and counted, never raised — a tuner
store can only make the portfolio smarter or leave it unchanged, never
break a run.

Exploration: a pure exploit-the-leader policy would starve cold lanes of
samples forever.  Every :data:`EPSILON` fraction of requests (counted per
key, persisted, so the cadence is deterministic and survives restarts),
the least-sampled lane is promoted into the line-up's second slot.
"""

from __future__ import annotations

import hashlib
import json
import os
import statistics
import tempfile
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.cgra.architecture import CGRA
    from repro.dfg.graph import DFG

#: Entry-format tag; bumping it invalidates every existing entry.
SCHEMA = "satmapit-lanetuner/1"

#: Exploration floor: one request in ``1/EPSILON`` promotes the
#: least-sampled lane so cold lanes keep getting measured.
EPSILON = 0.1

#: Winning conflict counts kept per lane (rolling window).
_CONFLICT_WINDOW = 20

#: Clamp range for the suggested probe conflict budget.
_PROBE_MIN, _PROBE_MAX = 200, 5000


@dataclass
class TunerStats:
    """Counters for one tuner handle (reported per mapping run)."""

    consults: int = 0
    #: Consults that found no usable statistics for the key (cold start).
    cold: int = 0
    records: int = 0
    #: Entries deleted because they could not be parsed or did not match
    #: the schema/key their filename promised.
    corrupted: int = 0
    #: Consults where the epsilon-greedy floor promoted a cold lane.
    explored: int = 0

    def summary(self) -> str:
        return (
            f"{self.consults} consult(s) ({self.cold} cold), "
            f"{self.records} record(s), {self.explored} explored, "
            f"{self.corrupted} corrupted"
        )


@dataclass(frozen=True)
class LaneChoice:
    """Outcome of one line-up consultation."""

    lineup: tuple[str, ...]
    #: Whether persisted statistics actually informed the line-up.
    consulted: bool
    #: Suggested probe conflict budget for probing lanes (``None`` keeps
    #: the configured default).
    probe_conflicts: int | None


def kernel_features(dfg: "DFG") -> dict:
    """Shape signature of a kernel: structure, not identity.

    Everything here is invariant under node renaming and constant changes,
    so re-tuned variants of the same loop share statistics.
    """
    back_edges = dfg.back_edges()
    opcode_histogram = Counter(node.opcode.value for node in dfg.nodes)
    return {
        "num_nodes": dfg.num_nodes,
        "num_edges": dfg.num_edges,
        "num_back_edges": len(back_edges),
        "max_distance": max((e.distance for e in back_edges), default=0),
        "opcodes": dict(sorted(opcode_histogram.items())),
    }


def tuner_key(dfg: "DFG", cgra: "CGRA") -> str:
    """Digest of (kernel shape, fabric spec) addressing one statistics file."""
    payload = {
        "schema": SCHEMA,
        "features": kernel_features(dfg),
        "cgra": cgra.to_spec(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class LaneTuner:
    """Disk-backed per-problem-class lane statistics, one JSON per key."""

    def __init__(self, store_dir: str | os.PathLike,
                 epsilon: float = EPSILON) -> None:
        self.store_dir = Path(store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.epsilon = epsilon
        self.stats = TunerStats()

    # ------------------------------------------------------------------
    def key(self, dfg: "DFG", cgra: "CGRA") -> str:
        return tuner_key(dfg, cgra)

    def path_for(self, key: str) -> Path:
        return self.store_dir / f"{key}.json"

    # ------------------------------------------------------------------
    def load(self, key: str) -> dict | None:
        """Read one entry; delete and count anything unusable."""
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            self._discard(path)
            return None
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            self._discard(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != SCHEMA
            or entry.get("key") != key
            or not isinstance(entry.get("lanes"), dict)
        ):
            self._discard(path)
            return None
        return entry

    def _discard(self, path: Path) -> None:
        self.stats.corrupted += 1
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone / unwritable dir
            pass

    # ------------------------------------------------------------------
    def choose(
        self,
        key: str,
        base_lineup: tuple[str, ...],
        available: tuple[str, ...],
    ) -> LaneChoice:
        """Line-up for the next race, strongest known lanes first.

        Lanes are ranked by win rate, ties broken by mean wall time; lanes
        the store has never seen keep their ``base_lineup`` order behind
        the ranked ones.  Unknown lane names in the store (removed
        variants) are ignored.  On a cold key the base line-up is returned
        untouched and ``consulted`` is ``False``.
        """
        self.stats.consults += 1
        entry = self.load(key)
        lanes = entry.get("lanes", {}) if entry else {}
        known = [name for name in lanes if name in available]
        if not entry or not known:
            self.stats.cold += 1
            return LaneChoice(tuple(base_lineup), False, None)

        def samples(name: str) -> int:
            record = lanes.get(name, {})
            return record.get("wins", 0) + record.get("losses", 0)

        def rank(name: str):
            record = lanes[name]
            total = samples(name)
            win_rate = record.get("wins", 0) / total if total else 0.0
            mean_wall = (
                record.get("wall_s", 0.0) / total if total else float("inf")
            )
            return (-win_rate, mean_wall, name)

        ranked = sorted(known, key=rank)
        lineup = list(ranked) + [v for v in base_lineup if v not in ranked]

        denominator = max(1, round(1 / self.epsilon))
        if entry.get("requests", 0) % denominator == denominator - 1:
            coldest = min(available, key=lambda v: (samples(v), v))
            if len(lineup) > 1 and coldest not in lineup[:2]:
                if coldest in lineup:
                    lineup.remove(coldest)
                lineup.insert(1, coldest)
                self.stats.explored += 1

        return LaneChoice(tuple(lineup), True, self._probe_suggestion(lanes))

    @staticmethod
    def _probe_suggestion(lanes: dict) -> int | None:
        """Probe conflict budget sized to what past winners needed.

        Twice the median winning conflict count, clamped: generous enough
        that a typical winner concludes inside the probe, small enough that
        a hopeless probe escalates quickly.  ``None`` (no winning samples)
        keeps the configured default.
        """
        conflicts = [
            c
            for record in lanes.values()
            for c in record.get("win_conflicts", [])
            if isinstance(c, (int, float))
        ]
        if not conflicts:
            return None
        suggestion = int(2 * statistics.median(conflicts))
        return max(_PROBE_MIN, min(_PROBE_MAX, suggestion))

    # ------------------------------------------------------------------
    def record(self, key: str, lane_results: list[dict]) -> None:
        """Fold one settled race into the key's entry (atomic rewrite).

        ``lane_results`` holds one dict per lane that raced the winning II
        to a verdict: ``{"lane", "won", "wall_s", "conflicts"}``.
        """
        if not lane_results:
            return
        entry = self.load(key) or {
            "schema": SCHEMA,
            "key": key,
            "requests": 0,
            "lanes": {},
        }
        entry["requests"] = int(entry.get("requests", 0)) + 1
        for result in lane_results:
            lane = entry["lanes"].setdefault(
                result["lane"],
                {"wins": 0, "losses": 0, "wall_s": 0.0, "win_conflicts": []},
            )
            if result.get("won"):
                lane["wins"] += 1
                window = lane.setdefault("win_conflicts", [])
                window.append(int(result.get("conflicts", 0)))
                del window[:-_CONFLICT_WINDOW]
            else:
                lane["losses"] += 1
            lane["wall_s"] = round(
                lane.get("wall_s", 0.0) + float(result.get("wall_s", 0.0)), 4
            )
        entry["updated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        if self._write(key, entry):
            self.stats.records += 1

    def _write(self, key: str, entry: dict) -> bool:
        path = self.path_for(key)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.store_dir, suffix=".tmp", delete=False,
            encoding="utf-8",
        )
        try:
            with handle as stream:
                json.dump(entry, stream, indent=2)
                stream.write("\n")
            os.replace(handle.name, path)
        except OSError:  # pragma: no cover - disk-full style failures
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            return False
        return True


def aggregate_lane_stats(store_dir: str | os.PathLike) -> dict[str, dict]:
    """Per-lane totals across every entry of a store (for reports).

    Returns ``{lane: {"wins", "losses", "wall_s"}}``; unreadable entries
    are skipped (reports must never fail on a dirty store).
    """
    totals: dict[str, dict] = {}
    store = Path(store_dir)
    if not store.is_dir():
        return totals
    for path in sorted(store.glob("*.json")):
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(entry, dict) or entry.get("schema") != SCHEMA:
            continue
        lanes = entry.get("lanes")
        if not isinstance(lanes, dict):
            continue
        for lane, record in lanes.items():
            total = totals.setdefault(
                lane, {"wins": 0, "losses": 0, "wall_s": 0.0}
            )
            total["wins"] += int(record.get("wins", 0))
            total["losses"] += int(record.get("losses", 0))
            total["wall_s"] = round(
                total["wall_s"] + float(record.get("wall_s", 0.0)), 4
            )
    return totals
