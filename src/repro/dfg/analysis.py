"""Schedule analyses on data-flow graphs.

These are the building blocks of the paper's schedule-creation step
(Section IV-B): ASAP and ALAP schedules over the forward-edge DAG, node
mobility, and the lower bounds on the initiation interval (ResMII from the PE
budget, RecMII from dependence recurrences).
"""

from __future__ import annotations

import math

import networkx as nx

from repro.dfg.graph import DFG
from repro.exceptions import DFGError


def asap_schedule(dfg: DFG) -> dict[int, int]:
    """As-soon-as-possible start time of every node over forward edges."""
    order = _forward_topological_order(dfg)
    schedule: dict[int, int] = {}
    for node_id in order:
        earliest = 0
        for edge in dfg.predecessors(node_id):
            if edge.distance:
                continue
            earliest = max(earliest, schedule[edge.src] + dfg.node(edge.src).latency)
        schedule[node_id] = earliest
    return schedule


def alap_schedule(dfg: DFG, length: int | None = None) -> dict[int, int]:
    """As-late-as-possible start time of every node over forward edges.

    ``length`` is the number of schedule slots; it defaults to the critical
    path length so that at least one node has zero mobility.
    """
    asap = asap_schedule(dfg)
    if length is None:
        length = critical_path_length(dfg)
    last_slot = length - 1
    order = _forward_topological_order(dfg)
    schedule: dict[int, int] = {}
    for node_id in reversed(order):
        latest = last_slot
        for edge in dfg.successors(node_id):
            if edge.distance:
                continue
            latest = min(latest, schedule[edge.dst] - dfg.node(node_id).latency)
        if latest < asap[node_id]:
            raise DFGError(
                f"ALAP slot {latest} for node {node_id} precedes its ASAP slot "
                f"{asap[node_id]}; schedule length {length} is too small"
            )
        schedule[node_id] = latest
    return schedule


def mobility(dfg: DFG, length: int | None = None) -> dict[int, range]:
    """The mobility window (ASAP..ALAP inclusive) of every node."""
    asap = asap_schedule(dfg)
    alap = alap_schedule(dfg, length)
    return {node_id: range(asap[node_id], alap[node_id] + 1) for node_id in asap}


def critical_path_length(dfg: DFG) -> int:
    """Length (in cycles) of the longest forward dependency chain."""
    asap = asap_schedule(dfg)
    if not asap:
        return 0
    return max(asap[node_id] + dfg.node(node_id).latency for node_id in asap)


def resource_mii(dfg: DFG, num_pes: int) -> int:
    """Resource-constrained minimum II: ``ceil(#nodes / #PEs)``."""
    if num_pes <= 0:
        raise ValueError(f"num_pes must be positive, got {num_pes}")
    if dfg.num_nodes == 0:
        return 1
    return max(1, math.ceil(dfg.num_nodes / num_pes))


def recurrence_mii(dfg: DFG) -> int:
    """Recurrence-constrained minimum II.

    For every dependence cycle the II must satisfy
    ``II * total_distance >= total_latency``; the bound is the maximum of
    ``ceil(total_latency / total_distance)`` over all elementary cycles.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(dfg.node_ids)
    # Aggregate parallel edges keeping the minimum distance (tightest).
    for edge in dfg.edges:
        if graph.has_edge(edge.src, edge.dst):
            existing = graph[edge.src][edge.dst]
            existing["distance"] = min(existing["distance"], edge.distance)
        else:
            graph.add_edge(edge.src, edge.dst, distance=edge.distance)
    best = 1
    for cycle in nx.simple_cycles(graph):
        total_latency = sum(dfg.node(node_id).latency for node_id in cycle)
        total_distance = 0
        for index, node_id in enumerate(cycle):
            nxt = cycle[(index + 1) % len(cycle)]
            total_distance += graph[node_id][nxt]["distance"]
        if total_distance == 0:
            raise DFGError(
                f"DFG {dfg.name!r} has a zero-distance dependence cycle {cycle}"
            )
        best = max(best, math.ceil(total_latency / total_distance))
    return best


def minimum_initiation_interval(dfg: DFG, num_pes: int) -> int:
    """The MII used to seed the iterative mapping search."""
    return max(resource_mii(dfg, num_pes), recurrence_mii(dfg))


def _forward_topological_order(dfg: DFG) -> list[int]:
    """Topological order of the forward-edge (distance zero) subgraph."""
    graph = nx.DiGraph()
    graph.add_nodes_from(dfg.node_ids)
    graph.add_edges_from((e.src, e.dst) for e in dfg.forward_edges())
    try:
        return list(nx.topological_sort(graph))
    except nx.NetworkXUnfeasible as exc:
        raise DFGError(
            f"forward edges of DFG {dfg.name!r} contain a cycle; "
            "mark loop-carried dependencies with distance >= 1"
        ) from exc
