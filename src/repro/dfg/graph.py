"""Data-flow graph data structure.

Nodes model CGRA instructions; every node has an :class:`Opcode`, an optional
constant operand and a latency (one cycle for every ALU-class operation on the
target CGRA, matching the paper's architecture model).  Edges model data
dependencies; an edge with ``distance > 0`` is a loop-carried (back) edge whose
value is produced ``distance`` iterations before it is consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from collections.abc import Iterable, Iterator

import networkx as nx

from repro.exceptions import DFGError


class OpClass(str, Enum):
    """Functional-unit classes an opcode may require on a PE.

    The CGRA layer describes each processing element by the set of classes it
    implements; the mapper only places a node on a PE whose capability set
    contains the node's class.  ``ALU`` covers the single-cycle integer
    operations every PE provides on the paper's fabric; ``MUL``, ``DIV`` and
    ``MEM`` mark the expensive units that heterogeneous fabrics instantiate
    only on some PEs.
    """

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    MEM = "mem"


class Opcode(str, Enum):
    """Instruction set of the target CGRA's processing elements."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    LT = "lt"
    GT = "gt"
    EQ = "eq"
    SELECT = "select"
    LOAD = "load"
    STORE = "store"
    CONST = "const"
    PHI = "phi"
    ROUTE = "route"

    @property
    def is_memory(self) -> bool:
        """Whether the operation accesses the data memory."""
        return self in (Opcode.LOAD, Opcode.STORE)

    @property
    def op_class(self) -> OpClass:
        """The functional-unit class a PE must implement to execute this op."""
        if self.is_memory:
            return OpClass.MEM
        if self is Opcode.MUL:
            return OpClass.MUL
        if self is Opcode.DIV:
            return OpClass.DIV
        return OpClass.ALU

    @property
    def is_commutative(self) -> bool:
        """Whether operand order does not matter."""
        return self in (Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.EQ)


@dataclass(frozen=True)
class DFGNode:
    """A single instruction in the data-flow graph."""

    node_id: int
    opcode: Opcode = Opcode.ADD
    name: str = ""
    constant: int | None = None
    latency: int = 1

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise DFGError(f"node id must be non-negative, got {self.node_id}")
        if self.latency < 1:
            raise DFGError(f"latency must be >= 1, got {self.latency}")

    @property
    def label(self) -> str:
        """Human-readable label used by visualisation and DOT export."""
        if self.name:
            return f"{self.node_id}:{self.name}"
        return f"{self.node_id}:{self.opcode.value}"


@dataclass(frozen=True)
class DFGEdge:
    """A data dependency between two instructions.

    ``distance`` counts loop iterations between producer and consumer: zero
    for an intra-iteration dependency, one or more for loop-carried
    dependencies (back edges).
    """

    src: int
    dst: int
    distance: int = 0
    operand_index: int = 0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise DFGError(f"edge distance must be non-negative, got {self.distance}")

    @property
    def is_back_edge(self) -> bool:
        return self.distance > 0


@dataclass
class DFG:
    """A loop-body data-flow graph.

    The class wraps plain dictionaries rather than exposing a networkx graph
    directly so that the mapper-facing API stays stable; conversion to
    networkx is available through :meth:`to_networkx` for analyses that want
    graph algorithms (cycle enumeration, longest paths, drawing).
    """

    name: str = "dfg"
    _nodes: dict[int, DFGNode] = field(default_factory=dict)
    _edges: list[DFGEdge] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: int | None = None,
        opcode: Opcode | str = Opcode.ADD,
        name: str = "",
        constant: int | None = None,
        latency: int = 1,
    ) -> DFGNode:
        """Create a node and add it to the graph, returning it."""
        if node_id is None:
            node_id = max(self._nodes, default=-1) + 1
        if node_id in self._nodes:
            raise DFGError(f"node {node_id} already exists in DFG {self.name!r}")
        node = DFGNode(node_id, Opcode(opcode), name, constant, latency)
        self._nodes[node_id] = node
        return node

    def add_edge(
        self, src: int, dst: int, distance: int = 0, operand_index: int = 0
    ) -> DFGEdge:
        """Create a dependency edge between two existing nodes."""
        if src not in self._nodes:
            raise DFGError(f"source node {src} not in DFG {self.name!r}")
        if dst not in self._nodes:
            raise DFGError(f"destination node {dst} not in DFG {self.name!r}")
        edge = DFGEdge(src, dst, distance, operand_index)
        self._edges.append(edge)
        return edge

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[DFGNode]:
        """All nodes, ordered by node id."""
        return [self._nodes[node_id] for node_id in sorted(self._nodes)]

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._nodes)

    @property
    def edges(self) -> list[DFGEdge]:
        return list(self._edges)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def node(self, node_id: int) -> DFGNode:
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise DFGError(f"node {node_id} not in DFG {self.name!r}") from exc

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def successors(self, node_id: int) -> list[DFGEdge]:
        """Outgoing edges of ``node_id``."""
        return [edge for edge in self._edges if edge.src == node_id]

    def predecessors(self, node_id: int) -> list[DFGEdge]:
        """Incoming edges of ``node_id``."""
        return [edge for edge in self._edges if edge.dst == node_id]

    def forward_edges(self) -> list[DFGEdge]:
        """Edges with distance zero (intra-iteration dependencies)."""
        return [edge for edge in self._edges if edge.distance == 0]

    def back_edges(self) -> list[DFGEdge]:
        """Edges with positive distance (loop-carried dependencies)."""
        return [edge for edge in self._edges if edge.distance > 0]

    def __iter__(self) -> Iterator[DFGNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"DFG(name={self.name!r}, nodes={self.num_nodes}, edges={self.num_edges}, "
            f"back_edges={len(self.back_edges())})"
        )

    # ------------------------------------------------------------------
    # Validation and conversion
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants, raising :class:`DFGError` on failure.

        The forward-edge subgraph must be acyclic (cycles must be broken by
        back edges with positive distance) and every edge endpoint must exist.
        """
        for edge in self._edges:
            if edge.src not in self._nodes or edge.dst not in self._nodes:
                raise DFGError(f"edge {edge} references a missing node")
        forward = nx.DiGraph()
        forward.add_nodes_from(self._nodes)
        forward.add_edges_from((e.src, e.dst) for e in self.forward_edges())
        if not nx.is_directed_acyclic_graph(forward):
            cycle = nx.find_cycle(forward)
            raise DFGError(
                f"forward edges of DFG {self.name!r} contain a cycle: {cycle}; "
                "loop-carried dependencies must use distance >= 1"
            )

    def to_networkx(self) -> nx.MultiDiGraph:
        """Convert to a networkx multigraph (edges keep their distance)."""
        graph = nx.MultiDiGraph(name=self.name)
        for node in self.nodes:
            graph.add_node(node.node_id, opcode=node.opcode.value, label=node.label)
        for edge in self._edges:
            graph.add_edge(edge.src, edge.dst, distance=edge.distance)
        return graph

    def to_dict(self) -> dict:
        """Plain-data representation (JSON-serialisable) of the graph."""
        return {
            "name": self.name,
            "nodes": [
                {
                    "id": node.node_id,
                    "opcode": node.opcode.value,
                    "name": node.name,
                    "constant": node.constant,
                    "latency": node.latency,
                }
                for node in self.nodes
            ],
            "edges": [
                {
                    "src": edge.src,
                    "dst": edge.dst,
                    "distance": edge.distance,
                    "operand_index": edge.operand_index,
                }
                for edge in self._edges
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DFG":
        """Rebuild a graph from :meth:`to_dict` output."""
        dfg = cls(name=data.get("name", "dfg"))
        for entry in data.get("nodes", ()):
            dfg.add_node(
                entry["id"],
                Opcode(entry["opcode"]),
                entry.get("name", ""),
                entry.get("constant"),
                entry.get("latency", 1),
            )
        for entry in data.get("edges", ()):
            dfg.add_edge(
                entry["src"],
                entry["dst"],
                entry.get("distance", 0),
                entry.get("operand_index", 0),
            )
        dfg.validate()
        return dfg

    def copy(self, name: str | None = None) -> "DFG":
        """Return a structural copy of the graph."""
        clone = DFG(name=name or self.name)
        for node in self.nodes:
            clone.add_node(node.node_id, node.opcode, node.name, node.constant, node.latency)
        for edge in self._edges:
            clone.add_edge(edge.src, edge.dst, edge.distance, edge.operand_index)
        return clone

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls,
        name: str,
        num_nodes: int,
        edges: Iterable[tuple[int, int] | tuple[int, int, int]],
        opcodes: dict[int, Opcode | str] | None = None,
    ) -> "DFG":
        """Build a DFG from a node count and an edge list.

        Each edge is ``(src, dst)`` or ``(src, dst, distance)``.  Node ids run
        from 0 to ``num_nodes - 1``; unspecified opcodes default to ``ADD``.
        """
        dfg = cls(name=name)
        opcodes = opcodes or {}
        for node_id in range(num_nodes):
            dfg.add_node(node_id, opcodes.get(node_id, Opcode.ADD))
        for edge in edges:
            if len(edge) == 2:
                src, dst = edge  # type: ignore[misc]
                distance = 0
            else:
                src, dst, distance = edge  # type: ignore[misc]
            dfg.add_edge(src, dst, distance)
        dfg.validate()
        return dfg


def paper_running_example() -> DFG:
    """The 11-node running example of the paper (Figure 2a).

    The figure shows nodes 1–11 with forward dependencies chosen so that the
    ASAP/ALAP/mobility tables of Figure 4 are reproduced exactly, and a
    loop-carried dependency from node 9 back to node 1.  Node ids here match
    the paper's numbering (1-based).
    """
    dfg = DFG(name="running_example")
    for node_id in range(1, 12):
        dfg.add_node(node_id, Opcode.ADD, name=f"n{node_id}")
    # Forward edges reproducing Figure 4's ASAP/ALAP levels:
    #   ASAP levels: 0:{1,2,3,4}  1:{5,7,10}  2:{6,11}  3:{8}  4:{9}
    #   ALAP levels: 0:{3}  1:{4,5}  2:{1,6,7}  3:{2,8,10}  4:{9,11}
    dfg.add_edge(3, 5)
    dfg.add_edge(4, 7)
    dfg.add_edge(1, 10)
    dfg.add_edge(5, 6)
    dfg.add_edge(10, 11)
    dfg.add_edge(7, 8)
    dfg.add_edge(6, 8)
    dfg.add_edge(8, 9)
    dfg.add_edge(2, 9)
    # Loop-carried dependency closing the recurrence (node 9 feeds node 2 of
    # the next iteration).
    dfg.add_edge(9, 2, distance=1)
    dfg.validate()
    return dfg
