"""DOT (Graphviz) export for data-flow graphs.

The exporter is dependency-free (plain text generation) so that DFGs can be
inspected with any Graphviz viewer without adding pygraphviz/pydot to the
runtime requirements.
"""

from __future__ import annotations

from repro.dfg.graph import DFG


def to_dot(dfg: DFG, highlight: dict[int, str] | None = None) -> str:
    """Render ``dfg`` as a DOT digraph string.

    ``highlight`` optionally maps node ids to fill colours (e.g. to colour
    nodes by the PE they were mapped to).
    """
    highlight = highlight or {}
    lines = [f'digraph "{dfg.name}" {{', "  rankdir=TB;", "  node [shape=circle];"]
    for node in dfg.nodes:
        attributes = [f'label="{node.label}"']
        colour = highlight.get(node.node_id)
        if colour:
            attributes.append("style=filled")
            attributes.append(f'fillcolor="{colour}"')
        lines.append(f"  n{node.node_id} [{', '.join(attributes)}];")
    for edge in dfg.edges:
        if edge.distance > 0:
            lines.append(
                f"  n{edge.src} -> n{edge.dst} "
                f'[style=dashed, label="d={edge.distance}"];'
            )
        else:
            lines.append(f"  n{edge.src} -> n{edge.dst};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(dfg: DFG, path: str, highlight: dict[int, str] | None = None) -> None:
    """Write the DOT rendering of ``dfg`` to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(to_dot(dfg, highlight))
