"""Data-flow graph substrate.

A :class:`~repro.dfg.graph.DFG` represents one loop body: nodes are
instructions (with an opcode and an optional constant), edges are data
dependencies, and *back edges* carry a positive iteration ``distance`` to
model loop-carried dependencies.

:mod:`repro.dfg.analysis` implements the schedules the paper relies on —
ASAP, ALAP, mobility — as well as the minimum initiation interval bounds
(ResMII / RecMII) used to seed the iterative search.
"""

from repro.dfg.analysis import (
    alap_schedule,
    asap_schedule,
    critical_path_length,
    minimum_initiation_interval,
    mobility,
    recurrence_mii,
    resource_mii,
)
from repro.dfg.graph import DFG, DFGEdge, DFGNode, Opcode

__all__ = [
    "DFG",
    "DFGEdge",
    "DFGNode",
    "Opcode",
    "asap_schedule",
    "alap_schedule",
    "mobility",
    "critical_path_length",
    "resource_mii",
    "recurrence_mii",
    "minimum_initiation_interval",
]
