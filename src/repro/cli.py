"""Command line interface.

Five sub-commands::

    satmapit map --kernel gsm --rows 4 --cols 4          # map one kernel
    satmapit map --kernel nw --arch-preset mem_edge_4x4  # heterogeneous fabric
    satmapit sweep --sizes 2 3 --timeout 30              # reproduce Fig.6/Tables
    satmapit bench --baseline BENCH_solver.json          # tracked perf suite
    satmapit serve --port 8157 --cache .service-cache    # mapping-as-a-service
    satmapit show --kernel gsm                           # inspect a kernel DFG

``python -m repro.cli`` works identically when the console script is not on
PATH.  ``map --profile`` wraps the run in cProfile and prints the top
cumulative functions — the profiling recipe from DESIGN.md in one flag.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.cgra.architecture import CGRA
from repro.cgra.presets import arch_preset_names, get_arch_preset
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.core.mobility import KernelMobilitySchedule, MobilitySchedule
from repro.core.visualize import render_mapping_report
from repro.dfg.analysis import minimum_initiation_interval
from repro.exceptions import ArchitectureError, FarmError, MappingError
from repro.experiments.perf import (
    DEFAULT_OUTPUT as BENCH_DEFAULT_OUTPUT,
    SUITES as BENCH_SUITES,
    main as perf_main,
)
from repro.experiments.report import write_markdown_report
from repro.partition.cutter import PARTITION_STRATEGIES
from repro.experiments.runner import (
    SAT_MAPIT,
    SCENARIOS,
    ExperimentConfig,
    run_sweep,
)
from repro.experiments.tables import (
    render_figure6,
    render_headline,
    render_mapping_time_table,
    render_preprocess_table,
    render_scenario_comparison,
)
from repro.frontend import compile_loop
from repro.kernels import (
    all_kernel_names,
    get_kernel,
    get_kernel_spec,
    scale_kernel_names,
)
from repro.sat.backend import (
    BackendUnavailableError,
    available_backends,
    validate_backend,
)
from repro.sat.encodings import AMOEncoding
from repro.search import available_strategies
from repro.search.portfolio import PORTFOLIO_VARIANTS


def _load_dfg(args: argparse.Namespace):
    if args.kernel:
        return get_kernel(args.kernel)
    if args.source:
        with open(args.source, encoding="utf-8") as stream:
            return compile_loop(stream.read(), name=args.source)
    raise SystemExit("either --kernel or --source is required")


def _load_cgra(args: argparse.Namespace) -> CGRA:
    """Build the target fabric: spec file > named preset > rows/cols flags.

    A spec file is authoritative (it carries its own register counts);
    presets honour ``--registers``.
    """
    if args.arch_spec:
        return CGRA.from_spec_file(args.arch_spec)
    if args.arch_preset:
        return get_arch_preset(args.arch_preset, registers_per_pe=args.registers)
    return CGRA(rows=args.rows, cols=args.cols, registers_per_pe=args.registers)


def _backend_error(args: argparse.Namespace) -> str | None:
    """One clear line for a bad ``--backend`` / ``--proof`` combination.

    Checked before any mapping work (or worker processes) start: a missing
    external binary, an unknown registry name, or a proof request against a
    solver that cannot emit DRAT.
    """
    try:
        validate_backend(args.backend)
    except (BackendUnavailableError, ValueError) as exc:
        return str(exc)
    if args.proof:
        from repro.sat.external import is_external_backend, resolve_spec

        if is_external_backend(args.backend):
            spec = resolve_spec(args.backend)
            if not spec.supports_proof:
                return (
                    f"backend {args.backend!r} cannot emit DRAT proofs; "
                    "drop --proof or pick a proof-capable solver"
                )
    return None


def _cli_error(exc: BaseException) -> int:
    """The one-line CLI error contract, shared by every sub-command.

    A :class:`MappingError` (unmappable kernel) or
    :class:`BackendUnavailableError` (external solver binary lost, with its
    install hint) prints as a single ``error:`` line on stderr and exits 2 —
    never as a traceback, whether it was raised by ``map``, mid-``sweep``
    in a worker process, or inside the service.
    """
    print(f"error: {exc}", file=sys.stderr)
    return 2


def _cmd_map(args: argparse.Namespace) -> int:
    dfg = _load_dfg(args)
    try:
        cgra = _load_cgra(args)
    except ArchitectureError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    error = _backend_error(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config_fields = dict(
        timeout=args.timeout,
        verbose=args.verbose,
        backend=args.backend,
        amo_encoding=AMOEncoding(args.amo_encoding),
        preprocess=args.preprocess == "on",
        random_seed=args.seed,
        search=args.search,
        search_jobs=args.jobs,
        cache_dir=args.cache,
        cache_max_mb=args.cache_max_mb,
        seed_heuristic=args.seed_heuristic,
        seed_time_budget=args.seed_budget,
        tuner_dir=args.tuner,
        dimacs_dir=args.dimacs_dir,
        reuse_dimacs=args.reuse_dimacs,
        proof=args.proof,
    )
    if args.portfolio_variants:
        config_fields["portfolio_variants"] = tuple(args.portfolio_variants)
    if args.partition:
        return _cmd_map_partition(args, dfg, cgra, config_fields)
    mapper = SatMapItMapper(MapperConfig(**config_fields))
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        outcome = mapper.map(dfg, cgra)
    except (MappingError, BackendUnavailableError) as exc:
        # E.g. the kernel's opcode histogram cannot fit the fabric at any
        # II, or an external solver lane lost its binary mid-run.
        return _cli_error(exc)
    finally:
        if profiler is not None:
            import io
            import pstats

            profiler.disable()
            buffer = io.StringIO()
            pstats.Stats(profiler, stream=buffer).sort_stats(
                "cumulative"
            ).print_stats(25)
            print(buffer.getvalue())
    print(outcome.summary())
    if args.seed_heuristic and not outcome.cache_hit:
        if outcome.seed_ii is not None:
            used = " (final answer)" if outcome.seed_used else ""
            print(
                f"seed: {outcome.seed_mapper} found II={outcome.seed_ii} "
                f"in {outcome.seed_time:.3f}s{used}"
            )
        else:
            print(
                f"seed: no feasible heuristic mapping within "
                f"{outcome.seed_time:.3f}s — unseeded search"
            )
    if outcome.tuner_stats is not None and not outcome.cache_hit:
        if outcome.tuner_consulted:
            lineup = ", ".join(outcome.tuner_lineup or ())
            print(f"tuner: consulted persisted lane stats — line-up: {lineup}")
        else:
            print("tuner: cold start (no lane stats for this problem yet)")
        print(f"tuner: {outcome.tuner_stats.summary()}")
    if outcome.search_strategy == "portfolio" and not outcome.cache_hit:
        winner = (
            f", winning variant: {outcome.portfolio_winner}"
            if outcome.portfolio_winner
            else ""
        )
        print(
            f"portfolio: {outcome.portfolio_launched} worker(s) launched, "
            f"{outcome.portfolio_cancelled} cancelled{winner}"
        )
    if outcome.cache_stats is not None:
        verdict = "hit" if outcome.cache_hit else "miss"
        key = (outcome.cache_key or "")[:12]
        print(f"cache: {verdict} [{key}…] — {outcome.cache_stats.summary()}")
    if args.preprocess == "on":
        print(
            f"preprocessing: -{outcome.pre_clauses_removed} clauses, "
            f"-{outcome.pre_vars_eliminated} vars in "
            f"{outcome.preprocess_time:.3f}s"
        )
    if args.proof and not outcome.cache_hit:
        digests = [
            (attempt.ii, attempt.proof_digest)
            for attempt in outcome.attempts
            if attempt.proof_digest
        ]
        if digests:
            import os

            ii, digest = digests[-1]
            # Without --dimacs-dir an external backend's trace lives in a
            # throwaway temp dir that is gone by now; only advertise paths
            # that survived the run.
            location = (
                f" — trace: {outcome.proof_path}"
                if outcome.proof_path and os.path.exists(outcome.proof_path)
                else ""
            )
            print(
                f"proof: {len(digests)} UNSAT attempt(s) logged, "
                f"last II={ii} digest {digest[:16]}…{location}"
            )
        else:
            print("proof: no UNSAT attempts (nothing to certify)")
    if outcome.mapping is not None:
        print()
        print(render_mapping_report(outcome.mapping, outcome.register_allocation))
        if args.save_mapping:
            with open(args.save_mapping, "w", encoding="utf-8") as stream:
                stream.write(outcome.mapping.to_json())
                stream.write("\n")
            print(f"\nmapping saved to {args.save_mapping}")
        return 0
    return 1


def _cmd_map_partition(
    args: argparse.Namespace, dfg, cgra: CGRA, config_fields: dict
) -> int:
    """The ``map --partition`` path: cut, solve per region, stitch.

    Shares the solver-facing flags with the monolithic path (the
    ``config_fields`` template parameterises every per-partition sub-solve)
    and adds the partition summary lines to the output.
    """
    from repro.partition import PartitionConfig, PartitionMapper

    # The whole-run wall budget belongs to the partition driver, which
    # hands each sub-solve the time remaining.
    timeout = config_fields.pop("timeout", None)
    config = PartitionConfig(
        num_partitions=args.partitions,
        strategy=args.partition_strategy,
        pin_borders=not args.no_pin_borders,
        timeout=timeout,
        base=MapperConfig(**config_fields),
    )
    try:
        outcome = PartitionMapper(config).map(dfg, cgra)
    except (MappingError, BackendUnavailableError) as exc:
        # E.g. more partitions than recurrence-respecting supernodes or
        # fabric rows, a torus fabric, or a lost external solver binary.
        return _cli_error(exc)
    assert outcome.plan is not None
    print(f"partition plan: {outcome.plan.summary()}")
    for region in outcome.regions:
        members = outcome.plan.partitions[region.partition]
        print(f"  region {region.partition}: rows {region.row_start}-"
              f"{region.row_end - 1} ({region.num_pes} PEs, "
              f"{len(members)} nodes)")
    if outcome.border_relaxed:
        relaxed = ", ".join(str(p) for p in outcome.border_relaxed)
        print(f"  border pins relaxed for partition(s): {relaxed}")
    for entry in outcome.repair_log:
        print(f"  repair: {entry}")
    print(outcome.summary())
    if outcome.mapping is not None:
        assert outcome.stitch is not None
        offsets = ", ".join(str(off) for off in outcome.stitch.offsets)
        print(f"stitch: offsets [{offsets}], "
              f"{outcome.stitch.num_route_nodes} route node(s), "
              f"{outcome.stitch.repair_rounds} offset-relaxation round(s)")
        print()
        print(render_mapping_report(outcome.mapping,
                                    outcome.register_allocation))
        if args.save_mapping:
            with open(args.save_mapping, "w", encoding="utf-8") as stream:
                stream.write(outcome.mapping.to_json())
                stream.write("\n")
            print(f"\nmapping saved to {args.save_mapping}")
        return 0
    return 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.farm.faults import FaultPlan

    error = _backend_error(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    faults = None
    if args.chaos:
        try:
            faults = FaultPlan.from_spec(args.chaos)
        except ValueError as exc:
            return _cli_error(exc)
    journal_dir = args.resume if args.resume else args.journal
    config = ExperimentConfig(
        kernels=tuple(args.kernels),
        sizes=tuple(args.sizes),
        timeout=args.timeout,
        pathseeker_repeats=args.pathseeker_repeats,
        backend=args.backend,
        amo_encoding=AMOEncoding(args.amo_encoding),
        preprocess=args.preprocess == "on",
        seed=args.seed,
        scenarios=tuple(args.scenarios),
        search=args.search,
        cache_dir=args.cache,
        cache_max_mb=args.cache_max_mb,
        seed_heuristic=args.seed_heuristic,
        tuner_dir=args.tuner,
        dimacs_dir=args.dimacs_dir,
        reuse_dimacs=args.reuse_dimacs,
        proof=args.proof,
        max_retries=args.max_retries,
        lease_ttl=args.lease_ttl,
    )
    print(f"running sweep: {len(config.kernels)} kernels x "
          f"{len(config.sizes)} sizes x {len(config.mappers)} mappers"
          + (f" x {len(config.scenarios)} scenarios"
             if len(config.scenarios) > 1 else "")
          + (f" ({args.jobs} parallel jobs)" if args.jobs > 1 else "")
          + (f", resuming {args.resume}" if args.resume else ""))
    try:
        sweep = run_sweep(
            config,
            progress=True,
            jobs=args.jobs,
            journal_dir=journal_dir,
            resume=bool(args.resume),
            faults=faults,
        )
    except (MappingError, BackendUnavailableError, FarmError) as exc:
        # The up-front validation cannot catch everything: an external
        # solver binary can vanish (or break) between the check and a
        # mid-sweep run, a scenario fabric can reject a kernel, and a
        # --resume can point at a journal from a different configuration.
        # All must surface exactly like the ``map`` path — one line,
        # install hint intact — not as a worker-process traceback.
        return _cli_error(exc)
    if sweep.farm is not None:
        print(f"\nfarm: {sweep.farm.summary()}")
        for record in sweep.records:
            if record.quarantined:
                print(f"  quarantined: {record.kernel} {record.size}x"
                      f"{record.size} {record.mapper} [{record.scenario}]: "
                      f"{record.failure}")
    if config.cache_dir:
        hits = sum(1 for r in sweep.records if r.cache_hit)
        sat_runs = sum(1 for r in sweep.records if r.mapper == SAT_MAPIT)
        print(f"\nmapping cache: {hits}/{sat_runs} SAT-MapIt runs served "
              f"from {config.cache_dir}")
    print()
    print(render_headline(sweep))
    for size in config.sizes:
        print()
        print(render_figure6(sweep, size))
    for index, size in enumerate(config.sizes):
        print()
        print(render_mapping_time_table(sweep, size, number=str(index + 1)))
    if len(config.scenarios) > 1:
        for size in config.sizes:
            print()
            print(render_scenario_comparison(sweep, size))
    if config.preprocess:
        for size in config.sizes:
            print()
            print(render_preprocess_table(sweep, size))
    if args.write_report:
        write_markdown_report(sweep, args.write_report)
        print(f"\nreport written to {args.write_report}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Delegate to the perf harness (same engine as benchmarks/perf_harness.py)."""
    argv = ["--suite", args.suite, "--repeats", str(args.repeats),
            "--out", args.out, "--max-slowdown", str(args.max_slowdown)]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.scale:
        argv += ["--scale"]
    return perf_main(argv)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived mapping service (see :mod:`repro.service`)."""
    # Imported here: the service pulls in asyncio machinery no batch
    # sub-command needs.
    from repro.service import JobManager, ServiceLimits, run_service

    limits = ServiceLimits(
        default_timeout=args.default_timeout,
        max_timeout=args.max_timeout,
    )
    manager = JobManager(
        pool_size=args.pool,
        cache_dir=args.cache,
        cache_max_mb=args.cache_max_mb,
        tuner_dir=args.tuner,
        limits=limits,
    )
    return run_service(manager, host=args.host, port=args.port)


def _cmd_show(args: argparse.Namespace) -> int:
    dfg = _load_dfg(args)
    if args.kernel:
        spec = get_kernel_spec(args.kernel)
        print(f"kernel {spec.name} ({spec.suite}): {spec.description}")
        print(spec.source)
    print(dfg)
    print(f"critical path: {MobilitySchedule.build(dfg).length} cycles")
    for size in args.sizes:
        cgra = CGRA.square(size)
        print(f"MII on {size}x{size}: {minimum_initiation_interval(dfg, cgra.num_pes)}")
    mobility = MobilitySchedule.build(dfg)
    print()
    print(mobility)
    if args.ii:
        print()
        print(KernelMobilitySchedule.build(mobility, args.ii))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the full ``satmapit`` argument parser (all sub-commands)."""
    parser = argparse.ArgumentParser(
        prog="satmapit",
        description="SAT-MapIt: SAT-based modulo scheduling mapper for CGRAs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    map_cmd = sub.add_parser("map", help="map one kernel onto a CGRA")
    map_cmd.add_argument("--kernel",
                         choices=all_kernel_names() + scale_kernel_names(),
                         help="benchmark kernel (paper suite plus the "
                              "big-fabric scale kernels)")
    map_cmd.add_argument("--source", help="path to a loop-kernel source file")
    map_cmd.add_argument("--rows", type=int, default=4)
    map_cmd.add_argument("--cols", type=int, default=4)
    map_cmd.add_argument("--registers", type=int, default=4)
    arch = map_cmd.add_mutually_exclusive_group()
    arch.add_argument("--arch-preset", choices=arch_preset_names(),
                      help="named heterogeneous fabric preset "
                           "(overrides --rows/--cols, honours --registers)")
    arch.add_argument("--arch-spec", metavar="FILE",
                      help="JSON architecture spec file (see README.md; "
                           "overrides --rows/--cols/--registers)")
    map_cmd.add_argument("--save-mapping", metavar="PATH",
                         help="write the found mapping as JSON for archiving "
                              "and simulator replay")
    map_cmd.add_argument("--timeout", type=float, default=120.0)
    map_cmd.add_argument("--backend", default="cdcl", metavar="NAME",
                         help="solver backend: one of "
                              f"{', '.join(available_backends())}, or "
                              "'external:/path/to/solver' for any "
                              "DIMACS-speaking binary (default: cdcl)")
    map_cmd.add_argument("--dimacs-dir", metavar="DIR",
                         help="keep every DIMACS export (and DRAT trace) "
                              "under DIR instead of a throwaway temp dir; "
                              "files are content-addressed, so reruns of "
                              "the same formula land on the same name")
    map_cmd.add_argument("--reuse-dimacs", action="store_true",
                         help="with --dimacs-dir: skip rewriting a CNF file "
                              "that already exists under its content hash")
    map_cmd.add_argument("--proof", action="store_true",
                         help="log a DRAT proof for every UNSAT attempt "
                              "(internal cdcl backend and proof-capable "
                              "external solvers); attempt digests are "
                              "recorded in the outcome and mapping cache")
    map_cmd.add_argument("--seed", type=int, default=None,
                         help="random seed forwarded to the solver")
    map_cmd.add_argument("--amo-encoding", choices=[e.value for e in AMOEncoding],
                         default=AMOEncoding.AUTO.value,
                         help="at-most-one encoding (default: auto — "
                              "pairwise for small groups, sequential above)")
    map_cmd.add_argument("--preprocess", choices=["on", "off"], default="off",
                         help="SatELite-style CNF simplification before "
                              "solving, with model reconstruction "
                              "(default: off)")
    map_cmd.add_argument("--search", choices=available_strategies(),
                         default="ladder",
                         help="II search strategy: the paper's sequential "
                              "ladder, bisection with UNSAT lower bounds, "
                              "or a process-parallel portfolio "
                              "(default: ladder)")
    map_cmd.add_argument("--jobs", type=int, default=2,
                         help="worker processes for --search portfolio "
                              "(default: 2)")
    map_cmd.add_argument("--portfolio-variants", nargs="+",
                         choices=sorted(PORTFOLIO_VARIANTS),
                         help="solver-configuration variants the portfolio "
                              "races at each II (default: no-probe, "
                              "default, pairwise — trimmed to the core "
                              "count)")
    map_cmd.add_argument("--cache", metavar="DIR",
                         help="persistent mapping-cache directory: "
                              "successful runs are stored keyed by "
                              "(DFG, fabric, config, solver version) and "
                              "identical future runs return instantly")
    map_cmd.add_argument("--cache-max-mb", type=float, default=None,
                         metavar="MB",
                         help="size budget for --cache; oldest entries are "
                              "evicted first once the directory exceeds it "
                              "(default: unbounded)")
    map_cmd.add_argument("--seed-heuristic", action="store_true",
                         help="run the budgeted RAMP/PathSeeker pre-pass and "
                              "use its validated mapping as a feasible II "
                              "upper bound (and anytime answer on timeout)")
    map_cmd.add_argument("--seed-budget", type=float, default=2.0,
                         metavar="SECONDS",
                         help="wall budget for --seed-heuristic "
                              "(default: 2.0)")
    map_cmd.add_argument("--tuner", metavar="DIR",
                         help="persistent lane-tuner store: the portfolio "
                              "records per-lane win/loss/wall statistics "
                              "keyed by (kernel shape, fabric) and consults "
                              "them to pick its line-up on later runs")
    map_cmd.add_argument("--partition", action="store_true",
                         help="partition-and-stitch mode for big fabrics: "
                              "cut the DFG into balanced partitions "
                              "(recurrence cycles intact), map each onto "
                              "its own row strip of the fabric as an "
                              "independent SAT problem, then stitch with "
                              "routed cut edges and validate end to end")
    map_cmd.add_argument("--partitions", type=int, default=2, metavar="N",
                         help="number of partitions / fabric regions for "
                              "--partition (default: 2)")
    map_cmd.add_argument("--partition-strategy",
                         choices=list(PARTITION_STRATEGIES), default="topo",
                         help="edge-cut heuristic for --partition: 'topo' "
                              "packs a topological order of the recurrence "
                              "condensation into balanced chunks, 'refine' "
                              "adds a cut-reducing boundary pass "
                              "(default: topo)")
    map_cmd.add_argument("--no-pin-borders", action="store_true",
                         help="with --partition: do not pin cut-edge "
                              "endpoints to region border rows (longer "
                              "routes, but more placement freedom per "
                              "partition)")
    map_cmd.add_argument("--profile", action="store_true",
                         help="run under cProfile and print the top "
                              "cumulative functions after the mapping")
    map_cmd.add_argument("--verbose", action="store_true")
    map_cmd.set_defaults(func=_cmd_map)

    sweep_cmd = sub.add_parser("sweep", help="reproduce Figure 6 and Tables I-IV")
    sweep_cmd.add_argument("--kernels", nargs="+", default=all_kernel_names(),
                           choices=all_kernel_names())
    sweep_cmd.add_argument("--sizes", nargs="+", type=int, default=[2, 3, 4, 5])
    sweep_cmd.add_argument("--timeout", type=float, default=60.0,
                           help="per-run timeout in seconds (paper: 4000)")
    sweep_cmd.add_argument("--pathseeker-repeats", type=int, default=3)
    sweep_cmd.add_argument("--jobs", type=int, default=1,
                           help="run the sweep on N parallel worker "
                                "processes (the fault-tolerant farm)")
    sweep_cmd.add_argument("--journal", metavar="DIR",
                           help="keep the farm's work journal in DIR so a "
                                "killed sweep can be picked up again with "
                                "--resume DIR")
    sweep_cmd.add_argument("--resume", metavar="DIR",
                           help="resume the journalled sweep in DIR: "
                                "finished items are served from the "
                                "journal, only unfinished ones are run "
                                "(the sweep flags must match the original "
                                "invocation)")
    sweep_cmd.add_argument("--max-retries", type=int, default=3,
                           help="transient-failure retries per work item "
                                "before it is quarantined as poison "
                                "(default: 3)")
    sweep_cmd.add_argument("--lease-ttl", type=float, default=60.0,
                           metavar="SECONDS",
                           help="lease TTL: a worker that stops "
                                "heartbeating this long is presumed dead "
                                "and its item is requeued (default: 60)")
    sweep_cmd.add_argument("--chaos", metavar="SPEC",
                           help="inject deterministic faults (testing), "
                                "e.g. 'kill-after=2,backend-rate=0.5'; "
                                "same grammar as the REPRO_CHAOS "
                                "environment variable")
    sweep_cmd.add_argument("--backend", default="cdcl", metavar="NAME",
                           help="solver backend for SAT-MapIt: one of "
                                f"{', '.join(available_backends())}, or "
                                "'external:/path/to/solver' "
                                "(default: cdcl)")
    sweep_cmd.add_argument("--dimacs-dir", metavar="DIR",
                           help="keep DIMACS exports / DRAT traces under DIR "
                                "(content-addressed filenames)")
    sweep_cmd.add_argument("--reuse-dimacs", action="store_true",
                           help="with --dimacs-dir: skip rewriting CNF files "
                                "that already exist under their content hash")
    sweep_cmd.add_argument("--proof", action="store_true",
                           help="log DRAT proofs for UNSAT attempts in the "
                                "SAT-MapIt runs")
    sweep_cmd.add_argument("--seed", type=int, default=None,
                           help="random seed forwarded to the SAT-MapIt solver")
    sweep_cmd.add_argument("--amo-encoding", choices=[e.value for e in AMOEncoding],
                           default=AMOEncoding.AUTO.value,
                           help="at-most-one encoding (default: auto — "
                                "pairwise for small groups, sequential above)")
    sweep_cmd.add_argument("--preprocess", choices=["on", "off"], default="off",
                           help="CNF preprocessing for the SAT-MapIt runs; "
                                "the sweep then prints the preprocessing "
                                "ablation table (default: off)")
    sweep_cmd.add_argument("--scenarios", nargs="+", choices=list(SCENARIOS),
                           default=["homogeneous"],
                           help="architecture scenarios to sweep "
                                "(default: homogeneous)")
    sweep_cmd.add_argument("--search", choices=available_strategies(),
                           default="ladder",
                           help="II search strategy for the SAT-MapIt runs "
                                "(default: ladder)")
    sweep_cmd.add_argument("--cache", metavar="DIR",
                           help="persistent mapping-cache directory shared "
                                "by all SAT-MapIt runs of the sweep (reused "
                                "across scenarios and repeat sweeps)")
    sweep_cmd.add_argument("--cache-max-mb", type=float, default=None,
                           metavar="MB",
                           help="size budget for --cache; oldest entries "
                                "evicted first (default: unbounded)")
    sweep_cmd.add_argument("--seed-heuristic", action="store_true",
                           help="heuristic II-seeding pre-pass before every "
                                "SAT-MapIt search")
    sweep_cmd.add_argument("--tuner", metavar="DIR",
                           help="persistent lane-tuner store shared by all "
                                "portfolio runs of the sweep")
    sweep_cmd.add_argument("--write-report", metavar="PATH",
                           help="write EXPERIMENTS-style Markdown report to PATH")
    sweep_cmd.set_defaults(func=_cmd_sweep)

    bench_cmd = sub.add_parser(
        "bench",
        help="run the pinned perf suite and write BENCH_solver.json",
    )
    bench_cmd.add_argument("--suite", choices=sorted(BENCH_SUITES),
                           default="default")
    bench_cmd.add_argument("--repeats", type=int, default=3,
                           help="runs per case; the median wall time is kept")
    bench_cmd.add_argument("--out", default=BENCH_DEFAULT_OUTPUT,
                           help="output JSON path "
                                f"(default: {BENCH_DEFAULT_OUTPUT})")
    bench_cmd.add_argument("--baseline", metavar="FILE",
                           help="compare against a previous BENCH_solver.json "
                                "and fail on gross slowdown or II mismatch")
    bench_cmd.add_argument("--scale", action="store_true",
                           help="also run the partition-vs-exact "
                                "scalability panel (minutes-scale)")
    bench_cmd.add_argument("--max-slowdown", type=float, default=3.0,
                           help="per-case wall-time ratio failing the "
                                "--baseline gate (default: 3.0)")
    bench_cmd.set_defaults(func=_cmd_bench)

    serve_cmd = sub.add_parser(
        "serve",
        help="run the long-lived mapping service (POST /map over HTTP)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8157,
                           help="TCP port (0 picks a free one; default: 8157)")
    serve_cmd.add_argument("--pool", type=int, default=2,
                           help="mapping solves run concurrently, each in "
                                "its own worker process (default: 2)")
    serve_cmd.add_argument("--cache", metavar="DIR",
                           default=".service-cache",
                           help="mapping-cache root; each tenant gets its "
                                "own namespace subdirectory "
                                "(default: .service-cache)")
    serve_cmd.add_argument("--cache-max-mb", type=float, default=None,
                           metavar="MB",
                           help="per-tenant cache size budget; oldest "
                                "entries evicted first (default: unbounded)")
    serve_cmd.add_argument("--tuner", metavar="DIR",
                           help="persistent lane-tuner store shared by all "
                                "portfolio-backed requests")
    serve_cmd.add_argument("--default-timeout", type=float, default=60.0,
                           metavar="SECONDS",
                           help="wall budget for requests that set none "
                                "(default: 60)")
    serve_cmd.add_argument("--max-timeout", type=float, default=600.0,
                           metavar="SECONDS",
                           help="hard ceiling on any request's timeout "
                                "(default: 600)")
    serve_cmd.set_defaults(func=_cmd_serve)

    show_cmd = sub.add_parser("show", help="inspect a kernel DFG and its schedules")
    show_cmd.add_argument("--kernel",
                          choices=all_kernel_names() + scale_kernel_names())
    show_cmd.add_argument("--source", help="path to a loop-kernel source file")
    show_cmd.add_argument("--sizes", nargs="+", type=int, default=[2, 3, 4, 5])
    show_cmd.add_argument("--ii", type=int, help="also print the KMS for this II")
    show_cmd.set_defaults(func=_cmd_show)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: parse ``argv`` and dispatch to the sub-command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
