"""The benchmark kernel suite (MiBench / Rodinia loop bodies).

The paper evaluates eleven loop kernels extracted from MiBench and Rodinia by
an LLVM pass.  Those exact DFGs are not redistributable here, so each kernel
is re-expressed in the front-end's loop language with the same computational
character (bit mixing for the SHA family, multiply-accumulate chains for
backprop, stencils for hotspot, table walks for patricia, …) and a size that
reproduces the paper's relative difficulty ordering: nw / srand / basicmath /
stringsearch are small, sha / gsm / bitcount / sha2 / hotspot are mid-sized,
and patricia / backprop are the large kernels that defeat the heuristics on a
2x2 fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.dfg.graph import DFG
from repro.frontend import compile_loop


@dataclass(frozen=True)
class KernelSpec:
    """A benchmark kernel: name, loop source and provenance notes."""

    name: str
    suite: str
    description: str
    source: str


_KERNELS: dict[str, KernelSpec] = {}


def _register(name: str, suite: str, description: str, source: str) -> None:
    _KERNELS[name] = KernelSpec(name=name, suite=suite, description=description,
                                source=source)


# ----------------------------------------------------------------------
# Small kernels (low II everywhere)
# ----------------------------------------------------------------------
_register(
    "nw",
    "rodinia",
    "Needleman-Wunsch inner loop: three-way max of neighbouring scores.",
    """
    up = score[i] + gap
    left = score[i + 1] + gap
    diag = score[i + 2] + sub[i]
    best = up > left ? up : left
    best2 = best > diag ? best : diag
    out[i] = best2
    """,
)

_register(
    "srand",
    "mibench",
    "Linear congruential pseudo-random number generator step.",
    """
    seed = seed * 1103515245 + 12345
    out[i] = (seed >> 16) & 32767
    """,
)

_register(
    "basicmath",
    "mibench",
    "Cubic-solver style polynomial evaluation step.",
    """
    x = in[i]
    acc = ((a * x + b) * x + c) * x + d
    out[i] = acc
    """,
)

_register(
    "stringsearch",
    "mibench",
    "Boyer-Moore-Horspool style shift-table comparison step.",
    """
    ch = text[i]
    pat = pattern[i]
    diff = ch ^ pat
    miss = diff == 0 ? 0 : 1
    skip = skip + (miss << 1)
    out[i] = skip
    """,
)

# ----------------------------------------------------------------------
# Mid-sized kernels
# ----------------------------------------------------------------------
_register(
    "gsm",
    "mibench",
    "GSM LTP filtering: saturated multiply-accumulate over lag window.",
    """
    s0 = wt[i] * dp[i]
    s1 = wt[i + 1] * dp[i + 1]
    s2 = wt[i + 2] * dp[i + 2]
    acc0 = s0 + s1
    acc1 = acc0 + s2
    sat = acc1 > 32767 ? 32767 : acc1
    lo = 0 - 32768
    sat2 = sat < lo ? lo : sat
    out[i] = sat2
    """,
)

_register(
    "bitcount",
    "mibench",
    "Parallel population count (bit tricks).",
    """
    x = in[i]
    a = x - ((x >> 1) & 1431655765)
    b = (a & 858993459) + ((a >> 2) & 858993459)
    c = (b + (b >> 4)) & 252645135
    n = (c * 16843009) >> 24
    total = total + n
    out[i] = total
    """,
)

_register(
    "sha",
    "mibench",
    "SHA-1 round: rotate-xor mixing with round constant.",
    """
    a = state[i]
    b = state[i + 1]
    c = state[i + 2]
    d = state[i + 3]
    e = state[i + 4]
    f = (b & c) | ((b ^ 4294967295) & d)
    rot = (a << 5) | (a >> 27)
    t0 = rot + f
    t1 = t0 + e
    t2 = t1 + w[i]
    temp = t2 + 1518500249
    out[i] = temp
    bnew = (b << 30) | (b >> 2)
    out[i + 1] = bnew
    """,
)

_register(
    "hotspot",
    "rodinia",
    "Hotspot thermal stencil: weighted 5-point neighbourhood update.",
    """
    centre = temp[i]
    north = temp[i + 1]
    south = temp[i + 2]
    east = temp[i + 3]
    west = temp[i + 4]
    power_c = power[i]
    vertical = north + south - (centre << 1)
    horizontal = east + west - (centre << 1)
    v_term = vertical * ry
    h_term = horizontal * rx
    p_term = power_c + (amb - centre) * rz
    sum0 = v_term + h_term
    sum1 = sum0 + p_term
    delta = sum1 * step
    out[i] = centre + delta
    """,
)

_register(
    "sha2",
    "mibench",
    "SHA-256 style round: sigma functions and double word mixing.",
    """
    a = state[i]
    b = state[i + 1]
    c = state[i + 2]
    e = state[i + 3]
    f = state[i + 4]
    g = state[i + 5]
    h = state[i + 6]
    s1 = ((e >> 6) | (e << 26)) ^ ((e >> 11) | (e << 21))
    ch = (e & f) ^ ((e ^ 4294967295) & g)
    t1 = h + s1 + ch + k[i] + w[i]
    s0 = ((a >> 2) | (a << 30)) ^ ((a >> 13) | (a << 19))
    maj = (a & b) ^ (a & c) ^ (b & c)
    t2 = s0 + maj
    out[i] = t1 + t2
    out[i + 1] = t1
    """,
)

# ----------------------------------------------------------------------
# Large kernels (defeat the heuristics on tight fabrics)
# ----------------------------------------------------------------------
_register(
    "patricia",
    "mibench",
    "Patricia trie bit-index walk: mask extraction, comparisons and selects "
    "over two candidate child pointers.",
    """
    key = keys[i]
    bit = bits[i]
    mask0 = 1 << (bit & 31)
    probe = key & mask0
    go_right = probe == 0 ? 0 : 1
    left_child = childl[i]
    right_child = childr[i]
    next0 = go_right == 0 ? left_child : right_child
    key2 = keys[i + 1]
    bit2 = bits[i + 1]
    mask1 = 1 << (bit2 & 31)
    probe2 = key2 & mask1
    go_right2 = probe2 == 0 ? 0 : 1
    left2 = childl[i + 1]
    right2 = childr[i + 1]
    next1 = go_right2 == 0 ? left2 : right2
    match = (next0 ^ next1) == 0 ? 1 : 0
    found = found + match
    out[i] = next0
    out[i + 1] = next1
    """,
)

_register(
    "backprop",
    "rodinia",
    "Back-propagation weight adjustment: error-weighted multiply-accumulate "
    "over four unrolled connections plus momentum update.",
    """
    delta = deltas[i]
    w0 = weights[i]
    w1 = weights[i + 1]
    w2 = weights[i + 2]
    w3 = weights[i + 3]
    x0 = units[i]
    x1 = units[i + 1]
    x2 = units[i + 2]
    x3 = units[i + 3]
    g0 = delta * x0
    g1 = delta * x1
    g2 = delta * x2
    g3 = delta * x3
    m0 = prevw[i] * momentum
    m1 = prevw[i + 1] * momentum
    adj0 = (eta * g0) + m0
    adj1 = (eta * g1) + m1
    adj2 = eta * g2
    adj3 = eta * g3
    out[i] = w0 + adj0
    out[i + 1] = w1 + adj1
    out[i + 2] = w2 + adj2
    out[i + 3] = w3 + adj3
    err = err + g0
    """,
)


# ----------------------------------------------------------------------
# Scale kernels (beyond the paper's suite; stress big fabrics)
# ----------------------------------------------------------------------
# These are not part of the paper's eleven-kernel evaluation and therefore
# stay out of ``all_kernel_names()``; the partition-and-stitch scalability
# panel uses them to pose problems a monolithic encoding cannot finish.
_register(
    "conv3x3",
    "scale",
    "3x3 convolution tap: nine loads, nine constant-weight multiplies and "
    "an eight-add reduction tree.",
    """
    p0 = img[i] * 1
    p1 = img[i + 1] * 2
    p2 = img[i + 2] * 1
    p3 = img[i + 3] * 2
    p4 = img[i + 4] * 4
    p5 = img[i + 5] * 2
    p6 = img[i + 6] * 1
    p7 = img[i + 7] * 2
    p8 = img[i + 8] * 1
    r0 = p0 + p1
    r1 = p2 + p3
    r2 = p4 + p5
    r3 = p6 + p7
    s0 = r0 + r1
    s1 = r2 + r3
    s2 = s0 + s1
    s3 = s2 + p8
    out[i] = s3 >> 4
    """,
)

_register(
    "fir16",
    "scale",
    "16-tap FIR filter with accumulator recurrence: sixteen loads, sixteen "
    "constant-coefficient multiplies, a fifteen-add reduction and a "
    "loop-carried running sum.",
    """
    t0 = x[i] * 3
    t1 = x[i + 1] * 7
    t2 = x[i + 2] * 11
    t3 = x[i + 3] * 17
    t4 = x[i + 4] * 23
    t5 = x[i + 5] * 29
    t6 = x[i + 6] * 37
    t7 = x[i + 7] * 41
    t8 = x[i + 8] * 43
    t9 = x[i + 9] * 47
    t10 = x[i + 10] * 53
    t11 = x[i + 11] * 59
    t12 = x[i + 12] * 61
    t13 = x[i + 13] * 67
    t14 = x[i + 14] * 71
    t15 = x[i + 15] * 73
    a0 = t0 + t1
    a1 = t2 + t3
    a2 = t4 + t5
    a3 = t6 + t7
    a4 = t8 + t9
    a5 = t10 + t11
    a6 = t12 + t13
    a7 = t14 + t15
    b0 = a0 + a1
    b1 = a2 + a3
    b2 = a4 + a5
    b3 = a6 + a7
    c0 = b0 + b1
    c1 = b2 + b3
    tap_sum = c0 + c1
    acc = acc + tap_sum
    out[i] = acc
    """,
)


# ----------------------------------------------------------------------
# Public accessors
# ----------------------------------------------------------------------
def all_kernel_names() -> list[str]:
    """Names of the benchmark kernels, in the paper's presentation order."""
    order = [
        "sha", "gsm", "patricia", "bitcount", "backprop", "nw", "srand",
        "hotspot", "sha2", "basicmath", "stringsearch",
    ]
    return [name for name in order if name in _KERNELS]


def scale_kernel_names() -> list[str]:
    """Names of the extra scale kernels (not part of the paper's suite)."""
    return sorted(
        name for name, spec in _KERNELS.items() if spec.suite == "scale"
    )


def get_kernel_spec(name: str) -> KernelSpec:
    """Look up a kernel's specification (source text and provenance)."""
    try:
        return _KERNELS[name]
    except KeyError as exc:
        available = all_kernel_names() + scale_kernel_names()
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(available)}"
        ) from exc


@lru_cache(maxsize=None)
def get_kernel(name: str) -> DFG:
    """Compile a benchmark kernel to its DFG (cached)."""
    spec = get_kernel_spec(name)
    return compile_loop(spec.source, name=spec.name)


def all_kernels() -> dict[str, DFG]:
    """All benchmark kernels compiled to DFGs."""
    return {name: get_kernel(name) for name in all_kernel_names()}
