"""Benchmark loop kernels and synthetic DFG generators.

:mod:`repro.kernels.suite` contains loop bodies modelled on the eleven
MiBench / Rodinia kernels the paper evaluates (sha, gsm, patricia, bitcount,
backprop, nw, srand, hotspot, sha2, basicmath, stringsearch); they are written
in the front-end's loop language and compiled to DFGs on demand.

:mod:`repro.kernels.generators` produces random DFGs (layered DAGs with
optional accumulator recurrences) used by property-based tests and by the
scalability ablations.
"""

from repro.kernels.generators import random_dfg, random_layered_dfg
from repro.kernels.suite import (
    KernelSpec,
    all_kernel_names,
    all_kernels,
    get_kernel,
    get_kernel_spec,
    scale_kernel_names,
)

__all__ = [
    "KernelSpec",
    "all_kernel_names",
    "all_kernels",
    "get_kernel",
    "get_kernel_spec",
    "random_dfg",
    "random_layered_dfg",
    "scale_kernel_names",
]
