"""Synthetic DFG generators.

Used by property-based tests (random but structurally valid DFGs) and by the
scalability ablation benchmarks (layered DAGs with a controlled node count,
depth and fan-in, optionally closed by an accumulator recurrence).
"""

from __future__ import annotations

import random

from repro.dfg.graph import DFG, Opcode

_ALU_OPCODES = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
)


def random_dfg(
    num_nodes: int,
    edge_probability: float = 0.25,
    back_edge_probability: float = 0.15,
    seed: int | None = None,
    name: str | None = None,
) -> DFG:
    """A random DFG whose forward edges follow the node-id order.

    Forward edges only go from lower to higher node ids, which guarantees the
    forward subgraph is acyclic; back edges (distance 1) go the other way with
    probability ``back_edge_probability`` per node pair that already has a
    forward path, modelling accumulator-style recurrences.
    """
    rng = random.Random(seed)
    dfg = DFG(name=name or f"random_{num_nodes}_{seed}")
    for node_id in range(num_nodes):
        dfg.add_node(node_id, rng.choice(_ALU_OPCODES))
    for dst in range(1, num_nodes):
        # Ensure connectivity: every node has at least one predecessor.
        src = rng.randrange(dst)
        dfg.add_edge(src, dst)
        for other in range(dst):
            if other != src and rng.random() < edge_probability / max(1, dst):
                dfg.add_edge(other, dst)
    # A few loop-carried dependencies.
    for src in range(1, num_nodes):
        if rng.random() < back_edge_probability:
            dst = rng.randrange(src)
            dfg.add_edge(src, dst, distance=1)
    dfg.validate()
    return dfg


def random_layered_dfg(
    num_layers: int,
    width: int,
    fan_in: int = 2,
    with_recurrence: bool = True,
    seed: int | None = None,
    name: str | None = None,
) -> DFG:
    """A layered DAG: every node reads ``fan_in`` values from the layer above.

    Layered DFGs are the typical shape of unrolled arithmetic kernels and are
    what the scalability benchmarks sweep over (``num_layers * width`` nodes,
    critical path ``num_layers``).
    """
    rng = random.Random(seed)
    dfg = DFG(name=name or f"layered_{num_layers}x{width}_{seed}")
    layers: list[list[int]] = []
    node_id = 0
    for layer_index in range(num_layers):
        layer: list[int] = []
        for _ in range(width):
            node = dfg.add_node(node_id, rng.choice(_ALU_OPCODES))
            layer.append(node.node_id)
            node_id += 1
        if layer_index > 0:
            for dst in layer:
                sources = rng.sample(layers[-1], k=min(fan_in, len(layers[-1])))
                for src in sources:
                    dfg.add_edge(src, dst)
        layers.append(layer)
    if with_recurrence and num_layers > 1:
        # Close an accumulator loop from a last-layer node to a first-layer one.
        dfg.add_edge(layers[-1][0], layers[0][0], distance=1)
    dfg.validate()
    return dfg
