"""EXPERIMENTS.md generation.

Renders a complete Markdown report for a sweep: the Figure-6 II comparison
per mesh size, the Tables I–IV mapping times, the Section-V headline numbers
and the paper-vs-measured commentary.  The repository's committed
EXPERIMENTS.md is produced by this module (see ``benchmarks/`` and
``python -m repro.cli sweep --write-report``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import HOMOGENEOUS, SAT_MAPIT, SweepResult
from repro.experiments.tables import (
    figure6_rows,
    headline_winrate,
    mapping_time_rows,
    never_worse,
    preprocess_rows,
    scenario_rows,
)

_TABLE_NUMBERS = {2: "I", 3: "II", 4: "III", 5: "IV"}

_PAPER_EXPECTATIONS = """\
The paper's evaluation (Section V) makes three claims, restated here as the
shapes this reproduction checks:

1. **SAT-MapIt achieves better IIs** (Figure 6): its II is never worse than
   the best of RAMP/PathSeeker, strictly better in a substantial fraction of
   the 44 (benchmark, mesh) pairs (47.72 % in the paper), including cases
   (``patricia``, ``backprop`` on 2x2) where the heuristics find no mapping
   at all.
2. **SAT-MapIt uses tight resources better**: the advantage is concentrated
   on the smallest (2x2) fabric.
3. **SAT-MapIt is faster when runtimes are high** (Tables I–IV): it is often
   slower on the easy cases (sub-second heuristic runs) but dramatically
   faster on the cases where the heuristics blow up or time out.

Absolute IIs and times differ from the paper because the DFGs are produced by
this repository's own front-end (not the authors' LLVM pass), the SAT backend
is the bundled pure-Python CDCL solver (not Z3), and the heuristics are
re-implementations rather than the original binaries (see DESIGN.md).
"""


@dataclass(frozen=True)
class ReportOptions:
    """Rendering options for the Markdown report."""

    title: str = "EXPERIMENTS — SAT-MapIt reproduction"
    include_expectations: bool = True


def solver_reuse_totals(sweep: SweepResult) -> tuple[int, int]:
    """Aggregate solver-reuse metrics over the SAT-MapIt runs of a sweep.

    Returns ``(incremental_resolves, learned_carried)``: solve calls served
    by the persistent backend without re-encoding the base formula, and
    learned clauses carried across (II, slack) attempt boundaries.
    """
    records = [entry for entry in sweep.records if entry.mapper == SAT_MAPIT]
    resolves = sum(entry.incremental_resolves for entry in records)
    carried = sum(entry.learned_carried for entry in records)
    return resolves, carried


def flat_core_totals(sweep: SweepResult) -> tuple[int, int, int, int, int]:
    """Aggregate flat-arena solver-core counters over the SAT-MapIt runs.

    Returns ``(binary_propagations, blocker_skips, peak_arena_bytes,
    emission_batches, duplicate_clauses_dropped)``.
    """
    records = [entry for entry in sweep.records if entry.mapper == SAT_MAPIT]
    return (
        sum(entry.binary_propagations for entry in records),
        sum(entry.blocker_skips for entry in records),
        max((entry.arena_bytes for entry in records), default=0),
        sum(entry.emission_batches for entry in records),
        sum(entry.duplicate_clauses_dropped for entry in records),
    )


def _markdown_figure6(sweep: SweepResult, size: int) -> list[str]:
    lines = [
        f"### Figure 6 — achieved II on the {size}x{size} CGRA",
        "",
        "| benchmark | best of RAMP/PathSeeker | SAT-MapIt | SAT-MapIt wins |",
        "|---|---|---|---|",
    ]
    for row in figure6_rows(sweep, size):
        soa = row.soa_ii if row.soa_ii is not None else f"✗ ({row.soa_status})"
        sat = row.satmapit_ii if row.satmapit_ii is not None else f"✗ ({row.satmapit_status})"
        verdict = "yes" if row.satmapit_wins else ("tie" if row.tie else "no")
        lines.append(f"| {row.kernel} | {soa} | {sat} | {verdict} |")
    lines.append("")
    return lines


def _markdown_times(sweep: SweepResult, size: int) -> list[str]:
    number = _TABLE_NUMBERS.get(size, "")
    lines = [
        f"### Table {number} — mapping time (seconds) on the {size}x{size} CGRA",
        "",
        "| benchmark | RAMP/PathSeeker (best) | SAT-MapIt | Δ |",
        "|---|---|---|---|",
    ]
    for row in mapping_time_rows(sweep, size):
        lines.append(
            f"| {row.kernel} | {row.soa_time:.2f} | {row.satmapit_time:.2f} | "
            f"{row.delta:+.2f} |"
        )
    lines.append("")
    return lines


def _markdown_scenarios(sweep: SweepResult, size: int) -> list[str]:
    scenarios = sweep.config.scenarios or (HOMOGENEOUS,)
    lines = [
        f"### Heterogeneous fabrics — SAT-MapIt II on the {size}x{size} mesh",
        "",
        "Capability-constrained fabrics (memory ports only on the boundary,"
        " sparse multipliers) versus the paper's homogeneous array.  ΔII is"
        " the capability cost of the first heterogeneous scenario.",
        "",
        "| benchmark | " + " | ".join(scenarios) + " | ΔII |",
        "|---" * (len(scenarios) + 2) + "|",
    ]
    for row in scenario_rows(sweep, size):
        cells = []
        for _scenario, ii, status in row.results:
            cells.append(str(ii) if ii is not None else f"✗ ({status})")
        penalty = row.ii_penalty
        delta = f"{penalty:+d}" if penalty is not None else "—"
        lines.append(f"| {row.kernel} | " + " | ".join(cells) + f" | {delta} |")
    lines.append("")
    return lines


def search_cache_totals(sweep: SweepResult) -> tuple[dict[str, int], int, int, int, int]:
    """Aggregate search-orchestration metrics over the SAT-MapIt runs.

    Returns ``(runs_per_strategy, cache_hits, cache_misses,
    portfolio_launched, portfolio_cancelled)``; cache misses count only the
    runs that could have hit (i.e. all SAT-MapIt runs when a cache was
    configured).
    """
    records = [entry for entry in sweep.records if entry.mapper == SAT_MAPIT]
    strategies: dict[str, int] = {}
    for entry in records:
        strategies[entry.search_strategy] = (
            strategies.get(entry.search_strategy, 0) + 1
        )
    hits = sum(1 for entry in records if entry.cache_hit)
    misses = (
        len(records) - hits if sweep.config.cache_dir is not None else 0
    )
    launched = sum(entry.portfolio_launched for entry in records)
    cancelled = sum(entry.portfolio_cancelled for entry in records)
    return strategies, hits, misses, launched, cancelled


def seed_totals(sweep: SweepResult) -> tuple[int, int, int, float, int]:
    """Aggregate heuristic-seeding metrics over the SAT-MapIt runs.

    Returns ``(seeded_runs, seeds_found, seeds_used, seed_seconds,
    tuner_consults)``: runs that ran the pre-pass, runs where it produced a
    validated mapping, runs whose *returned* mapping is the seed itself
    (anytime fallback or MII-optimal seed), total pre-pass wall-clock, and
    portfolio runs that consulted persisted lane statistics.
    """
    records = [entry for entry in sweep.records if entry.mapper == SAT_MAPIT]
    seeded = sum(1 for entry in records if sweep.config.seed_heuristic)
    found = sum(1 for entry in records if entry.seed_ii is not None)
    used = sum(1 for entry in records if entry.seed_used)
    seconds = sum(entry.seed_time for entry in records)
    consults = sum(1 for entry in records if entry.tuner_consulted)
    return seeded, found, used, seconds, consults


def preprocess_totals(sweep: SweepResult) -> tuple[int, int, float]:
    """Aggregate CNF-preprocessing yield over the SAT-MapIt runs of a sweep.

    Returns ``(clauses_removed, vars_eliminated, preprocess_time)`` summed
    over every record (all zero when the preprocessor was off).
    """
    records = [entry for entry in sweep.records if entry.mapper == SAT_MAPIT]
    clauses = sum(entry.pre_clauses_removed for entry in records)
    variables = sum(entry.pre_vars_eliminated for entry in records)
    seconds = sum(entry.preprocess_time for entry in records)
    return clauses, variables, seconds


def _markdown_preprocess(sweep: SweepResult, size: int) -> list[str]:
    lines = [
        f"### Preprocessing ablation — SAT-MapIt on the {size}x{size} CGRA",
        "",
        "SatELite-style simplification (unit propagation, pure literals,"
        " subsumption, self-subsuming resolution, bounded variable"
        " elimination) applied before every solve; models are reconstructed"
        " before decoding.",
        "",
        "| benchmark | II | clauses removed | vars eliminated | simplify (s) |"
        " mapping (s) |",
        "|---|---|---|---|---|---|",
    ]
    for row in preprocess_rows(sweep, size):
        ii = row.ii if row.ii is not None else f"✗ ({row.status})"
        lines.append(
            f"| {row.kernel} | {ii} | {row.clauses_removed} | "
            f"{row.vars_eliminated} | {row.preprocess_time:.3f} | "
            f"{row.mapping_time:.2f} |"
        )
    lines.append("")
    return lines


def render_markdown_report(sweep: SweepResult, options: ReportOptions | None = None) -> str:
    """Render the full Markdown report for one sweep."""
    options = options or ReportOptions()
    config = sweep.config
    wins, total, fraction = headline_winrate(sweep)
    resolves, carried = solver_reuse_totals(sweep)
    bin_props, blocker_skips, arena_bytes, batches, dups = flat_core_totals(sweep)
    pre_clauses, pre_vars, pre_seconds = preprocess_totals(sweep)
    strategies, cache_hits, cache_misses, launched, cancelled = (
        search_cache_totals(sweep)
    )
    lines = [f"# {options.title}", ""]
    if options.include_expectations:
        lines.extend([_PAPER_EXPECTATIONS, ""])
    lines.extend(
        [
            "## Protocol",
            "",
            f"* kernels: {', '.join(config.kernels)}",
            f"* mesh sizes: {', '.join(f'{s}x{s}' for s in config.sizes)}",
            f"* per-run timeout: {config.timeout:.0f} s (paper: 4000 s), "
            f"II cap: {config.max_ii}",
            f"* registers per PE: {config.registers_per_pe}, 4-neighbour mesh",
            f"* architecture scenarios: "
            f"{', '.join(config.scenarios or (HOMOGENEOUS,))}",
            f"* CNF preprocessing: {'on' if config.preprocess else 'off'}",
            f"* II search strategy: {config.search}"
            + (f" ({config.search_jobs} workers)"
               if config.search == "portfolio" else ""),
            f"* mapping cache: "
            f"{config.cache_dir if config.cache_dir else 'off'}",
            f"* heuristic II seeding: "
            f"{'on' if config.seed_heuristic else 'off'}, lane tuner: "
            f"{config.tuner_dir if config.tuner_dir else 'off'}",
            f"* PathSeeker repeats per case: {config.pathseeker_repeats} (paper: 10)",
            "",
            "## Headline (paper Section V)",
            "",
            f"* SAT-MapIt strictly better (lower II or only valid mapping): "
            f"**{wins}/{total} = {fraction:.2%}** (paper: 47.72 %)",
            f"* SAT-MapIt never worse than the best heuristic: **{never_worse(sweep)}**",
            "",
            "## Solver reuse (incremental backend)",
            "",
            f"* register-allocation retries served without re-encoding: "
            f"**{resolves}**",
            f"* learned clauses carried across (II, slack) attempts: "
            f"**{carried}**",
            "",
            "## Flat-arena solver core",
            "",
            f"* implications served by binary/ternary implication lists: "
            f"**{bin_props}**",
            f"* watch entries dismissed by blocker literals: "
            f"**{blocker_skips}**",
            f"* peak clause-store footprint: **{arena_bytes}** bytes",
            f"* batched emission flushes: **{batches}** "
            f"(duplicate clauses dropped at the emitter: **{dups}**)",
            "",
            "## II search & mapping cache",
            "",
            f"* strategy mix over the SAT-MapIt runs: "
            + (", ".join(
                f"**{name}** x{count}" for name, count in sorted(strategies.items())
            ) or "none"),
            f"* cache: **{cache_hits}** hit(s), **{cache_misses}** miss(es)"
            + ("" if config.cache_dir else " (caching off)"),
            f"* portfolio workers launched / cancelled: "
            f"**{launched}** / **{cancelled}**",
            "",
        ]
    )
    if sweep.farm is not None:
        farm = sweep.farm
        quarantined = [r for r in sweep.records if r.quarantined]
        retried = sum(1 for r in sweep.records if r.retries)
        lines.extend(
            [
                "## Fault tolerance (work-queue farm)",
                "",
                f"* resumed from an earlier journal: "
                f"**{'yes' if farm.resumed else 'no'}** "
                f"(**{farm.skipped}** finished item(s) served from the "
                f"journal without re-solving)",
                f"* items completed this run: **{farm.completed}** of "
                f"**{farm.items}**",
                f"* transient failures retried: **{farm.retries}** "
                f"(**{retried}** item(s) needed at least one retry)",
                f"* leases expired (worker stopped heartbeating): "
                f"**{farm.leases_expired}**",
                f"* worker crashes / respawns: **{farm.worker_crashes}** / "
                f"**{farm.worker_respawns}**",
                f"* poison items quarantined: **{farm.quarantined}**"
                + (
                    " — " + "; ".join(
                        f"{r.kernel} {r.size}x{r.size} {r.mapper} "
                        f"[{r.scenario}]: {r.failure}"
                        for r in quarantined
                    )
                    if quarantined
                    else ""
                ),
                "",
            ]
        )
    if config.seed_heuristic or config.tuner_dir:
        seeded, found, used, seconds, consults = seed_totals(sweep)
        lines.extend(
            [
                "## Heuristic seeding & lane tuner",
                "",
                f"* runs with the RAMP/PathSeeker seeding pre-pass: "
                f"**{seeded}**",
                f"* pre-passes yielding a validated seed mapping: "
                f"**{found}** (pre-pass wall-clock: **{seconds:.2f} s**)",
                f"* runs answered by the seed mapping itself "
                f"(MII-optimal seed or anytime fallback): **{used}**",
                f"* portfolio runs consulting persisted lane statistics: "
                f"**{consults}**"
                + ("" if config.tuner_dir else " (tuner off)"),
                "",
            ]
        )
    if config.preprocess or pre_clauses or pre_vars:
        lines.extend(
            [
                "## CNF preprocessing (SatELite-style pipeline)",
                "",
                f"* clauses removed before solving: **{pre_clauses}**",
                f"* variables eliminated or fixed: **{pre_vars}**",
                f"* time spent simplifying: **{pre_seconds:.2f} s**",
                "",
            ]
        )
    for size in config.sizes:
        lines.extend(_markdown_figure6(sweep, size))
    for size in config.sizes:
        if size in _TABLE_NUMBERS:
            lines.extend(_markdown_times(sweep, size))
    if len(config.scenarios or ()) > 1:
        for size in config.sizes:
            lines.extend(_markdown_scenarios(sweep, size))
    if config.preprocess:
        for size in config.sizes:
            lines.extend(_markdown_preprocess(sweep, size))
    return "\n".join(lines) + "\n"


def write_markdown_report(
    sweep: SweepResult, path: str, options: ReportOptions | None = None
) -> None:
    """Write the Markdown report to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(render_markdown_report(sweep, options))
