"""Turning sweep results into the paper's tables and figures.

* Figure 6: achieved II per benchmark, SAT-MapIt vs best-of(RAMP, PathSeeker),
  one panel per mesh size, with explicit markers for timeouts (the paper's red
  cross) and II-cap failures (black cross).
* Tables I–IV: mapping time per benchmark for one mesh size, with the delta
  column (negative = SAT-MapIt faster).
* The Section-V headline: the fraction of (benchmark, size) pairs where
  SAT-MapIt strictly improves on the best heuristic (lower II, or a valid
  mapping where none was found).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import HOMOGENEOUS, SAT_MAPIT, RunRecord, SweepResult

TIMEOUT_MARK = "x(timeout)"
FAILED_MARK = "x(II cap)"


@dataclass(frozen=True)
class Figure6Row:
    """One bar pair of Figure 6: a benchmark on one mesh size."""

    kernel: str
    size: int
    soa_ii: int | None
    soa_status: str
    satmapit_ii: int | None
    satmapit_status: str

    @property
    def satmapit_wins(self) -> bool:
        """Strictly better: lower II, or mapped where the heuristics failed."""
        if self.satmapit_ii is None:
            return False
        if self.soa_ii is None:
            return True
        return self.satmapit_ii < self.soa_ii

    @property
    def tie(self) -> bool:
        return self.satmapit_ii is not None and self.satmapit_ii == self.soa_ii


@dataclass(frozen=True)
class TimeRow:
    """One row of Tables I-IV: mapping time on one mesh size."""

    kernel: str
    soa_time: float
    satmapit_time: float

    @property
    def delta(self) -> float:
        return self.satmapit_time - self.soa_time


# ----------------------------------------------------------------------
# Data extraction
# ----------------------------------------------------------------------
def _base_scenario(sweep: SweepResult) -> str:
    """The scenario the headline tables describe: first configured one.

    Usually ``homogeneous``; a sweep run purely on a heterogeneous scenario
    still gets Figure 6 / Tables I-IV for that fabric.
    """
    scenarios = sweep.config.scenarios or (HOMOGENEOUS,)
    return scenarios[0]


def figure6_rows(sweep: SweepResult, size: int) -> list[Figure6Row]:
    """The Figure-6 panel for one mesh size."""
    scenario = _base_scenario(sweep)
    rows: list[Figure6Row] = []
    for kernel in sweep.config.kernels:
        sat = sweep.record(kernel, size, SAT_MAPIT, scenario)
        soa = sweep.best_soa(kernel, size, scenario)
        if sat is None and soa is None:
            continue
        rows.append(
            Figure6Row(
                kernel=kernel,
                size=size,
                soa_ii=soa.ii if soa is not None else None,
                soa_status=soa.status if soa is not None else "missing",
                satmapit_ii=sat.ii if sat is not None else None,
                satmapit_status=sat.status if sat is not None else "missing",
            )
        )
    return rows


def mapping_time_rows(sweep: SweepResult, size: int) -> list[TimeRow]:
    """The Table I-IV rows for one mesh size."""
    scenario = _base_scenario(sweep)
    rows: list[TimeRow] = []
    for kernel in sweep.config.kernels:
        sat = sweep.record(kernel, size, SAT_MAPIT, scenario)
        soa = sweep.best_soa(kernel, size, scenario)
        if sat is None or soa is None:
            continue
        rows.append(
            TimeRow(
                kernel=kernel,
                soa_time=soa.mapping_time,
                satmapit_time=sat.mapping_time,
            )
        )
    return rows


def headline_winrate(sweep: SweepResult) -> tuple[int, int, float]:
    """(wins, total pairs, fraction) of cases where SAT-MapIt is strictly better.

    The paper reports 47.72 % over its 44 (benchmark, size) pairs; strictly
    better means a lower II or a valid mapping where the heuristics found
    none.
    """
    wins = 0
    total = 0
    for size in sweep.config.sizes:
        for row in figure6_rows(sweep, size):
            total += 1
            if row.satmapit_wins:
                wins += 1
    fraction = wins / total if total else 0.0
    return wins, total, fraction


def never_worse(sweep: SweepResult) -> bool:
    """Whether SAT-MapIt's II is <= the best heuristic II on every pair."""
    for size in sweep.config.sizes:
        for row in figure6_rows(sweep, size):
            if row.satmapit_ii is None and row.soa_ii is not None:
                return False
            if (
                row.satmapit_ii is not None
                and row.soa_ii is not None
                and row.satmapit_ii > row.soa_ii
            ):
                return False
    return True


@dataclass(frozen=True)
class ScenarioRow:
    """SAT-MapIt II for one kernel across architecture scenarios."""

    kernel: str
    size: int
    #: ``scenario -> (ii or None, status)`` in the sweep's scenario order.
    results: tuple[tuple[str, int | None, str], ...]

    def ii_for(self, scenario: str) -> int | None:
        for name, ii, _status in self.results:
            if name == scenario:
                return ii
        return None

    @property
    def ii_penalty(self) -> int | None:
        """Extra II the first heterogeneous scenario costs vs homogeneous.

        ``None`` when either side has no mapping (incomparable).
        """
        base = self.ii_for(HOMOGENEOUS)
        others = [ii for name, ii, _ in self.results if name != HOMOGENEOUS]
        if base is None or not others or others[0] is None:
            return None
        return others[0] - base


@dataclass(frozen=True)
class PreprocessRow:
    """SAT-MapIt preprocessing yield for one kernel on one mesh size."""

    kernel: str
    size: int
    ii: int | None
    status: str
    clauses_removed: int
    vars_eliminated: int
    preprocess_time: float
    mapping_time: float

    @property
    def solve_time_share(self) -> float:
        """Fraction of the mapping time spent inside the preprocessor."""
        if self.mapping_time <= 0.0:
            return 0.0
        return self.preprocess_time / self.mapping_time


def preprocess_rows(sweep: SweepResult, size: int) -> list[PreprocessRow]:
    """The preprocessing-ablation rows for one mesh size (SAT-MapIt only)."""
    scenario = _base_scenario(sweep)
    rows: list[PreprocessRow] = []
    for kernel in sweep.config.kernels:
        entry = sweep.record(kernel, size, SAT_MAPIT, scenario)
        if entry is None:
            continue
        rows.append(
            PreprocessRow(
                kernel=kernel,
                size=size,
                ii=entry.ii,
                status=entry.status,
                clauses_removed=entry.pre_clauses_removed,
                vars_eliminated=entry.pre_vars_eliminated,
                preprocess_time=entry.preprocess_time,
                mapping_time=entry.mapping_time,
            )
        )
    return rows


def scenario_rows(sweep: SweepResult, size: int) -> list[ScenarioRow]:
    """SAT-MapIt II per kernel and scenario for one mesh size."""
    scenarios = sweep.config.scenarios or (HOMOGENEOUS,)
    rows: list[ScenarioRow] = []
    for kernel in sweep.config.kernels:
        results = []
        for scenario in scenarios:
            entry = sweep.record(kernel, size, SAT_MAPIT, scenario)
            if entry is None:
                results.append((scenario, None, "missing"))
            else:
                results.append((scenario, entry.ii, entry.status))
        if any(status != "missing" for _, _, status in results):
            rows.append(ScenarioRow(kernel=kernel, size=size, results=tuple(results)))
    return rows


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _ii_cell(ii: int | None, status: str) -> str:
    if ii is not None:
        return str(ii)
    return TIMEOUT_MARK if status == "timeout" else FAILED_MARK


def render_figure6(sweep: SweepResult, size: int) -> str:
    """ASCII rendering of one Figure-6 panel (plus a bar chart)."""
    rows = figure6_rows(sweep, size)
    lines = [
        f"Figure 6 — achieved II on a {size}x{size} CGRA (lower is better)",
        f"{'benchmark':13s} {'RAMP/PathSeeker':>16s} {'SAT-MapIt':>10s}   bars",
    ]
    scale = max(
        [row.soa_ii or 0 for row in rows] + [row.satmapit_ii or 0 for row in rows] + [1]
    )
    for row in rows:
        soa_cell = _ii_cell(row.soa_ii, row.soa_status)
        sat_cell = _ii_cell(row.satmapit_ii, row.satmapit_status)
        soa_bar = "#" * (row.soa_ii or scale)
        sat_bar = "*" * (row.satmapit_ii or scale)
        lines.append(f"{row.kernel:13s} {soa_cell:>16s} {sat_cell:>10s}   |{soa_bar}")
        lines.append(f"{'':13s} {'':>16s} {'':>10s}   |{sat_bar}")
    lines.append("legend: # best of RAMP/PathSeeker, * SAT-MapIt, x = no mapping found")
    return "\n".join(lines)


def render_mapping_time_table(sweep: SweepResult, size: int, number: str = "") -> str:
    """ASCII rendering of one mapping-time table (Tables I-IV)."""
    rows = mapping_time_rows(sweep, size)
    title = f"Table {number} — mapping time (seconds) on a {size}x{size} CGRA"
    lines = [
        title.replace("  ", " "),
        f"{'benchmark':13s} {'[RAMP/PS]':>12s} {'SAT-MapIt':>12s} {'delta':>12s}",
    ]
    for row in rows:
        lines.append(
            f"{row.kernel:13s} {row.soa_time:12.2f} {row.satmapit_time:12.2f} "
            f"{row.delta:12.2f}"
        )
    return "\n".join(lines)


def render_scenario_comparison(sweep: SweepResult, size: int) -> str:
    """SAT-MapIt II across architecture scenarios on one mesh size.

    Shows what capability constraints (memory ports on the edge, sparse
    multipliers) cost in achieved II relative to the homogeneous fabric.
    """
    scenarios = sweep.config.scenarios or (HOMOGENEOUS,)
    rows = scenario_rows(sweep, size)
    header = f"{'benchmark':13s} " + " ".join(
        f"{scenario:>12s}" for scenario in scenarios
    ) + f" {'ΔII':>6s}"
    lines = [
        f"Scenario comparison — SAT-MapIt II on {size}x{size} fabrics "
        "(lower is better)",
        header,
    ]
    for row in rows:
        cells = []
        for _scenario, ii, status in row.results:
            if ii is not None:
                cell = str(ii)
            elif status == "missing":
                cell = "-"
            else:
                cell = _ii_cell(ii, status)
            cells.append(f"{cell:>12}")
        penalty = row.ii_penalty
        delta = f"{penalty:+d}" if penalty is not None else "-"
        lines.append(f"{row.kernel:13s} " + " ".join(cells) + f" {delta:>6s}")
    lines.append(
        "legend: ΔII = first heterogeneous scenario minus homogeneous "
        "(capability cost)"
    )
    return "\n".join(lines)


def render_preprocess_table(sweep: SweepResult, size: int) -> str:
    """Preprocessing ablation — what the SatELite pipeline removed per run."""
    rows = preprocess_rows(sweep, size)
    lines = [
        f"Preprocessing ablation — SAT-MapIt on a {size}x{size} CGRA",
        f"{'benchmark':13s} {'II':>4s} {'clauses-':>9s} {'vars-':>7s} "
        f"{'simplify(s)':>12s} {'map(s)':>9s} {'share':>7s}",
    ]
    for row in rows:
        ii_cell = _ii_cell(row.ii, row.status)
        lines.append(
            f"{row.kernel:13s} {ii_cell:>4s} {row.clauses_removed:9d} "
            f"{row.vars_eliminated:7d} {row.preprocess_time:12.3f} "
            f"{row.mapping_time:9.2f} {row.solve_time_share:6.1%}"
        )
    lines.append(
        "legend: clauses-/vars- = net CNF reduction, share = simplify time / "
        "total mapping time"
    )
    return "\n".join(lines)


def render_lane_winrates(store_dir: str) -> str:
    """Portfolio lane win-rate table aggregated from a lane-tuner store.

    One row per solver-configuration lane, summed over every problem class
    the store has seen: races won and lost at the winning II, the win rate,
    and the mean wall-clock per settled race — the numbers the tuner ranks
    line-ups by.
    """
    from repro.search.tuner import aggregate_lane_stats

    stats = aggregate_lane_stats(store_dir)
    lines = [
        f"Portfolio lane win rates — tuner store {store_dir}",
        f"{'lane':12s} {'wins':>6s} {'losses':>7s} {'win rate':>9s} "
        f"{'mean wall(s)':>13s}",
    ]
    if not stats:
        lines.append("(no recorded races yet)")
        return "\n".join(lines)
    rows = []
    for lane, entry in stats.items():
        settled = entry["wins"] + entry["losses"]
        win_rate = entry["wins"] / settled if settled else 0.0
        mean_wall = entry["wall_s"] / settled if settled else 0.0
        rows.append((lane, entry["wins"], entry["losses"], win_rate, mean_wall))
    rows.sort(key=lambda row: (-row[3], row[4], row[0]))
    for lane, wins, losses, win_rate, mean_wall in rows:
        lines.append(
            f"{lane:12s} {wins:6d} {losses:7d} {win_rate:8.1%} {mean_wall:13.3f}"
        )
    lines.append(
        "legend: wins/losses counted at the winning II of each settled race"
    )
    return "\n".join(lines)


def render_headline(sweep: SweepResult) -> str:
    """Render the Section-V headline statistics."""
    wins, total, fraction = headline_winrate(sweep)
    rows_never_worse = never_worse(sweep)
    lines = [
        f"SAT-MapIt strictly better (lower II or only valid mapping): "
        f"{wins}/{total} = {fraction:.2%} (paper: 47.72%)",
        f"SAT-MapIt never worse than the best heuristic: {rows_never_worse}",
    ]
    return "\n".join(lines)
