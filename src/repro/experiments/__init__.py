"""Experiment harness reproducing the paper's evaluation.

* :mod:`repro.experiments.runner` sweeps (kernel x CGRA size x mapper) and
  records the achieved II, the mapping time and the failure mode — the raw
  data behind Figure 6 and Tables I–IV.
* :mod:`repro.experiments.tables` turns a sweep into the paper's artefacts:
  the Figure-6 II comparison, the per-size mapping-time tables and the
  "better in 47.72 % of cases" headline.
* :mod:`repro.experiments.report` renders a complete EXPERIMENTS.md.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    RunRecord,
    SweepResult,
    run_single,
    run_sweep,
)
from repro.experiments.tables import (
    figure6_rows,
    headline_winrate,
    mapping_time_rows,
    render_figure6,
    render_mapping_time_table,
)

__all__ = [
    "ExperimentConfig",
    "RunRecord",
    "SweepResult",
    "run_single",
    "run_sweep",
    "figure6_rows",
    "mapping_time_rows",
    "headline_winrate",
    "render_figure6",
    "render_mapping_time_table",
]
