"""Sweep runner: kernels x CGRA sizes x mappers.

The paper's evaluation maps eleven loop kernels onto square meshes from 2x2 to
5x5 with three tools (SAT-MapIt, RAMP, PathSeeker) under a 4000-second timeout
and an II cap of 50, repeating PathSeeker ten times because it is randomised.
This module reproduces that protocol with configurable (smaller) budgets so
the full sweep stays tractable on a laptop and inside the test-suite.

``run_sweep(jobs=N)`` distributes the (kernel, size, mapper) runs over the
fault-tolerant work-queue farm (:mod:`repro.farm`): every run becomes a
journalled work item handed to worker processes under leases, so a crashed
worker costs one retry, not the sweep, and a SIGKILLed sweep can be resumed
(``journal_dir=`` / ``resume=True``) without re-solving finished items.
Runs are independent and each mapper is deterministic for a fixed
configuration, so a parallel (or resumed, or fault-injected) sweep produces
record-for-record the same results as the serial one, in the same order.
"""

from __future__ import annotations

import contextlib
import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.baselines import BaselineConfig, PathSeekerMapper, RampMapper
from repro.cgra.architecture import CGRA
from repro.cgra.presets import mem_edge, mul_sparse
from repro.core.mapper import MapperConfig, MappingOutcome, SatMapItMapper
from repro.dfg.graph import DFG
from repro.kernels import all_kernel_names, get_kernel
from repro.sat.encodings import AMOEncoding

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.farm.faults import FaultPlan
    from repro.farm.leases import FarmStats

SAT_MAPIT = "SAT-MapIt"
RAMP = "RAMP"
PATHSEEKER = "PathSeeker"

#: The homogeneous fabric of the paper's evaluation.
HOMOGENEOUS = "homogeneous"
#: Memory ports restricted to the boundary ring (see repro.cgra.presets).
MEM_EDGE = "mem_edge"
#: Multipliers/dividers on a checkerboard subset.
MUL_SPARSE = "mul_sparse"

SCENARIOS = (HOMOGENEOUS, MEM_EDGE, MUL_SPARSE)


def build_fabric(scenario: str, size: int, registers_per_pe: int = 4) -> CGRA:
    """Instantiate the fabric for one (scenario, mesh size) pair."""
    if scenario == HOMOGENEOUS:
        return CGRA.square(size, registers_per_pe=registers_per_pe)
    if scenario == MEM_EDGE:
        return mem_edge(size, registers_per_pe=registers_per_pe)
    if scenario == MUL_SPARSE:
        return mul_sparse(size, registers_per_pe=registers_per_pe)
    raise ValueError(
        f"unknown architecture scenario {scenario!r}; available: {', '.join(SCENARIOS)}"
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """Protocol of one sweep (a scaled-down version of the paper's setup)."""

    kernels: tuple[str, ...] = tuple(all_kernel_names())
    sizes: tuple[int, ...] = (2, 3, 4, 5)
    mappers: tuple[str, ...] = (SAT_MAPIT, RAMP, PATHSEEKER)
    #: Wall-clock budget per (kernel, size, mapper) run, in seconds.  The
    #: paper uses 4000 s; the default here keeps a full sweep laptop-sized.
    timeout: float = 60.0
    #: II cap: runs reaching this II without success are reported as failed
    #: (the paper's "black mark").
    max_ii: int = 50
    registers_per_pe: int = 4
    #: PathSeeker is randomised; the paper repeats it 10 times and keeps the
    #: best result.
    pathseeker_repeats: int = 3
    #: Solver backend for the SAT-MapIt runs (see :mod:`repro.sat.backend`).
    backend: str = "cdcl"
    #: At-most-one encoding used by the SAT-MapIt CNF construction.
    amo_encoding: AMOEncoding = AMOEncoding.AUTO
    #: Run the SatELite-style CNF preprocessor before every SAT-MapIt solve
    #: (see :mod:`repro.sat.preprocess`); the ablation tables report the
    #: clause/variable reduction it buys per run.
    preprocess: bool = False
    #: Random seed forwarded to the SAT-MapIt solver configuration.
    seed: int | None = None
    #: Architecture scenarios to sweep.  ``"homogeneous"`` is the paper's
    #: setup; adding ``"mem_edge"`` / ``"mul_sparse"`` re-runs the whole
    #: protocol on the corresponding heterogeneous fabric so the II cost of
    #: capability constraints can be tabulated per kernel.
    scenarios: tuple[str, ...] = (HOMOGENEOUS,)
    #: II-search strategy for the SAT-MapIt runs (see :mod:`repro.search`).
    search: str = "ladder"
    #: Worker processes per portfolio search (``search="portfolio"`` only).
    search_jobs: int = 2
    #: Persistent mapping-cache directory shared by every SAT-MapIt run of
    #: the sweep (``None`` disables caching).  Because the cache key ignores
    #: execution details, re-sweeping the same kernels — or sweeping extra
    #: scenarios over an already-cached fabric — reuses earlier results.
    cache_dir: str | None = None
    #: Size budget (MB) for ``cache_dir``; oldest entries evicted first.
    cache_max_mb: float | None = None
    #: Run the budgeted heuristic seeding pre-pass before every SAT-MapIt
    #: search (see :mod:`repro.search.seed`).
    seed_heuristic: bool = False
    #: Persistent lane-tuner store for portfolio runs (``None`` disables).
    tuner_dir: str | None = None
    #: Keep DIMACS exports / DRAT traces under this directory
    #: (see :mod:`repro.sat.dimacs`); ``None`` uses throwaway temp files.
    dimacs_dir: str | None = None
    #: With ``dimacs_dir``: skip rewriting content-addressed CNF files that
    #: already exist.
    reuse_dimacs: bool = False
    #: Log DRAT proofs for UNSAT attempts in the SAT-MapIt runs.
    proof: bool = False
    #: Farm execution knobs (parallel sweeps only; excluded from the
    #: journal compatibility digest so a resume may loosen them): retry cap
    #: per work item before quarantine, and the lease TTL after which a
    #: non-heartbeating worker is presumed dead and its item requeued.
    max_retries: int = 3
    lease_ttl: float = 60.0


@dataclass
class RunRecord:
    """Result of one (kernel, size, mapper) mapping run."""

    kernel: str
    size: int
    mapper: str
    status: str  # "mapped", "timeout", "failed"
    ii: int | None
    mapping_time: float
    minimum_ii: int
    attempts: int
    num_nodes: int
    #: Architecture scenario the run used (``"homogeneous"`` by default).
    scenario: str = HOMOGENEOUS
    #: Solver-reuse metrics (SAT-MapIt only; zero for the heuristics):
    #: solve calls served by the persistent backend without re-encoding the
    #: base formula (register-allocation retries), and learned clauses
    #: carried across (II, slack) attempt boundaries.
    incremental_resolves: int = 0
    learned_carried: int = 0
    #: CNF-preprocessing metrics (SAT-MapIt with ``preprocess=True`` only):
    #: net clauses/variables the simplifier removed across all attempts, and
    #: the wall-clock seconds it spent doing so.
    pre_clauses_removed: int = 0
    pre_vars_eliminated: int = 0
    preprocess_time: float = 0.0
    #: Flat-core solver counters (SAT-MapIt only): implications served by
    #: the binary/ternary implication lists, watch entries dismissed by
    #: their blocker literal, and the peak flat clause-store footprint.
    binary_propagations: int = 0
    blocker_skips: int = 0
    arena_bytes: int = 0
    #: Batched-emission metrics: bulk flushes the encoder pushed into the
    #: solver and exact duplicate clauses its hashed dedup dropped.
    emission_batches: int = 0
    duplicate_clauses_dropped: int = 0
    #: II-search strategy that served the run (SAT-MapIt only).
    search_strategy: str = "ladder"
    #: Whether the persistent mapping cache served the result outright.
    cache_hit: bool = False
    #: Portfolio-strategy process counters (zero for other strategies).
    portfolio_launched: int = 0
    portfolio_cancelled: int = 0
    #: Heuristic-seeding metrics (``seed_heuristic=True`` SAT-MapIt runs):
    #: the pre-pass II (None when no feasible heuristic mapping was found),
    #: whether the seed mapping ended up as the returned answer, and the
    #: wall-clock seconds the pre-pass spent.
    seed_ii: int | None = None
    seed_used: bool = False
    seed_time: float = 0.0
    #: Whether the portfolio consulted persisted lane statistics.
    tuner_consulted: bool = False
    #: Farm provenance (parallel sweeps only): transient-failure retries
    #: this item consumed before the recorded result, whether the record
    #: was served from a resumed journal without re-solving, whether the
    #: item was quarantined as poison (status ``"failed"``), and the final
    #: failure message for quarantined items.
    retries: int = 0
    resumed: bool = False
    quarantined: bool = False
    failure: str = ""

    @property
    def succeeded(self) -> bool:
        return self.status == "mapped"


@dataclass
class SweepResult:
    """All records of a sweep plus convenient lookups."""

    config: ExperimentConfig
    records: list[RunRecord] = field(default_factory=list)
    #: Farm counters (``None`` for serial sweeps): completions, resumes,
    #: retries, lease expiries, worker crashes, quarantined items.
    farm: "FarmStats | None" = None

    def record(
        self, kernel: str, size: int, mapper: str, scenario: str = HOMOGENEOUS
    ) -> RunRecord | None:
        for entry in self.records:
            if (
                entry.kernel == kernel
                and entry.size == size
                and entry.mapper == mapper
                and entry.scenario == scenario
            ):
                return entry
        return None

    def best_soa(
        self, kernel: str, size: int, scenario: str = HOMOGENEOUS
    ) -> RunRecord | None:
        """Best-of(RAMP, PathSeeker) for one (kernel, size) — paper Figure 6."""
        candidates = [
            entry
            for entry in self.records
            if entry.kernel == kernel
            and entry.size == size
            and entry.mapper != SAT_MAPIT
            and entry.scenario == scenario
        ]
        if not candidates:
            return None
        mapped = [entry for entry in candidates if entry.succeeded]
        if mapped:
            return min(mapped, key=lambda entry: (entry.ii, entry.mapping_time))
        return min(candidates, key=lambda entry: entry.mapping_time)

    def pairs(self) -> list[tuple[str, int]]:
        """All (kernel, size) pairs present in the sweep."""
        seen: list[tuple[str, int]] = []
        for entry in self.records:
            key = (entry.kernel, entry.size)
            if key not in seen:
                seen.append(key)
        return seen


def build_mapper(name: str, config: ExperimentConfig, seed: int | None = None):
    """Instantiate a mapper by display name with the sweep's budgets."""
    if name == SAT_MAPIT:
        return SatMapItMapper(
            MapperConfig(
                timeout=config.timeout,
                max_ii=config.max_ii,
                # Keep single hard instances from eating the whole budget so
                # the iterative search can keep climbing the II (anytime
                # behaviour on the largest kernels).
                attempt_time_limit=max(5.0, config.timeout / 5.0),
                backend=config.backend,
                amo_encoding=config.amo_encoding,
                preprocess=config.preprocess,
                random_seed=config.seed,
                search=config.search,
                search_jobs=config.search_jobs,
                cache_dir=config.cache_dir,
                cache_max_mb=config.cache_max_mb,
                seed_heuristic=config.seed_heuristic,
                tuner_dir=config.tuner_dir,
                dimacs_dir=config.dimacs_dir,
                reuse_dimacs=config.reuse_dimacs,
                proof=config.proof,
            )
        )
    if name == RAMP:
        return RampMapper(
            BaselineConfig(timeout=config.timeout, max_ii=config.max_ii, random_seed=7)
        )
    if name == PATHSEEKER:
        return PathSeekerMapper(
            BaselineConfig(
                timeout=config.timeout, max_ii=config.max_ii,
                random_seed=1 if seed is None else seed,
            )
        )
    raise ValueError(f"unknown mapper {name!r}")


def run_single(
    kernel: str | DFG,
    size: int,
    mapper_name: str,
    config: ExperimentConfig | None = None,
    scenario: str = HOMOGENEOUS,
) -> RunRecord:
    """Map one kernel on one fabric with one mapper and record the result."""
    config = config or ExperimentConfig()
    dfg = get_kernel(kernel) if isinstance(kernel, str) else kernel
    cgra = build_fabric(scenario, size, config.registers_per_pe)

    if mapper_name == PATHSEEKER and config.pathseeker_repeats > 1:
        outcome = _best_pathseeker_outcome(dfg, cgra, config)
    else:
        outcome = build_mapper(mapper_name, config).map(dfg, cgra)

    return RunRecord(
        kernel=dfg.name,
        size=size,
        mapper=mapper_name,
        status=outcome.final_status,
        ii=outcome.ii,
        mapping_time=outcome.total_time,
        minimum_ii=outcome.minimum_ii,
        attempts=len(outcome.attempts),
        num_nodes=dfg.num_nodes,
        scenario=scenario,
        incremental_resolves=outcome.incremental_resolves,
        learned_carried=outcome.learned_carried,
        pre_clauses_removed=outcome.pre_clauses_removed,
        pre_vars_eliminated=outcome.pre_vars_eliminated,
        preprocess_time=outcome.preprocess_time,
        binary_propagations=getattr(outcome, "binary_propagations", 0),
        blocker_skips=getattr(outcome, "blocker_skips", 0),
        arena_bytes=getattr(outcome, "arena_bytes", 0),
        emission_batches=getattr(outcome, "emission_batches", 0),
        duplicate_clauses_dropped=getattr(outcome, "duplicate_clauses_dropped", 0),
        search_strategy=getattr(outcome, "search_strategy", "ladder"),
        cache_hit=getattr(outcome, "cache_hit", False),
        portfolio_launched=getattr(outcome, "portfolio_launched", 0),
        portfolio_cancelled=getattr(outcome, "portfolio_cancelled", 0),
        seed_ii=getattr(outcome, "seed_ii", None),
        seed_used=getattr(outcome, "seed_used", False),
        seed_time=getattr(outcome, "seed_time", 0.0),
        tuner_consulted=getattr(outcome, "tuner_consulted", False),
    )


def _best_pathseeker_outcome(
    dfg: DFG, cgra: CGRA, config: ExperimentConfig
) -> MappingOutcome:
    """Repeat the randomised mapper and keep the best result (paper protocol)."""
    best: MappingOutcome | None = None
    total_time = 0.0
    for repeat in range(config.pathseeker_repeats):
        mapper = build_mapper(PATHSEEKER, config, seed=repeat + 1)
        outcome = mapper.map(dfg, cgra)
        total_time += outcome.total_time
        if best is None or _outcome_rank(outcome) < _outcome_rank(best):
            best = outcome
    assert best is not None
    best.total_time = total_time / config.pathseeker_repeats
    return best


def _outcome_rank(outcome: MappingOutcome) -> tuple[int, float]:
    """Ordering key: mapped (lowest II) first, then fastest."""
    if outcome.success and outcome.ii is not None:
        return (outcome.ii, outcome.total_time)
    return (10_000, outcome.total_time)


def _print_record(record: RunRecord) -> None:
    ii = record.ii if record.ii is not None else "-"
    scenario_tag = (
        "" if record.scenario == HOMOGENEOUS else f" [{record.scenario}]"
    )
    cache_tag = " [cache]" if record.cache_hit else ""
    resume_tag = " [resumed]" if record.resumed else ""
    retry_tag = f" [retries={record.retries}]" if record.retries else ""
    print(
        f"  {record.kernel:13s} {record.size}x{record.size} "
        f"{record.mapper:10s} II={ii} "
        f"({record.status}, {record.mapping_time:.2f}s)"
        f"{scenario_tag}{cache_tag}{resume_tag}{retry_tag}",
        flush=True,
    )


def run_sweep(
    config: ExperimentConfig | None = None,
    progress: bool = False,
    jobs: int = 1,
    journal_dir: str | None = None,
    resume: bool = False,
    faults: "FaultPlan | None" = None,
) -> SweepResult:
    """Run the full (kernels x sizes x mappers) sweep.

    ``jobs`` > 1 distributes the independent runs over the fault-tolerant
    farm (:mod:`repro.farm`); the records come back in the same
    deterministic order as the serial sweep.  ``journal_dir`` keeps the
    farm's work journal in a named directory so a killed sweep can be
    picked up again with ``resume=True`` (finished items are served from
    the journal, not re-solved); without it the journal lives in a
    throwaway temp directory.  ``faults`` injects deterministic failures
    (see :class:`repro.farm.faults.FaultPlan`); when it is ``None`` the
    ``REPRO_CHAOS`` environment variable is consulted.
    """
    from repro.farm.faults import FaultPlan

    config = config or ExperimentConfig()
    if faults is None:
        faults = FaultPlan.from_env()
    use_farm = (
        jobs > 1
        or journal_dir is not None
        or resume
        or (faults is not None and faults.active)
    )
    if use_farm:
        return _run_farm_sweep(config, progress, max(1, jobs),
                               journal_dir, resume, faults)

    result = SweepResult(config=config)
    for scenario in (config.scenarios or (HOMOGENEOUS,)):
        for kernel in config.kernels:
            for size in config.sizes:
                for mapper_name in config.mappers:
                    record = run_single(kernel, size, mapper_name, config, scenario)
                    result.records.append(record)
                    if progress:
                        _print_record(record)
    return result


def _run_farm_sweep(
    config: ExperimentConfig,
    progress: bool,
    jobs: int,
    journal_dir: str | None,
    resume: bool,
    faults: "FaultPlan | None",
) -> SweepResult:
    """Run the sweep through the leased work-queue farm."""
    from repro.farm.retry import RetryPolicy
    from repro.farm.scheduler import FarmConfig, run_farm

    report = (lambda record: _print_record(RunRecord(**record))) if progress else None
    with contextlib.ExitStack() as stack:
        if journal_dir is None:
            journal_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-farm-")
            )
        farm = FarmConfig(
            jobs=jobs,
            lease_ttl=config.lease_ttl,
            policy=RetryPolicy(max_retries=config.max_retries),
            journal_dir=journal_dir,
            resume=resume,
            faults=faults,
        )
        outcome = run_farm(config, farm, report=report)

    result = SweepResult(config=config, farm=outcome.stats)
    for item in outcome.items:
        record = outcome.records.get(item.id)
        if record is not None:
            result.records.append(RunRecord(**record))
        else:
            result.records.append(
                _quarantined_record(
                    item,
                    outcome.quarantined.get(item.id, "quarantined"),
                    outcome.attempts.get(item.id, 0),
                )
            )
    return result


def _quarantined_record(item, error: str, retries: int) -> RunRecord:
    """Synthesise the record of a poison item (never completed)."""
    try:
        num_nodes = get_kernel(item.kernel).num_nodes
    except Exception:
        num_nodes = 0
    return RunRecord(
        kernel=item.kernel,
        size=item.size,
        mapper=item.mapper,
        status="failed",
        ii=None,
        mapping_time=0.0,
        minimum_ii=0,
        attempts=0,
        num_nodes=num_nodes,
        scenario=item.scenario,
        retries=retries,
        quarantined=True,
        failure=error,
    )
