"""Tracked performance harness for the SAT-MapIt mapping core.

The ROADMAP's north star demands the mapper run "as fast as the hardware
allows"; this module makes that a *measured* property.  It runs a pinned,
seeded suite of (kernel, fabric) mapping cases through :class:`SatMapItMapper`
and records per-case medians (mapper wall time, solve time, encode time,
conflicts, propagations/s) to ``BENCH_solver.json``, so every change to the
solver core leaves a comparable perf trajectory in the repository.

Two kinds of cases are pinned:

* **completing cases** — kernels the mapper finishes quickly; their wall time
  measures the end-to-end pipeline (encode + solve + register allocation).
* **conflict-bounded cases** (``#cN`` suffix) — instances far too hard to
  finish, run for exactly ``N`` solver conflicts at the minimum II.  Their
  wall time measures raw solver throughput (time per conflict) on a
  deterministic workload, which is the most sensitive regression sensor the
  suite has.

Every case is deterministic for the pinned seed, so medians over a handful of
repeats are stable and two runs on the same machine compare cleanly.
:func:`compare` implements the CI gate: it only fails on *gross* (>3x by
default) per-case slowdown, which tolerates machine noise while still
catching accidental algorithmic regressions.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass

from repro.cgra.architecture import CGRA
from repro.cgra.capabilities import effective_minimum_ii
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.kernels import get_kernel
from repro.sat.backend import backend_instrumented

#: Format tag written into the JSON so future schema changes are detectable.
SCHEMA = "satmapit-bench/1"

#: Default output file at the repository root.
DEFAULT_OUTPUT = "BENCH_solver.json"


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark case.

    ``conflict_limit`` turns the case into a bounded-workload throughput
    probe: the mapper runs a single (II = MII, slack 0) attempt for exactly
    that many conflicts and stops.  ``search`` / ``jobs`` select the II
    search strategy (``"portfolio"`` cases measure the orchestrator's
    wall-clock win over their same-kernel ladder twin, which ``run_suite``
    annotates as ``speedup_vs_ladder``).
    """

    name: str
    kernel: str
    size: int
    conflict_limit: int | None = None
    timeout: float = 120.0
    search: str = "ladder"
    jobs: int = 1
    #: Run the heuristic II-seeding pre-pass (``!seeded`` cases measure its
    #: wall-clock win over the same-kernel unseeded twin, annotated by
    #: ``run_suite`` as ``speedup_vs_unseeded``).
    seeded: bool = False
    #: Solver backend for the case.  Non-``cdcl`` cases measure an
    #: alternative engine against their same-(kernel, size, search, seeded)
    #: cdcl twin, which ``run_suite`` annotates as ``speedup_vs_cdcl``;
    #: non-instrumented backends report ``null`` solver-core rates.
    backend: str = "cdcl"

    @property
    def bounded(self) -> bool:
        return self.conflict_limit is not None

    @property
    def instrumented(self) -> bool:
        """Whether the case's backend reports solver-core counters."""
        return backend_instrumented(self.backend)


#: The pinned suite (seed 0 everywhere).  Completing cases first — from
#: encode-bound small instances up to a 4x4 run with real UNSAT proofs —
#: then the conflict-bounded throughput probes on instances that cannot
#: finish.  Sub-10ms cases are deliberately excluded: they measure noise,
#: not the mapper.
PINNED_SUITE: tuple[BenchCase, ...] = (
    BenchCase("hotspot@3x3", "hotspot", 3),
    BenchCase("stringsearch@3x3", "stringsearch", 3),
    BenchCase("sha@3x3", "sha", 3),
    BenchCase("gsm@2x2", "gsm", 2),
    BenchCase("backprop@3x3", "backprop", 3),
    BenchCase("gsm@4x4", "gsm", 4, timeout=300.0),
    # Multi-attempt kernels (a hard UNSAT/slack rung before the final SAT)
    # twice each: the sequential ladder, then the parallel portfolio racing
    # the same II range — the pair records the orchestrator's wall-clock win.
    BenchCase("hotspot@4x4", "hotspot", 4, timeout=300.0),
    BenchCase("hotspot@4x4!portfolio2", "hotspot", 4, timeout=300.0,
              search="portfolio", jobs=2),
    BenchCase("nw@4x4", "nw", 4, timeout=300.0),
    BenchCase("nw@4x4!portfolio2", "nw", 4, timeout=300.0,
              search="portfolio", jobs=2),
    # Heuristic-seeding twins: the same ladder search with the budgeted
    # RAMP/PathSeeker pre-pass priming the II frontier.  Where the heuristic
    # lands on (or near) the SAT-optimal II, the entire upward UNSAT climb
    # disappears (backprop@2x2, gsm@2x2); nw@4x4's seed only shaves the
    # ceiling, so its twin documents the honest no-win case.
    BenchCase("backprop@2x2", "backprop", 2),
    BenchCase("backprop@2x2!seeded", "backprop", 2, seeded=True),
    BenchCase("gsm@2x2!seeded", "gsm", 2, seeded=True),
    BenchCase("nw@4x4!seeded", "nw", 4, timeout=300.0, seeded=True),
    # External-backend twins: the same ladder search solved through the
    # DIMACS subprocess layer (the bundled ``subprocess`` engine, so the
    # suite never depends on a system solver).  Each pairs with its cdcl
    # case above; ``run_suite`` records ``speedup_vs_cdcl`` and the gate
    # holds their IIs identical — the subprocess layer may only change
    # *how fast* an answer arrives, never which answer.
    BenchCase("gsm@2x2!subproc", "gsm", 2, backend="subprocess"),
    BenchCase("backprop@3x3!subproc", "backprop", 3, backend="subprocess"),
    BenchCase("hotspot@3x3!subproc", "hotspot", 3, backend="subprocess"),
    BenchCase("sha@2x2#c1500", "sha", 2, conflict_limit=1500),
    BenchCase("sha2@2x2#c1500", "sha2", 2, conflict_limit=1500),
    BenchCase("patricia@3x3#c1500", "patricia", 3, conflict_limit=1500),
    BenchCase("sha@4x4#c1500", "sha", 4, conflict_limit=1500),
)

#: Subset used by ``repro bench --suite quick`` and the CI smoke gate.
QUICK_SUITE: tuple[BenchCase, ...] = tuple(
    case
    for case in PINNED_SUITE
    if case.name in ("gsm@2x2", "gsm@2x2!seeded", "gsm@2x2!subproc",
                     "backprop@3x3", "sha@2x2#c1500", "sha2@2x2#c1500")
)

SUITES = {"default": PINNED_SUITE, "quick": QUICK_SUITE}

#: Seed pinned for every case so two runs do identical solver work.
BENCH_SEED = 0

#: The farm throughput probe: a small end-to-end sweep pushed through the
#: leased work-queue farm (``repro.farm``) with two workers.  Unlike the
#: solver cases above it measures the *service* rate the farm sustains —
#: its headline stat is ``kernels_mapped_per_minute`` — so scheduler
#: overhead (leases, heartbeats, journalling to a scratch directory, the
#: fork-per-worker tax) is on the clock alongside the mapping itself.
FARM_CASE_NAME = "farm-sweep@3x3!jobs2"
FARM_KERNELS = ("srand", "basicmath", "gsm")
FARM_SIZE = 3
FARM_JOBS = 2

#: Cases whose baseline wall time is below this are reported but never fail
#: the gate: a single-repeat sub-50ms pure-Python run on a shared CI machine
#: swings by more than the 3x tolerance on scheduler noise alone.
MIN_GATE_WALL_S = 0.05


@dataclass(frozen=True)
class ScaleCase:
    """One partition-vs-exact scalability panel entry.

    The partitioned side runs :class:`repro.partition.PartitionMapper`
    with ``partitions`` row-strip regions; the exact side runs the
    monolithic mapper on the same (kernel, fabric) under the same wall
    budget.  ``ii_gap_vs_exact`` in the record is the stitching tax when
    the exact mapper finishes, and ``null`` when it cannot — which on the
    big fabrics is exactly the point.
    """

    name: str
    kernel: str
    size: int
    partitions: int
    timeout: float = 240.0
    exact_timeout: float = 240.0


#: The scalability panel: one fabric per size tier.  gsm@4x4 is the
#: calibration row (the exact mapper finishes, so the II gap is a real
#: number); sha2@8x8 and sha@16x16 are the instances the monolithic
#: encoding cannot finish in the budget — there the panel records the
#: partitioned mapper's absolute II and wall time, simulator-validated.
SCALE_PANEL: tuple[ScaleCase, ...] = (
    ScaleCase("gsm@4x4|p2", "gsm", 4, 2, timeout=120.0, exact_timeout=120.0),
    ScaleCase("sha2@8x8|p2", "sha2", 8, 2, timeout=240.0, exact_timeout=240.0),
    ScaleCase("sha@16x16|p4", "sha", 16, 4, timeout=240.0, exact_timeout=240.0),
)


def _case_config(case: BenchCase, dfg, cgra: CGRA) -> tuple[MapperConfig, int | None]:
    """Mapper configuration plus forced start II for one case.

    Two knobs make the achieved II a *property of the formula* rather than
    of the solver's search trajectory, so the harness can assert II equality
    across solver changes:

    * ``slack_conflict_limit=None`` — every slack attempt runs to a decisive
      SAT/UNSAT answer instead of an inconclusive bounded one;
    * ``run_register_allocation=False`` — the regalloc post-pass accepts or
      rejects *specific models*, so with it enabled the final II depends on
      which SAT model the trajectory happens to find first.
    """
    if case.bounded:
        # A single attempt at the minimum II with a per-solve conflict
        # budget: a deterministic hard workload under whatever solving
        # strategy the mapper ships by default (encoding escalation
        # included), so the measurement is end-to-end honest on both sides
        # of a baseline comparison.
        mii = effective_minimum_ii(dfg, cgra)
        options = dict(
            timeout=case.timeout,
            max_ii=mii,
            max_extra_slack=0,
            backend=case.backend,
            solver_conflict_limit=case.conflict_limit,
            run_register_allocation=False,
            random_seed=BENCH_SEED,
        )
        if "amo_probe_conflicts" in MapperConfig.__dataclass_fields__:
            # Probing would spend part of the fixed conflict budget in the
            # sequential phase; the throughput probes measure the escalated
            # (pairwise-optimised) regime directly.  The guard keeps the
            # harness runnable against historical trees without the knob.
            options["amo_probe_conflicts"] = None
        config = MapperConfig(**options)
        return config, mii
    options = dict(
        timeout=case.timeout,
        backend=case.backend,
        slack_conflict_limit=None,
        run_register_allocation=False,
        random_seed=BENCH_SEED,
    )
    if "search" in MapperConfig.__dataclass_fields__:
        # Strategy cases need the search layer; the guard keeps the harness
        # runnable against historical trees that predate it.
        options["search"] = case.search
        options["search_jobs"] = case.jobs
    if case.seeded and "seed_heuristic" in MapperConfig.__dataclass_fields__:
        # Same guard: seeded twins degrade to plain runs on trees without
        # the seeding layer rather than crashing the harness.
        options["seed_heuristic"] = True
    config = MapperConfig(**options)
    return config, None


def run_case(case: BenchCase, repeats: int = 3) -> dict:
    """Run one case ``repeats`` times and return its median measurements."""
    dfg = get_kernel(case.kernel)
    cgra = CGRA.square(case.size)
    config, start_ii = _case_config(case, dfg, cgra)

    runs: list[tuple[float, dict]] = []
    for _ in range(max(1, repeats)):
        mapper = SatMapItMapper(config)
        start = time.perf_counter()
        outcome = mapper.map(dfg, cgra, start_ii=start_ii)
        wall = time.perf_counter() - start
        solve = sum(a.solve_time for a in outcome.attempts)
        encode = sum(a.encode_time for a in outcome.attempts)
        conflicts = sum(a.conflicts for a in outcome.attempts)
        propagations = sum(getattr(a, "propagations", 0) for a in outcome.attempts)
        record = {
            "name": case.name,
            "kernel": case.kernel,
            "size": case.size,
            "bounded": case.bounded,
            "conflict_limit": case.conflict_limit,
            "search": case.search,
            "seeded": case.seeded,
            "backend": case.backend,
            "seed_ii": getattr(outcome, "seed_ii", None),
            "status": outcome.final_status,
            "ii": outcome.ii,
            "attempts": len(outcome.attempts),
            "solve_s": round(solve, 4),
            "encode_s": round(encode, 4),
            "conflicts": conflicts,
            "propagations": propagations,
            "binary_propagations": sum(
                getattr(a, "binary_propagations", 0) for a in outcome.attempts
            ),
            "blocker_skips": sum(
                getattr(a, "blocker_skips", 0) for a in outcome.attempts
            ),
            "arena_bytes": max(
                (getattr(a, "arena_bytes", 0) for a in outcome.attempts), default=0
            ),
        }
        runs.append((wall, record))
    # Keep the run whose wall time is the median, so every reported stat
    # (solve time, conflicts, ...) comes from one coherent run.
    runs.sort(key=lambda entry: entry[0])
    median_wall, record = runs[len(runs) // 2]
    record["wall_s"] = round(median_wall, 4)
    record["wall_runs_s"] = [round(w, 4) for w, _ in runs]
    record["propagations_per_s"] = (
        round(record["propagations"] / record["solve_s"]) if record["solve_s"] else 0
    )
    if not case.instrumented:
        # The engine cannot report solver-core counters; ``null`` keeps the
        # JSON honest — a zero would read as a (terrible) measurement.
        for counter in (
            "conflicts", "propagations", "propagations_per_s",
            "binary_propagations", "blocker_skips", "arena_bytes",
        ):
            record[counter] = None
    return record


def run_farm_case(repeats: int = 1) -> dict:
    """Run the farm throughput probe and return a suite-shaped record.

    The record carries the standard case keys (so :func:`compare` and the
    aggregate loops treat it uniformly) with solver-core counters nulled —
    a sweep spans many solves across worker processes, so per-conflict
    stats are not meaningful here.  ``status`` is ``"swept"``, which keeps
    the probe out of the suite-level ``kernels_mapped_per_minute`` total
    (that total is the single-process number; this case is the farm's).
    """
    from repro.experiments.runner import (
        RAMP,
        SAT_MAPIT,
        ExperimentConfig,
        run_sweep,
    )

    config = ExperimentConfig(
        kernels=FARM_KERNELS,
        sizes=(FARM_SIZE,),
        mappers=(SAT_MAPIT, RAMP),
        timeout=120.0,
        seed=BENCH_SEED,
    )
    runs: list[tuple[float, dict]] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        sweep = run_sweep(config, jobs=FARM_JOBS)
        wall = time.perf_counter() - start
        mapped = sum(1 for r in sweep.records if r.status == "mapped")
        farm = sweep.farm
        record = {
            "name": FARM_CASE_NAME,
            "kernel": "+".join(FARM_KERNELS),
            "size": FARM_SIZE,
            "bounded": False,
            "conflict_limit": None,
            "search": "farm",
            "seeded": False,
            "backend": "cdcl",
            "seed_ii": None,
            "status": "swept",
            "ii": None,
            "attempts": len(sweep.records),
            "solve_s": 0.0,
            "encode_s": 0.0,
            "conflicts": None,
            "propagations": None,
            "binary_propagations": None,
            "blocker_skips": None,
            "arena_bytes": None,
            "jobs": FARM_JOBS,
            "items": len(sweep.records),
            "mapped": mapped,
            "kernels_mapped_per_minute": (
                round(60.0 * mapped / wall, 2) if wall else 0.0
            ),
            "farm_retries": farm.retries if farm else 0,
            "farm_quarantined": farm.quarantined if farm else 0,
        }
        runs.append((wall, record))
    runs.sort(key=lambda entry: entry[0])
    median_wall, record = runs[len(runs) // 2]
    record["wall_s"] = round(median_wall, 4)
    record["wall_runs_s"] = [round(w, 4) for w, _ in runs]
    record["propagations_per_s"] = None
    return record


def run_scale_case(case: ScaleCase) -> dict:
    """Run one scalability panel entry: partitioned mapper vs exact twin.

    One repeat each — both sides are minutes-scale SAT runs, and the
    panel is informational (it documents reach, not a regression gate).
    The partitioned side must pass the cycle-accurate simulator replay
    for its ``status`` to read ``mapped``.
    """
    from repro.partition import PartitionConfig, PartitionMapper

    dfg = get_kernel(case.kernel)
    cgra = CGRA.square(case.size)

    start = time.perf_counter()
    part = PartitionMapper(
        PartitionConfig(num_partitions=case.partitions, timeout=case.timeout)
    ).map(dfg, cgra)
    part_wall = time.perf_counter() - start

    exact_config = MapperConfig(
        timeout=case.exact_timeout,
        attempt_time_limit=None,  # the monolithic twin gets its whole budget
        random_seed=BENCH_SEED,
    )
    start = time.perf_counter()
    exact = SatMapItMapper(exact_config).map(dfg, cgra)
    exact_wall = time.perf_counter() - start

    gap = (
        part.ii - exact.ii
        if part.success and exact.success and exact.ii is not None
        else None
    )
    return {
        "name": case.name,
        "kernel": case.kernel,
        "size": case.size,
        "partitions": case.partitions,
        "partition": {
            "status": part.final_status,
            "ii": part.ii,
            "minimum_ii": part.minimum_ii,
            "wall_s": round(part_wall, 2),
            "ii_rounds": part.ii_rounds,
            "route_nodes": part.stitch.num_route_nodes if part.stitch else None,
            "validated": part.validated,
        },
        "exact": {
            "status": exact.final_status,
            "ii": exact.ii,
            "wall_s": round(exact_wall, 2),
            "timeout_s": case.exact_timeout,
        },
        "ii_gap_vs_exact": gap,
    }


def run_suite(
    suite: str = "default",
    repeats: int = 3,
    progress: bool = False,
    farm: bool = False,
    scale: bool = False,
) -> dict:
    """Run a pinned suite and return the full benchmark document."""
    try:
        cases = SUITES[suite]
    except KeyError:
        raise ValueError(
            f"unknown bench suite {suite!r}; available: {sorted(SUITES)}"
        ) from None
    records = []
    for case in cases:
        record = run_case(case, repeats=repeats)
        # The reference-table filters below key off the backend; make the
        # annotation robust to record sources that omit it.
        record.setdefault("backend", case.backend)
        records.append(record)
        if progress:
            conflicts = record["conflicts"]
            rate = record["propagations_per_s"]
            print(
                f"  {record['name']:22s} wall={record['wall_s']:8.3f}s "
                f"solve={record['solve_s']:8.3f}s encode={record['encode_s']:6.3f}s "
                f"conflicts={conflicts if conflicts is not None else '-':>6} "
                f"props/s={rate if rate is not None else '-'}",
                flush=True,
            )
    if farm:
        # One repeat is enough: the sweep spans six mapper runs, so the
        # farm probe self-averages more than any single-solve case does.
        record = run_farm_case(repeats=1)
        records.append(record)
        if progress:
            print(
                f"  {record['name']:22s} wall={record['wall_s']:8.3f}s "
                f"mapped={record['mapped']}/{record['items']} "
                f"kernels/min={record['kernels_mapped_per_minute']}",
                flush=True,
            )
    # Annotate every non-ladder case with its wall-clock ratio against the
    # same (kernel, size) ladder twin — the portfolio's headline number —
    # every seeded case with its ratio against the unseeded twin of the
    # same (kernel, size, search), and every non-cdcl-backend case with its
    # ratio against the cdcl twin of the same (kernel, size, search,
    # seeded).  Seeded and alternative-backend cases are excluded from the
    # ladder/unseeded reference tables so they never masquerade as a
    # reference.
    ladder_walls = {
        (r["kernel"], r["size"]): r["wall_s"]
        for r in records
        if r.get("search", "ladder") == "ladder"
        and not r["bounded"]
        and not r.get("seeded")
        and r.get("backend", "cdcl") == "cdcl"
    }
    unseeded_walls = {
        (r["kernel"], r["size"], r.get("search", "ladder")): r["wall_s"]
        for r in records
        if not r["bounded"]
        and not r.get("seeded")
        and r.get("backend", "cdcl") == "cdcl"
    }
    cdcl_walls = {
        (r["kernel"], r["size"], r.get("search", "ladder"), bool(r.get("seeded"))):
            r["wall_s"]
        for r in records
        if not r["bounded"] and r.get("backend", "cdcl") == "cdcl"
    }
    for record in records:
        if record["bounded"]:
            continue
        if record.get("backend", "cdcl") != "cdcl":
            twin_wall = cdcl_walls.get((
                record["kernel"], record["size"],
                record.get("search", "ladder"), bool(record.get("seeded")),
            ))
            if twin_wall and record["wall_s"]:
                record["speedup_vs_cdcl"] = round(twin_wall / record["wall_s"], 2)
            continue
        if record.get("seeded"):
            twin_wall = unseeded_walls.get(
                (record["kernel"], record["size"], record.get("search", "ladder"))
            )
            if twin_wall and record["wall_s"]:
                record["speedup_vs_unseeded"] = round(
                    twin_wall / record["wall_s"], 2
                )
            continue
        if record.get("search", "ladder") == "ladder":
            continue
        twin_wall = ladder_walls.get((record["kernel"], record["size"]))
        if twin_wall and record["wall_s"]:
            record["speedup_vs_ladder"] = round(twin_wall / record["wall_s"], 2)
    total_wall = sum(r["wall_s"] for r in records)
    total_solve = sum(r["solve_s"] for r in records)
    # Solver-core totals cover instrumented cases only (``null`` counters
    # from external backends are not zeros).
    total_props = sum(r["propagations"] or 0 for r in records)
    # Service-level throughput: completed end-to-end mappings per minute of
    # mapper wall time (bounded probes never complete by construction and
    # are excluded from both sides of the ratio).
    completing = [
        r for r in records if not r["bounded"] and r["status"] == "mapped"
    ]
    completing_wall = sum(r["wall_s"] for r in completing)
    kernels_per_minute = (
        round(60.0 * len(completing) / completing_wall, 2)
        if completing_wall
        else 0.0
    )
    # The aggregate rate divides by *instrumented* solve time only, so an
    # external case (null counters) cannot dilute it.
    instrumented_solve = sum(
        r["solve_s"] for r in records if r["propagations"] is not None
    )
    scale_panel: list[dict] = []
    if scale:
        for scale_case in SCALE_PANEL:
            record = run_scale_case(scale_case)
            scale_panel.append(record)
            if progress:
                part, exact = record["partition"], record["exact"]
                gap = record["ii_gap_vs_exact"]
                print(
                    f"  {record['name']:22s} "
                    f"partitioned II={part['ii']} ({part['status']}, "
                    f"{part['wall_s']:.1f}s) "
                    f"exact II={exact['ii']} ({exact['status']}, "
                    f"{exact['wall_s']:.1f}s) "
                    f"gap={gap if gap is not None else '-'}",
                    flush=True,
                )
    return {
        "schema": SCHEMA,
        "suite": suite,
        "seed": BENCH_SEED,
        "repeats": repeats,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cases": records,
        "totals": {
            "wall_s": round(total_wall, 4),
            "solve_s": round(total_solve, 4),
            "encode_s": round(sum(r["encode_s"] for r in records), 4),
            "conflicts": sum(r["conflicts"] or 0 for r in records),
            "propagations": total_props,
            "propagations_per_s": (
                round(total_props / instrumented_solve)
                if instrumented_solve
                else 0
            ),
            "kernels_mapped_per_minute": kernels_per_minute,
        },
        # Partition-vs-exact reach panel (empty unless ``scale=True``):
        # informational, never gated — wall times here are minutes-scale
        # SAT runs whose variance would make a ratio gate pure noise.
        "scale_panel": scale_panel,
    }


def write_results(results: dict, path: str = DEFAULT_OUTPUT) -> None:
    """Write the benchmark document as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(results, stream, indent=2, sort_keys=False)
        stream.write("\n")


def load_results(path: str) -> dict:
    """Read a benchmark document, validating the schema tag."""
    with open(path, encoding="utf-8") as stream:
        data = json.load(stream)
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unexpected schema {data.get('schema')!r} (want {SCHEMA!r})"
        )
    return data


def compare(
    baseline: dict, current: dict, max_slowdown: float = 3.0
) -> tuple[bool, list[str]]:
    """CI gate: fail on gross per-case slowdown or coverage loss vs baseline.

    Returns ``(ok, report_lines)``.  A case present only in the *current*
    run is reported but never fails the gate (the pinned suite may grow);
    a baseline case **missing from the current run is a hard failure** —
    otherwise deleting or renaming cases would silently shrink what the
    perf gate protects.  An II mismatch on a shared completing case also
    fails: faster-but-wrong is a regression.
    """
    lines: list[str] = []
    ok = True
    base_cases = {c["name"]: c for c in baseline.get("cases", [])}
    for entry in current.get("cases", []):
        name = entry["name"]
        base = base_cases.get(name)
        if base is None:
            lines.append(f"{name}: new case (no baseline)")
            continue
        if not entry.get("bounded") and base.get("ii") != entry.get("ii"):
            # Completing cases are configured so the II is a pure formula
            # property — a change is a correctness regression.  Bounded
            # throughput probes are exempt: a lucky trajectory may conclude
            # inside the conflict budget, which is not a defect.
            ok = False
            lines.append(
                f"{name}: II changed {base.get('ii')} -> {entry.get('ii')} (FAIL)"
            )
            continue
        base_wall = base.get("wall_s") or 0.0
        wall = entry.get("wall_s") or 0.0
        if base_wall <= 0:
            lines.append(f"{name}: baseline wall time missing, skipped")
            continue
        ratio = wall / base_wall
        if base_wall < MIN_GATE_WALL_S:
            lines.append(
                f"{name}: {base_wall:.3f}s -> {wall:.3f}s ({ratio:.2f}x) "
                "informational (below gate floor)"
            )
            continue
        verdict = "ok"
        if ratio > max_slowdown:
            ok = False
            verdict = f"FAIL (> {max_slowdown:.1f}x)"
        elif ratio < 1.0:
            verdict = f"{1 / ratio:.2f}x faster"
        # Informational propagation-rate delta — skipped entirely when
        # either side reports null rates (non-instrumented backends).
        base_rate = base.get("propagations_per_s")
        rate = entry.get("propagations_per_s")
        rate_note = ""
        if base_rate and rate is not None:
            rate_note = f", props/s {base_rate} -> {rate}"
        lines.append(
            f"{name}: {base_wall:.3f}s -> {wall:.3f}s ({ratio:.2f}x) "
            f"{verdict}{rate_note}"
        )
    current_names = {c["name"] for c in current.get("cases", [])}
    for name in base_cases:
        if name not in current_names:
            ok = False
            lines.append(f"{name}: missing from current run (FAIL)")
    return ok, lines


def check_strategy_equivalence(
    suite: str = "default",
    progress: bool = False,
    reference_doc: dict | None = None,
    external_backend: str | None = "subprocess",
) -> tuple[bool, list[str]]:
    """CI gate: every strategy — seeded or not — must match the ladder's II.

    Every completing (non-bounded) unseeded-ladder case of the suite is run
    once under each alternative strategy *and* once under every strategy
    with the heuristic seeding pre-pass enabled; achieved II and final
    status must equal the unseeded ladder's.  The suite's completing cases
    are configured so the II is a formula property (decisive attempts, no
    regalloc post-pass) — any divergence is an orchestration bug, not
    noise; in particular a seed may only *bound* the search, never inflate
    the returned II.  ``reference_doc`` (a document from :func:`run_suite`)
    supplies the ladder answers without re-solving them; missing cases fall
    back to a fresh reference run.

    ``external_backend`` adds one more row per case: the same ladder search
    solved through the named external backend (default: the bundled
    ``subprocess`` engine, so the gate needs no system solver; CI also runs
    it with a real one).  ``None`` skips the external rows.
    """
    from dataclasses import replace as dc_replace

    cases = [
        case
        for case in SUITES[suite]
        if not case.bounded
        and case.search == "ladder"
        and not case.seeded
        and case.backend == "cdcl"
    ]
    references = {
        record["name"]: record
        for record in (reference_doc or {}).get("cases", [])
    }
    variants = [
        ("bisect", False),
        ("portfolio", False),
        ("ladder", True),
        ("bisect", True),
        ("portfolio", True),
    ]
    lines: list[str] = []
    ok = True
    for case in cases:
        reference = references.get(case.name) or run_case(case, repeats=1)
        rows = [
            (f"{strategy}+seed" if seeded else strategy,
             dict(search=strategy,
                  jobs=2 if strategy == "portfolio" else 1,
                  seeded=seeded))
            for strategy, seeded in variants
        ]
        if external_backend:
            rows.append((external_backend, dict(backend=external_backend)))
        for label, overrides in rows:
            variant = dc_replace(
                case, name=f"{case.name}!{label}", **overrides
            )
            result = run_case(variant, repeats=1)
            same = (
                result["ii"] == reference["ii"]
                and result["status"] == reference["status"]
            )
            verdict = "ok" if same else "FAIL"
            if not same:
                ok = False
            line = (
                f"{case.name}: ladder II={reference['ii']} "
                f"{label} II={result['ii']} ({verdict})"
            )
            lines.append(line)
            if progress:
                print(f"  {line}", flush=True)
    return ok, lines


def main(argv: list[str] | None = None) -> int:
    """Entry point shared by ``repro bench`` and ``benchmarks/perf_harness.py``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="perf_harness",
        description="Run the pinned SAT-MapIt performance suite",
    )
    parser.add_argument("--suite", choices=sorted(SUITES), default="default")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per case; the median wall time is kept")
    parser.add_argument("--out", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--baseline", metavar="FILE",
                        help="compare against a previous BENCH_solver.json and "
                             "fail on gross slowdown")
    parser.add_argument("--max-slowdown", type=float, default=3.0,
                        help="per-case wall-time ratio that fails the "
                             "--baseline gate (default: 3.0)")
    parser.add_argument("--no-farm", action="store_true",
                        help="skip the farm throughput probe "
                             f"({FARM_CASE_NAME})")
    parser.add_argument("--scale", action="store_true",
                        help="also run the partition-vs-exact scalability "
                             "panel (minutes-scale; informational, "
                             "never gated)")
    parser.add_argument("--check-strategies", action="store_true",
                        help="re-run every completing case under the bisect "
                             "and portfolio strategies (and one external "
                             "backend) and fail on any II divergence from "
                             "the ladder")
    parser.add_argument("--external-backend", default="subprocess",
                        metavar="NAME",
                        help="external backend for the --check-strategies "
                             "rows: 'subprocess' (bundled, default), a "
                             "system solver like 'kissat', or 'none' to "
                             "skip the external rows")
    args = parser.parse_args(argv)

    external_backend = (
        None if args.external_backend == "none" else args.external_backend
    )
    if external_backend and args.check_strategies:
        from repro.sat.backend import BackendUnavailableError, validate_backend

        try:
            validate_backend(external_backend)
        except (BackendUnavailableError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    print(f"perf harness: suite={args.suite} repeats={args.repeats} "
          f"seed={BENCH_SEED}")
    results = run_suite(
        args.suite, repeats=args.repeats, progress=True,
        farm=not args.no_farm, scale=args.scale,
    )
    totals = results["totals"]
    print(f"totals: wall={totals['wall_s']:.3f}s solve={totals['solve_s']:.3f}s "
          f"encode={totals['encode_s']:.3f}s "
          f"props/s={totals['propagations_per_s']}")
    write_results(results, args.out)
    print(f"results written to {args.out}")

    if args.baseline:
        baseline = load_results(args.baseline)
        ok, lines = compare(baseline, results, max_slowdown=args.max_slowdown)
        print(f"\nbaseline comparison ({args.baseline}):")
        for line in lines:
            print(f"  {line}")
        if not ok:
            print("perf gate FAILED", file=sys.stderr)
            return 1
        print("perf gate passed")

    if args.check_strategies:
        tail = f" vs {external_backend}" if external_backend else ""
        print(f"\nstrategy equivalence (ladder vs bisect vs portfolio{tail}):")
        ok, _lines = check_strategy_equivalence(
            args.suite, progress=True, reference_doc=results,
            external_backend=external_backend,
        )
        if not ok:
            print("strategy equivalence FAILED", file=sys.stderr)
            return 1
        print("strategy equivalence passed")
    return 0
