"""Cycle-accurate execution of a mapping on the modelled CGRA.

The simulator replays the steady-state kernel (plus its natural prologue and
epilogue) cycle by cycle.  Each PE owns an output register (overwritten by
every instruction the PE executes) and a local register file; operand reads
happen at the beginning of a cycle, writes at the end (single-cycle latency,
matching the mapper's timing model).

For every executed node instance the simulator checks that the operand it can
physically reach — the producer PE's output register for a neighbour
transfer, the producer PE's register file for a same-PE transfer — holds
exactly the value the golden-model interpreter says the producer produced in
the right iteration.  Any stale or clobbered value is reported as an error, so
a mapping that passes simulation is correct end to end: placement, timing,
output-register survival and register allocation all agree.

On heterogeneous fabrics the simulator doubles as the end-to-end capability
legality oracle: executing an instruction on a PE that does not implement its
functional class raises :class:`SimulationError` immediately — a mapping that
runs to completion is therefore placement-, timing-, transfer- *and*
capability-correct.

Memory semantics (LOAD/STORE contents) stay in the golden model: the machine
checks *dataflow delivery*, the reference checks *computation*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mapping import Mapping
from repro.core.regalloc import RegisterAllocation
from repro.exceptions import SimulationError
from repro.simulator.reference import ReferenceInterpreter


@dataclass
class SimulationResult:
    """Outcome of a cycle-accurate simulation run."""

    success: bool
    iterations: int
    cycles_executed: int
    checked_transfers: int
    errors: list[str] = field(default_factory=list)
    #: Values produced per (node, iteration), as computed by the golden model.
    values: dict[tuple[int, int], int] = field(default_factory=dict)

    def __repr__(self) -> str:
        status = "ok" if self.success else f"{len(self.errors)} errors"
        return (
            f"SimulationResult({status}, iterations={self.iterations}, "
            f"cycles={self.cycles_executed}, transfers={self.checked_transfers})"
        )


@dataclass
class _PEState:
    """Architectural state of one processing element during simulation."""

    output_register: tuple[int, int, int] | None = None  # (node, iteration, value)
    register_file: dict[int, tuple[int, int, int]] = field(default_factory=dict)
    #: Fallback store used when no register allocation is supplied: one slot
    #: per producing node (capacity is then *not* checked here).
    virtual_registers: dict[int, tuple[int, int, int]] = field(default_factory=dict)


class CGRASimulator:
    """Executes a mapping and validates every data transfer."""

    def __init__(
        self,
        mapping: Mapping,
        register_allocation: RegisterAllocation | None = None,
        initial_values: dict[int, int] | None = None,
        memory: dict[int, int] | None = None,
        neighbour_register_file_access: bool = True,
    ) -> None:
        if not mapping.placements:
            raise SimulationError("cannot simulate an empty mapping")
        self.mapping = mapping
        self.register_allocation = register_allocation
        #: Transfer model (must match the mapper's): when True a consumer on a
        #: neighbouring PE reads the producer's register file (the default,
        #: matching ``MapperConfig.neighbour_register_file_access``); when
        #: False it reads the producer's single output register, which other
        #: instructions on that PE overwrite.
        self.neighbour_register_file_access = neighbour_register_file_access
        self.reference = ReferenceInterpreter(
            dfg=mapping.dfg,
            initial_values=initial_values or {},
            memory=memory or {},
        )

    # ------------------------------------------------------------------
    def run(self, num_iterations: int = 4) -> SimulationResult:
        """Simulate ``num_iterations`` loop iterations through the kernel."""
        if num_iterations < 1:
            raise SimulationError(f"num_iterations must be >= 1, got {num_iterations}")
        mapping = self.mapping
        dfg = mapping.dfg
        ii = mapping.ii
        history = self.reference.run(num_iterations)

        # Build the execution timeline: (absolute cycle, node, iteration, pe).
        # Executing an opcode on a PE lacking the functional unit is a
        # hardware impossibility, not a recoverable dataflow error — refuse
        # to run such a mapping at all.
        timeline: dict[int, list[tuple[int, int, int]]] = {}
        for node_id, placement in mapping.placements.items():
            node = dfg.node(node_id)
            pe_model = mapping.cgra.pe(placement.pe)
            if not pe_model.supports(node.opcode):
                raise SimulationError(
                    f"node {node_id} executes {node.opcode.value} on "
                    f"{pe_model.name}, which only implements "
                    f"{'/'.join(sorted(c.value for c in pe_model.capabilities))}"
                )
            start = placement.flat_time(ii)
            for k in range(num_iterations):
                cycle = start + k * ii
                timeline.setdefault(cycle, []).append((node_id, k, placement.pe))

        pes = {pe: _PEState() for pe in range(mapping.cgra.num_pes)}
        errors: list[str] = []
        checked = 0
        values: dict[tuple[int, int], int] = {}
        last_cycle = max(timeline) if timeline else 0

        for cycle in range(last_cycle + 1):
            events = timeline.get(cycle, [])
            # Detect structural double-booking (should be impossible for a
            # legal mapping, but the simulator is also used on hand-written
            # mappings in tests).
            used_pes: dict[int, int] = {}
            for node_id, _k, pe in events:
                if pe in used_pes:
                    errors.append(
                        f"cycle {cycle}: PE {pe} executes node {used_pes[pe]} and "
                        f"node {node_id} simultaneously"
                    )
                used_pes[pe] = node_id

            # Phase 1: operand reads (see state produced in earlier cycles).
            for node_id, k, pe in events:
                for edge in dfg.predecessors(node_id):
                    source_iteration = k - edge.distance
                    if source_iteration < 0:
                        continue  # fed by the prologue, outside the kernel
                    if edge.src not in mapping.placements:
                        continue
                    expected = history[source_iteration][edge.src]
                    checked += 1
                    error = self._check_transfer(
                        pes, mapping, edge.src, source_iteration, expected,
                        node_id, k, pe, cycle,
                    )
                    if error:
                        errors.append(error)

            # Phase 2: writes (become visible from the next cycle on).
            for node_id, k, pe in events:
                value = history[k][node_id]
                values[(node_id, k)] = value
                state = pes[pe]
                state.output_register = (node_id, k, value)
                registers = self._registers_for(node_id)
                if registers:
                    register = registers[k % len(registers)]
                    state.register_file[register] = (node_id, k, value)
                else:
                    state.virtual_registers[node_id] = (node_id, k, value)

        return SimulationResult(
            success=not errors,
            iterations=num_iterations,
            cycles_executed=last_cycle + 1,
            checked_transfers=checked,
            errors=errors,
            values=values,
        )

    # ------------------------------------------------------------------
    def _registers_for(self, node_id: int) -> list[int]:
        if self.register_allocation is not None:
            return self.register_allocation.all_copies.get(node_id, [])
        # Archived mappings carry the per-copy assignment themselves, so a
        # deserialized mapping replays exactly without the allocation object.
        return self.mapping.register_copies.get(node_id, [])

    def _check_transfer(
        self,
        pes: dict[int, _PEState],
        mapping: Mapping,
        src: int,
        src_iteration: int,
        expected: int,
        dst: int,
        dst_iteration: int,
        dst_pe: int,
        cycle: int,
    ) -> str | None:
        """Verify that (src, src_iteration) is readable by dst at this cycle."""
        src_pe = mapping.placements[src].pe
        wanted = (src, src_iteration, expected)
        if src_pe != dst_pe and not mapping.cgra.are_neighbours(
            src_pe, dst_pe, include_self=False
        ):
            return (
                f"cycle {cycle}: node {dst} (iteration {dst_iteration}) on PE "
                f"{dst_pe} cannot reach producer node {src} on PE {src_pe}"
            )
        reads_register_file = (
            src_pe == dst_pe or self.neighbour_register_file_access
        )
        if reads_register_file:
            state = pes[src_pe]
            registers = self._registers_for(src)
            if registers:
                register = registers[src_iteration % len(registers)]
                held = state.register_file.get(register)
                location = f"register r{register} of PE {src_pe}"
            else:
                held = state.virtual_registers.get(src)
                location = f"register file of PE {src_pe}"
        else:
            held = pes[src_pe].output_register
            location = f"output register of PE {src_pe}"
        if held is None:
            return (
                f"cycle {cycle}: node {dst} (iteration {dst_iteration}) reads "
                f"{location} but it holds no value yet (expected node {src}, "
                f"iteration {src_iteration})"
            )
        if held[:2] != wanted[:2]:
            return (
                f"cycle {cycle}: node {dst} (iteration {dst_iteration}) reads "
                f"{location} and finds value of node {held[0]} iteration {held[1]}, "
                f"expected node {src} iteration {src_iteration}"
            )
        if held[2] != expected:
            return (
                f"cycle {cycle}: stale value for node {src} iteration "
                f"{src_iteration} in {location}: {held[2]} != {expected}"
            )
        return None
