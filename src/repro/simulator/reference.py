"""Golden-model interpreter for data-flow graphs.

Executes a DFG for a number of loop iterations, honouring loop-carried
dependencies (edges with ``distance > 0`` read the value produced that many
iterations earlier).  All arithmetic is 32-bit wrap-around, shifts are masked
to 5 bits and division by zero yields zero — simple, total semantics that the
cycle-accurate simulator reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dfg.graph import DFG, Opcode
from repro.exceptions import SimulationError

_MASK32 = 0xFFFFFFFF


def _wrap(value: int) -> int:
    return value & _MASK32


def _to_signed(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value & 0x80000000 else value


def default_memory(address: int) -> int:
    """Deterministic pseudo-random memory contents used for LOAD nodes."""
    return _wrap((address & _MASK32) * 2654435761 + 12345)


@dataclass
class ReferenceInterpreter:
    """Iteration-by-iteration DFG interpreter (the golden model)."""

    dfg: DFG
    #: Initial values of PHI nodes (and of any node read through a back edge
    #: before it has ever executed).  Defaults to zero.
    initial_values: dict[int, int] = field(default_factory=dict)
    #: Memory contents for LOAD nodes, keyed by address; addresses not present
    #: fall back to :func:`default_memory`.
    memory: dict[int, int] = field(default_factory=dict)

    def run(self, num_iterations: int) -> list[dict[int, int]]:
        """Execute ``num_iterations`` iterations; returns per-iteration values."""
        if num_iterations < 0:
            raise SimulationError(f"num_iterations must be >= 0, got {num_iterations}")
        self.dfg.validate()
        order = self._topological_order()
        history: list[dict[int, int]] = []
        store_state = dict(self.memory)
        for iteration in range(num_iterations):
            values: dict[int, int] = {}
            for node_id in order:
                values[node_id] = self._evaluate(node_id, iteration, values, history,
                                                 store_state)
            history.append(values)
        return history

    def value(self, history: list[dict[int, int]], node_id: int, iteration: int) -> int:
        """The value node ``node_id`` produced in ``iteration``."""
        if iteration < 0:
            return self.initial_values.get(node_id, 0)
        return history[iteration][node_id]

    # ------------------------------------------------------------------
    def _topological_order(self) -> list[int]:
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.dfg.node_ids)
        graph.add_edges_from((e.src, e.dst) for e in self.dfg.forward_edges())
        return list(nx.topological_sort(graph))

    def _operands(
        self,
        node_id: int,
        iteration: int,
        values: dict[int, int],
        history: list[dict[int, int]],
    ) -> list[int]:
        edges = sorted(
            self.dfg.predecessors(node_id),
            key=lambda e: (e.operand_index, e.src),
        )
        operands: list[int] = []
        for edge in edges:
            if edge.distance == 0:
                operands.append(values[edge.src])
            else:
                source_iteration = iteration - edge.distance
                if source_iteration < 0:
                    operands.append(self.initial_values.get(edge.src, 0))
                else:
                    operands.append(history[source_iteration][edge.src])
        return operands

    def _evaluate(
        self,
        node_id: int,
        iteration: int,
        values: dict[int, int],
        history: list[dict[int, int]],
        store_state: dict[int, int],
    ) -> int:
        node = self.dfg.node(node_id)
        operands = self._operands(node_id, iteration, values, history)
        opcode = node.opcode

        if opcode is Opcode.CONST:
            if node.constant is not None:
                return _wrap(node.constant)
            # Named loop invariant: derive a stable value from the name.
            return _wrap(sum(ord(ch) for ch in node.name) * 2654435761 + 97)
        if opcode is Opcode.PHI:
            incoming = self.dfg.predecessors(node_id)
            min_distance = min((edge.distance for edge in incoming), default=1)
            if iteration < min_distance or not operands:
                # Before the first loop-carried value arrives the PHI holds
                # its initial value (set up by the prologue).
                return _wrap(self.initial_values.get(node_id, 0))
            return _wrap(operands[0])
        if opcode is Opcode.ROUTE:
            return _wrap(operands[0]) if operands else 0
        if opcode is Opcode.LOAD:
            address = operands[0] if operands else 0
            if address in store_state:
                return _wrap(store_state[address])
            return default_memory(address)
        if opcode is Opcode.STORE:
            address = operands[0] if operands else 0
            value = operands[1] if len(operands) > 1 else 0
            store_state[address] = _wrap(value)
            return _wrap(value)

        a = operands[0] if operands else 0
        b = operands[1] if len(operands) > 1 else 0
        if opcode is Opcode.ADD:
            return _wrap(a + b)
        if opcode is Opcode.SUB:
            return _wrap(a - b)
        if opcode is Opcode.MUL:
            return _wrap(a * b)
        if opcode is Opcode.DIV:
            return _wrap(a // b) if b else 0
        if opcode is Opcode.AND:
            return _wrap(a & b)
        if opcode is Opcode.OR:
            return _wrap(a | b)
        if opcode is Opcode.XOR:
            return _wrap(a ^ b)
        if opcode is Opcode.SHL:
            return _wrap(a << (b & 31))
        if opcode is Opcode.SHR:
            return _wrap(a >> (b & 31))
        if opcode is Opcode.LT:
            return 1 if _to_signed(a) < _to_signed(b) else 0
        if opcode is Opcode.GT:
            return 1 if _to_signed(a) > _to_signed(b) else 0
        if opcode is Opcode.EQ:
            return 1 if a == b else 0
        if opcode is Opcode.SELECT:
            condition = operands[0] if operands else 0
            if_true = operands[1] if len(operands) > 1 else 0
            if_false = operands[2] if len(operands) > 2 else 0
            return _wrap(if_true if condition else if_false)
        raise SimulationError(f"unsupported opcode {opcode!r} for node {node_id}")


def interpret_dfg(
    dfg: DFG,
    num_iterations: int,
    initial_values: dict[int, int] | None = None,
    memory: dict[int, int] | None = None,
) -> list[dict[int, int]]:
    """Convenience wrapper around :class:`ReferenceInterpreter`."""
    interpreter = ReferenceInterpreter(
        dfg=dfg,
        initial_values=initial_values or {},
        memory=memory or {},
    )
    return interpreter.run(num_iterations)
