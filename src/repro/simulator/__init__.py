"""Functional CGRA simulation.

Two cooperating pieces:

* :mod:`repro.simulator.reference` — a golden-model interpreter that executes
  a DFG iteration by iteration directly from its graph structure.
* :mod:`repro.simulator.machine` — a cycle-accurate executor that runs a
  *mapping* on the modelled CGRA (per-PE output registers and register files)
  and checks that every consumed operand is the value the golden model says it
  should be.

Together they provide end-to-end evidence that a mapping is not just legal on
paper but actually computes the loop: the test-suite simulates every mapping
produced by the SAT mapper and the baselines against the reference
interpreter.
"""

from repro.simulator.machine import CGRASimulator, SimulationResult
from repro.simulator.reference import ReferenceInterpreter, interpret_dfg

__all__ = [
    "ReferenceInterpreter",
    "interpret_dfg",
    "CGRASimulator",
    "SimulationResult",
]
