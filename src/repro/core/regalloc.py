"""Register allocation for modulo-scheduled CGRA mappings (paper Section IV-D).

After the SAT solver fixes where and when every instruction runs, each value
must live in a register of its producer's PE from the cycle it is produced
until the last consumer has read it.  Because the kernel repeats every II
cycles, live ranges are *circular*: a value whose lifetime exceeds the II has
several copies alive simultaneously (one per in-flight iteration) and needs
one register per copy.

The allocator:

1. computes the modulo live range of every produced value,
2. expands values into one vertex per simultaneously-live copy,
3. builds the per-PE interference graph over kernel cycles, and
4. greedily colours it with the PE's register count.

A colouring failure is reported back to the mapper, which reacts by
increasing the II (the paper's alternative — splitting live ranges with
loads/stores — is available as an estimate of the extra cycles needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cgra.architecture import CGRA
from repro.core.mapping import Mapping
from repro.dfg.graph import DFG
from repro.exceptions import RegisterAllocationError


@dataclass(frozen=True)
class LiveRange:
    """The modulo live range of one value (the output of one node)."""

    node_id: int
    pe: int
    start: int  # flat time the value becomes available
    end: int  # flat time of the last consumption (exclusive bound)
    ii: int

    @property
    def length(self) -> int:
        return max(0, self.end - self.start)

    @property
    def copies(self) -> int:
        """Number of simultaneously live copies in the steady-state kernel."""
        if self.length == 0:
            return 0
        return -(-self.length // self.ii)  # ceil division

    def cycles_for_copy(self, copy_index: int) -> set[int]:
        """Kernel cycles occupied by one specific live copy of the value."""
        cycles: set[int] = set()
        for flat in range(self.start, self.end):
            if (flat - self.start) // self.ii == copy_index:
                cycles.add(flat % self.ii)
        return cycles

    def occupied_cycles(self) -> dict[int, int]:
        """Kernel cycle -> number of live copies at that cycle."""
        pressure: dict[int, int] = {}
        for flat in range(self.start, self.end):
            cycle = flat % self.ii
            pressure[cycle] = pressure.get(cycle, 0) + 1
        return pressure


@dataclass
class RegisterAllocation:
    """Result of the register-allocation phase."""

    success: bool
    #: ``node -> register index`` for the first live copy of each value (the
    #: remaining copies rotate through the registers listed in ``all_copies``).
    assignment: dict[int, int] = field(default_factory=dict)
    #: ``node -> [register index per live copy]``.
    all_copies: dict[int, list[int]] = field(default_factory=dict)
    live_ranges: dict[int, LiveRange] = field(default_factory=dict)
    #: Maximum number of simultaneously live values on any PE / kernel cycle.
    max_pressure: int = 0
    #: Human readable description of the failure (empty when successful).
    failure_reason: str = ""
    #: PE whose register file could not accommodate the live values (``None``
    #: when successful); the mapper uses it to steer its retry.
    failed_pe: int | None = None

    def registers_used(self, pe: int) -> int:
        """Number of distinct registers used on a PE."""
        used: set[int] = set()
        for node_id, registers in self.all_copies.items():
            live = self.live_ranges.get(node_id)
            if live is not None and live.pe == pe:
                used.update(registers)
        return len(used)


def compute_live_ranges(
    dfg: DFG, mapping: Mapping, neighbour_register_file_access: bool = False
) -> dict[int, LiveRange]:
    """Live range of every value, anchored on its producer's PE.

    A value occupies a register of the producer's PE for every consumer placed
    on the *same* PE; when ``neighbour_register_file_access`` is true the
    neighbouring consumers also read from the producer's register file (and
    therefore extend the live range), otherwise they are served by the output
    register whose survival was already enforced by the SAT encoding.
    """
    ii = mapping.ii
    ranges: dict[int, LiveRange] = {}
    for node in dfg.nodes:
        if node.node_id not in mapping.placements:
            continue
        producer = mapping.placements[node.node_id]
        start = producer.flat_time(ii) + node.latency
        last_use = start
        has_register_consumer = False
        for edge in dfg.successors(node.node_id):
            if edge.dst not in mapping.placements:
                continue
            consumer = mapping.placements[edge.dst]
            consumed = consumer.flat_time(ii) + edge.distance * ii
            same_pe = consumer.pe == producer.pe
            if same_pe or neighbour_register_file_access:
                has_register_consumer = True
                last_use = max(last_use, consumed + 1)
        if not has_register_consumer:
            continue
        ranges[node.node_id] = LiveRange(
            node_id=node.node_id, pe=producer.pe, start=start, end=last_use, ii=ii
        )
    return ranges


def allocate_registers(
    dfg: DFG,
    cgra: CGRA,
    mapping: Mapping,
    neighbour_register_file_access: bool = False,
) -> RegisterAllocation:
    """Colour per-PE interference graphs against the register file size."""
    if mapping.ii < 1:
        raise RegisterAllocationError(f"mapping has invalid II {mapping.ii}")
    live_ranges = compute_live_ranges(dfg, mapping, neighbour_register_file_access)

    # Pressure check (MAXLIVE): cheap necessary condition and useful metric.
    # Register files may differ per PE on heterogeneous fabrics, so pressure
    # is judged against each PE's own capacity.
    max_pressure = 0
    pressure: dict[tuple[int, int], int] = {}
    for live in live_ranges.values():
        for cycle, copies in live.occupied_cycles().items():
            key = (live.pe, cycle)
            pressure[key] = pressure.get(key, 0) + copies
            max_pressure = max(max_pressure, pressure[key])

    allocation = RegisterAllocation(
        success=True, live_ranges=live_ranges, max_pressure=max_pressure
    )
    overloaded = [
        (count - cgra.pe(pe).num_registers, pe, cycle)
        for (pe, cycle), count in pressure.items()
        if count > cgra.pe(pe).num_registers
    ]
    if overloaded:
        excess, pe, cycle = max(overloaded)
        allocation.success = False
        allocation.failed_pe = pe
        allocation.failure_reason = (
            f"register pressure {pressure[(pe, cycle)]} exceeds the "
            f"{cgra.pe(pe).num_registers} registers of PE {pe} at kernel "
            f"cycle {cycle}"
        )
        return allocation

    # Per-PE greedy colouring over live copies (vertices of the interference
    # graph).  Copies of the same value always interfere with each other (they
    # are alive simultaneously for different in-flight iterations).  Copies of
    # *different* values interfere whenever the two values are live at a
    # common kernel cycle: because the copy a given iteration occupies rotates
    # over time, sharing a register between two overlapping values is only
    # safe if their rotation periods never collide, and the conservative
    # value-level test keeps the assignment correct for any number of copies
    # (the cycle-accurate simulator in repro.simulator checks exactly this).
    occupied: dict[int, set[int]] = {
        node_id: set(live.occupied_cycles()) for node_id, live in live_ranges.items()
    }
    for pe in range(cgra.num_pes):
        registers = cgra.pe(pe).num_registers
        vertices: list[tuple[int, int, set[int]]] = []
        for live in live_ranges.values():
            if live.pe != pe:
                continue
            for copy_index in range(live.copies):
                vertices.append((live.node_id, copy_index, live.cycles_for_copy(copy_index)))
        # Colour the most constrained (longest) copies first.
        vertices.sort(key=lambda vertex: -len(vertex[2]))
        colouring: dict[tuple[int, int], int] = {}
        for node_id, copy_index, cycles in vertices:
            forbidden: set[int] = set()
            for (other_node, other_copy), colour in colouring.items():
                other_live = live_ranges[other_node]
                if other_live.pe != pe:
                    continue
                if other_node == node_id:
                    forbidden.add(colour)
                elif occupied[node_id] & occupied[other_node]:
                    forbidden.add(colour)
            colour = next(
                (candidate for candidate in range(registers) if candidate not in forbidden),
                None,
            )
            if colour is None:
                allocation.success = False
                allocation.failed_pe = pe
                allocation.failure_reason = (
                    f"could not colour value of node {node_id} (copy {copy_index}) "
                    f"on PE {pe} with {registers} registers"
                )
                return allocation
            colouring[(node_id, copy_index)] = colour
        for (node_id, copy_index), colour in colouring.items():
            allocation.all_copies.setdefault(node_id, []).append(colour)
            if copy_index == 0:
                allocation.assignment[node_id] = colour
    return allocation


def estimate_spill_cycles(allocation: RegisterAllocation, registers: int) -> int:
    """Rough estimate of the extra cycles needed to split uncolourable ranges.

    The paper resolves colouring failures by splitting overlapping intervals
    with load/store pairs; each unit of excess pressure requires one store and
    one load, i.e. two additional instructions.
    """
    excess = max(0, allocation.max_pressure - registers)
    return 2 * excess
