"""CNF encoding of the CGRA mapping problem (paper Section IV-C).

Literals are of the form ``x[n, p, c, it]`` — node ``n`` executes on PE ``p``
at kernel cycle ``c``, carrying the KMS iteration label ``it``.  Three
constraint families are produced:

* **C1** — for every node, exactly one of its literals is true (Equation 1).
* **C2** — at most one node per (PE, kernel cycle) slot (Equation 2).
* **C3** — every DFG dependency connects neighbouring (or identical) PEs with
  modulo-schedule-consistent timing (Equation 3), and values travelling to a
  neighbour through the producer's output register are not overwritten before
  consumption (Equations 4 and 5).

On heterogeneous fabrics the variable space is *capability-pruned*: a literal
``x[n, p, c, it]`` is only created when PE ``p`` implements the functional
class of node ``n``'s opcode, so illegal placements cost neither variables
nor clauses (``EncodingStats.num_pruned_placements`` reports the saving; on a
homogeneous fabric it is zero and the encoding is literal-for-literal the
classic one).

The paper presents C3 as a disjunction over compatible literal pairs; here it
is encoded equivalently (given the exactly-one constraints of C1) as two
implication families — ``source literal → one of its compatible destination
literals`` and vice versa — plus conditional "no overwrite" clauses that use
one auxiliary *occupancy* variable per (PE, cycle) slot to stay compact.

The encoder can emit into two kinds of targets.  By default it builds a
standalone :class:`repro.sat.cnf.CNF` (the classic one-shot interface).  For
the incremental mapping loop it instead emits straight into a live
:class:`repro.sat.backend.SolverBackend`, with every clause guarded by a
per-attempt *selector* literal: ``clause`` becomes ``¬selector ∨ clause``, so
the whole constraint group is active only while the mapper assumes
``selector`` and is retired by simply dropping that assumption (plus a final
``¬selector`` unit so the solver can simplify it away).  Because distinct
attempts use disjoint variable blocks, satisfiability under the selector
assumption is equivalent to the standalone formula's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cgra.architecture import CGRA
from repro.core.mobility import KernelMobilitySchedule
from repro.dfg.graph import DFG, DFGEdge
from repro.exceptions import EncodingError
from repro.sat.cnf import CNF
from repro.sat.encodings import AMOEncoding, at_most_one, exactly_one


@dataclass(frozen=True)
class EncoderConfig:
    """Options controlling the shape and strictness of the encoding."""

    amo_encoding: AMOEncoding = AMOEncoding.AUTO
    #: Maximum KMS-iteration distance between the two endpoints of a
    #: dependency (the paper considers "literals that are at most one
    #: iteration apart"); ``None`` removes the restriction.
    max_iteration_span: int | None = None
    #: When True, a value sent to a neighbouring PE lives in the producer's
    #: output register and must not be overwritten before consumption
    #: (Equation 5).  The default is False — the fabric lets a consumer read
    #: the producer's register file directly (the paper's Equation 4 path,
    #: with liveness accounted for by register allocation); the strict
    #: output-register model is kept for the ablation study.
    enforce_output_register: bool = False
    #: Restrict one anchor node (the most connected one) to the grid's
    #: symmetry fundamental domain.  Sound (grid automorphisms map legal
    #: mappings to legal mappings) and considerably speeds up UNSAT proofs.
    symmetry_breaking: bool = True
    #: Per-node placement-domain restriction: ``((node_id, (pe, ...)), ...)``
    #: limits the listed nodes to the given PE indices (intersected with the
    #: capability-allowed set; unlisted nodes are unrestricted).  This is the
    #: partition-and-stitch hook — a sub-problem's nodes are confined to a
    #: spatial region of the fabric, cut-edge endpoints to its border rows —
    #: but any caller may pin nodes with it.  Hashable (nested tuples) so it
    #: can ride inside frozen configs and cache keys.  Domain restrictions
    #: silently disable symmetry breaking: a grid automorphism moving the
    #: anchor into the fundamental domain does not preserve arbitrary
    #: per-node domains, so the combination would be unsound.
    placement_domains: tuple[tuple[int, tuple[int, ...]], ...] | None = None


@dataclass
class EncodingStats:
    """Size statistics of a generated encoding."""

    num_variables: int = 0
    num_clauses: int = 0
    num_c1_clauses: int = 0
    num_c2_clauses: int = 0
    num_c3_clauses: int = 0
    num_symmetry_clauses: int = 0
    #: ``x[n, p, c, it]`` literals *not* created because PE ``p`` lacks the
    #: capability for node ``n``'s opcode.  Zero on homogeneous fabrics (the
    #: pruned encoding is then literal-for-literal the classic one).
    num_pruned_placements: int = 0
    #: Exact duplicate clauses the constraint generators produced and the
    #: emitter dropped at ingest (e.g. the same implication reached through
    #: two dependency edges); surfaced originally by ``PreprocessStats``.
    num_duplicate_clauses: int = 0
    #: Bulk flushes the batching emitter pushed into the sink — the whole
    #: constraint group crosses the encoder/solver boundary in this many
    #: calls instead of one per clause.
    num_batches: int = 0


class _Emitter:
    """Batching clause sink, optionally guarding every clause with a literal.

    Wraps anything exposing ``new_var``/``add_clause`` (a :class:`CNF` or a
    live solver backend).  When ``selector`` is given, every emitted clause is
    prefixed with ``¬selector`` so the whole group hangs off one assumption
    literal.  Exact duplicate clauses — the constraint generators can derive
    the same implication through different edges — are dropped before they
    reach the sink (hashed per-batch dedup on the sorted literal tuple) and
    counted separately.  The counters feed :class:`EncodingStats` uniformly
    in both modes.

    Emission is *batched*: clauses accumulate in a buffer that is flushed
    through the sink's bulk ``add_clauses`` entry point (falling back to
    per-clause ``add_clause`` for plain sinks), so a full constraint group
    costs a handful of Python call boundaries instead of three per clause.
    Callers must :meth:`flush` once emission is complete —
    :meth:`MappingEncoder.encode` does.
    """

    __slots__ = ("_sink", "_guard", "_seen", "_batch", "num_clauses",
                 "num_vars_created", "num_duplicates", "num_batches")

    #: Clauses buffered before a flush; bounds peak buffer memory while
    #: keeping the per-clause call overhead negligible.
    BATCH_SIZE = 4096

    def __init__(self, sink, selector: int | None = None) -> None:
        self._sink = sink
        self._guard = -selector if selector is not None else None
        self._seen: set[tuple[int, ...]] = set()
        self._batch: list[list[int]] = []
        self.num_clauses = 0
        self.num_vars_created = 0
        self.num_duplicates = 0
        self.num_batches = 0

    def new_var(self) -> int:
        self.num_vars_created += 1
        return self._sink.new_var()

    def new_vars(self, count: int) -> list[int]:
        """Bulk variable allocation through the sink when it supports it."""
        bulk = getattr(self._sink, "new_vars", None)
        if bulk is None:
            return [self.new_var() for _ in range(count)]
        variables = bulk(count)
        self.num_vars_created += len(variables)
        return variables

    def add_clause(self, literals) -> None:
        # The emitter takes ownership of ``literals`` (every caller builds a
        # fresh list per clause); only non-list iterables are copied.
        if type(literals) is not list:
            literals = list(literals)
        key = tuple(sorted(literals))
        if key in self._seen:
            self.num_duplicates += 1
            return
        self._seen.add(key)
        self.num_clauses += 1
        if self._guard is not None:
            # Guard at the tail: the watched literals (the first two) stay
            # the ones the unguarded encoding would watch, so propagation
            # inside a live attempt follows the same trajectory as a fresh
            # solver on the standalone formula.
            literals.append(self._guard)
        self._batch.append(literals)
        if len(self._batch) >= self.BATCH_SIZE:
            self.flush()

    def add_pairwise_amo(self, lits) -> None:
        """Emit the quadratic pairwise at-most-one over ``lits`` in bulk.

        The ``AUTO`` encoding produces tens of thousands of two-literal
        clauses per attempt; running the double loop here with the dedup
        set, guard and batch as locals makes each pair a few operations
        instead of a full ``add_clause`` round-trip.
        """
        seen = self._seen
        batch = self._batch
        guard = self._guard
        emitted = 0
        duplicates = 0
        for index in range(len(lits) - 1):
            first = -lits[index]
            for other_lit in lits[index + 1:]:
                second = -other_lit
                key = (first, second) if first <= second else (second, first)
                if key in seen:
                    duplicates += 1
                    continue
                seen.add(key)
                emitted += 1
                batch.append(
                    [first, second] if guard is None else [first, second, guard]
                )
            if len(batch) >= self.BATCH_SIZE:
                self.flush()
                batch = self._batch
        self.num_clauses += emitted
        self.num_duplicates += duplicates

    def flush(self) -> None:
        """Push the buffered batch into the sink."""
        if not self._batch:
            return
        batch, self._batch = self._batch, []
        self.num_batches += 1
        bulk = getattr(self._sink, "add_clauses", None)
        if bulk is not None:
            # The constraint generators only build clauses over distinct
            # variables, so the sink may skip intra-clause hygiene checks;
            # passing the batch's guard literal routes guard-tailed ternary
            # clauses onto the solver's guard-aware implication lists.
            bulk(batch, trusted=True, guard=self._guard)
        else:
            add = self._sink.add_clause
            for clause in batch:
                add(clause)


@dataclass
class MappingEncoding:
    """A mapping instance plus the variable bookkeeping to decode models.

    ``cnf`` holds the standalone formula in one-shot mode and is ``None``
    when the encoder emitted into a live backend; ``selector`` is the
    assumption literal guarding the attempt's constraint group in that case.
    """

    cnf: CNF | None
    variables: dict[tuple[int, int, int, int], int]
    literals_by_node: dict[int, list[int]]
    stats: EncodingStats = field(default_factory=EncodingStats)
    selector: int | None = None

    def decode(self, model: dict[int, bool]) -> dict[int, tuple[int, int, int]]:
        """Extract ``node -> (pe, cycle, iteration)`` from a SAT model."""
        placements: dict[int, tuple[int, int, int]] = {}
        for (node, pe, cycle, iteration), var in self.variables.items():
            if model.get(var, False):
                if node in placements:
                    raise EncodingError(
                        f"model places node {node} twice: {placements[node]} and "
                        f"{(pe, cycle, iteration)}"
                    )
                placements[node] = (pe, cycle, iteration)
        return placements


class MappingEncoder:
    """Builds the CNF formula for one (DFG, CGRA, II) mapping instance."""

    def __init__(
        self,
        dfg: DFG,
        cgra: CGRA,
        kms: KernelMobilitySchedule,
        config: EncoderConfig | None = None,
        sink=None,
        selector: int | None = None,
    ) -> None:
        """``sink`` is a live solver backend to emit into (``None`` builds a
        standalone CNF); ``selector`` guards every emitted clause for
        assumption-based retirement and requires a ``sink``."""
        if selector is not None and sink is None:
            raise EncodingError("a selector literal requires a backend sink")
        self.dfg = dfg
        self.cgra = cgra
        self.kms = kms
        self.config = config or EncoderConfig()
        self._cnf = CNF() if sink is None else None
        self._selector = selector
        self._emit = _Emitter(self._cnf if sink is None else sink, selector)
        self._variables: dict[tuple[int, int, int, int], int] = {}
        #: ``(node, cycle, iteration) -> {pe: var}`` — the C3 loops resolve
        #: one slot row and then index it per PE, instead of hashing a
        #: 4-tuple per literal.
        self._vars_by_slot: dict[tuple[int, int, int], dict[int, int]] = {}
        self._slot_literals: dict[tuple[int, int], list[int]] = {}
        self._occupancy_vars: dict[tuple[int, int], int] = {}
        self._stats = EncodingStats()
        # Capability pruning: a node's literals only range over the PEs that
        # implement its opcode's class.  On a homogeneous fabric every node is
        # allowed everywhere and the encoding is unchanged.
        self._allowed_pes: dict[int, tuple[int, ...]] = {}
        self._allowed_sets: dict[int, frozenset[int]] = {}
        domains: dict[int, frozenset[int]] = {}
        if self.config.placement_domains:
            domains = {
                node_id: frozenset(pes)
                for node_id, pes in self.config.placement_domains
            }
            unknown = set(domains) - {node.node_id for node in dfg.nodes}
            if unknown:
                raise EncodingError(
                    f"placement domains name nodes {sorted(unknown)} that are "
                    f"not part of DFG {dfg.name!r}"
                )
        for node in dfg.nodes:
            allowed = cgra.pes_supporting(node.opcode)
            if not allowed:
                raise EncodingError(
                    f"no PE of {cgra.name!r} implements "
                    f"{node.opcode.op_class.value} (needed by node "
                    f"{node.node_id}, {node.opcode.value})"
                )
            domain = domains.get(node.node_id)
            if domain is not None:
                restricted = tuple(pe for pe in allowed if pe in domain)
                if not restricted:
                    raise EncodingError(
                        f"placement domain of node {node.node_id} "
                        f"({node.opcode.value}) excludes every capable PE of "
                        f"{cgra.name!r}"
                    )
                allowed = restricted
            self._allowed_pes[node.node_id] = allowed
            self._allowed_sets[node.node_id] = frozenset(allowed)
        #: Per-PE neighbour tuples (self included), hoisted out of the C3
        #: inner loops.
        self._neighbours: dict[int, tuple[int, ...]] = {
            pe: cgra.neighbours(pe, include_self=True)
            for pe in range(cgra.num_pes)
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def encode(self) -> MappingEncoding:
        """Generate the full CNF formula for the mapping instance."""
        self._create_variables()
        self._encode_c1()
        self._encode_c2()
        self._encode_c3()
        if self.config.symmetry_breaking and not self.config.placement_domains:
            self._encode_symmetry_breaking()
        self._emit.flush()
        self._stats.num_variables = self._emit.num_vars_created
        self._stats.num_clauses = self._emit.num_clauses
        self._stats.num_duplicate_clauses = self._emit.num_duplicates
        self._stats.num_batches = self._emit.num_batches
        literals_by_node = {
            node_id: [
                self._variables[(node_id, pe, slot.cycle, slot.iteration)]
                for slot in self.kms.node_slots(node_id)
                for pe in self._allowed_pes[node_id]
            ]
            for node_id in self.dfg.node_ids
        }
        return MappingEncoding(
            cnf=self._cnf,
            variables=dict(self._variables),
            literals_by_node=literals_by_node,
            stats=self._stats,
            selector=self._selector,
        )

    # ------------------------------------------------------------------
    # Variable creation
    # ------------------------------------------------------------------
    def _create_variables(self) -> None:
        num_pes = self.cgra.num_pes
        variables = self._variables
        slot_literals = self._slot_literals
        for node_id in self.dfg.node_ids:
            slots = self.kms.node_slots(node_id)
            if not slots:
                raise EncodingError(f"node {node_id} has no KMS slots")
            allowed = self._allowed_pes[node_id]
            self._stats.num_pruned_placements += (num_pes - len(allowed)) * len(slots)
            # One bulk allocation per node instead of one call chain per
            # (slot, PE) literal.
            block = iter(self._emit.new_vars(len(slots) * len(allowed)))
            for slot in slots:
                cycle = slot.cycle
                iteration = slot.iteration
                row: dict[int, int] = {}
                self._vars_by_slot[(node_id, cycle, iteration)] = row
                for pe in allowed:
                    var = next(block)
                    variables[(node_id, pe, cycle, iteration)] = var
                    row[pe] = var
                    slot_literals.setdefault((pe, cycle), []).append(var)

    def _var(self, node: int, pe: int, cycle: int, iteration: int) -> int:
        return self._variables[(node, pe, cycle, iteration)]

    # ------------------------------------------------------------------
    # C1: every node is placed exactly once
    # ------------------------------------------------------------------
    def _encode_c1(self) -> None:
        before = self._emit.num_clauses
        for node_id in self.dfg.node_ids:
            literals = [
                self._var(node_id, pe, slot.cycle, slot.iteration)
                for slot in self.kms.node_slots(node_id)
                for pe in self._allowed_pes[node_id]
            ]
            exactly_one(self._emit, literals, self.config.amo_encoding)
        self._stats.num_c1_clauses = self._emit.num_clauses - before

    # ------------------------------------------------------------------
    # C2: at most one node per (PE, cycle) slot
    # ------------------------------------------------------------------
    def _encode_c2(self) -> None:
        before = self._emit.num_clauses
        for literals in self._slot_literals.values():
            at_most_one(self._emit, literals, self.config.amo_encoding)
        self._stats.num_c2_clauses = self._emit.num_clauses - before

    # ------------------------------------------------------------------
    # C3: dependencies — neighbourhood, timing and output-register survival
    # ------------------------------------------------------------------
    def _encode_c3(self) -> None:
        before = self._emit.num_clauses
        for edge in self.dfg.edges:
            self._encode_dependency(edge)
        self._stats.num_c3_clauses = self._emit.num_clauses - before

    def _encode_dependency(self, edge: DFGEdge) -> None:
        src_slots = self.kms.node_slots(edge.src)
        dst_slots = self.kms.node_slots(edge.dst)
        latency = self.dfg.node(edge.src).latency
        ii = self.kms.ii

        # Pre-compute which destination slots are time-compatible with each
        # source slot (independent of the PEs involved).
        compatible_slots: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
        for src_slot in src_slots:
            entries: list[tuple[int, int, int]] = []
            t_src = src_slot.flat_time(ii)
            for dst_slot in dst_slots:
                if (
                    self.config.max_iteration_span is not None
                    and abs(dst_slot.iteration - src_slot.iteration)
                    > self.config.max_iteration_span
                ):
                    continue
                t_dst = dst_slot.flat_time(ii) + edge.distance * ii
                span = t_dst - t_src
                if span < latency:
                    continue
                entries.append((dst_slot.cycle, dst_slot.iteration, span))
            compatible_slots[(src_slot.cycle, src_slot.iteration)] = entries

        # Forward implications: a placed source literal needs a compatible
        # destination literal (and vice versa).
        self._implication_clauses(edge, compatible_slots, forward=True)
        self._implication_clauses(edge, compatible_slots, forward=False)

        if self.config.enforce_output_register:
            self._overwrite_clauses(edge, compatible_slots)

    def _implication_clauses(
        self,
        edge: DFGEdge,
        compatible_slots: dict[tuple[int, int], list[tuple[int, int, int]]],
        forward: bool,
    ) -> None:
        """Clauses of the form ``¬endpoint_literal ∨ (compatible other ends)``."""
        ii = self.kms.ii
        latency = self.dfg.node(edge.src).latency
        if forward:
            anchor_slots = self.kms.node_slots(edge.src)
        else:
            anchor_slots = self.kms.node_slots(edge.dst)

        anchor_node = edge.src if forward else edge.dst
        other_node = edge.dst if forward else edge.src
        other_allowed = self._allowed_sets[other_node]
        vars_by_slot = self._vars_by_slot
        # Neighbour sets filtered by capability once per anchor PE, not once
        # per (slot, compatible entry).
        reachable = {
            anchor_pe: [
                pe for pe in self._neighbours[anchor_pe] if pe in other_allowed
            ]
            for anchor_pe in self._allowed_pes[anchor_node]
        }
        for anchor_slot in anchor_slots:
            if forward:
                entries = compatible_slots[(anchor_slot.cycle, anchor_slot.iteration)]
            else:
                t_dst = anchor_slot.flat_time(ii) + edge.distance * ii
                entries = []
                for src_slot in self.kms.node_slots(edge.src):
                    if (
                        self.config.max_iteration_span is not None
                        and abs(anchor_slot.iteration - src_slot.iteration)
                        > self.config.max_iteration_span
                    ):
                        continue
                    if t_dst - src_slot.flat_time(ii) < latency:
                        continue
                    entries.append((src_slot.cycle, src_slot.iteration, 0))
            # One row lookup per compatible slot; per-PE resolution is then
            # a small int-keyed dict hit.
            entry_rows = [
                vars_by_slot[(other_node, cycle, iteration)]
                for cycle, iteration, _span in entries
            ]
            anchor_row = vars_by_slot[
                (anchor_node, anchor_slot.cycle, anchor_slot.iteration)
            ]
            for anchor_pe in self._allowed_pes[anchor_node]:
                support = [-anchor_row[anchor_pe]]
                nbrs = reachable[anchor_pe]
                for row in entry_rows:
                    for pe in nbrs:
                        support.append(row[pe])
                self._emit.add_clause(support)

    def _overwrite_clauses(
        self,
        edge: DFGEdge,
        compatible_slots: dict[tuple[int, int], list[tuple[int, int, int]]],
    ) -> None:
        """Equation 5: neighbour transfers must survive in the output register.

        For a source literal at flat time ``t_s`` and a destination literal on
        a *different* PE consuming at flat time ``t_s + span``:

        * if ``span > II`` the producer itself re-executes before consumption
          and the pair is forbidden outright;
        * otherwise no instruction may occupy the producer's PE at the kernel
          cycles strictly between production and consumption.
        """
        ii = self.kms.ii
        dst_allowed = self._allowed_sets[edge.dst]
        for src_slot in self.kms.node_slots(edge.src):
            entries = compatible_slots[(src_slot.cycle, src_slot.iteration)]
            for src_pe in self._allowed_pes[edge.src]:
                src_var = self._var(edge.src, src_pe, src_slot.cycle, src_slot.iteration)
                for cycle, iteration, span in entries:
                    for dst_pe in self.cgra.neighbours(src_pe, include_self=False):
                        if dst_pe not in dst_allowed:
                            continue
                        dst_var = self._var(edge.dst, dst_pe, cycle, iteration)
                        if span > ii:
                            self._emit.add_clause([-src_var, -dst_var])
                            continue
                        t_src = src_slot.flat_time(ii)
                        for flat in range(t_src + 1, t_src + span):
                            busy = self._occupancy(src_pe, flat % ii)
                            if busy is None:
                                continue
                            self._emit.add_clause([-src_var, -dst_var, -busy])

    # ------------------------------------------------------------------
    # Symmetry breaking
    # ------------------------------------------------------------------
    def _encode_symmetry_breaking(self) -> None:
        """Pin the most connected node to the grid's fundamental domain.

        Sound on heterogeneous fabrics too: the fundamental domain is built
        from *capability-preserving* automorphisms, so transforming a legal
        mapping until the anchor reaches the domain keeps every node on a PE
        of the same capability signature — the anchor necessarily lands on a
        PE inside ``domain ∩ allowed(anchor)``.
        """
        before = self._emit.num_clauses
        domain = set(self.cgra.symmetry_fundamental_domain())
        if len(domain) >= self.cgra.num_pes:
            return
        anchor = max(
            self.dfg.node_ids,
            key=lambda n: (
                len(self.dfg.predecessors(n)) + len(self.dfg.successors(n)),
                -n,
            ),
        )
        for slot in self.kms.node_slots(anchor):
            for pe in self._allowed_pes[anchor]:
                if pe not in domain:
                    self._emit.add_clause(
                        [-self._var(anchor, pe, slot.cycle, slot.iteration)]
                    )
        self._stats.num_symmetry_clauses = self._emit.num_clauses - before

    def _occupancy(self, pe: int, cycle: int) -> int | None:
        """Auxiliary variable that is true when any node occupies (pe, cycle).

        Created lazily; returns ``None`` when no literal can occupy the slot
        (the constraint is then vacuously satisfied).
        """
        key = (pe, cycle)
        if key in self._occupancy_vars:
            return self._occupancy_vars[key]
        literals = self._slot_literals.get(key)
        if not literals:
            return None
        busy = self._emit.new_var()
        self._occupancy_vars[key] = busy
        for literal in literals:
            self._emit.add_clause([-literal, busy])
        return busy
