"""Prologue / kernel / epilogue code generation (paper Figure 2b).

A modulo-scheduled loop executes in three stages: the *prologue* fills the
pipeline (iterations start every II cycles but the first ones have no
predecessors in flight yet), the *kernel* is the II-cycle steady state that
repeats once per iteration, and the *epilogue* drains the last iterations.

Given a validated :class:`~repro.core.mapping.Mapping` (and optionally its
register allocation) this module emits the per-PE instruction streams of the
three stages — the artefact a CGRA configuration compiler would load into the
instruction memories of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mapping import Mapping
from repro.core.regalloc import RegisterAllocation
from repro.exceptions import MappingError


@dataclass(frozen=True)
class Instruction:
    """One issued operation: a DFG node instance bound to a PE and cycle."""

    node_id: int
    opcode: str
    pe: int
    #: Iteration offset relative to the iteration entering the stage: 0 for
    #: the newest iteration in flight, 1 for the previous one, and so on.
    iteration_offset: int
    #: Destination register in the PE's register file (``None`` when the
    #: value is only forwarded through the output register).
    register: int | None = None

    def __str__(self) -> str:
        register = f" -> r{self.register}" if self.register is not None else ""
        return f"n{self.node_id}:{self.opcode}[it-{self.iteration_offset}]{register}"


@dataclass
class StageSchedule:
    """Cycle-by-cycle contents of one stage (prologue, kernel or epilogue)."""

    name: str
    num_cycles: int
    #: ``rows[cycle][pe]`` is the instruction issued there, or ``None``.
    rows: list[list[Instruction | None]] = field(default_factory=list)

    @property
    def num_instructions(self) -> int:
        """Number of occupied instruction slots in the stage."""
        return sum(1 for row in self.rows for slot in row if slot is not None)

    def render(self) -> str:
        """ASCII rendering, one line per cycle."""
        if not self.rows:
            return f"{self.name}: (empty)"
        lines = [f"{self.name} ({self.num_cycles} cycles):"]
        for cycle, row in enumerate(self.rows):
            cells = [str(slot) if slot is not None else "." for slot in row]
            lines.append(f"  {cycle:3d} | " + " | ".join(cells))
        return "\n".join(lines)


@dataclass
class CGRAProgram:
    """The three stages of a modulo-scheduled loop, ready to load."""

    mapping: Mapping
    prologue: StageSchedule
    kernel: StageSchedule
    epilogue: StageSchedule

    @property
    def ii(self) -> int:
        """Initiation interval of the underlying mapping."""
        return self.mapping.ii

    @property
    def stages(self) -> tuple[StageSchedule, StageSchedule, StageSchedule]:
        """The program's (prologue, kernel, epilogue) triple."""
        return (self.prologue, self.kernel, self.epilogue)

    def total_cycles(self, num_iterations: int) -> int:
        """Execution time of the full loop for ``num_iterations`` iterations.

        The kernel executes once per iteration beyond the ones already
        covered by the prologue/epilogue overlap.
        """
        if num_iterations < 1:
            raise MappingError(f"num_iterations must be >= 1, got {num_iterations}")
        in_flight = self.mapping.num_kernel_iterations
        if num_iterations < in_flight:
            # Not enough iterations to ever reach the steady state: the flat
            # schedule (plus the extra iterations started) bounds the time.
            return self.mapping.schedule_length + (num_iterations - 1) * self.ii
        kernel_repeats = num_iterations - in_flight + 1
        return (
            self.prologue.num_cycles
            + kernel_repeats * self.kernel.num_cycles
            + self.epilogue.num_cycles
        )

    def render(self) -> str:
        """ASCII rendering of all three stages."""
        return "\n\n".join(stage.render() for stage in self.stages)


def generate_program(
    mapping: Mapping, allocation: RegisterAllocation | None = None
) -> CGRAProgram:
    """Emit prologue / kernel / epilogue instruction streams for a mapping."""
    if not mapping.placements:
        raise MappingError("cannot generate code for an empty mapping")
    violations = mapping.violations()
    if violations:
        raise MappingError(
            "refusing to generate code for an illegal mapping: " + violations[0]
        )
    ii = mapping.ii
    dfg = mapping.dfg
    in_flight = mapping.num_kernel_iterations
    length = mapping.schedule_length
    num_pes = mapping.cgra.num_pes

    def instruction(node_id: int, iteration_offset: int) -> Instruction:
        placement = mapping.placements[node_id]
        register = None
        if allocation is not None:
            register = allocation.assignment.get(node_id)
        return Instruction(
            node_id=node_id,
            opcode=dfg.node(node_id).opcode.value,
            pe=placement.pe,
            iteration_offset=iteration_offset,
            register=register,
        )

    # Steady-state kernel: at kernel cycle c, every placement with that cycle
    # executes, labelled by how many iterations ago its iteration started.
    kernel_rows: list[list[Instruction | None]] = [
        [None] * num_pes for _ in range(ii)
    ]
    for node_id, placement in mapping.placements.items():
        kernel_rows[placement.cycle][placement.pe] = instruction(
            node_id, placement.iteration
        )
    kernel = StageSchedule(name="kernel", num_cycles=ii, rows=kernel_rows)

    # Prologue: the (in_flight - 1) * II cycles before the steady state.
    # Iteration k starts at cycle k * II, so an instruction with flat time
    # t executes at prologue cycle t + k * II for every iteration started
    # early enough to fall inside the prologue window.
    prologue_cycles = (in_flight - 1) * ii
    prologue_rows: list[list[Instruction | None]] = [
        [None] * num_pes for _ in range(prologue_cycles)
    ]
    for node_id, placement in mapping.placements.items():
        flat = placement.flat_time(ii)
        for started in range(in_flight - 1):
            cycle = flat + started * ii
            if cycle < prologue_cycles:
                prologue_rows[cycle][placement.pe] = instruction(
                    node_id, placement.iteration
                )
    prologue = StageSchedule(
        name="prologue", num_cycles=prologue_cycles, rows=prologue_rows
    )

    # Epilogue: the last (schedule length - II) cycles, draining the
    # iterations still in flight after the final kernel instance.  The
    # instruction of node n for the iteration that is `drain + 1` periods from
    # the end executes at epilogue cycle t - (drain + 1) * II.
    epilogue_cycles = max(0, length - ii)
    epilogue_rows: list[list[Instruction | None]] = [
        [None] * num_pes for _ in range(epilogue_cycles)
    ]
    for node_id, placement in mapping.placements.items():
        flat = placement.flat_time(ii)
        for drain in range(in_flight - 1):
            cycle = flat - (drain + 1) * ii
            if 0 <= cycle < epilogue_cycles:
                epilogue_rows[cycle][placement.pe] = instruction(
                    node_id, placement.iteration
                )
    epilogue = StageSchedule(
        name="epilogue", num_cycles=epilogue_cycles, rows=epilogue_rows
    )

    return CGRAProgram(
        mapping=mapping, prologue=prologue, kernel=kernel, epilogue=epilogue
    )
