"""Mobility Schedule and Kernel Mobility Schedule (KMS).

The Mobility Schedule (MS) lists, for every time slot of the flat schedule,
the nodes whose mobility window (ASAP..ALAP) covers that slot (paper
Figure 4).  The Kernel Mobility Schedule folds the MS modulo the candidate II
and labels every occurrence with the iteration it came from (paper Figure 5);
it is "a superset of all possible kernels" and the domain over which the SAT
literals are created.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dfg.analysis import alap_schedule, asap_schedule, critical_path_length
from repro.dfg.graph import DFG
from repro.exceptions import MappingError


@dataclass(frozen=True)
class KMSSlot:
    """One possible position of a node inside the kernel.

    ``cycle`` is the kernel cycle (0 .. II-1), ``iteration`` the fold index
    the slot originated from, and ``flat_time = iteration * II + cycle`` the
    position in the unfolded mobility schedule.
    """

    node_id: int
    cycle: int
    iteration: int

    def flat_time(self, ii: int) -> int:
        return self.iteration * ii + self.cycle


@dataclass
class MobilitySchedule:
    """ASAP/ALAP derived mobility table for a DFG."""

    dfg: DFG
    length: int
    asap: dict[int, int]
    alap: dict[int, int]

    @classmethod
    def build(cls, dfg: DFG, slack: int = 0) -> "MobilitySchedule":
        """Construct the mobility schedule.

        ``slack`` adds extra slots beyond the critical-path length, widening
        every mobility window (more scheduling freedom at the cost of a larger
        SAT encoding).
        """
        if slack < 0:
            raise MappingError(f"schedule slack must be non-negative, got {slack}")
        length = critical_path_length(dfg) + slack
        if length == 0:
            length = 1
        asap = asap_schedule(dfg)
        alap = alap_schedule(dfg, length)
        return cls(dfg=dfg, length=length, asap=asap, alap=alap)

    def window(self, node_id: int) -> range:
        """The inclusive mobility window of a node as a ``range``."""
        return range(self.asap[node_id], self.alap[node_id] + 1)

    def mobility(self, node_id: int) -> int:
        """Number of alternative slots for a node (>= 1)."""
        return self.alap[node_id] - self.asap[node_id] + 1

    def rows(self) -> list[list[int]]:
        """Node ids present at every time slot (paper Figure 4, MS column)."""
        table: list[list[int]] = [[] for _ in range(self.length)]
        for node_id in self.dfg.node_ids:
            for time in self.window(node_id):
                table[time].append(node_id)
        return table

    def __str__(self) -> str:
        lines = ["time | nodes"]
        for time, nodes in enumerate(self.rows()):
            lines.append(f"{time:4d} | {' '.join(str(n) for n in nodes)}")
        return "\n".join(lines)


@dataclass
class KernelMobilitySchedule:
    """The mobility schedule folded modulo the candidate II."""

    dfg: DFG
    mobility_schedule: MobilitySchedule
    ii: int
    num_iterations: int
    slots: dict[int, list[KMSSlot]] = field(default_factory=dict)

    @classmethod
    def build(cls, mobility_schedule: MobilitySchedule, ii: int) -> "KernelMobilitySchedule":
        """Fold the mobility schedule by ``ii`` (paper Figure 5)."""
        if ii < 1:
            raise MappingError(f"II must be >= 1, got {ii}")
        length = mobility_schedule.length
        num_iterations = max(1, math.ceil(length / ii))
        slots: dict[int, list[KMSSlot]] = {}
        for node_id in mobility_schedule.dfg.node_ids:
            node_slots = []
            for time in mobility_schedule.window(node_id):
                node_slots.append(
                    KMSSlot(node_id=node_id, cycle=time % ii, iteration=time // ii)
                )
            slots[node_id] = node_slots
        return cls(
            dfg=mobility_schedule.dfg,
            mobility_schedule=mobility_schedule,
            ii=ii,
            num_iterations=num_iterations,
            slots=slots,
        )

    # ------------------------------------------------------------------
    def node_slots(self, node_id: int) -> list[KMSSlot]:
        """All (cycle, iteration) positions available to a node."""
        try:
            return self.slots[node_id]
        except KeyError as exc:
            raise MappingError(f"node {node_id} has no KMS slots") from exc

    def cycle_slots(self, cycle: int) -> list[KMSSlot]:
        """All node occurrences folded onto kernel cycle ``cycle``."""
        if not 0 <= cycle < self.ii:
            raise MappingError(f"cycle {cycle} outside kernel of II={self.ii}")
        result = []
        for node_slots in self.slots.values():
            result.extend(slot for slot in node_slots if slot.cycle == cycle)
        return result

    def rows(self) -> list[list[tuple[int, int]]]:
        """Per kernel cycle, the (node, iteration) occurrences (Figure 5)."""
        table: list[list[tuple[int, int]]] = [[] for _ in range(self.ii)]
        for node_id in sorted(self.slots):
            for slot in self.slots[node_id]:
                table[slot.cycle].append((slot.node_id, slot.iteration))
        for row in table:
            row.sort(key=lambda entry: (entry[1], entry[0]))
        return table

    @property
    def num_slots(self) -> int:
        """Total number of (node, cycle, iteration) occurrences."""
        return sum(len(node_slots) for node_slots in self.slots.values())

    def __str__(self) -> str:
        lines = [f"KMS (II={self.ii}, iterations={self.num_iterations})",
                 "cycle | node@iteration"]
        for cycle, row in enumerate(self.rows()):
            entries = " ".join(f"{node}@{iteration}" for node, iteration in row)
            lines.append(f"{cycle:5d} | {entries}")
        return "\n".join(lines)
