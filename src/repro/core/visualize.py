"""ASCII visualisation of schedules and mappings.

Rendering helpers used by the CLI, the examples and (informally) by humans
debugging a mapping: the kernel as a cycle-by-PE table (paper Figure 2c), the
mobility schedule (Figure 4) and the KMS (Figure 5) print through their own
``__str__``; this module adds the mapping-centric views.
"""

from __future__ import annotations

from repro.core.mapping import Mapping
from repro.core.regalloc import RegisterAllocation


def render_kernel(mapping: Mapping) -> str:
    """Render the steady-state kernel as a ``cycle x PE`` table."""
    cgra = mapping.cgra
    header_cells = [f"PE{pe}" for pe in range(cgra.num_pes)]
    width = max(5, max((len(cell) for cell in header_cells), default=5))
    table = mapping.kernel_table()
    lines = []
    header = "cycle | " + " ".join(cell.rjust(width) for cell in header_cells)
    lines.append(header)
    lines.append("-" * len(header))
    for cycle, row in enumerate(table):
        cells = []
        for node_id in row:
            cells.append(("." if node_id is None else f"n{node_id}").rjust(width))
        lines.append(f"{cycle:5d} | " + " ".join(cells))
    return "\n".join(lines)


def render_grid(mapping: Mapping, cycle: int) -> str:
    """Render one kernel cycle as the physical PE grid."""
    cgra = mapping.cgra
    table = mapping.kernel_table()
    if not 0 <= cycle < mapping.ii:
        raise ValueError(f"cycle {cycle} outside kernel of II={mapping.ii}")
    row_lines = []
    width = 6
    for row in range(cgra.rows):
        cells = []
        for col in range(cgra.cols):
            node_id = table[cycle][cgra.pe_index((row, col))]
            cells.append(("." if node_id is None else f"n{node_id}").center(width))
        row_lines.append("|" + "|".join(cells) + "|")
    separator = "+" + "+".join(["-" * width] * cgra.cols) + "+"
    out = [separator]
    for line in row_lines:
        out.append(line)
        out.append(separator)
    return "\n".join(out)


def render_mapping_report(
    mapping: Mapping, allocation: RegisterAllocation | None = None
) -> str:
    """Full human-readable report of a mapping."""
    lines = [
        f"DFG {mapping.dfg.name!r} on {mapping.cgra.describe()}",
        f"II = {mapping.ii}, kernel iterations in flight = {mapping.num_kernel_iterations}",
        f"PE utilisation = {mapping.pe_utilisation():.2%}",
        "",
        render_kernel(mapping),
    ]
    if allocation is not None:
        lines.append("")
        lines.append(
            f"register allocation: {'ok' if allocation.success else 'FAILED'}, "
            f"max pressure = {allocation.max_pressure}"
        )
        if allocation.failure_reason:
            lines.append(f"  reason: {allocation.failure_reason}")
    return "\n".join(lines)
