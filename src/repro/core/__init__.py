"""Core SAT-MapIt mapper (the paper's primary contribution).

Pipeline (Figure 3 of the paper):

1. :mod:`repro.core.mobility` builds the Mobility Schedule and folds it into
   the Kernel Mobility Schedule (KMS) for a candidate II.
2. :mod:`repro.core.encoder` translates DFG + KMS + CGRA into a CNF formula
   (constraint families C1, C2 and C3).
3. The CDCL solver from :mod:`repro.sat` decides the formula.
4. :mod:`repro.core.regalloc` colours per-PE interference graphs against the
   register file; a colouring failure (like an UNSAT answer) bumps the II.
5. :mod:`repro.core.mapper` drives the iteration and returns a validated
   :class:`repro.core.mapping.Mapping`.
"""

from repro.core.codegen import CGRAProgram, generate_program
from repro.core.mapper import IIAttempt, MapperConfig, MappingOutcome, SatMapItMapper
from repro.core.mapping import Mapping, Placement
from repro.core.mobility import KernelMobilitySchedule, MobilitySchedule
from repro.core.regalloc import RegisterAllocation, allocate_registers

__all__ = [
    "SatMapItMapper",
    "MapperConfig",
    "MappingOutcome",
    "IIAttempt",
    "Mapping",
    "Placement",
    "MobilitySchedule",
    "KernelMobilitySchedule",
    "RegisterAllocation",
    "allocate_registers",
    "CGRAProgram",
    "generate_program",
]
