"""SAT-MapIt iterative mapping driver (paper Figure 3).

For a candidate II the driver builds the KMS, encodes the mapping problem,
calls the SAT backend, and — on SAT — runs register allocation.  If the
formula is UNSAT or the colouring fails, the search moves to another II,
until a mapping is found or a bound (maximum II, wall-clock timeout) is
hit.  *Which* II is tried next is a pluggable policy: ``map()`` delegates
the walk to a :mod:`repro.search` strategy (the paper's sequential ladder
by default; bisection and a process-parallel portfolio on request) and can
short-circuit the whole search through the persistent mapping cache
(``MapperConfig.cache_dir``).

The loop is *incremental* by default: one persistent solver backend serves
the whole mapping run.  Each (II, slack) attempt encodes its constraint group
guarded by a fresh selector literal and is solved under the assumption that
the selector is true; retiring the attempt is an assumption flip plus one
``¬selector`` unit.  Register-allocation rejections stay inside the same
attempt — one blocking clause is added and the backend re-solves with all
learned clauses, activities and phases intact, with zero re-encoded base
clauses (the per-attempt stats prove it).  ``MapperConfig.incremental=False``
restores per-attempt fresh solving, which the test-suite uses as the
semantic-equivalence reference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import chain

from repro.cgra.architecture import CGRA
from repro.cgra.capabilities import check_kernel_fits, effective_minimum_ii
from repro.core.encoder import EncoderConfig, MappingEncoder
from repro.core.mapping import Mapping
from repro.core.mobility import KernelMobilitySchedule, MobilitySchedule
from repro.core.regalloc import RegisterAllocation, allocate_registers
from repro.dfg.analysis import critical_path_length
from repro.dfg.graph import DFG
from repro.exceptions import MappingError
from repro.sat.backend import SolverBackend
from repro.sat.encodings import AMOEncoding
from repro.sat.preprocess import Reconstructor, simplify
from repro.sat.solver import CDCLSolver


@dataclass(frozen=True)
class MapperConfig:
    """Knobs of the SAT-MapIt mapping loop.

    The defaults follow the paper's experimental setup: mobility windows from
    the critical-path schedule (with a little slack retried on UNSAT),
    dependencies delivered through the neighbourhood register files (the
    paper's Equation-4 path) with register allocation as a separate post-pass,
    and an II cap of 50 (the paper terminates a run once the current II
    reaches 50 without success).  Two stricter variants are available for the
    ablation study: ``enforce_output_register=True`` adds the Equation-5
    output-register survival clauses, and ``max_iteration_span=1`` reproduces
    the paper's "at most one iteration apart" literal-pair restriction.
    """

    max_ii: int = 50
    timeout: float | None = None
    #: Wall-clock budget for a single (II, slack) SAT attempt.  An attempt
    #: that exceeds it is treated as inconclusive and the search moves on to
    #: the next slack level / II, which turns the mapper into an anytime tool
    #: on very large instances (the II found may then exceed the true
    #: optimum, but a mapping is still produced within the global timeout).
    attempt_time_limit: float | None = None
    schedule_slack: int = 0
    #: Extra schedule slots tried (in addition to ``schedule_slack``) before
    #: giving up on a given II.  Slack widens mobility windows and can make an
    #: otherwise infeasible II feasible at the cost of a larger encoding.
    max_extra_slack: int = 1
    #: Conflict budget for the extra-slack attempts.  Their formulas are
    #: larger and occasionally much harder to refute; bounding them keeps the
    #: iterative loop moving (an inconclusive attempt simply falls through to
    #: the next II).
    slack_conflict_limit: int | None = 5000
    #: How many alternative SAT models to request at the same II when
    #: register allocation rejects a mapping (each retry adds a blocking
    #: clause over the overloaded PE's placements).
    regalloc_retries: int = 3
    #: At-most-one encoding; ``AUTO`` (pairwise below
    #: ``AUTO_PAIRWISE_LIMIT`` literals, sequential above) propagates
    #: several times fewer literals per conflict on the flat-core's
    #: implication lists than a fixed sequential counter.
    amo_encoding: AMOEncoding = AMOEncoding.AUTO
    #: Two-phase encoding escalation (``AUTO`` + incremental backend only):
    #: each (II, slack) attempt is first *probed* with the compact
    #: sequential encoding under this conflict budget — easy attempts
    #: conclude without ever paying the quadratic pairwise emission; an
    #: inconclusive probe retires its group and re-encodes the same attempt
    #: with the propagation-optimal ``AUTO`` form.  ``None`` disables the
    #: probe.  Sound because each phase is its own selector-guarded group.
    amo_probe_conflicts: int | None = 600
    #: Solver backend name (see :mod:`repro.sat.backend`); ``"cdcl"`` is the
    #: production engine, ``"dpll"`` the slow reference oracle.  External
    #: engines (``"kissat"``, ``"minisat"``, the bundled ``"subprocess"``,
    #: or ``"external:<path>"``; see :mod:`repro.sat.external`) solve
    #: DIMACS exports in a subprocess — they require ``incremental=True``
    #: and are driven through assumption unit cubes.
    backend: str = "cdcl"
    #: Directory for DIMACS artefacts (see :mod:`repro.sat.dimacs`).  For
    #: external backends every solve call's formula (and any DRAT proof)
    #: lands here under a content-addressed name; ``None`` keeps them in a
    #: per-backend temporary directory.
    dimacs_dir: str | None = None
    #: Skip re-writing a DIMACS export whose content-addressed file already
    #: exists in ``dimacs_dir`` — amortises export I/O across re-runs of
    #: the same problem.
    reuse_dimacs: bool = False
    #: Emit DRAT proofs (see :mod:`repro.sat.drat`): the internal CDCL logs
    #: learned clauses/deletions, external solvers that support DRAT get a
    #: proof path on their command line.  UNSAT attempts then record a
    #: proof digest and ``MappingOutcome.proof_path`` names the trace.
    proof: bool = False
    #: Run the SatELite-style preprocessor (see :mod:`repro.sat.preprocess`)
    #: over every formula before solving.  Selector and placement variables
    #: are frozen so assumption-based attempt retirement and model decoding
    #: stay sound; every model is reconstructed before decoding.
    preprocess: bool = False
    #: Keep one persistent backend per mapping run and drive the iterative
    #: loop through assumption-guarded constraint groups.  ``False`` restores
    #: a fresh solver per (II, slack) attempt (retry rounds within an attempt
    #: are still incremental — the solver is never rebuilt mid-attempt).
    incremental: bool = True
    max_iteration_span: int | None = None
    enforce_output_register: bool = False
    symmetry_breaking: bool = True
    #: Per-node placement-domain restriction forwarded to the encoder (see
    #: :class:`repro.core.encoder.EncoderConfig.placement_domains`):
    #: ``((node_id, (pe, ...)), ...)`` confines the listed nodes to the
    #: given PE indices.  This is how partition-and-stitch sub-solves pin a
    #: partition's nodes to a fabric region and cut-edge endpoints to its
    #: border rows.  Part of the cache key (a domain-restricted problem is a
    #: different problem); disables symmetry breaking inside the encoder and
    #: the heuristic seeding pre-pass (neither is domain-aware).
    placement_domains: tuple[tuple[int, tuple[int, ...]], ...] | None = None
    neighbour_register_file_access: bool = True
    run_register_allocation: bool = True
    solver_conflict_limit: int | None = None
    random_seed: int | None = None
    verbose: bool = False
    #: II-search strategy (see :mod:`repro.search`): ``"ladder"`` is the
    #: paper's sequential climb, ``"bisect"`` binary-searches the II range
    #: using UNSAT answers as lower bounds, and ``"portfolio"`` races
    #: several IIs and solver-configuration variants across worker
    #: processes, cancelling the losers on the first win at the frontier.
    search: str = "ladder"
    #: Worker processes the portfolio strategy may keep in flight.
    search_jobs: int = 2
    #: Solver-configuration variants the portfolio races at each II (names
    #: from :data:`repro.search.portfolio.PORTFOLIO_VARIANTS`; the strategy
    #: trims the line-up to the machine's core count, keeping the order).
    portfolio_variants: tuple[str, ...] = ("no-probe", "default", "pairwise")
    #: Directory of the persistent mapping cache
    #: (:class:`repro.search.cache.MappingCache`); ``None`` disables
    #: caching.  Successful runs are stored keyed by a canonical hash of
    #: (DFG, CGRA spec, semantic config, solver version) and later runs of
    #: the same problem return instantly with ``MappingOutcome.cache_hit``.
    cache_dir: str | None = None
    #: Size budget for the mapping cache directory, in MiB; when the
    #: directory outgrows it after a write, the oldest entries are evicted
    #: first (``CacheStats.evicted``).  ``None`` means unbounded.
    cache_max_mb: float | None = None
    #: Subdirectory of ``cache_dir`` this run reads and writes
    #: (``cache_dir/<namespace>``); ``None`` uses ``cache_dir`` itself.
    #: The mapping service keys this by tenant so tenants share nothing on
    #: disk — the cache *key* is identical across namespaces (the
    #: namespace is a placement concern, not part of the problem), the
    #: directories are disjoint.  Restricted to ``[A-Za-z0-9._-]`` so a
    #: request can never traverse outside the cache root.
    cache_namespace: str | None = None
    #: Run the heuristic mappers as a budgeted pre-pass before any SAT work
    #: (see :mod:`repro.search.seed`).  A validated heuristic mapping gives
    #: every strategy a feasible upper bound — the ladder stops below it,
    #: bisection skips its gallop phase, the portfolio only races IIs below
    #: it — and is the anytime answer when the SAT search times out.  Like
    #: the search strategy, seeding never changes the II of a completed
    #: run, only how fast it is reached (CI-gated), so it is excluded from
    #: the cache key.
    seed_heuristic: bool = False
    #: Wall-clock budget (seconds) for the whole seeding pre-pass.
    seed_time_budget: float = 2.0
    #: Heuristic mappers the pre-pass runs, in order (names from
    #: :data:`repro.baselines.HEURISTIC_MAPPERS`); later mappers only
    #: search below the best II already found.
    seed_mappers: tuple[str, ...] = ("ramp", "pathseeker")
    #: Directory of the persistent lane-statistics store
    #: (:class:`repro.search.tuner.LaneTuner`); ``None`` disables tuning.
    #: The portfolio consults it to order its variant line-up and size the
    #: probe conflict budget, and records each settled race back into it.
    tuner_dir: str | None = None


@dataclass
class IIAttempt:
    """Record of one (II, slack) attempt of the iterative loop."""

    ii: int
    schedule_slack: int
    status: str  # "SAT", "UNSAT", "UNKNOWN", "REGALLOC_FAIL"
    num_variables: int = 0
    num_clauses: int = 0
    encode_time: float = 0.0
    solve_time: float = 0.0
    conflicts: int = 0
    decisions: int = 0
    #: Solver calls made for this attempt (1 + register-allocation retries).
    solve_calls: int = 0
    #: Blocking clauses added by register-allocation retries.
    blocking_clauses: int = 0
    #: Clauses pushed into the solver from the first solve call onwards,
    #: measured at the sink.  Equal to ``blocking_clauses`` — the proof that
    #: retry rounds never re-emit the base encoding (asserted in tests).
    retry_clauses_added: int = 0
    #: Learned clauses alive in the persistent backend when this attempt
    #: started — inference carried over from earlier attempts (0 in
    #: non-incremental mode and for the first attempt).
    learned_carried_in: int = 0
    #: Assumption literal guarding this attempt's constraint group (``None``
    #: in non-incremental mode).
    selector: int | None = None
    #: Preprocessing yield for this attempt's formula (zero when the
    #: preprocessor is off): net clause/variable reduction and the wall-clock
    #: time the pipeline spent earning it.
    pre_clauses_removed: int = 0
    pre_vars_eliminated: int = 0
    preprocess_time: float = 0.0
    #: Solver-core counters summed over this attempt's solve calls:
    #: propagations, implications served by the binary/ternary implication
    #: lists, and watch entries dismissed by their blocker literal.
    propagations: int = 0
    binary_propagations: int = 0
    blocker_skips: int = 0
    #: Flat clause-store footprint (bytes) when the last solve returned.
    arena_bytes: int = 0
    #: Batched emission: bulk flushes the encoder pushed into the solver and
    #: exact duplicate clauses its per-batch hashed dedup dropped.
    emission_batches: int = 0
    duplicate_clauses_dropped: int = 0
    #: Whether the attempt escalated from the sequential probe encoding to
    #: the pairwise-optimised ``AUTO`` form (see
    #: ``MapperConfig.amo_probe_conflicts``).
    escalated: bool = False
    #: Heuristic-seed ceiling in force when this attempt ran (``None`` in
    #: unseeded runs): the II of the validated heuristic mapping bounding
    #: the search from above — every seeded attempt probes strictly below.
    seed_ceiling: int | None = None
    #: SHA-256 digest of the DRAT trace backing an UNSAT answer (``None``
    #: unless proof logging was on and the attempt ended UNSAT).  Cache
    #: entries persist these so served lower bounds stay checkable.
    proof_digest: str | None = None

    def record_solve(self, stats) -> None:
        """Fold one solve call's :class:`SolverStats` into this attempt."""
        self.solve_calls += 1
        self.solve_time += stats.solve_time
        self.conflicts += stats.conflicts
        self.decisions += stats.decisions
        self.propagations += stats.propagations
        self.binary_propagations += stats.binary_propagations
        self.blocker_skips += stats.blocker_skips
        self.arena_bytes = max(self.arena_bytes, stats.arena_bytes)


@dataclass
class MappingOutcome:
    """Overall result of a mapping run."""

    success: bool
    dfg_name: str
    cgra_name: str
    ii: int | None = None
    mapping: Mapping | None = None
    register_allocation: RegisterAllocation | None = None
    attempts: list[IIAttempt] = field(default_factory=list)
    total_time: float = 0.0
    minimum_ii: int = 1
    timed_out: bool = False
    #: Name of the solver backend that served the run.
    backend_name: str = "cdcl"
    #: Name of the search strategy that drove the II search.
    search_strategy: str = "ladder"
    #: Whether the result was served by the persistent mapping cache (in
    #: which case ``attempts`` is empty — no SAT work was done).
    cache_hit: bool = False
    #: Canonical cache key of this problem (``None`` when caching is off).
    cache_key: str | None = None
    #: Per-run cache counters (:class:`repro.search.cache.CacheStats`);
    #: ``None`` when caching is off.
    cache_stats: object | None = None
    #: Portfolio-strategy counters: worker processes launched, and workers
    #: cancelled because a rival answered first.
    portfolio_launched: int = 0
    portfolio_cancelled: int = 0
    #: Configuration variant that produced the winning mapping (portfolio
    #: runs only).
    portfolio_winner: str | None = None
    #: Heuristic-seeding pre-pass results (``seed_heuristic`` runs only):
    #: II and producing mapper of the validated seed (``None``/empty when
    #: the pre-pass found nothing), wall-clock spent seeding, and whether
    #: the returned mapping *is* the heuristic one (the SAT search proved
    #: everything below infeasible, or timed out and fell back to it).
    seed_ii: int | None = None
    seed_mapper: str | None = None
    seed_time: float = 0.0
    seed_used: bool = False
    #: Lane-tuner interaction (``tuner_dir`` runs only): whether persisted
    #: statistics informed the portfolio line-up, the line-up raced, and
    #: the handle's counters (:class:`repro.search.tuner.TunerStats`).
    tuner_consulted: bool = False
    tuner_lineup: tuple[str, ...] | None = None
    tuner_stats: object | None = None
    #: Path of the most recent DRAT trace emitted during the run (``None``
    #: unless ``MapperConfig.proof`` was on and an UNSAT attempt produced
    #: one); per-attempt digests live in ``IIAttempt.proof_digest``.
    proof_path: str | None = None

    @property
    def incremental_resolves(self) -> int:
        """Solver calls served purely incrementally (no re-encoded base).

        Every solve call beyond an attempt's first is a register-allocation
        retry answered by adding one blocking clause and re-solving.
        """
        return sum(max(0, attempt.solve_calls - 1) for attempt in self.attempts)

    @property
    def learned_carried(self) -> int:
        """Learned clauses carried across attempt boundaries (summed)."""
        return sum(attempt.learned_carried_in for attempt in self.attempts)

    @property
    def pre_clauses_removed(self) -> int:
        """Clauses the preprocessor removed, summed over attempts."""
        return sum(attempt.pre_clauses_removed for attempt in self.attempts)

    @property
    def pre_vars_eliminated(self) -> int:
        """Variables the preprocessor removed, summed over attempts."""
        return sum(attempt.pre_vars_eliminated for attempt in self.attempts)

    @property
    def preprocess_time(self) -> float:
        """Wall-clock seconds spent inside the preprocessor, summed."""
        return sum(attempt.preprocess_time for attempt in self.attempts)

    @property
    def binary_propagations(self) -> int:
        """Implications served by the implication lists, summed."""
        return sum(attempt.binary_propagations for attempt in self.attempts)

    @property
    def blocker_skips(self) -> int:
        """Watch entries dismissed by a true blocker literal, summed."""
        return sum(attempt.blocker_skips for attempt in self.attempts)

    @property
    def arena_bytes(self) -> int:
        """Peak flat clause-store footprint over the run's attempts."""
        return max((attempt.arena_bytes for attempt in self.attempts), default=0)

    @property
    def emission_batches(self) -> int:
        """Bulk emission flushes across all attempts."""
        return sum(attempt.emission_batches for attempt in self.attempts)

    @property
    def duplicate_clauses_dropped(self) -> int:
        """Duplicate clauses the emitter's hashed dedup dropped, summed."""
        return sum(attempt.duplicate_clauses_dropped for attempt in self.attempts)

    @property
    def final_status(self) -> str:
        if self.success:
            return "mapped"
        if self.timed_out:
            return "timeout"
        return "failed"

    def summary(self) -> str:
        """One-line summary used by the CLI and the experiment harness."""
        if self.success:
            cached = ", cached" if self.cache_hit else ""
            return (
                f"{self.dfg_name} on {self.cgra_name}: II={self.ii} "
                f"(MII={self.minimum_ii}, {len(self.attempts)} attempts, "
                f"{self.total_time:.2f}s{cached})"
            )
        return (
            f"{self.dfg_name} on {self.cgra_name}: {self.final_status} after "
            f"{len(self.attempts)} attempts ({self.total_time:.2f}s)"
        )


class SatMapItMapper:
    """The SAT-based modulo scheduling mapper (the paper's contribution)."""

    name = "SAT-MapIt"

    def __init__(self, config: MapperConfig | None = None) -> None:
        self.config = config or MapperConfig()

    # ------------------------------------------------------------------
    def map(self, dfg: DFG, cgra: CGRA, start_ii: int | None = None) -> MappingOutcome:
        """Find the smallest feasible II for ``dfg`` on ``cgra``.

        The search starts at the minimum initiation interval (max of ResMII,
        RecMII and — on heterogeneous fabrics — the capability-constrained
        resource bound) unless ``start_ii`` overrides it.  *How* the II range
        is walked is delegated to the configured search strategy (see
        :mod:`repro.search`): the sequential ladder by default, bisection or
        a parallel portfolio on request — every strategy funnels its
        attempts through the same per-II machinery, so the outcome's
        per-attempt stats are complete regardless of the policy.  With
        ``MapperConfig.cache_dir`` set, the persistent mapping cache is
        consulted first and fed on success.  A kernel whose opcode histogram
        cannot fit the fabric at any II (an op class with no capable PE)
        raises :class:`MappingError` before any SAT work.
        """
        # Imported lazily: repro.search imports mapper types at module load.
        from repro.search import SearchContext, create_strategy
        from repro.search.cache import MappingCache, resolve_cache_dir

        config = self.config
        dfg.validate()
        check_kernel_fits(dfg, cgra)
        start = time.perf_counter()
        mii = effective_minimum_ii(dfg, cgra)
        first_ii = max(start_ii or mii, 1)
        backend_name = config.backend
        from repro.sat.external import is_external_backend

        if is_external_backend(backend_name):
            # External engines are one-shot subprocesses steered by unit
            # cubes; the non-incremental path and the preprocessor both
            # assume an in-process solver.
            if not config.incremental:
                raise MappingError(
                    f"backend {backend_name!r} requires incremental mode"
                )
            if config.preprocess:
                raise MappingError(
                    f"backend {backend_name!r} does not compose with the "
                    "preprocessor (the simplifier rewrites the formula the "
                    "export and any proof must refer to)"
                )
        elif config.preprocess and not backend_name.endswith("+preprocess"):
            backend_name = f"{backend_name}+preprocess"
        strategy = create_strategy(config.search)
        outcome = MappingOutcome(
            success=False,
            dfg_name=dfg.name,
            cgra_name=cgra.name,
            minimum_ii=mii,
            backend_name=backend_name,
            search_strategy=strategy.name,
        )

        cache: MappingCache | None = None
        key: str | None = None
        if config.cache_dir:
            cache = MappingCache(
                resolve_cache_dir(config.cache_dir, config.cache_namespace),
                max_mb=config.cache_max_mb,
            )
            key = cache.key(dfg, cgra, config, start_ii=first_ii)
            outcome.cache_key = key
            outcome.cache_stats = cache.stats
            hit = cache.lookup_key(key)
            if hit is not None:
                outcome.success = True
                outcome.cache_hit = True
                outcome.ii = hit.ii
                outcome.minimum_ii = hit.minimum_ii
                outcome.mapping = hit.mapping
                if config.run_register_allocation:
                    # The archived mapping carries its register assignment,
                    # but the report-facing RegisterAllocation object (max
                    # pressure, per-PE usage) is cheap to recompute — a hit
                    # must print the same sections a fresh run would.
                    allocation = allocate_registers(
                        dfg, cgra, hit.mapping,
                        config.neighbour_register_file_access,
                    )
                    if allocation.success:
                        hit.mapping.apply_allocation(allocation)
                        outcome.register_allocation = allocation
                outcome.total_time = time.perf_counter() - start
                self._log(
                    f"cache hit for {dfg.name} on {cgra.name}: "
                    f"II={hit.ii} ({key[:12]}…)"
                )
                return outcome

        seed = None
        # The heuristic mappers know nothing about placement domains; a seed
        # mapping could violate them, so domain-restricted runs stay unseeded.
        if config.seed_heuristic and not config.placement_domains:
            from repro.search.seed import run_seed

            seed_start = time.perf_counter()
            remaining = self._remaining_time(start)
            budget = config.seed_time_budget
            if remaining is not None:
                budget = min(budget, remaining)
            seed_result = run_seed(dfg, cgra, config, first_ii, budget=budget)
            outcome.seed_time = time.perf_counter() - seed_start
            if seed_result is not None:
                outcome.seed_ii = seed_result.ii
                outcome.seed_mapper = seed_result.mapper_name
                seed = seed_result.as_search_result()
                self._log(
                    f"heuristic seed: {seed_result.mapper_name} found "
                    f"II={seed_result.ii} in {outcome.seed_time:.3f}s"
                )
            else:
                self._log(
                    f"heuristic seed: no feasible mapping within "
                    f"{budget:.1f}s"
                )

        tuner = None
        if config.tuner_dir:
            from repro.search.tuner import LaneTuner

            tuner = LaneTuner(config.tuner_dir)
            outcome.tuner_stats = tuner.stats

        context = SearchContext(
            self, dfg, cgra, outcome, start, first_ii, seed=seed, tuner=tuner
        )
        found = strategy.search(context)
        outcome.total_time = time.perf_counter() - start
        if found is not None:
            outcome.success = True
            outcome.ii = found.ii
            outcome.mapping = found.mapping
            outcome.register_allocation = found.allocation
            outcome.seed_used = (
                seed is not None and found.mapping is seed.mapping
            )
            # A timed-out search may have returned an anytime (feasible but
            # possibly non-minimal) II; the cache key ignores budgets, so
            # caching it would pin the weaker answer for generously-budgeted
            # future runs too.  Only complete searches are stored.
            if cache is not None and key is not None and not outcome.timed_out:
                cache.store(key, outcome)
        return outcome

    # ------------------------------------------------------------------
    def _try_ii(
        self,
        dfg: DFG,
        cgra: CGRA,
        ii: int,
        outcome: MappingOutcome,
        start: float,
        backend: SolverBackend | None = None,
    ) -> tuple[Mapping, RegisterAllocation | None] | None:
        """Attempt one II, trying increasing schedule slack before giving up."""
        config = self.config
        # When the II exceeds the critical-path length (large kernels on tiny
        # fabrics) the schedule length, not the II, caps the number of usable
        # (PE, cycle) slots; stretch the mobility schedule so that all II
        # kernel cycles are actually reachable.
        structural_slack = max(0, ii - critical_path_length(dfg))
        for extra_slack in range(config.max_extra_slack + 1):
            if self._out_of_time(start):
                outcome.timed_out = True
                return None
            slack = config.schedule_slack + structural_slack + extra_slack
            attempt = IIAttempt(ii=ii, schedule_slack=slack, status="UNKNOWN")
            outcome.attempts.append(attempt)

            conflict_limit = config.solver_conflict_limit
            if extra_slack > 0 and config.slack_conflict_limit is not None:
                if conflict_limit is None:
                    conflict_limit = config.slack_conflict_limit
                else:
                    conflict_limit = min(conflict_limit, config.slack_conflict_limit)

            encode_start = time.perf_counter()
            mobility = MobilitySchedule.build(dfg, slack=slack)
            kms = KernelMobilitySchedule.build(mobility, ii)

            def encode_group(amo: AMOEncoding):
                """Encode this attempt's constraint group (one per phase)."""
                encoder_config = EncoderConfig(
                    amo_encoding=amo,
                    max_iteration_span=config.max_iteration_span,
                    enforce_output_register=config.enforce_output_register,
                    symmetry_breaking=config.symmetry_breaking,
                    placement_domains=config.placement_domains,
                )
                if backend is not None:
                    # Incremental path: emit into the persistent backend,
                    # guarded by a fresh selector literal.  The selector is
                    # assumed on every solve call and negated at retirement;
                    # a simplifying backend must never touch it.
                    group_selector = backend.new_var()
                    backend.freeze([group_selector])
                    encoder = MappingEncoder(
                        dfg, cgra, kms, encoder_config,
                        sink=backend, selector=group_selector,
                    )
                else:
                    group_selector = None
                    encoder = MappingEncoder(dfg, cgra, kms, encoder_config)
                group_encoding = encoder.encode()
                if backend is not None:
                    # Placement literals are decoded from models and re-appear
                    # in register-allocation blocking clauses and retirement
                    # units — they must survive preprocessing verbatim.
                    backend.freeze(group_encoding.variables.values())
                attempt.num_variables = group_encoding.stats.num_variables
                attempt.num_clauses = group_encoding.stats.num_clauses
                attempt.emission_batches += group_encoding.stats.num_batches
                attempt.duplicate_clauses_dropped += (
                    group_encoding.stats.num_duplicate_clauses
                )
                return group_encoding, group_selector

            # Two-phase escalation: probe with the compact sequential
            # encoding first; only attempts too hard for the probe budget
            # pay the quadratic pairwise emission (where its propagation
            # advantage dwarfs the encode cost).
            probe_budget = config.amo_probe_conflicts
            # Probing applies on both solving paths (so incremental and
            # one-shot runs walk comparable trajectories); the one-shot
            # preprocessing path is excluded — it would pay the simplifier
            # twice.
            probing = (
                config.amo_encoding is AMOEncoding.AUTO
                and probe_budget is not None
                and (conflict_limit is None or conflict_limit > probe_budget)
                and not (backend is None and config.preprocess)
                # Escalation keys on the probe's *conflict count* reaching
                # the budget; engines that cannot report conflicts (external
                # subprocesses, the DPLL oracle) would make every hard probe
                # look inconclusive-for-free, so they skip probing entirely.
                and (backend is None or getattr(backend, "instrumented", True))
            )
            first_amo = AMOEncoding.SEQUENTIAL if probing else config.amo_encoding
            encoding, selector = encode_group(first_amo)
            attempt.selector = selector
            if backend is not None:
                attempt.learned_carried_in = backend.stats.learned_in_db
            attempt.encode_time = time.perf_counter() - encode_start

            time_limit = self._remaining_time(start)
            if config.attempt_time_limit is not None:
                if time_limit is None:
                    time_limit = config.attempt_time_limit
                else:
                    time_limit = min(time_limit, config.attempt_time_limit)
            # Solve, decode and run register allocation.  A colouring failure
            # is handled the way the paper treats an uncolourable interference
            # graph: instead of walking straight to the next II, the same
            # formula is re-solved with a blocking clause that rules out the
            # placement combination on the overloaded PE, asking the solver
            # for a structurally different mapping at the same II.  Retry
            # rounds never rebuild the solver or re-emit the base encoding —
            # they add exactly one blocking clause and re-solve.
            fresh_solver: CDCLSolver | None = None
            retry_baseline: int | None = None
            reconstructor: Reconstructor | None = None
            pre_stats = getattr(backend, "preprocess_stats", None)
            pre_base = (
                (pre_stats.clauses_removed, pre_stats.variables_removed,
                 pre_stats.preprocess_time)
                if pre_stats is not None
                else (0, 0, 0.0)
            )
            # The mapper only ever decodes placement literals, so every SAT
            # model is projected onto them instead of materialising the full
            # ``{var: bool}`` dict over the persistent solver's whole
            # (attempt-accumulating) variable universe.  The one-shot
            # preprocessing path is the exception: model reconstruction
            # needs the full simplified-formula model first.
            placement_vars = list(encoding.variables.values())
            pending_result = None
            if probing:
                if backend is not None:
                    probe_result = backend.solve(
                        assumptions=[selector],
                        conflict_limit=probe_budget,
                        time_limit=time_limit,
                        model_vars=placement_vars,
                    )
                else:
                    fresh_solver = CDCLSolver(random_seed=config.random_seed)
                    probe_result = fresh_solver.solve(
                        encoding.cnf,
                        conflict_limit=probe_budget,
                        time_limit=time_limit,
                        model_vars=placement_vars,
                    )
                attempt.record_solve(probe_result.stats)
                if (
                    probe_result.status == "UNKNOWN"
                    and probe_result.stats.conflicts >= probe_budget
                    and not self._out_of_time(start)
                ):
                    # Too hard for the probe (the *conflict* budget ran out,
                    # not the clock): drop the sequential group and
                    # re-encode the same attempt pairwise-optimised.
                    if backend is not None:
                        self._retire_group(backend, selector)
                    else:
                        fresh_solver = None
                    attempt.escalated = True
                    self._log(f"II={ii} slack={slack}: escalating to "
                              f"pairwise AMO after {probe_budget} conflicts")
                    escalate_start = time.perf_counter()
                    encoding, selector = encode_group(config.amo_encoding)
                    attempt.selector = selector
                    attempt.encode_time += time.perf_counter() - escalate_start
                    placement_vars = list(encoding.variables.values())
                    # The probe's spend counts against the attempt's budgets:
                    # charge its conflicts to the configured cap and refresh
                    # the wall-clock limit for the escalated phase.
                    if conflict_limit is not None:
                        conflict_limit = max(
                            1, conflict_limit - probe_result.stats.conflicts
                        )
                    time_limit = self._remaining_time(start)
                    if config.attempt_time_limit is not None:
                        if time_limit is None:
                            time_limit = config.attempt_time_limit
                        else:
                            time_limit = min(time_limit, config.attempt_time_limit)
                else:
                    # The probe concluded (or ran out the clock): its result
                    # feeds the round below as-is.
                    pending_result = probe_result
            for regalloc_round in range(config.regalloc_retries + 1):
                consumed_probe = False
                if pending_result is not None:
                    # The probe's conclusive answer; stats already recorded.
                    result, pending_result = pending_result, None
                    consumed_probe = True
                elif backend is not None:
                    result = backend.solve(
                        assumptions=[selector],
                        conflict_limit=conflict_limit,
                        time_limit=time_limit,
                        model_vars=placement_vars,
                    )
                elif fresh_solver is None:
                    fresh_solver = CDCLSolver(random_seed=config.random_seed)
                    attempt_cnf = encoding.cnf
                    if config.preprocess:
                        # One-shot path: simplify the standalone formula with
                        # the placement literals frozen (decode and blocking
                        # clauses reference them after simplification).
                        attempt_cnf, reconstructor, pstats = simplify(
                            attempt_cnf, frozen=encoding.variables.values()
                        )
                        attempt.pre_clauses_removed = pstats.clauses_removed
                        attempt.pre_vars_eliminated = pstats.variables_removed
                        attempt.preprocess_time = pstats.preprocess_time
                    result = fresh_solver.solve(
                        attempt_cnf,
                        conflict_limit=conflict_limit,
                        time_limit=time_limit,
                        model_vars=None if reconstructor is not None else placement_vars,
                    )
                else:
                    result = fresh_solver.solve(
                        conflict_limit=conflict_limit,
                        time_limit=time_limit,
                        model_vars=None if reconstructor is not None else placement_vars,
                    )
                if not consumed_probe:
                    attempt.record_solve(result.stats)
                if pre_stats is not None:
                    # The wrapper flushed (and simplified) the pending
                    # clauses inside solve (probe included); attribute the
                    # absolute delta so even a successful early return
                    # carries the stats.
                    attempt.pre_clauses_removed = (
                        pre_stats.clauses_removed - pre_base[0]
                    )
                    attempt.pre_vars_eliminated = (
                        pre_stats.variables_removed - pre_base[1]
                    )
                    attempt.preprocess_time = (
                        pre_stats.preprocess_time - pre_base[2]
                    )
                if retry_baseline is None:
                    # Sink clause count after the first solve: everything
                    # added past this point is retry work.
                    retry_baseline = self._sink_clause_count(backend, fresh_solver)

                if result.status == "UNKNOWN":
                    attempt.status = "UNKNOWN"
                    if self._out_of_time(start):
                        outcome.timed_out = True
                        return None
                    # Inconclusive bounded attempt: fall through to the next
                    # slack level / II.
                    break
                if result.is_unsat:
                    attempt.status = "UNSAT"
                    self._record_proof(attempt, outcome, backend, fresh_solver)
                    self._log(f"II={ii} slack={slack}: UNSAT "
                              f"({attempt.num_clauses} clauses)")
                    break

                attempt.status = "SAT"
                assert result.model is not None
                model = result.model
                if reconstructor is not None:
                    # Reinstate preprocessor-eliminated variables so the
                    # model satisfies the original, unsimplified formula.
                    # (The incremental wrapper reconstructs internally.)
                    model = reconstructor.extend(model)
                mapping = self._build_mapping(
                    dfg, cgra, ii, encoding.decode(model)
                )
                violations = mapping.violations(
                    check_overwrite=config.enforce_output_register
                )
                if violations:
                    raise MappingError(
                        "SAT model decodes to an illegal mapping — encoding bug: "
                        + "; ".join(violations[:5])
                    )

                if not config.run_register_allocation:
                    return mapping, None
                allocation = allocate_registers(
                    dfg, cgra, mapping, config.neighbour_register_file_access
                )
                if allocation.success:
                    mapping.apply_allocation(allocation)
                    return mapping, allocation
                attempt.status = "REGALLOC_FAIL"
                self._log(f"II={ii} slack={slack}: register allocation failed "
                          f"({allocation.failure_reason})")
                if regalloc_round < config.regalloc_retries:
                    attempt.blocking_clauses += self._block_overloaded_pe(
                        encoding, mapping, allocation,
                        backend if backend is not None else fresh_solver,
                    )
                    attempt.retry_clauses_added = (
                        self._sink_clause_count(backend, fresh_solver)
                        - retry_baseline
                    )
            # Retire the attempt's constraint group: one root-level unit lets
            # the solver satisfy (and effectively ignore) every guarded
            # clause while learned inference stays available.  The group's
            # variables are don't-cares from here on (every clause over them
            # is guarded by the now-false selector), so pin them false too —
            # otherwise every later solve would re-branch over them.
            if backend is not None:
                self._retire_group(backend, selector)
            # Try the next slack level / II.
        return None

    @staticmethod
    def _retire_group(backend: SolverBackend, selector: int) -> None:
        """Retire a selector-guarded constraint group.

        One bulk submission: the ``¬selector`` unit (which root-satisfies
        every guarded clause) plus a pin for each of the group's variables
        (don't-cares from here on — without the pins every later solve
        would re-branch over them), propagated in a single root sweep.
        Variables the preprocessor already eliminated are gone from the
        solver (and unit-pinning them would be an unsound reference to an
        eliminated variable).
        """
        last_var = backend.num_vars
        retired = backend.retired_vars
        backend.add_clauses(
            chain(
                ([-selector],),
                (
                    [-dead_var]
                    for dead_var in range(selector + 1, last_var + 1)
                    if dead_var not in retired
                ),
            )
        )

    @staticmethod
    def _sink_clause_count(backend: SolverBackend | None, fresh_solver) -> int:
        """Lifetime clause submissions of whichever sink serves the attempt."""
        if backend is not None:
            return backend.stats.clauses_added
        return fresh_solver.clauses_added if fresh_solver is not None else 0

    @staticmethod
    def _record_proof(attempt, outcome, backend, fresh_solver) -> None:
        """Attach the backing DRAT evidence to an UNSAT attempt.

        Backends that log proofs expose ``proof_digest()`` (the internal
        CDCL's running trace digest, or an external solver's digest of its
        last emitted trace); attempts and the outcome record digest and
        path so cached lower bounds stay independently checkable.
        """
        source = backend if backend is not None else fresh_solver
        digest_fn = getattr(source, "proof_digest", None)
        if digest_fn is None:
            return
        digest = digest_fn()
        if digest:
            attempt.proof_digest = digest
        path = getattr(source, "last_proof_path", None) or getattr(
            source, "proof_path", None
        )
        if path:
            outcome.proof_path = str(path)

    @staticmethod
    def _block_overloaded_pe(encoding, mapping: Mapping, allocation, sink) -> int:
        """Forbid the placement combination that overloaded a register file.

        Adds one clause to ``sink`` (the live backend or the attempt's
        solver) saying "not all of these nodes on this PE at these cycles
        again"; the next solve call must produce a mapping that differs on
        the overloaded PE.  Returns the number of clauses added.
        """
        failed_pe = allocation.failed_pe
        literals: list[int] = []
        for node_id, placement in mapping.placements.items():
            if failed_pe is not None and placement.pe != failed_pe:
                continue
            key = (node_id, placement.pe, placement.cycle, placement.iteration)
            var = encoding.variables.get(key)
            if var is not None:
                literals.append(-var)
        if not literals:
            return 0
        if encoding.selector is not None:
            # Guard the blocking clause with the attempt's selector so it is
            # retired together with the rest of the constraint group (tail
            # position keeps the watched literals the same as unguarded).
            literals = literals + [-encoding.selector]
        sink.add_clause(literals)
        return 1

    # ------------------------------------------------------------------
    @staticmethod
    def _build_mapping(
        dfg: DFG, cgra: CGRA, ii: int, placements: dict[int, tuple[int, int, int]]
    ) -> Mapping:
        mapping = Mapping(dfg=dfg, cgra=cgra, ii=ii)
        for node_id, (pe, cycle, iteration) in placements.items():
            mapping.place(node_id, pe, cycle, iteration)
        return mapping

    def _out_of_time(self, start: float) -> bool:
        timeout = self.config.timeout
        return timeout is not None and (time.perf_counter() - start) >= timeout

    def _remaining_time(self, start: float) -> float | None:
        timeout = self.config.timeout
        if timeout is None:
            return None
        return max(0.01, timeout - (time.perf_counter() - start))

    def _log(self, message: str) -> None:
        if self.config.verbose:
            print(f"[SAT-MapIt] {message}")
