"""Mapping result data structure and legality checking.

A :class:`Mapping` binds every DFG node to a PE and a kernel cycle (plus the
iteration label coming from the KMS fold).  The class knows how to check its
own legality against the DFG and the CGRA, independently of which mapper
produced it — the SAT mapper, a heuristic baseline and the exhaustive oracle
all return the same structure, and the test-suite validates them with the same
code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.cgra.architecture import CGRA
from repro.dfg.graph import DFG
from repro.exceptions import MappingError


@dataclass(frozen=True)
class Placement:
    """Where and when a single node executes inside the kernel."""

    node_id: int
    pe: int
    cycle: int
    iteration: int

    def flat_time(self, ii: int) -> int:
        """Position in the flat (unfolded) schedule."""
        return self.iteration * ii + self.cycle


@dataclass
class Mapping:
    """A modulo-scheduled mapping of a DFG onto a CGRA."""

    dfg: DFG
    cgra: CGRA
    ii: int
    placements: dict[int, Placement] = field(default_factory=dict)
    registers: dict[int, int] = field(default_factory=dict)
    #: ``node -> [register per live copy]`` from register allocation (values
    #: whose live range exceeds the II rotate through several registers).
    #: Carried so an archived mapping replays through the simulator exactly,
    #: without re-running allocation.
    register_copies: dict[int, list[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def place(self, node_id: int, pe: int, cycle: int, iteration: int = 0) -> None:
        """Record the placement of one node."""
        if not self.dfg.has_node(node_id):
            raise MappingError(f"node {node_id} is not part of DFG {self.dfg.name!r}")
        self.placements[node_id] = Placement(node_id, pe, cycle, iteration)

    def placement(self, node_id: int) -> Placement:
        try:
            return self.placements[node_id]
        except KeyError as exc:
            raise MappingError(f"node {node_id} has no placement") from exc

    def apply_allocation(self, allocation) -> None:
        """Record a successful register allocation on the mapping.

        Stores the first-copy assignment (``registers``) and the full
        per-copy rotation (``register_copies``) so the mapping archives and
        replays without the allocation object.
        """
        self.registers = dict(allocation.assignment)
        self.register_copies = {
            node: list(regs) for node, regs in allocation.all_copies.items()
        }

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def schedule_length(self) -> int:
        """Length of the flat schedule implied by the placements."""
        if not self.placements:
            return 0
        return max(p.flat_time(self.ii) for p in self.placements.values()) + 1

    @property
    def num_kernel_iterations(self) -> int:
        """Number of loop iterations in flight in the steady-state kernel."""
        if not self.placements:
            return 0
        return max(p.iteration for p in self.placements.values()) + 1

    def pe_utilisation(self) -> float:
        """Fraction of (PE, cycle) kernel slots occupied by instructions."""
        total_slots = self.cgra.num_pes * self.ii
        if total_slots == 0:
            return 0.0
        return len(self.placements) / total_slots

    def kernel_table(self) -> list[list[int | None]]:
        """``table[cycle][pe]`` = node id or ``None`` (the kernel contents)."""
        table: list[list[int | None]] = [
            [None] * self.cgra.num_pes for _ in range(self.ii)
        ]
        for placement in self.placements.values():
            table[placement.cycle][placement.pe] = placement.node_id
        return table

    def nodes_on_pe(self, pe: int) -> list[Placement]:
        """All placements assigned to a given PE, ordered by cycle."""
        result = [p for p in self.placements.values() if p.pe == pe]
        result.sort(key=lambda p: (p.cycle, p.iteration))
        return result

    # ------------------------------------------------------------------
    # Legality checking
    # ------------------------------------------------------------------
    def violations(self, check_overwrite: bool = False) -> list[str]:
        """Return a human-readable list of legality violations (empty = legal).

        Checks performed:

        * every DFG node is placed exactly once on an existing PE and a cycle
          within ``[0, II)``;
        * every node sits on a PE whose capability set covers its opcode
          (heterogeneous fabrics);
        * no two nodes share a (PE, kernel cycle) slot;
        * every dependency connects neighbouring (or identical) PEs;
        * every dependency respects modulo-schedule timing:
          ``t_dst + distance * II >= t_src + latency`` in flat time;
        * optionally, values forwarded to a neighbour are not overwritten in
          the producer's output register before being consumed.
        """
        problems: list[str] = []
        problems.extend(self._check_completeness())
        problems.extend(self._check_capabilities())
        problems.extend(self._check_slot_exclusivity())
        problems.extend(self._check_dependencies())
        if check_overwrite:
            problems.extend(self._check_output_register())
        return problems

    def is_valid(self, check_overwrite: bool = False) -> bool:
        """Whether the mapping is legal."""
        return not self.violations(check_overwrite=check_overwrite)

    def _check_completeness(self) -> list[str]:
        problems = []
        for node in self.dfg.nodes:
            if node.node_id not in self.placements:
                problems.append(f"node {node.node_id} is not placed")
        for placement in self.placements.values():
            if not 0 <= placement.pe < self.cgra.num_pes:
                problems.append(
                    f"node {placement.node_id} placed on PE {placement.pe}, "
                    f"but the CGRA has {self.cgra.num_pes} PEs"
                )
            if not 0 <= placement.cycle < self.ii:
                problems.append(
                    f"node {placement.node_id} placed at cycle {placement.cycle}, "
                    f"outside the kernel of II={self.ii}"
                )
        return problems

    def _check_capabilities(self) -> list[str]:
        problems = []
        for placement in self.placements.values():
            if not 0 <= placement.pe < self.cgra.num_pes:
                continue  # reported by the completeness check
            node = self.dfg.node(placement.node_id)
            pe = self.cgra.pe(placement.pe)
            if not pe.supports(node.opcode):
                problems.append(
                    f"node {node.node_id} ({node.opcode.value}) placed on "
                    f"{pe.name} which only implements "
                    f"{'/'.join(sorted(c.value for c in pe.capabilities))}"
                )
        return problems

    def _check_slot_exclusivity(self) -> list[str]:
        problems = []
        occupied: dict[tuple[int, int], int] = {}
        for placement in self.placements.values():
            key = (placement.pe, placement.cycle)
            if key in occupied:
                problems.append(
                    f"PE {placement.pe} at cycle {placement.cycle} hosts both node "
                    f"{occupied[key]} and node {placement.node_id}"
                )
            else:
                occupied[key] = placement.node_id
        return problems

    def _check_dependencies(self) -> list[str]:
        problems = []
        for edge in self.dfg.edges:
            if edge.src not in self.placements or edge.dst not in self.placements:
                continue
            src = self.placements[edge.src]
            dst = self.placements[edge.dst]
            if not self.cgra.are_neighbours(src.pe, dst.pe, include_self=True):
                problems.append(
                    f"dependency {edge.src}->{edge.dst}: PE {src.pe} and PE {dst.pe} "
                    "are not neighbours"
                )
            produced = src.flat_time(self.ii) + self.dfg.node(edge.src).latency
            consumed = dst.flat_time(self.ii) + edge.distance * self.ii
            if consumed < produced:
                problems.append(
                    f"dependency {edge.src}->{edge.dst} (distance {edge.distance}): "
                    f"consumed at flat time {consumed} before being produced at {produced}"
                )
        return problems

    def _check_output_register(self) -> list[str]:
        """Check Eq. 5: neighbour transfers survive in the output register."""
        problems = []
        occupied_cycles: dict[int, set[int]] = {}
        for placement in self.placements.values():
            occupied_cycles.setdefault(placement.pe, set()).add(placement.cycle)
        for edge in self.dfg.edges:
            if edge.src not in self.placements or edge.dst not in self.placements:
                continue
            src = self.placements[edge.src]
            dst = self.placements[edge.dst]
            if src.pe == dst.pe:
                continue  # delivered through the local register file
            produced = src.flat_time(self.ii) + self.dfg.node(edge.src).latency
            consumed = dst.flat_time(self.ii) + edge.distance * self.ii
            span = consumed - src.flat_time(self.ii)
            if span > self.ii:
                problems.append(
                    f"dependency {edge.src}->{edge.dst}: the producer re-executes "
                    f"before the value is consumed (span {span} > II {self.ii})"
                )
                continue
            for flat in range(src.flat_time(self.ii) + 1, consumed):
                cycle = flat % self.ii
                if cycle in occupied_cycles.get(src.pe, set()):
                    problems.append(
                        f"dependency {edge.src}->{edge.dst}: output register of PE "
                        f"{src.pe} overwritten at kernel cycle {cycle}"
                    )
                    break
        return problems

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Self-contained plain-data form: DFG, fabric spec and placements."""
        return {
            "format": "satmapit-mapping/1",
            "ii": self.ii,
            "dfg": self.dfg.to_dict(),
            "cgra": self.cgra.to_spec(),
            "placements": [
                {
                    "node": placement.node_id,
                    "pe": placement.pe,
                    "cycle": placement.cycle,
                    "iteration": placement.iteration,
                }
                for placement in sorted(
                    self.placements.values(), key=lambda p: p.node_id
                )
            ],
            "registers": {str(node): reg for node, reg in self.registers.items()},
            "register_copies": {
                str(node): list(regs) for node, regs in self.register_copies.items()
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize to JSON (archive a mapping without re-solving)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "Mapping":
        """Rebuild a mapping (with its DFG and fabric) from :meth:`to_dict`."""
        dfg = DFG.from_dict(data["dfg"])
        cgra = CGRA.from_spec(data["cgra"])
        mapping = cls(dfg=dfg, cgra=cgra, ii=int(data["ii"]))
        for entry in data.get("placements", ()):
            mapping.place(
                entry["node"], entry["pe"], entry["cycle"],
                entry.get("iteration", 0),
            )
        mapping.registers = {
            int(node): int(reg) for node, reg in data.get("registers", {}).items()
        }
        mapping.register_copies = {
            int(node): [int(reg) for reg in regs]
            for node, regs in data.get("register_copies", {}).items()
        }
        return mapping

    @classmethod
    def from_json(cls, text: str) -> "Mapping":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        return (
            f"Mapping(dfg={self.dfg.name!r}, cgra={self.cgra.name!r}, ii={self.ii}, "
            f"placed={len(self.placements)}/{self.dfg.num_nodes})"
        )
