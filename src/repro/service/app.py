"""Stdlib-only asyncio HTTP front end for the mapping service.

``asyncio.start_server`` plus a deliberately small HTTP/1.1 reader — just
enough for a JSON API (request line, headers, Content-Length body,
``Connection: close`` responses).  No third-party framework; the
container bakes in only the standard library, and the API surface is
five routes:

=======  ========================  ===========================================
Method   Path                      Meaning
=======  ========================  ===========================================
POST     ``/map``                  submit a mapping problem; ``wait`` seconds
                                   for a synchronous answer (200) before
                                   falling back to a job handle (202)
GET      ``/jobs/{id}``            poll a job (result embedded once done)
POST     ``/jobs/{id}/cancel``     cancel a job (``DELETE /jobs/{id}`` works
                                   too); the worker process is reaped
GET      ``/stats``                service / cache / tuner telemetry
GET      ``/healthz``              liveness probe
=======  ========================  ===========================================
"""

from __future__ import annotations

import asyncio
import json
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from repro.exceptions import MappingError
from repro.sat.backend import BackendUnavailableError
from repro.service.jobs import Job, JobManager
from repro.service.protocol import (
    ProtocolError,
    ServiceLimits,
    parse_map_request,
)

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServiceApp:
    """Routes HTTP requests onto one :class:`JobManager`."""

    def __init__(
        self,
        manager: JobManager,
        limits: ServiceLimits | None = None,
    ) -> None:
        self.manager = manager
        self.limits = limits or manager.limits

    # ------------------------------------------------------------------
    async def handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection, one request, one JSON response."""
        try:
            status, payload = await self._handle_request(reader)
        except Exception as exc:  # pragma: no cover - handler bug guard
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": "malformed request line"}
        method, target, _version = parts
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = dict(parse_qsl(split.query))

        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

        body: Any = None
        length = int(headers.get("content-length", 0) or 0)
        if length > self.limits.max_body_bytes:
            # Drain and discard (never buffering more than a chunk) so the
            # client finishes its send and reads the 413 instead of hitting
            # a connection reset mid-write.
            remaining = length
            while remaining > 0:
                chunk = await reader.read(min(65536, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
            return 413, {
                "error": f"body exceeds {self.limits.max_body_bytes} bytes"
            }
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}

        return await self._route(method, path, query, headers, body)

    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, query: dict, headers: dict, body: Any
    ) -> tuple[int, dict]:
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok"}
        if path == "/stats" and method == "GET":
            return 200, self.manager.stats_payload()
        if path == "/map":
            if method != "POST":
                return 405, {"error": "POST /map"}
            return await self._post_map(query, headers, body)
        if path.startswith("/jobs/"):
            tail = path[len("/jobs/"):]
            if tail.endswith("/cancel") and method == "POST":
                return self._cancel(tail[: -len("/cancel")])
            if method == "DELETE":
                return self._cancel(tail)
            if method == "GET":
                job = self.manager.get(tail)
                if job is None:
                    return 404, {"error": f"unknown job {tail!r}"}
                return 200, job.to_payload()
            return 405, {"error": "GET / DELETE /jobs/{id}, POST .../cancel"}
        return 404, {"error": f"no route for {method} {path}"}

    async def _post_map(
        self, query: dict, headers: dict, body: Any
    ) -> tuple[int, dict]:
        try:
            request = parse_map_request(
                body, self.limits, header_tenant=headers.get("x-tenant")
            )
            if "wait" in query:
                request.wait = min(
                    max(0.0, float(query["wait"])), self.limits.max_wait
                )
            job, created = self.manager.submit(request)
        except (ProtocolError, ValueError) as exc:
            return 400, {"error": str(exc)}
        except (MappingError, BackendUnavailableError) as exc:
            # Same one-line contract as the CLI: an unmappable kernel or a
            # missing solver binary (install hint included) fails the
            # *request*, never the service.
            return 400, {"error": str(exc)}
        if request.wait > 0 and not job.finished:
            try:
                await asyncio.wait_for(
                    job.done_event.wait(), timeout=request.wait
                )
            except TimeoutError:
                pass
        payload = job.to_payload()
        payload["deduplicated"] = not created
        return (200 if job.finished else 202), payload

    def _cancel(self, job_id: str) -> tuple[int, dict]:
        job: Job | None = self.manager.cancel(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        payload = job.to_payload()
        payload["cancel_requested"] = True
        return 200, payload


# ---------------------------------------------------------------------------
# Server lifecycle
# ---------------------------------------------------------------------------


async def start_service(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 8157,
) -> asyncio.Server:
    """Bind and return the asyncio server (``port=0`` picks a free port)."""
    app = ServiceApp(manager)
    return await asyncio.start_server(app.handle_client, host=host, port=port)


def run_service(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 8157,
) -> int:
    """Blocking entry point used by ``repro serve``.

    Serves until interrupted; on the way out every in-flight job is
    cancelled through the reap discipline, so a Ctrl-C'd service leaves
    no orphaned solver processes behind.
    """

    async def _main() -> None:
        server = await start_service(manager, host=host, port=port)
        addr = server.sockets[0].getsockname()
        print(
            f"satmapit service listening on http://{addr[0]}:{addr[1]} "
            f"(pool={manager.pool_size}, cache={manager.cache_dir or 'off'})",
            flush=True,
        )
        try:
            async with server:
                await server.serve_forever()
        finally:
            await manager.shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("satmapit service: shut down", flush=True)
    return 0
