"""Wire formats of the mapping service.

A ``POST /map`` body is a JSON object with three parts::

    {
      "kernel": "gsm",                  // or "dfg": {...} or "source": "..."
      "arch":   {"preset": "mem_edge_4x4"},   // or rows/cols or "spec": {...}
      "config": {"timeout": 60, "search": "portfolio", "search_jobs": 4},
      "tenant": "team-a",               // optional; also X-Tenant header
      "wait":   5                       // optional: block up to N s for the result
    }

Parsing is strict: unknown config fields, wrong types, out-of-range
budgets and malformed tenants are rejected with :class:`ProtocolError`
before any mapping work starts — a service must fail requests, not
processes.  Budgets are *clamped*, not trusted: every request gets an
explicit wall-clock budget (``ServiceLimits.default_timeout`` when the
request names none) bounded by ``ServiceLimits.max_timeout``, so no
request can hold a worker slot forever.

The response side (:func:`outcome_payload`) renders a
:class:`~repro.core.mapper.MappingOutcome` as plain JSON — mapping
included on success, cache/search/portfolio telemetry always — and is
what the worker process ships back over its pipe, so everything in it
must be picklable and JSON-serializable plain data.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any

from repro.cgra.architecture import CGRA
from repro.cgra.presets import arch_preset_names, get_arch_preset
from repro.core.mapper import MapperConfig, MappingOutcome
from repro.dfg.graph import DFG
from repro.exceptions import ArchitectureError
from repro.sat.encodings import AMOEncoding
from repro.search.cache import resolve_cache_dir


class ProtocolError(ValueError):
    """A malformed or out-of-contract service request."""


#: Default tenant namespace for requests that name none.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class ServiceLimits:
    """Server-side clamps applied to every request's budgets."""

    #: Wall-clock budget given to requests that do not set ``timeout``.
    default_timeout: float = 60.0
    #: Hard ceiling on any request's ``timeout``.
    max_timeout: float = 600.0
    #: Ceiling on ``search_jobs`` (portfolio worker processes per solve).
    max_search_jobs: int = max(1, min(8, os.cpu_count() or 1))
    #: Longest a ``POST /map`` may block waiting for its result before the
    #: caller is handed the job id to poll.
    max_wait: float = 300.0
    #: Largest accepted request body.
    max_body_bytes: int = 4 * 1024 * 1024


@dataclass
class MapRequest:
    """A validated mapping request, ready to hand to the job manager."""

    dfg: DFG
    cgra: CGRA
    config: MapperConfig
    tenant: str = DEFAULT_TENANT
    #: Seconds ``POST /map`` may block for a synchronous answer.
    wait: float = 0.0


# ---------------------------------------------------------------------------
# Request parsing
# ---------------------------------------------------------------------------

#: MapperConfig fields a request may set, with their expected JSON shape.
#: File-system knobs (cache/tuner/DIMACS directories, namespaces) and
#: debug output are service-owned and deliberately absent — a request
#: must never choose where the server writes.
_CONFIG_FIELDS: dict[str, str] = {
    "max_ii": "int",
    "timeout": "float?",
    "attempt_time_limit": "float?",
    "schedule_slack": "int",
    "max_extra_slack": "int",
    "slack_conflict_limit": "int?",
    "regalloc_retries": "int",
    "amo_encoding": "amo",
    "amo_probe_conflicts": "int?",
    "backend": "str",
    "preprocess": "bool",
    "incremental": "bool",
    "max_iteration_span": "int?",
    "enforce_output_register": "bool",
    "symmetry_breaking": "bool",
    "neighbour_register_file_access": "bool",
    "run_register_allocation": "bool",
    "solver_conflict_limit": "int?",
    "random_seed": "int?",
    "search": "str",
    "search_jobs": "int",
    "portfolio_variants": "strs",
    "seed_heuristic": "bool",
    "seed_time_budget": "float",
    "seed_mappers": "strs",
}


def _coerce(name: str, value: Any, kind: str) -> Any:
    optional = kind.endswith("?")
    base = kind.rstrip("?")
    if value is None:
        if optional:
            return None
        raise ProtocolError(f"config field {name!r} must not be null")
    if base == "bool":
        if isinstance(value, bool):
            return value
    elif base == "int":
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    elif base == "float":
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    elif base == "str":
        if isinstance(value, str):
            return value
    elif base == "strs":
        if isinstance(value, (list, tuple)) and all(
            isinstance(item, str) for item in value
        ):
            return tuple(value)
    elif base == "amo":
        try:
            return AMOEncoding(value)
        except ValueError:
            raise ProtocolError(
                f"config field 'amo_encoding' must be one of "
                f"{[e.value for e in AMOEncoding]}, got {value!r}"
            ) from None
    raise ProtocolError(
        f"config field {name!r} has the wrong type: expected {base}, "
        f"got {type(value).__name__}"
    )


def _parse_dfg(payload: dict) -> DFG:
    sources = [key for key in ("kernel", "dfg", "source") if payload.get(key)]
    if len(sources) != 1:
        raise ProtocolError(
            "exactly one of 'kernel', 'dfg' or 'source' is required"
        )
    if "kernel" in sources:
        from repro.kernels import all_kernel_names, get_kernel

        name = payload["kernel"]
        if not isinstance(name, str) or name not in all_kernel_names():
            raise ProtocolError(
                f"unknown kernel {name!r}; available: {all_kernel_names()}"
            )
        # Round-trip through the serialized form: the kernel registry caches
        # DFG instances, and a shared mutable object must never cross
        # request boundaries in a re-entrant service.
        return DFG.from_dict(get_kernel(name).to_dict())
    if "dfg" in sources:
        spec = payload["dfg"]
        if not isinstance(spec, dict):
            raise ProtocolError("'dfg' must be a JSON object (DFG.to_dict form)")
        try:
            dfg = DFG.from_dict(spec)
            dfg.validate()
        except ProtocolError:
            raise
        except Exception as exc:
            raise ProtocolError(f"invalid DFG spec: {exc}") from exc
        return dfg
    from repro.frontend import compile_loop

    source = payload["source"]
    if not isinstance(source, str):
        raise ProtocolError("'source' must be a loop-kernel source string")
    try:
        return compile_loop(source, name="request")
    except Exception as exc:
        raise ProtocolError(f"cannot compile 'source': {exc}") from exc


def _parse_arch(payload: dict) -> CGRA:
    arch = payload.get("arch", {})
    if not isinstance(arch, dict):
        raise ProtocolError("'arch' must be a JSON object")
    try:
        if "spec" in arch:
            if not isinstance(arch["spec"], dict):
                raise ProtocolError("'arch.spec' must be a JSON object")
            return CGRA.from_spec(arch["spec"])
        if "preset" in arch:
            preset = arch["preset"]
            if preset not in arch_preset_names():
                raise ProtocolError(
                    f"unknown arch preset {preset!r}; "
                    f"available: {arch_preset_names()}"
                )
            return get_arch_preset(
                preset, registers_per_pe=int(arch.get("registers", 4))
            )
        return CGRA(
            rows=int(arch.get("rows", 4)),
            cols=int(arch.get("cols", 4)),
            registers_per_pe=int(arch.get("registers", 4)),
        )
    except ProtocolError:
        raise
    except (ArchitectureError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid architecture: {exc}") from exc


def _parse_tenant(payload: dict, header_tenant: str | None) -> str:
    tenant = payload.get("tenant", header_tenant) or DEFAULT_TENANT
    if not isinstance(tenant, str):
        raise ProtocolError("'tenant' must be a string")
    try:
        # The cache layer owns the namespace alphabet; reuse its validation
        # so a tenant accepted here can never escape the cache root later.
        resolve_cache_dir(".", tenant)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from None
    return tenant


def parse_map_request(
    payload: Any,
    limits: ServiceLimits | None = None,
    header_tenant: str | None = None,
) -> MapRequest:
    """Validate one ``POST /map`` body into a :class:`MapRequest`.

    Raises :class:`ProtocolError` on any malformed part; clamps the
    request's time and parallelism budgets to the service limits so every
    accepted request carries explicit, bounded budgets.
    """
    limits = limits or ServiceLimits()
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    config_spec = payload.get("config", {})
    if not isinstance(config_spec, dict):
        raise ProtocolError("'config' must be a JSON object")
    fields: dict[str, Any] = {}
    for name, value in config_spec.items():
        kind = _CONFIG_FIELDS.get(name)
        if kind is None:
            raise ProtocolError(
                f"unknown config field {name!r}; "
                f"allowed: {sorted(_CONFIG_FIELDS)}"
            )
        fields[name] = _coerce(name, value, kind)

    timeout = fields.get("timeout")
    if timeout is None:
        timeout = limits.default_timeout
    if timeout <= 0:
        raise ProtocolError("'timeout' must be positive")
    fields["timeout"] = min(timeout, limits.max_timeout)
    fields["search_jobs"] = max(
        1, min(fields.get("search_jobs", 2), limits.max_search_jobs)
    )
    # The service owns all output: workers must stay silent.
    fields["verbose"] = False

    wait = payload.get("wait", 0.0)
    if not isinstance(wait, (int, float)) or isinstance(wait, bool) or wait < 0:
        raise ProtocolError("'wait' must be a non-negative number of seconds")

    try:
        config = MapperConfig(**fields)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid config: {exc}") from exc
    return MapRequest(
        dfg=_parse_dfg(payload),
        cgra=_parse_arch(payload),
        config=config,
        tenant=_parse_tenant(payload, header_tenant),
        wait=min(float(wait), limits.max_wait),
    )


# ---------------------------------------------------------------------------
# Response rendering
# ---------------------------------------------------------------------------


def outcome_payload(outcome: MappingOutcome) -> dict:
    """A :class:`MappingOutcome` as a plain-data JSON payload.

    The worker process ships exactly this dict back over its pipe, so it
    must stay picklable plain data (no Mapping/DFG objects).
    """
    payload: dict[str, Any] = {
        "success": outcome.success,
        "status": outcome.final_status,
        "dfg": outcome.dfg_name,
        "cgra": outcome.cgra_name,
        "ii": outcome.ii,
        "minimum_ii": outcome.minimum_ii,
        "attempts": len(outcome.attempts),
        "total_time_s": round(outcome.total_time, 4),
        "timed_out": outcome.timed_out,
        "backend": outcome.backend_name,
        "search_strategy": outcome.search_strategy,
        "cache_hit": outcome.cache_hit,
        "cache_key": outcome.cache_key,
        "mapping": outcome.mapping.to_dict() if outcome.mapping else None,
    }
    if outcome.cache_stats is not None:
        payload["cache"] = dataclasses.asdict(outcome.cache_stats)
    if outcome.search_strategy == "portfolio":
        payload["portfolio"] = {
            "launched": outcome.portfolio_launched,
            "cancelled": outcome.portfolio_cancelled,
            "winner": outcome.portfolio_winner,
        }
    if outcome.seed_ii is not None or outcome.seed_time:
        payload["seed"] = {
            "ii": outcome.seed_ii,
            "mapper": outcome.seed_mapper,
            "time_s": round(outcome.seed_time, 4),
            "used": outcome.seed_used,
        }
    return payload
