"""Mapping-as-a-service: an async HTTP front end over the mapper core.

The pieces of a service already existed — a content-addressed persistent
mapping cache, a pluggable search/backend registry, JSON-serializable
DFG/CGRA/Mapping specs — and this package puts an HTTP surface on them:

* :mod:`repro.service.protocol` — request/response wire formats: a JSON
  ``POST /map`` body into a validated (DFG, CGRA, MapperConfig) triple,
  and a :class:`~repro.core.mapper.MappingOutcome` into a JSON payload.
* :mod:`repro.service.jobs` — the job manager: a bounded pool of worker
  *processes* (one per mapping solve, so requests are isolated and
  cancellable), in-flight request dedup keyed by the persistent cache's
  content hash, per-tenant cache namespaces, and service-level telemetry.
* :mod:`repro.service.app` — a stdlib-only asyncio HTTP server exposing
  ``POST /map``, ``GET /jobs/{id}``, ``POST /jobs/{id}/cancel``,
  ``GET /stats`` and ``GET /healthz``; ``repro serve`` on the CLI.

No third-party web framework is required (or used): the HTTP layer is
``asyncio.start_server`` plus a deliberately small HTTP/1.1 reader that
supports exactly what the JSON API needs.
"""

from repro.service.app import ServiceApp, run_service, start_service
from repro.service.jobs import Job, JobManager, ServiceStats
from repro.service.protocol import (
    MapRequest,
    ProtocolError,
    ServiceLimits,
    outcome_payload,
    parse_map_request,
)

__all__ = [
    "Job",
    "JobManager",
    "MapRequest",
    "ProtocolError",
    "ServiceApp",
    "ServiceLimits",
    "ServiceStats",
    "outcome_payload",
    "parse_map_request",
    "run_service",
    "start_service",
]
