"""Job lifecycle for the mapping service.

Every accepted ``POST /map`` becomes a :class:`Job`.  The manager runs at
most ``pool_size`` solves at once, each in its *own worker process*:

* **Isolation / re-entrancy** — the mapper core is stateless, but a SAT
  solve is CPU-bound and can be asked to die at any moment; a process per
  job gives the GIL-free parallelism and a kill target, with no state
  shared between requests.
* **Cancellation** — the worker installs a SIGTERM handler that raises
  ``SystemExit``, so terminating it unwinds through the mapper's
  ``finally`` blocks and the portfolio strategy's own ``cancel_all``
  discipline reaps its racing grandchildren before the worker exits.  The
  parent side uses the same :func:`~repro.search.portfolio.reap_process`
  escalation (SIGTERM, bounded grace, SIGKILL) the portfolio applies to
  its lanes — with a longer grace, so a cooperatively-cancelling worker
  is never SIGKILLed while it is still cleaning up its own children.
* **Dedup** — in-flight requests are indexed by ``(tenant, cache key)``
  using the persistent cache's content hash: two identical concurrent
  ``POST /map``\\ s share one Job and one solve.  Once a job finishes the
  index entry is dropped — later repeats are served by the persistent
  cache instead.
* **Tenancy** — each tenant's cache lives under its own namespace
  directory (``MapperConfig.cache_namespace``); tenants share nothing on
  disk.
* **Budgets** — every request's config carries an explicit clamped
  timeout (see :mod:`repro.service.protocol`); on top of it the manager
  holds a hard watchdog (timeout + grace) after which a wedged worker is
  reaped and the job fails, so no request can pin a pool slot forever.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Any

from repro.cgra.capabilities import check_kernel_fits, effective_minimum_ii
from repro.core.mapper import MapperConfig, SatMapItMapper
from repro.exceptions import MappingError
from repro.sat.backend import BackendUnavailableError, validate_backend
from repro.search.cache import MappingCache, cache_key, resolve_cache_dir
from repro.search.portfolio import reap_process
from repro.service.protocol import (
    MapRequest,
    ServiceLimits,
    outcome_payload,
)

#: Seconds between cancellation/deadline checks while a worker solves.
_WORKER_POLL = 0.1

#: Watchdog slack on top of a request's own timeout before the manager
#: declares the worker wedged and reaps it.
_BUDGET_GRACE = 30.0

#: TERM grace for job workers.  Deliberately longer than the portfolio's
#: internal 5 s lane grace: a cancelled worker may itself be escalating
#: stubborn grandchildren, and SIGKILLing it mid-cleanup would orphan
#: them (SIGKILL runs no handlers, so the daemon children would outlive
#: everything).
_JOB_TERM_GRACE = 20.0


def _sigterm_to_exit(signum, frame):  # pragma: no cover - runs in worker
    """Turn SIGTERM into an orderly unwind.

    Raising ``SystemExit`` runs every active ``finally`` — most
    importantly the portfolio strategy's ``cancel_all``, which
    kill-escalates its racing lane processes — before the worker exits.
    A bare ``terminate()`` would leave those daemon grandchildren running
    whenever the worker dies without Python-level cleanup.
    """
    raise SystemExit(128 + signal.SIGTERM)


def _job_worker(conn, dfg, cgra, config: MapperConfig) -> None:
    """Run one mapping solve and ship a plain-data verdict back."""
    signal.signal(signal.SIGTERM, _sigterm_to_exit)
    try:
        outcome = SatMapItMapper(config).map(dfg, cgra)
        conn.send(("ok", outcome_payload(outcome)))
    except (MappingError, BackendUnavailableError) as exc:
        conn.send(("error", str(exc)))
    except SystemExit:  # pragma: no cover - cancellation path
        raise
    except BaseException as exc:  # pragma: no cover - crash containment
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled",
)
_FINISHED = frozenset({DONE, FAILED, CANCELLED})


@dataclass
class Job:
    """One mapping request's lifecycle, shared by every deduped caller."""

    id: str
    tenant: str
    cache_key: str
    dfg_name: str
    cgra_name: str
    status: str = QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: str | None = None
    #: Structured failure detail (e.g. a ``worker_crashed`` record with
    #: the exit code and signal); ``None`` for ordinary error strings.
    failure: dict | None = None
    #: How many requests this job served (1 + dedup joiners).
    requests: int = 1
    #: Set from any thread to ask the solve loop to reap the worker.
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: Completion signal for ``wait=``-style synchronous callers.
    done_event: asyncio.Event = field(default_factory=asyncio.Event)
    pid: int | None = None

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal status."""
        return self.status in _FINISHED

    def to_payload(self) -> dict:
        """JSON-ready job view served by ``GET /jobs/<id>``."""
        end = self.finished_at or time.time()
        payload: dict[str, Any] = {
            "job": self.id,
            "status": self.status,
            "tenant": self.tenant,
            "cache_key": self.cache_key,
            "dfg": self.dfg_name,
            "cgra": self.cgra_name,
            "requests": self.requests,
            "created_at": self.created_at,
            "wall_s": round(end - self.created_at, 4),
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        if self.failure is not None:
            payload["failure"] = self.failure
        return payload


@dataclass
class ServiceStats:
    """Service-level counters, aggregated across all jobs and tenants."""

    started_at: float = field(default_factory=time.time)
    requests: int = 0
    #: Requests answered by joining an identical in-flight job.
    dedup_joined: int = 0
    solves_started: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    #: Jobs that failed because the worker process died without a verdict
    #: (nonzero exit or signal) — a subset of ``failed``.
    worker_crashes: int = 0
    #: Persistent-cache counters folded in from every finished solve.
    cache: dict = field(default_factory=lambda: {
        "hits": 0, "misses": 0, "writes": 0, "invalidated": 0,
        "corrupted": 0, "evicted": 0, "temp_files_swept": 0,
    })

    def fold_cache(self, stats: dict | None) -> None:
        """Fold one solve's cache counters into the running totals."""
        if not stats:
            return
        for name in self.cache:
            self.cache[name] += int(stats.get(name, 0))

    @property
    def hit_rate(self) -> float | None:
        """Cache hit ratio over all lookups, or ``None`` before any."""
        looked_up = self.cache["hits"] + self.cache["misses"]
        if not looked_up:
            return None
        return self.cache["hits"] / looked_up


def _crash_detail(exitcode: int | None) -> dict:
    """Structured ``worker_crashed`` record from a worker's exit code.

    A negative multiprocessing exit code means death by signal; the signal
    number (and name, when the platform knows it) is reported separately
    from a plain nonzero exit so an operator can tell an OOM kill
    (SIGKILL) from a solver abort at a glance.
    """
    detail: dict[str, Any] = {
        "kind": "worker_crashed",
        "exit_code": exitcode,
        "signal": None,
        "signal_name": None,
    }
    if exitcode is not None and exitcode < 0:
        signum = -exitcode
        detail["exit_code"] = None
        detail["signal"] = signum
        try:
            detail["signal_name"] = signal.Signals(signum).name
        except ValueError:
            pass
    return detail


def _crash_message(detail: dict) -> str:
    if detail.get("signal") is not None:
        name = detail.get("signal_name") or f"signal {detail['signal']}"
        return f"mapping worker died unexpectedly (killed by {name})"
    return (
        f"mapping worker died unexpectedly "
        f"(exit code {detail.get('exit_code')})"
    )


def _solve_in_process(
    ctx, job: Job, dfg, cgra, config: MapperConfig, budget: float,
) -> tuple[str, Any]:
    """Run the worker process and babysit it (thread context).

    Returns ``("ok", payload)`` / ``("error", message)`` /
    ``("crashed", detail)`` / ``("cancelled", None)``.  Guarantees the
    worker is dead on return, whatever happened.
    """
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_job_worker, args=(child_conn, dfg, cgra, config),
    )
    process.start()
    child_conn.close()
    job.pid = process.pid
    deadline = time.monotonic() + budget
    message: tuple[str, Any] | None = None
    try:
        while True:
            if job.cancel_event.is_set():
                reap_process(process, grace=_JOB_TERM_GRACE)
                return ("cancelled", None)
            if time.monotonic() > deadline:
                reap_process(process, grace=_JOB_TERM_GRACE)
                return (
                    "error",
                    f"worker exceeded the request budget "
                    f"(hard ceiling {budget:.0f}s) and was reaped",
                )
            if parent_conn.poll(_WORKER_POLL):
                try:
                    message = parent_conn.recv()
                except EOFError:
                    message = None
                break
            if not process.is_alive():
                # The worker died without answering; drain a message that
                # may have landed between the poll and the liveness check.
                if parent_conn.poll(0):
                    try:
                        message = parent_conn.recv()
                    except EOFError:
                        message = None
                break
        if message is None:
            # Join first: a worker whose pipe EOFed may not be reaped yet,
            # and an unreaped child reads back as ``exitcode is None``.
            process.join(timeout=2.0)
            return ("crashed", _crash_detail(process.exitcode))
        return message
    finally:
        try:
            parent_conn.close()
        except OSError:
            pass
        if process.is_alive():
            process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - wedged worker
            reap_process(process, grace=_JOB_TERM_GRACE)


class JobManager:
    """Bounded, deduplicating scheduler of mapping solves."""

    def __init__(
        self,
        pool_size: int = 2,
        cache_dir: str | None = None,
        cache_max_mb: float | None = None,
        tuner_dir: str | None = None,
        limits: ServiceLimits | None = None,
        mp_context=None,
        max_jobs_tracked: int = 1000,
    ) -> None:
        self.pool_size = max(1, pool_size)
        self.cache_dir = cache_dir
        self.cache_max_mb = cache_max_mb
        self.tuner_dir = tuner_dir
        self.limits = limits or ServiceLimits()
        # ``spawn`` by default: forking a process from the event loop's
        # worker threads is unreliable (and deprecated in newer CPythons);
        # a spawned child re-imports cleanly.  Tests inject ``fork`` where
        # they need to monkeypatch the worker.
        self._ctx = mp_context or multiprocessing.get_context("spawn")
        self._semaphore = asyncio.Semaphore(self.pool_size)
        self.jobs: dict[str, Job] = {}
        self._inflight: dict[tuple[str, str], Job] = {}
        self._tenants: set[str] = set()
        self._max_jobs_tracked = max_jobs_tracked
        self.stats = ServiceStats()
        self.running = 0

    # ------------------------------------------------------------------
    def _specialise(self, request: MapRequest) -> MapperConfig:
        """Wire the service-owned resources into a request's config."""
        fields: dict[str, Any] = {}
        if self.cache_dir is not None:
            fields.update(
                cache_dir=self.cache_dir,
                cache_max_mb=self.cache_max_mb,
                cache_namespace=request.tenant,
            )
        if self.tuner_dir is not None:
            fields["tuner_dir"] = self.tuner_dir
        return replace(request.config, **fields) if fields else request.config

    def submit(self, request: MapRequest) -> tuple[Job, bool]:
        """Accept one request; returns ``(job, created)``.

        ``created`` is ``False`` when the request joined an identical
        in-flight job (same tenant, same cache key) instead of starting a
        new solve.  Raises ``MappingError`` / ``BackendUnavailableError``
        for requests that can be refuted before any work (unmappable
        kernel, missing solver binary) — the HTTP layer turns those into
        a 400, mirroring the CLI's one-line error contract.
        """
        self.stats.requests += 1
        config = self._specialise(request)
        try:
            validate_backend(config.backend)
            request.dfg.validate()
            check_kernel_fits(request.dfg, request.cgra)
            first_ii = max(effective_minimum_ii(request.dfg, request.cgra), 1)
            key = cache_key(request.dfg, request.cgra, config, start_ii=first_ii)
        except Exception:
            self.stats.rejected += 1
            self.stats.requests -= 1
            raise
        existing = self._inflight.get((request.tenant, key))
        if existing is not None and not existing.finished:
            existing.requests += 1
            self.stats.dedup_joined += 1
            return existing, False
        job = Job(
            id=uuid.uuid4().hex[:16],
            tenant=request.tenant,
            cache_key=key,
            dfg_name=request.dfg.name,
            cgra_name=request.cgra.name,
        )
        self.jobs[job.id] = job
        self._inflight[(request.tenant, key)] = job
        self._tenants.add(request.tenant)
        self._prune_finished()
        asyncio.get_running_loop().create_task(self._run(job, request, config))
        return job, True

    async def _run(self, job: Job, request: MapRequest, config: MapperConfig) -> None:
        acquired = False
        try:
            # Acquire a pool slot, staying responsive to cancellation of a
            # still-queued job.
            while True:
                try:
                    await asyncio.wait_for(self._semaphore.acquire(), timeout=0.2)
                    acquired = True
                    break
                except TimeoutError:
                    if job.cancel_event.is_set():
                        job.status = CANCELLED
                        self.stats.cancelled += 1
                        return
            if job.cancel_event.is_set():
                job.status = CANCELLED
                self.stats.cancelled += 1
                return
            job.status = RUNNING
            job.started_at = time.time()
            self.running += 1
            self.stats.solves_started += 1
            budget = (config.timeout or self.limits.max_timeout) + _BUDGET_GRACE
            verdict, payload = await asyncio.to_thread(
                _solve_in_process,
                self._ctx, job, request.dfg, request.cgra, config, budget,
            )
            if verdict == "ok":
                job.result = payload
                job.status = DONE
                self.stats.completed += 1
                self.stats.fold_cache(payload.get("cache"))
            elif verdict == "cancelled":
                job.status = CANCELLED
                self.stats.cancelled += 1
            elif verdict == "crashed":
                job.failure = payload
                job.error = _crash_message(payload)
                job.status = FAILED
                self.stats.failed += 1
                self.stats.worker_crashes += 1
            else:
                job.error = payload
                job.status = FAILED
                self.stats.failed += 1
        except Exception as exc:  # pragma: no cover - scheduler bug guard
            job.error = f"{type(exc).__name__}: {exc}"
            job.status = FAILED
            self.stats.failed += 1
        finally:
            if acquired:
                if job.started_at is not None:
                    self.running -= 1
                self._semaphore.release()
            job.finished_at = time.time()
            if self._inflight.get((job.tenant, job.cache_key)) is job:
                del self._inflight[(job.tenant, job.cache_key)]
            job.done_event.set()

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        """Look up a job by id (``None`` for unknown ids)."""
        return self.jobs.get(job_id)

    def cancel(self, job_id: str) -> Job | None:
        """Ask a job to stop; the solve loop reaps its worker process."""
        job = self.jobs.get(job_id)
        if job is None or job.finished:
            return job
        job.cancel_event.set()
        return job

    async def shutdown(self) -> None:
        """Cancel everything in flight and wait for the reaps to finish."""
        pending = [job for job in self.jobs.values() if not job.finished]
        for job in pending:
            job.cancel_event.set()
        for job in pending:
            await job.done_event.wait()

    def _prune_finished(self) -> None:
        """Bound the job registry: drop the oldest finished jobs."""
        overflow = len(self.jobs) - self._max_jobs_tracked
        if overflow <= 0:
            return
        finished = sorted(
            (job for job in self.jobs.values() if job.finished),
            key=lambda job: job.finished_at or 0.0,
        )
        for job in finished[:overflow]:
            del self.jobs[job.id]

    # ------------------------------------------------------------------
    def stats_payload(self) -> dict:
        """The ``GET /stats`` body: counters plus on-disk cache telemetry."""
        stats = self.stats
        queued = sum(1 for job in self.jobs.values() if job.status == QUEUED)
        payload: dict[str, Any] = {
            "service": {
                "uptime_s": round(time.time() - stats.started_at, 3),
                "pool_size": self.pool_size,
                "running": self.running,
                "queued": queued,
                "jobs_tracked": len(self.jobs),
            },
            "requests": {
                "received": stats.requests,
                "dedup_joined": stats.dedup_joined,
                "rejected": stats.rejected,
                "solves_started": stats.solves_started,
                "completed": stats.completed,
                "failed": stats.failed,
                "worker_crashes": stats.worker_crashes,
                "cancelled": stats.cancelled,
            },
            "cache": {
                **stats.cache,
                "hit_rate": stats.hit_rate,
                "directory": None,
            },
        }
        if self.cache_dir is not None:
            # Live directory scan per tenant namespace; doubling as the
            # long-lived process's hygiene hook — stale atomic-write temps
            # are swept on every telemetry pass, not only on writes.
            tenants: dict[str, dict] = {}
            for tenant in sorted(self._tenants):
                handle = MappingCache(
                    resolve_cache_dir(self.cache_dir, tenant),
                    max_mb=self.cache_max_mb,
                )
                swept = handle.sweep_stale_temps()
                if swept:
                    self.stats.cache["temp_files_swept"] += swept
                tenants[tenant] = handle.directory_stats()
            payload["cache"]["directory"] = {
                "root": str(self.cache_dir),
                "tenants": tenants,
            }
            # The scan above may itself have swept temps; report the
            # post-sweep counter, not the snapshot taken before it.
            payload["cache"]["temp_files_swept"] = (
                self.stats.cache["temp_files_swept"]
            )
        return payload
