"""DRAT proof logging, a forward proof checker, and the ``drat-trim`` hook.

Cached UNSAT results are only worth sharing if they are independently
checkable (ROADMAP item 1): a mapper that serves "II=k is infeasible" from a
cache must be able to show its work.  This module provides the three pieces:

* :class:`ProofLogger` — an append-only DRAT trace writer.  The CDCL solver
  logs every learned clause (all learned clauses produced by 1-UIP conflict
  analysis are RUP, hence DRAT) and every deletion from clause-database
  reduction; external solvers write the trace themselves when invoked with a
  proof path.  A running SHA-256 over the emitted bytes gives a cheap,
  order-sensitive *proof digest* that cache entries and :class:`IIAttempt`
  records can store without retaining the trace itself.
* :func:`check_proof` — a bundled pure-Python *forward* DRAT checker
  (counter-based unit propagation, RUP with a RAT fallback on the first
  literal).  Forward checking is slower than backward ``drat-trim`` style
  checking but needs no binary and is plenty for the test-sized traces the
  repo verifies; every UNSAT proof emitted in the test-suite passes it.
* :func:`run_drat_trim` — an optional hook that defers to a system
  ``drat-trim`` binary when one is installed (CI installs it; containers
  without it skip transparently).

UNSAT *under assumptions* is not plain DRAT: the trace proves ``F ∧ cube``
unsatisfiable, not ``F``.  The convention used throughout this repo is that
the solver logs the negated assumption cube ``(¬a₁ ∨ … ∨ ¬aₖ)`` as its final
addition (it is RUP with respect to ``F`` plus the learned clauses), and the
checker is called with ``assumptions=cube`` which adds the cube literals as
unit clauses before replaying the trace.  A trace without an explicit empty
clause is accepted iff the empty clause is RUP after all additions — which
is exactly the assumption-cube case.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TextIO

__all__ = [
    "ProofLogger",
    "CheckResult",
    "check_proof",
    "check_proof_file",
    "parse_proof",
    "proof_digest",
    "drat_trim_available",
    "run_drat_trim",
]


class ProofLogger:
    """Append-only DRAT trace writer with a running SHA-256 digest.

    With a ``path`` the trace streams to disk; without one it accumulates
    in memory (portfolio workers and unit tests use the in-memory form).
    The digest covers the exact emitted bytes, so two runs producing the
    same trace produce the same digest — and a tampered cache entry cannot
    forge one without re-deriving a trace.
    """

    def __init__(self, path: str | os.PathLike[str] | None = None) -> None:
        self.path: str | None = str(path) if path is not None else None
        self._stream: TextIO | None = None
        self._lines: list[str] | None = None
        if self.path is not None:
            parent = Path(self.path).parent
            if parent and not parent.exists():
                parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "w")
        else:
            self._lines = []
        self._sha = hashlib.sha256()
        self.additions = 0
        self.deletions = 0
        self.empty_logged = False
        self._closed = False

    def add(self, literals: Sequence[int]) -> None:
        """Log a clause addition (the empty clause is logged at most once)."""
        if not literals:
            if self.empty_logged:
                return
            self.empty_logged = True
        self._emit(" ".join(str(lit) for lit in literals) + " 0\n"
                   if literals else "0\n")
        self.additions += 1

    def delete(self, literals: Sequence[int]) -> None:
        """Log a clause deletion (``d`` line)."""
        if not literals:
            return
        self._emit("d " + " ".join(str(lit) for lit in literals) + " 0\n")
        self.deletions += 1

    def _emit(self, line: str) -> None:
        if self._closed:
            raise ValueError("proof logger is closed")
        self._sha.update(line.encode("ascii"))
        if self._stream is not None:
            self._stream.write(line)
        else:
            assert self._lines is not None
            self._lines.append(line)

    def digest(self) -> str:
        """Hex SHA-256 of the bytes emitted so far (flushes the stream)."""
        if self._stream is not None and not self._closed:
            self._stream.flush()
        return self._sha.hexdigest()

    def text(self) -> str:
        """The in-memory trace (file-backed loggers read the file back)."""
        if self._lines is not None:
            return "".join(self._lines)
        assert self.path is not None
        if not self._closed:
            self._stream.flush()  # type: ignore[union-attr]
        return Path(self.path).read_text()

    def close(self) -> None:
        if self._stream is not None and not self._closed:
            self._stream.close()
        self._closed = True

    def __enter__(self) -> "ProofLogger":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def proof_digest(text: str) -> str:
    """Digest of an externally produced trace (same scheme as the logger)."""
    return hashlib.sha256(text.encode("ascii", "replace")).hexdigest()


# ---------------------------------------------------------------------------
# Forward checker
# ---------------------------------------------------------------------------
@dataclass
class CheckResult:
    """Outcome of a forward DRAT check."""

    ok: bool
    steps: int = 0
    rat_steps: int = 0
    reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def parse_proof(text: str) -> list[tuple[bool, tuple[int, ...]]]:
    """Parse a textual DRAT trace into ``(is_delete, clause)`` steps."""
    steps: list[tuple[bool, tuple[int, ...]]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        delete = line.startswith("d ") or line == "d"
        if delete:
            line = line[1:].strip()
        lits = [int(tok) for tok in line.split()]
        if not lits or lits[-1] != 0 or 0 in lits[:-1]:
            raise ValueError(f"malformed proof line: {raw!r}")
        steps.append((delete, tuple(lits[:-1])))
    return steps


class _Propagator:
    """Counter-based unit propagation over a mutable clause multiset.

    Clauses are stored once; ``unassigned`` counters plus per-literal
    occurrence lists make a RUP check linear in the touched clauses, and an
    undo trail restores only what a check dirtied — the standard trick that
    keeps forward checking usable on test-sized traces.
    """

    def __init__(self) -> None:
        self.clauses: list[tuple[int, ...] | None] = []
        self.occ: dict[int, list[int]] = {}
        self.unassigned: list[int] = []
        self.true_count: list[int] = []
        self.units: list[int] = []

    def add(self, clause: tuple[int, ...]) -> int:
        ref = len(self.clauses)
        self.clauses.append(clause)
        self.unassigned.append(len(clause))
        self.true_count.append(0)
        for lit in clause:
            self.occ.setdefault(lit, []).append(ref)
        if len(clause) == 1:
            self.units.append(ref)
        return ref

    def delete(self, clause: tuple[int, ...]) -> bool:
        """Delete one live copy matching ``clause`` (as a literal set)."""
        key = frozenset(clause)
        candidates = self.occ.get(next(iter(key), 0), [])
        for ref in candidates:
            live = self.clauses[ref]
            if live is not None and frozenset(live) == key:
                self.clauses[ref] = None
                return True
        return False

    def rup(self, clause: Sequence[int]) -> bool:
        """Is ``clause`` RUP? Assert its negation, propagate to conflict."""
        assigned: dict[int, bool] = {}
        trail: list[int] = []
        touched: list[int] = []
        queue: list[int] = []
        conflict = False

        def assign(lit: int) -> bool:
            var = abs(lit)
            value = lit > 0
            prev = assigned.get(var)
            if prev is not None:
                return prev == value
            assigned[var] = value
            trail.append(lit)
            queue.append(lit)
            return True

        for lit in clause:
            if not assign(-lit):
                conflict = True
                break

        # Unit propagation must start from the formula's unit clauses as
        # well as the asserted negation — the empty-clause check in
        # particular asserts nothing and relies entirely on these seeds.
        if not conflict:
            for ref in self.units:
                live = self.clauses[ref]
                if live is not None and not assign(live[0]):
                    conflict = True
                    break

        while queue and not conflict:
            lit = queue.pop()
            # lit became true: clauses containing lit are satisfied,
            # clauses containing -lit lose a candidate literal.
            for ref in self.occ.get(lit, ()):
                if self.clauses[ref] is not None:
                    self.true_count[ref] += 1
                    touched.append(ref)
            for ref in self.occ.get(-lit, ()):
                live = self.clauses[ref]
                if live is None:
                    continue
                self.unassigned[ref] -= 1
                touched.append(-ref - 1)
                if self.true_count[ref] > 0:
                    continue
                if self.unassigned[ref] == 0:
                    conflict = True
                    break
                if self.unassigned[ref] == 1:
                    unit = None
                    for cand in live:
                        var = abs(cand)
                        if var not in assigned:
                            unit = cand
                            break
                        if assigned[var] == (cand > 0):
                            unit = None
                            break
                    if unit is not None and not assign(unit):
                        conflict = True
                        break

        for mark in touched:
            if mark >= 0:
                self.true_count[mark] -= 1
            else:
                self.unassigned[-mark - 1] += 1
        return conflict


def check_proof(
    clauses: Iterable[Sequence[int]],
    proof: str | Sequence[tuple[bool, tuple[int, ...]]],
    assumptions: Sequence[int] = (),
) -> CheckResult:
    """Forward-check a DRAT trace against a formula.

    ``assumptions`` literals are added as unit clauses before replay (the
    UNSAT-under-assumptions convention, see the module docstring).  The check
    succeeds when a verified empty clause is derived, or — failing an
    explicit one — when the empty clause is RUP after the final step.
    """
    steps = parse_proof(proof) if isinstance(proof, str) else list(proof)
    prop = _Propagator()
    trivially_unsat = False
    for clause in clauses:
        clause = tuple(clause)
        if not clause:
            trivially_unsat = True
        prop.add(clause)
    for lit in assumptions:
        prop.add((lit,))

    rat_steps = 0
    for index, (delete, clause) in enumerate(steps):
        if delete:
            # Deleting a clause that is not present is tolerated (solvers
            # may log deletions of clauses already strengthened away); it
            # only ever weakens the derivation, never unsoundly helps it.
            prop.delete(clause)
            continue
        if not clause:
            if trivially_unsat or prop.rup(clause):
                return CheckResult(True, steps=index + 1, rat_steps=rat_steps)
            return CheckResult(
                False,
                steps=index + 1,
                rat_steps=rat_steps,
                reason="empty clause is not RUP",
            )
        if not prop.rup(clause):
            if not _rat(prop, clause):
                return CheckResult(
                    False,
                    steps=index + 1,
                    rat_steps=rat_steps,
                    reason=f"step {index + 1} is neither RUP nor RAT: {clause}",
                )
            rat_steps += 1
        prop.add(clause)

    if trivially_unsat or prop.rup(()):
        return CheckResult(True, steps=len(steps), rat_steps=rat_steps)
    return CheckResult(
        False,
        steps=len(steps),
        rat_steps=rat_steps,
        reason="trace ends without deriving the empty clause",
    )


def _rat(prop: _Propagator, clause: tuple[int, ...]) -> bool:
    """RAT check on the first literal (the DRAT pivot convention)."""
    pivot = clause[0]
    rest = set(clause)
    for ref in list(prop.occ.get(-pivot, ())):
        other = prop.clauses[ref]
        if other is None:
            continue
        if any(-lit in rest and lit != -pivot for lit in other):
            continue  # resolvent is a tautology
        resolvent = list(clause) + [lit for lit in other if lit != -pivot]
        if not prop.rup(resolvent):
            return False
    return True


def check_proof_file(
    clauses: Iterable[Sequence[int]],
    proof_path: str | os.PathLike[str],
    assumptions: Sequence[int] = (),
) -> CheckResult:
    """Convenience wrapper: read a trace file and :func:`check_proof` it."""
    return check_proof(
        clauses, Path(proof_path).read_text(), assumptions=assumptions
    )


# ---------------------------------------------------------------------------
# drat-trim hook
# ---------------------------------------------------------------------------
def drat_trim_available() -> bool:
    """True when a system ``drat-trim`` binary is on PATH."""
    return shutil.which("drat-trim") is not None


def run_drat_trim(
    cnf_path: str | os.PathLike[str],
    proof_path: str | os.PathLike[str],
    timeout: float = 60.0,
) -> CheckResult:
    """Check a proof with the system ``drat-trim`` (backward checker).

    Raises :class:`FileNotFoundError` when the binary is absent — call
    :func:`drat_trim_available` first, or catch and fall back to
    :func:`check_proof_file`.
    """
    binary = shutil.which("drat-trim")
    if binary is None:
        raise FileNotFoundError("drat-trim binary not found on PATH")
    result = subprocess.run(
        [binary, str(cnf_path), str(proof_path)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    if "s VERIFIED" in result.stdout:
        return CheckResult(ok=True)
    tail = result.stdout.strip().splitlines()
    return CheckResult(ok=False, reason=tail[-1] if tail else "drat-trim rejected")
