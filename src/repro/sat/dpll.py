"""A compact DPLL solver used as a reference oracle.

The CDCL solver in :mod:`repro.sat.solver` is the production engine; this
module provides a deliberately simple Davis–Putnam–Logemann–Loveland solver
(unit propagation + pure-literal elimination + chronological backtracking)
whose correctness is easy to audit.  The test-suite cross-checks the two
solvers on randomly generated formulas.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.sat.cnf import CNF


class DPLLSolver:
    """Recursive DPLL SAT solver.

    Suitable for formulas up to a few hundred variables; intended for tests
    and for tiny mapping instances, not for production mapping runs.
    """

    def __init__(self, max_decisions: int | None = None) -> None:
        self._max_decisions = max_decisions
        self._decisions = 0
        self._deadline: float | None = None

    def solve(
        self,
        cnf: CNF,
        assumptions: Sequence[int] = (),
        time_limit: float | None = None,
    ) -> dict[int, bool] | None:
        """Return a satisfying assignment or ``None`` if unsatisfiable.

        The returned assignment maps every variable of ``cnf`` to a boolean.
        ``assumptions`` is a list of literals forced true before search.
        ``time_limit`` (seconds) bounds the search: on expiry a
        ``RuntimeError`` is raised, like an exhausted decision budget.
        """
        self._decisions = 0
        self._deadline = (
            time.perf_counter() + time_limit if time_limit is not None else None
        )
        clauses = [list(clause) for clause in cnf.clauses]
        assignment: dict[int, bool] = {}
        for lit in assumptions:
            var, value = abs(lit), lit > 0
            if assignment.get(var, value) != value:
                return None
            assignment[var] = value
        result = self._search(clauses, assignment)
        if result is None:
            return None
        # Complete the model: unconstrained variables default to False.
        for var in range(1, cnf.num_vars + 1):
            result.setdefault(var, False)
        return result

    @property
    def decisions(self) -> int:
        """Number of branching decisions made during the last solve."""
        return self._decisions

    # ------------------------------------------------------------------
    def _search(
        self, clauses: list[list[int]], assignment: dict[int, bool]
    ) -> dict[int, bool] | None:
        clauses, assignment, conflict = _simplify(clauses, assignment)
        if conflict:
            return None
        if not clauses:
            return assignment
        if self._max_decisions is not None and self._decisions >= self._max_decisions:
            raise RuntimeError("DPLL decision budget exhausted")
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise RuntimeError("DPLL time budget exhausted")
        self._decisions += 1
        var = _pick_branch_variable(clauses)
        for value in (True, False):
            trial = dict(assignment)
            trial[var] = value
            result = self._search([list(c) for c in clauses], trial)
            if result is not None:
                return result
        return None


def _simplify(
    clauses: list[list[int]], assignment: dict[int, bool]
) -> tuple[list[list[int]], dict[int, bool], bool]:
    """Apply unit propagation and pure-literal elimination to a fixpoint.

    Returns the simplified clause list, the extended assignment and a flag
    that is ``True`` when a conflict (empty clause) was derived.
    """
    assignment = dict(assignment)
    while True:
        clauses, conflict = _reduce(clauses, assignment)
        if conflict:
            return clauses, assignment, True
        unit = _find_unit(clauses)
        if unit is not None:
            assignment[abs(unit)] = unit > 0
            continue
        pure = _find_pure(clauses, assignment)
        if pure is not None:
            assignment[abs(pure)] = pure > 0
            continue
        return clauses, assignment, False


def _reduce(
    clauses: list[list[int]], assignment: dict[int, bool]
) -> tuple[list[list[int]], bool]:
    """Drop satisfied clauses and falsified literals; detect empty clauses."""
    reduced: list[list[int]] = []
    for clause in clauses:
        new_clause: list[int] = []
        satisfied = False
        for lit in clause:
            value = assignment.get(abs(lit))
            if value is None:
                new_clause.append(lit)
            elif value == (lit > 0):
                satisfied = True
                break
        if satisfied:
            continue
        if not new_clause:
            return reduced, True
        reduced.append(new_clause)
    return reduced, False


def _find_unit(clauses: list[list[int]]) -> int | None:
    for clause in clauses:
        if len(clause) == 1:
            return clause[0]
    return None


def _find_pure(clauses: list[list[int]], assignment: dict[int, bool]) -> int | None:
    polarity: dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            var = abs(lit)
            if var in assignment:
                continue
            sign = 1 if lit > 0 else -1
            previous = polarity.get(var)
            if previous is None:
                polarity[var] = sign
            elif previous != sign:
                polarity[var] = 0
    for var, sign in polarity.items():
        if sign == 1:
            return var
        if sign == -1:
            return -var
    return None


def _pick_branch_variable(clauses: list[list[int]]) -> int:
    """Branch on the variable occurring most often in the shortest clauses."""
    shortest = min(len(clause) for clause in clauses)
    counts: dict[int, int] = {}
    for clause in clauses:
        if len(clause) != shortest:
            continue
        for lit in clause:
            counts[abs(lit)] = counts.get(abs(lit), 0) + 1
    return max(counts, key=counts.get)  # type: ignore[arg-type]
