"""Conflict-driven clause learning (CDCL) SAT solver.

This is the production solving engine of the reproduction.  It implements the
standard MiniSat-style architecture:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with learned-clause minimisation,
* VSIDS variable activities with exponential decay,
* phase saving,
* Luby-sequence restarts,
* learned-clause database reduction driven by LBD (literals blocks distance).

The solver is **incremental**: the clause database, variable activities,
saved phases and learned clauses all persist across :meth:`CDCLSolver.solve`
calls.  Clauses and variables are added through :meth:`CDCLSolver.add_clause`
and :meth:`CDCLSolver.new_var`, and each ``solve`` call takes a list of
assumption literals that are replayed as pseudo-decisions below the real
search (the MiniSat ``solve(assumps)`` interface).  This is what makes the
mapper's iterative loop cheap: retiring one (II, slack) attempt and starting
the next is an assumption flip, not a rebuild.

For convenience ``solve`` also accepts a :class:`repro.sat.cnf.CNF`; passing
one resets the solver and loads the formula, reproducing the classic
one-shot behaviour the test-suite and the ablation benchmarks rely on.

Internally literals are re-encoded as ``2 * var`` (positive) and
``2 * var + 1`` (negative); truth values are kept in a literal-indexed array
so the propagation loop runs on flat list accesses only (this matters: the
whole mapper is pure Python and unit propagation is its hottest loop).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.sat.cnf import CNF

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1

@dataclass
class SolverStats:
    """Counters describing the work done by a single ``solve`` call."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_decision_level: int = 0
    solve_time: float = 0.0


@dataclass
class SolverResult:
    """Outcome of a ``solve`` call.

    ``status`` is one of ``"SAT"``, ``"UNSAT"`` or ``"UNKNOWN"`` (the latter
    when a conflict or time budget was exhausted).  ``model`` maps every
    problem variable to a boolean when the status is ``"SAT"``.
    """

    status: str
    model: dict[int, bool] | None = None
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_sat(self) -> bool:
        return self.status == "SAT"

    @property
    def is_unsat(self) -> bool:
        return self.status == "UNSAT"


class _Clause:
    """Internal clause representation with learning metadata."""

    __slots__ = ("lits", "learned", "lbd", "activity")

    def __init__(self, lits: list[int], learned: bool = False, lbd: int = 0) -> None:
        self.lits = lits
        self.learned = learned
        self.lbd = lbd
        self.activity = 0.0


class CDCLSolver:
    """An incremental CDCL SAT solver with VSIDS, restarts and clause deletion."""

    name = "cdcl"

    def __init__(
        self,
        var_decay: float = 0.95,
        clause_decay: float = 0.999,
        restart_base: int = 100,
        learned_limit_base: int = 4000,
        random_seed: int | None = None,
        initial_phase: bool = False,
        activity_hints: dict[int, float] | None = None,
        phase_hints: dict[int, bool] | None = None,
    ) -> None:
        self.var_decay = var_decay
        self.clause_decay = clause_decay
        self.restart_base = restart_base
        self.learned_limit_base = learned_limit_base
        self.random_seed = random_seed
        #: Polarity tried first for a variable that has never been assigned.
        #: ``True`` makes the search constructive (useful for placement-style
        #: exactly-one formulas), ``False`` is the classic MiniSat default.
        self.initial_phase = initial_phase
        #: Optional VSIDS warm start: variables with larger values are
        #: branched on first until conflict-driven activity takes over.
        self.activity_hints = activity_hints or {}
        #: Optional per-variable initial polarity (overrides initial_phase).
        self.phase_hints = phase_hints or {}
        self.stats = SolverStats()
        self._reset()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of variables known to the solver."""
        return self._nvars

    @property
    def num_learned(self) -> int:
        """Learned clauses currently alive in the database."""
        return len(self._learned)

    @property
    def num_clauses(self) -> int:
        """Problem clauses currently attached (excludes root units)."""
        return len(self._clauses)

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self._nvars += 1
        var = self._nvars
        self._value.extend((_UNASSIGNED, _UNASSIGNED))
        self._level.append(0)
        self._reason.append(None)
        activity = float(self.activity_hints.get(var, 0.0))
        self._activity.append(activity)
        self._phase.append(bool(self.phase_hints.get(var, self.initial_phase)))
        self._watches.append([])
        self._watches.append([])
        self._seen.append(False)
        heapq.heappush(self._order, (-activity, var))
        return var

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable universe so ``num_vars`` is a valid variable."""
        while self._nvars < num_vars:
            self.new_var()

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add a clause to the persistent database.

        The clause is simplified against the root-level assignment (MiniSat
        style): literals already false at level 0 are dropped, and a clause
        containing a root-true literal is discarded as satisfied.  Returns
        ``False`` when the formula became unsatisfiable at level 0 (the
        solver then answers ``UNSAT`` forever), ``True`` otherwise.
        """
        if self._unsat:
            return False
        self.clauses_added += 1
        self._backtrack(0)
        seen: set[int] = set()
        lits: list[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("literal 0 is not allowed in a clause")
            var = abs(lit)
            if var > self._nvars:
                self.ensure_vars(var)
            internal = 2 * var if lit > 0 else 2 * var + 1
            if internal ^ 1 in seen:
                return True  # tautology
            if internal in seen:
                continue
            seen.add(internal)
            value = self._value[internal]
            if value == _TRUE:
                return True  # satisfied at the root level
            if value == _FALSE:
                continue  # root-falsified literal, drop it
            lits.append(internal)
        if not lits:
            self._unsat = True
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], None) or self._propagate() is not None:
                self._unsat = True
                return False
            return True
        self._attach_clause(_Clause(lits))
        return True

    def solve(
        self,
        cnf: CNF | None = None,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        time_limit: float | None = None,
    ) -> SolverResult:
        """Decide satisfiability under optional ``assumptions``.

        Without ``cnf`` this is an incremental call on the persistent clause
        database (learned clauses, activities and phases are reused from
        earlier calls).  Passing a ``cnf`` resets the solver and loads the
        formula first — the classic one-shot interface.  ``conflict_limit``
        and ``time_limit`` (seconds) bound the search; when either budget is
        exhausted the result status is ``"UNKNOWN"``.
        """
        start = time.perf_counter()
        # Fresh per-call stats *before* any work so clause-loading effort is
        # attributed to this call and earlier ``SolverResult`` objects are
        # never mutated after being returned.
        self.stats = SolverStats()
        propagations_start = self._propagations
        if cnf is not None:
            self._reset()
            propagations_start = 0
            self.ensure_vars(cnf.num_vars)
            for clause in cnf.clauses:
                if not self.add_clause(clause):
                    break
        self._backtrack(0)
        if not self._unsat and self._propagate() is not None:
            self._unsat = True
        if self._unsat:
            self.stats.propagations = self._propagations - propagations_start
            self.stats.solve_time = time.perf_counter() - start
            return SolverResult("UNSAT", None, self.stats)

        assumption_lits = []
        for lit in assumptions:
            self.ensure_vars(abs(lit))
            assumption_lits.append(self._to_internal(lit))
        status = self._search(assumption_lits, conflict_limit, time_limit, start)

        self.stats.propagations = self._propagations - propagations_start
        self.stats.solve_time = time.perf_counter() - start
        if status == "SAT":
            model = {
                var: self._value[2 * var] == _TRUE
                for var in range(1, self._nvars + 1)
            }
            return SolverResult("SAT", model, self.stats)
        return SolverResult(status, None, self.stats)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _reset(self) -> None:
        """Drop all state: variables, clauses, learned clauses, activities."""
        self._nvars = 0
        #: literal-indexed truth values (index 2v / 2v+1)
        self._value: list[int] = [_UNASSIGNED, _UNASSIGNED]
        self._level: list[int] = [0]
        self._reason: list[_Clause | None] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [self.initial_phase]
        self._watches: list[list[_Clause]] = [[], []]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._clauses: list[_Clause] = []
        self._learned: list[_Clause] = []
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._seen: list[bool] = [False]
        self._order: list[tuple[float, int]] = []
        self._unsat = False
        #: Lifetime propagation counter; per-call stats are computed from
        #: deltas so ``add_clause`` between calls never mutates a stats
        #: object a previous ``solve`` already returned.
        self._propagations = 0
        #: Lifetime count of ``add_clause`` submissions (the mapper uses the
        #: delta to prove retry rounds add only blocking clauses).
        self.clauses_added = 0

    @staticmethod
    def _to_internal(lit: int) -> int:
        var = abs(lit)
        return 2 * var if lit > 0 else 2 * var + 1

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------
    def _attach_clause(self, clause: _Clause) -> None:
        lits = clause.lits
        self._watches[lits[0] ^ 1].append(clause)
        self._watches[lits[1] ^ 1].append(clause)
        if clause.learned:
            self._learned.append(clause)
        else:
            self._clauses.append(clause)

    def _detach_clause(self, clause: _Clause) -> None:
        for watched in (clause.lits[0], clause.lits[1]):
            watch_list = self._watches[watched ^ 1]
            if clause in watch_list:
                watch_list.remove(clause)

    # ------------------------------------------------------------------
    # Assignment and propagation
    # ------------------------------------------------------------------
    def _enqueue(self, lit: int, reason: _Clause | None) -> bool:
        value = self._value[lit]
        if value == _TRUE:
            return True
        if value == _FALSE:
            return False
        var = lit >> 1
        self._value[lit] = _TRUE
        self._value[lit ^ 1] = _FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = (lit & 1) == 0
        self._trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _propagate(self) -> _Clause | None:
        """Unit propagation; returns a conflicting clause or ``None``."""
        value = self._value
        watches = self._watches
        trail = self._trail
        level = self._level
        reason = self._reason
        phase = self._phase
        trail_lim_len = len(self._trail_lim)
        propagations = 0

        qhead = self._qhead
        conflict: _Clause | None = None
        while conflict is None and qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            propagations += 1
            false_lit = lit ^ 1
            watch_list = watches[lit]
            new_watch_list: list[_Clause] = []
            append_kept = new_watch_list.append
            count = len(watch_list)
            index = 0
            while index < count:
                clause = watch_list[index]
                index += 1
                lits = clause.lits
                # Ensure the falsified literal sits at position 1.
                if lits[0] == false_lit:
                    lits[0] = lits[1]
                    lits[1] = false_lit
                first = lits[0]
                if value[first] == _TRUE:
                    append_kept(clause)
                    continue
                # Search for a replacement watch.
                found = False
                for position in range(2, len(lits)):
                    candidate = lits[position]
                    if value[candidate] != _FALSE:
                        lits[1] = candidate
                        lits[position] = false_lit
                        watches[candidate ^ 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                append_kept(clause)
                if value[first] == _FALSE:
                    conflict = clause
                    new_watch_list.extend(watch_list[index:])
                    break
                # Unit: enqueue ``first`` (inlined _enqueue on unassigned lit).
                var = first >> 1
                value[first] = _TRUE
                value[first ^ 1] = _FALSE
                level[var] = trail_lim_len
                reason[var] = clause
                phase[var] = (first & 1) == 0
                trail.append(first)
            watches[lit] = new_watch_list

        self._qhead = len(trail) if conflict is not None else qhead
        self._propagations += propagations
        return conflict

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _analyze(self, conflict: _Clause) -> tuple[list[int], int, int]:
        """First-UIP conflict analysis.

        Returns the learned clause (internal literals, asserting literal
        first), the backtrack level and the clause's LBD.
        """
        learned: list[int] = [0]
        seen = self._seen
        counter = 0
        lit = -1
        clause: _Clause | None = conflict
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            assert clause is not None
            if clause.learned:
                self._bump_clause(clause)
            start = 0 if lit == -1 else 1
            for position in range(start, len(clause.lits)):
                other = clause.lits[position]
                var = other >> 1
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(other)
            # Find the next literal on the trail to resolve on.
            while not seen[self._trail[trail_index] >> 1]:
                trail_index -= 1
            lit = self._trail[trail_index]
            trail_index -= 1
            var = lit >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            clause = self._reason[var]
        learned[0] = lit ^ 1

        # Learned clause minimisation: drop literals implied by the rest.
        original = list(learned)
        reduced = [learned[0]]
        for other in learned[1:]:
            if not self._redundant(other):
                reduced.append(other)
        learned = reduced

        for other in original:
            self._seen[other >> 1] = False

        if len(learned) == 1:
            backtrack_level = 0
        else:
            max_index = 1
            max_level = self._level[learned[1] >> 1]
            for position in range(2, len(learned)):
                level = self._level[learned[position] >> 1]
                if level > max_level:
                    max_level = level
                    max_index = position
            learned[1], learned[max_index] = learned[max_index], learned[1]
            backtrack_level = max_level

        levels = {self._level[other >> 1] for other in learned}
        return learned, backtrack_level, len(levels)

    def _redundant(self, lit: int) -> bool:
        """Cheap (non-recursive) redundancy check for clause minimisation."""
        reason = self._reason[lit >> 1]
        if reason is None:
            return False
        for other in reason.lits:
            var = other >> 1
            if var == lit >> 1:
                continue
            if not self._seen[var] and self._level[var] != 0:
                return False
        return True

    # ------------------------------------------------------------------
    # Activities
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for index in range(1, self._nvars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_var_activity(self) -> None:
        self._var_inc /= self.var_decay

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for learned in self._learned:
                learned.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self.clause_decay

    # ------------------------------------------------------------------
    # Backtracking and decisions
    # ------------------------------------------------------------------
    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        order = self._order
        value = self._value
        activity = self._activity
        for position in range(len(self._trail) - 1, boundary - 1, -1):
            lit = self._trail[position]
            var = lit >> 1
            value[lit] = _UNASSIGNED
            value[lit ^ 1] = _UNASSIGNED
            self._reason[var] = None
            heapq.heappush(order, (-activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _pick_branch_literal(self) -> int | None:
        order = self._order
        value = self._value
        while order:
            _, var = heapq.heappop(order)
            if value[2 * var] == _UNASSIGNED:
                return 2 * var if self._phase[var] else 2 * var + 1
        for var in range(1, self._nvars + 1):
            if value[2 * var] == _UNASSIGNED:
                return 2 * var if self._phase[var] else 2 * var + 1
        return None

    # ------------------------------------------------------------------
    # Clause database reduction
    # ------------------------------------------------------------------
    def _reduce_learned(self) -> None:
        self._learned.sort(key=lambda c: (c.lbd, -c.activity))
        keep = len(self._learned) // 2
        removable = self._learned[keep:]
        self._learned = self._learned[:keep]
        locked = {
            id(self._reason[lit >> 1]) for lit in self._trail if self._reason[lit >> 1]
        }
        for clause in removable:
            if id(clause) in locked or clause.lbd <= 2:
                self._learned.append(clause)
                continue
            self._detach_clause(clause)
            self.stats.deleted_clauses += 1

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------
    def _search(
        self,
        assumptions: list[int],
        conflict_limit: int | None,
        time_limit: float | None,
        start_time: float,
    ) -> str:
        restart_conflicts = self.restart_base * _luby(self.stats.restarts + 1)
        conflicts_since_restart = 0
        learned_limit = self.learned_limit_base

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._unsat = True
                    return "UNSAT"
                learned, backtrack_level, lbd = self._analyze(conflict)
                self._backtrack(backtrack_level)
                if len(learned) == 1:
                    self._enqueue(learned[0], None)
                else:
                    clause = _Clause(learned, learned=True, lbd=lbd)
                    self._attach_clause(clause)
                    self.stats.learned_clauses += 1
                    self._enqueue(learned[0], clause)
                self._decay_var_activity()
                self._decay_clause_activity()

                if conflict_limit is not None and self.stats.conflicts >= conflict_limit:
                    return "UNKNOWN"
                if time_limit is not None and (self.stats.conflicts & 127) == 0:
                    if time.perf_counter() - start_time > time_limit:
                        return "UNKNOWN"
                continue

            # No conflict: maybe restart / reduce / decide.
            if conflicts_since_restart >= restart_conflicts:
                self.stats.restarts += 1
                conflicts_since_restart = 0
                restart_conflicts = self.restart_base * _luby(self.stats.restarts + 1)
                self._backtrack(0)

            if len(self._learned) > learned_limit:
                self._reduce_learned()
                learned_limit += self.learned_limit_base // 2

            if time_limit is not None and time.perf_counter() - start_time > time_limit:
                return "UNKNOWN"

            # Assumption handling: replay any assumption not yet satisfied.
            next_decision: int | None = None
            level = self._decision_level()
            if level < len(assumptions):
                lit = assumptions[level]
                value = self._value[lit]
                if value == _FALSE:
                    # Unsatisfiable *under the assumptions* (the database
                    # itself stays consistent for future calls).
                    return "UNSAT"
                if value == _TRUE:
                    self._trail_lim.append(len(self._trail))
                    continue
                next_decision = lit
            if next_decision is None:
                next_decision = self._pick_branch_literal()
                if next_decision is None:
                    return "SAT"

            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, self._decision_level()
            )
            self._enqueue(next_decision, None)


def _luby(index: int) -> int:
    """The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, …  (1-based index)."""
    if index < 1:
        raise ValueError(f"Luby index must be >= 1, got {index}")
    while True:
        k = index.bit_length()
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        index = index - (1 << (k - 1)) + 1
